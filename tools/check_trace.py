#!/usr/bin/env python
"""Validate a JSONL trace log against the repro.obs wire format.

CI's trace-smoke job runs a 2-worker screen with ``--trace`` and pipes
the resulting log through this checker; any malformed line (bad JSON, a
missing envelope field, an unknown event type, a negative duration)
exits non-zero naming the line.  On success it prints the counting
summary and optionally asserts minimum expectations::

    python tools/check_trace.py screen-trace.jsonl \
        --min-spans 10 --min-sources 3 --expect-span screen.run

Depends only on ``repro.obs.schema`` (pure stdlib), so it runs anywhere
the log does.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("log", help="JSONL trace log to validate")
    p.add_argument("--min-spans", type=int, default=1,
                   help="fail unless at least this many spans (default 1)")
    p.add_argument("--min-sources", type=int, default=1,
                   help="fail unless at least this many distinct emitters")
    p.add_argument("--expect-span", action="append", default=[],
                   metavar="NAME", help="span name that must appear "
                   "(repeatable)")
    p.add_argument("--expect-event", action="append", default=[],
                   metavar="NAME", help="point-event name that must "
                   "appear (repeatable) — e.g. cohort.quarantine, "
                   "job.dead in the chaos-smoke job")
    args = p.parse_args(argv)

    from repro.obs.schema import SchemaError, read_log, validate_event

    spans = points = 0
    sources: set[str] = set()
    span_names: set[str] = set()
    event_names: set[str] = set()
    try:
        for line_no, record in read_log(args.log):
            validate_event(record, line_no)
            sources.add(record["src"])
            if record["type"] == "span":
                spans += 1
                span_names.add(record["name"])
            else:
                points += 1
                event_names.add(record["name"])
    except FileNotFoundError:
        print(f"FAIL: no such log: {args.log}", file=sys.stderr)
        return 2
    except SchemaError as exc:
        print(f"FAIL: {args.log}: {exc}", file=sys.stderr)
        return 1

    problems = []
    if spans < args.min_spans:
        problems.append(f"expected >= {args.min_spans} spans, got {spans}")
    if len(sources) < args.min_sources:
        problems.append(f"expected >= {args.min_sources} sources, got "
                        f"{sorted(sources)}")
    for name in args.expect_span:
        if name not in span_names:
            problems.append(f"span {name!r} never recorded")
    for name in args.expect_event:
        if name not in event_names:
            problems.append(f"event {name!r} never recorded")
    if problems:
        for msg in problems:
            print(f"FAIL: {args.log}: {msg}", file=sys.stderr)
        return 1

    print(f"OK: {args.log}: {spans} spans + {points} events from "
          f"{len(sources)} source(s) ({', '.join(sorted(sources))})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
