#!/usr/bin/env python
"""Merge screen manifests — sharded NDJSON dirs and/or single JSON files.

A sharded :class:`~repro.serve.manifest.ShardedManifest` keeps one
append-only NDJSON log per content-hash shard, which is the right shape
for a million-ligand screen but the wrong shape for downstream analysis.
This tool folds any mix of sharded manifest directories and single-file
``manifest.json`` documents into one ranked, single-file manifest::

    python tools/merge_manifests.py out/manifest out2/manifest.json \
        --out merged.json --top 10

Semantics mirror the serving layer exactly:

* **last record wins** — within a shard log, later appends supersede
  earlier ones (that is the append-log contract); across inputs, later
  command-line arguments supersede earlier ones;
* **torn tails are skipped** — a crash mid-append leaves at most one
  unparseable final line per shard, which is data loss of one record,
  never a read failure;
* **ranking matches** ``VirtualScreen._ranking`` — jobs with status
  ``ok``/``cached`` and a result payload, sorted by best score (the min
  over runs), so a merged sharded screen ranks identically to the same
  screen written through the single-file path.

Pure stdlib, so CI can run it before any project dependency imports.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

MANIFEST_VERSION = 1
SHARDED_MANIFEST_VERSION = 1


class MergeError(Exception):
    pass


def _fail(path: Path, msg: str) -> None:
    raise MergeError(f"{path}: {msg}")


# ----------------------------------------------------------------- load

def _load_sharded(path: Path) -> dict[str, dict]:
    meta_path = path / "meta.json"
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        _fail(meta_path, f"unreadable sharded-manifest meta: {exc}")
    if meta.get("version") != SHARDED_MANIFEST_VERSION:
        _fail(meta_path, f"unsupported sharded-manifest version "
                         f"{meta.get('version')!r}")
    jobs: dict[str, dict] = {}
    for shard_path in sorted(path.glob("shard-*.ndjson")):
        for line in shard_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue        # torn tail from a crash mid-append
            jid = rec.get("job_id")
            if jid:
                jobs[jid] = rec
    return jobs


def _load_single(path: Path) -> dict[str, dict]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        _fail(path, f"unreadable manifest: {exc}")
    if doc.get("version") != MANIFEST_VERSION:
        _fail(path, f"unsupported manifest version {doc.get('version')!r}")
    return dict(doc.get("jobs", {}))


def load_jobs(path: Path) -> dict[str, dict]:
    """job_id -> result record from either manifest format."""
    if path.is_dir():
        if not (path / "meta.json").is_file():
            _fail(path, "directory is not a sharded manifest "
                        "(no meta.json)")
        return _load_sharded(path)
    if path.is_file():
        return _load_single(path)
    _fail(path, "no such manifest")
    raise AssertionError("unreachable")


# ----------------------------------------------------------------- rank

def _best_score(rec: dict) -> float | None:
    result = rec.get("result")
    if not result or not result.get("runs"):
        return None
    return min(r["best_score"] for r in result["runs"])


def rank(jobs: dict[str, dict]) -> list[dict]:
    """Ranked hit list, same shape as ``VirtualScreen._ranking``."""
    scored = []
    for rec in jobs.values():
        if rec.get("status") not in ("ok", "cached"):
            continue
        score = _best_score(rec)
        if score is None:
            continue
        scored.append((score, rec))
    scored.sort(key=lambda pair: pair[0])
    return [{"rank": k + 1, "label": rec.get("label", ""),
             "job_id": rec["job_id"], "best_score": score,
             "total_evals": rec["result"]["total_evals"],
             "status": rec["status"]}
            for k, (score, rec) in enumerate(scored)]


# ---------------------------------------------------------------- write

def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def merge(paths: list[Path]) -> dict:
    jobs: dict[str, dict] = {}
    for path in paths:
        jobs.update(load_jobs(path))
    ranking = rank(jobs)
    by_status: dict[str, int] = {}
    for rec in jobs.values():
        status = rec.get("status", "unknown")
        by_status[status] = by_status.get(status, 0) + 1
    return {
        "version": MANIFEST_VERSION,
        "merged_from": [str(p) for p in paths],
        "jobs": jobs,
        "ranking": ranking,
        "stats": {"jobs_total": len(jobs), "by_status": by_status},
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Merge sharded and single-file screen manifests into "
                    "one ranked manifest")
    ap.add_argument("manifests", nargs="+", type=Path,
                    help="sharded manifest dirs and/or manifest.json "
                         "files; later arguments win on job-id collision")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the merged single-file manifest here "
                         "(atomic rename)")
    ap.add_argument("--top", type=int, default=5, metavar="N",
                    help="print the top-N ranked hits (default 5; "
                         "0 silences the table)")
    args = ap.parse_args(argv)

    try:
        doc = merge(args.manifests)
    except MergeError as exc:
        print(f"merge_manifests: {exc}", file=sys.stderr)
        return 1

    stats = doc["stats"]
    print(f"merged {len(args.manifests)} manifest(s): "
          f"{stats['jobs_total']} jobs, {len(doc['ranking'])} ranked "
          f"({stats['by_status']})")
    for rec in doc["ranking"][:max(args.top, 0)]:
        print(f"  #{rec['rank']:<3d} {rec['label']:<24s} "
              f"{rec['best_score']:10.4f}  [{rec['status']}]")
    if args.out is not None:
        _atomic_write_json(args.out, doc)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
