#!/usr/bin/env python
"""Validate a ``bench_hot_path`` JSON file and gate on regressions.

CI's bench-smoke job runs ``benchmarks/bench_hot_path.py --smoke`` on the
PR checkout and pipes the fresh file through this checker together with
the committed baseline (``BENCH_hot_path.json`` at the repository root)::

    python tools/check_bench.py BENCH_hot_path.json \
        --fresh fresh.json --tolerance 0.30

Three gates:

* **schema** — every file must carry the ``bench-hot-path/v2`` layout:
  machine calibration, per-backend throughput records with positive
  evals/s and a per-stage breakdown, plus cohort sweep sections
  (``cohort_smoke`` / ``cohort`` / ``cohort_mixed``) whose per-size
  records carry positive throughput and a ``pad_ratio`` in ``[0, 1)``;
* **regression** — for every backend present in both files' smoke
  sections, and every cohort size present in both files' cohort-smoke
  sweeps, the fresh *machine-normalised* throughput (evals/s scaled by
  the machine's ``numpy_ref_s`` calibration time, i.e. evals per
  calibration-unit) must be within ``--tolerance`` of the committed
  baseline.  Absolute evals/s is machine-dependent; the calibration
  workload makes a laptop's file comparable to a CI runner's;
* **cohort speedup** — a file carrying both a ``screen`` single-ligand
  measurement and a ``cohort`` sweep with size 16 must show the cohort
  at >= ``--cohort-min-speedup`` (default 2.0) times the single-ligand
  baseline-backend throughput — the multi-ligand engine's reason to
  exist.  Both sides run the *same* screening configuration (few runs
  per ligand, the workload the cohort engine widens) on the same
  machine in the same run, so the ratio needs no normalisation.

The checker also validates ``bench-gateway/v1`` files
(``BENCH_gateway.json`` from ``benchmarks/bench_gateway_latency.py``) —
dispatched on the file's ``schema`` field: shape table and calibration
traces well-formed, the runtime predictor's p50 relative error within
``--max-p50-err`` (default 0.30, the serving acceptance gate), latency
quantiles ordered, and (with ``--fresh``) machine-normalised p50
submit→result latency within tolerance of the committed baseline.

``bench-store-io/v1`` files (``BENCH_store_io.json`` from
``benchmarks/bench_store_io.py``) get their own gates: a warm
store-backed screen must show zero ``parse.*`` / ``grid.build`` spans
(with the cold run showing the contrast), the sharded warm manifest must
merge to the single-file ranking, sharded appends must beat full-rewrite
per completion by ``--manifest-min-speedup``, and (with ``--fresh``)
pack/read/append/screen rates are compared machine-normalised.

Pure stdlib, so it runs before any project dependency is importable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "bench-hot-path/v2"
GATEWAY_SCHEMA = "bench-gateway/v1"
STORE_SCHEMA = "bench-store-io/v1"

#: span names that must not fire on a warm store-backed worker
_WARM_FORBIDDEN_SPANS = ("parse.ligand", "parse.maps", "grid.build")

_SHAPE_KEYS = ("n_atoms", "n_rot", "n_rotlist", "n_intra", "n_genes")

_STAGE_KEYS = ("score_s", "ga_s", "ls_s", "reduce4_s")
_COHORT_SECTIONS = ("cohort_smoke", "cohort", "cohort_mixed")
#: gated cohort width of the speedup acceptance check
_GATE_SIZE = "16"


class BenchError(Exception):
    pass


def _fail(path: str, msg: str) -> None:
    raise BenchError(f"{path}: {msg}")


def load(path: str) -> dict:
    try:
        doc = json.loads(Path(path).read_text())
    except FileNotFoundError:
        _fail(path, "no such file")
    except json.JSONDecodeError as exc:
        _fail(path, f"not valid JSON: {exc}")
    if not isinstance(doc, dict):
        _fail(path, "top level must be an object")
    return doc


def validate(path: str, doc: dict) -> None:
    if doc.get("schema") != SCHEMA:
        _fail(path, f"schema {doc.get('schema')!r} != {SCHEMA!r}")

    machine = doc.get("machine")
    if not isinstance(machine, dict):
        _fail(path, "missing 'machine' section")
    ref_s = machine.get("numpy_ref_s")
    if not isinstance(ref_s, (int, float)) or ref_s <= 0:
        _fail(path, f"machine.numpy_ref_s must be positive, got {ref_s!r}")

    sections = [s for s in ("smoke", "reference", "screen")
                if doc.get(s) is not None]
    if not any(s in ("smoke", "reference") for s in sections):
        _fail(path, "needs at least one of 'smoke' / 'reference'")
    for sname in sections:
        section = doc[sname]
        for key in ("case", "n_runs", "seed", "lga", "backends"):
            if key not in section:
                _fail(path, f"{sname}: missing {key!r}")
        backends = section["backends"]
        if not isinstance(backends, dict) or not backends:
            _fail(path, f"{sname}: 'backends' must be a non-empty object")
        for bname, rec in backends.items():
            where = f"{sname}.backends.{bname}"
            for key in ("wall_s", "total_evals", "evals_per_s"):
                v = rec.get(key)
                if not isinstance(v, (int, float)) or v <= 0:
                    _fail(path, f"{where}: {key} must be positive, "
                                f"got {v!r}")
            stages = rec.get("stages")
            if not isinstance(stages, dict):
                _fail(path, f"{where}: missing 'stages' breakdown")
            unknown = set(stages) - set(_STAGE_KEYS)
            if unknown:
                _fail(path, f"{where}: unknown stage keys {sorted(unknown)}")
            for key, v in stages.items():
                if v is not None and (not isinstance(v, (int, float))
                                      or v < 0):
                    _fail(path, f"{where}: stage {key} must be null or "
                                f">= 0, got {v!r}")

    for sname in _COHORT_SECTIONS:
        section = doc.get(sname)
        if section is None:
            continue
        for key in ("case", "n_runs", "seed", "lga", "backend", "sizes"):
            if key not in section:
                _fail(path, f"{sname}: missing {key!r}")
        sizes = section["sizes"]
        if not isinstance(sizes, dict) or not sizes:
            _fail(path, f"{sname}: 'sizes' must be a non-empty object")
        for size, rec in sizes.items():
            where = f"{sname}.sizes.{size}"
            if not str(size).isdigit() or int(size) < 1:
                _fail(path, f"{sname}: size key {size!r} must be a "
                            f"positive integer")
            for key in ("cohort", "wall_s", "total_evals", "evals_per_s"):
                v = rec.get(key)
                if not isinstance(v, (int, float)) or v <= 0:
                    _fail(path, f"{where}: {key} must be positive, "
                                f"got {v!r}")
            pad = rec.get("pad_ratio")
            if (not isinstance(pad, (int, float))
                    or not 0.0 <= pad < 1.0):
                _fail(path, f"{where}: pad_ratio must be in [0, 1), "
                            f"got {pad!r}")


def validate_gateway(path: str, doc: dict) -> None:
    """Schema gate of a ``bench-gateway/v1`` file."""
    machine = doc.get("machine")
    if not isinstance(machine, dict):
        _fail(path, "missing 'machine' section")
    ref_s = machine.get("numpy_ref_s")
    if not isinstance(ref_s, (int, float)) or ref_s <= 0:
        _fail(path, f"machine.numpy_ref_s must be positive, got {ref_s!r}")

    shapes = doc.get("shapes")
    if not isinstance(shapes, dict) or not shapes:
        _fail(path, "'shapes' must be a non-empty object")
    for name, shape in shapes.items():
        if not isinstance(shape, dict):
            _fail(path, f"shapes.{name}: must be an object")
        for key in _SHAPE_KEYS:
            v = shape.get(key)
            if not isinstance(v, int) or v < 0:
                _fail(path, f"shapes.{name}: {key} must be a "
                            f"non-negative integer, got {v!r}")
        if shape["n_atoms"] < 1 or shape["n_genes"] < 6:
            _fail(path, f"shapes.{name}: implausible shape {shape!r}")

    cal = doc.get("calibration")
    if not isinstance(cal, dict):
        _fail(path, "missing 'calibration' section")
    entries = cal.get("entries")
    if not isinstance(entries, list) or len(entries) < 3:
        _fail(path, "calibration.entries needs >= 3 measured traces")
    for i, rec in enumerate(entries):
        where = f"calibration.entries[{i}]"
        if rec.get("case") not in shapes:
            _fail(path, f"{where}: case {rec.get('case')!r} has no "
                        f"entry in 'shapes'")
        if not isinstance(rec.get("backend"), str) or not rec["backend"]:
            _fail(path, f"{where}: missing backend")
        for key in ("wall_s", "total_evals"):
            v = rec.get(key)
            if not isinstance(v, (int, float)) or v <= 0:
                _fail(path, f"{where}: {key} must be positive, got {v!r}")
    fit = cal.get("fit")
    if not isinstance(fit, dict):
        _fail(path, "missing calibration.fit")
    for key in ("coeff_a", "coeff_b"):
        v = fit.get(key)
        if not isinstance(v, (int, float)) or v < 0:
            _fail(path, f"calibration.fit.{key} must be >= 0, got {v!r}")
    acc = cal.get("accuracy")
    if not isinstance(acc, dict):
        _fail(path, "missing calibration.accuracy")
    for key in ("p50_rel_err", "p90_rel_err"):
        v = acc.get(key)
        if not isinstance(v, (int, float)) or v < 0:
            _fail(path, f"calibration.accuracy.{key} must be >= 0, "
                        f"got {v!r}")

    lat = doc.get("latency")
    if not isinstance(lat, dict):
        _fail(path, "missing 'latency' section")
    n_shards = lat.get("n_shards")
    if not isinstance(n_shards, int) or n_shards < 1:
        _fail(path, f"latency.n_shards must be >= 1, got {n_shards!r}")
    used = lat.get("shards_used")
    if not isinstance(used, list) or len(used) < min(2, n_shards):
        _fail(path, f"latency.shards_used must cover >= "
                    f"{min(2, n_shards)} shards, got {used!r}")
    epj = lat.get("evals_per_job")
    if not isinstance(epj, (int, float)) or epj <= 0:
        _fail(path, f"latency.evals_per_job must be positive, got {epj!r}")
    quant = lat.get("submit_to_result_s")
    if not isinstance(quant, dict):
        _fail(path, "missing latency.submit_to_result_s")
    for key in ("p50", "p90", "p99", "mean", "max"):
        v = quant.get(key)
        if not isinstance(v, (int, float)) or v <= 0:
            _fail(path, f"latency.submit_to_result_s.{key} must be "
                        f"positive, got {v!r}")
    if not quant["p50"] <= quant["p90"] <= quant["p99"] <= quant["max"]:
        _fail(path, f"latency quantiles out of order: {quant!r}")


def gateway_gate(path: str, doc: dict, max_p50_err: float) -> list[str]:
    """Predictor-accuracy acceptance gate of a gateway bench file."""
    acc = doc["calibration"]["accuracy"]
    err = acc["p50_rel_err"]
    status = "OK" if err <= max_p50_err else "TOO INACCURATE"
    print(f"  predictor p50 rel err {err:.1%} over {acc.get('n', '?')} "
          f"traces (need <= {max_p50_err:.0%})  {status}")
    if status != "OK":
        return [f"{path}: predictor p50 relative error {err:.1%} exceeds "
                f"the {max_p50_err:.0%} acceptance gate"]
    return []


def compare_gateway(baseline: dict, fresh: dict,
                    tolerance: float) -> list[str]:
    """Machine-normalised per-eval p50 latency regression check.

    Latency scales with machine slowness and per-job budget, so the
    comparable number is ``p50 / (numpy_ref_s x evals_per_job)`` —
    calibration units per eval of submit→result time.
    """
    def per_eval(doc: dict) -> float:
        lat = doc["latency"]
        return (lat["submit_to_result_s"]["p50"]
                / (doc["machine"]["numpy_ref_s"] * lat["evals_per_job"]))

    base_n, fresh_n = per_eval(baseline), per_eval(fresh)
    ratio = fresh_n / base_n
    status = "OK" if ratio <= 1.0 + tolerance else "REGRESSION"
    print(f"  p50 latency/eval normalised {fresh_n:8.3f} vs "
          f"baseline {base_n:8.3f}  ({ratio:5.2f}x)  {status}")
    if status != "OK":
        return [f"latency: machine-normalised p50 submit→result rose to "
                f"{ratio:.2f}x of baseline "
                f"(tolerance {1.0 + tolerance:.2f}x)"]
    return []


def validate_store(path: str, doc: dict) -> None:
    """Schema gate of a ``bench-store-io/v1`` file."""
    machine = doc.get("machine")
    if not isinstance(machine, dict):
        _fail(path, "missing 'machine' section")
    ref_s = machine.get("numpy_ref_s")
    if not isinstance(ref_s, (int, float)) or ref_s <= 0:
        _fail(path, f"machine.numpy_ref_s must be positive, got {ref_s!r}")

    pack = doc.get("pack")
    if not isinstance(pack, dict):
        _fail(path, "missing 'pack' section")
    if not isinstance(pack.get("n_ligands"), int) or pack["n_ligands"] < 1:
        _fail(path, f"pack.n_ligands must be a positive integer, "
                    f"got {pack.get('n_ligands')!r}")
    for key in ("pack_s", "pack_ligands_per_s", "read_s",
                "read_ligands_per_s", "pack_bytes", "bytes_per_ligand"):
        v = pack.get(key)
        if not isinstance(v, (int, float)) or v <= 0:
            _fail(path, f"pack.{key} must be positive, got {v!r}")

    man = doc.get("manifest")
    if not isinstance(man, dict):
        _fail(path, "missing 'manifest' section")
    if not isinstance(man.get("n_jobs"), int) or man["n_jobs"] < 1:
        _fail(path, f"manifest.n_jobs must be a positive integer, "
                    f"got {man.get('n_jobs')!r}")
    if not isinstance(man.get("n_shards"), int) or man["n_shards"] < 1:
        _fail(path, f"manifest.n_shards must be >= 1, "
                    f"got {man.get('n_shards')!r}")
    for key in ("sharded_append_s", "sharded_s_per_job",
                "sharded_jobs_per_s", "single_s_per_job",
                "append_vs_rewrite_speedup"):
        v = man.get(key)
        if not isinstance(v, (int, float)) or v <= 0:
            _fail(path, f"manifest.{key} must be positive, got {v!r}")

    store = doc.get("store")
    if not isinstance(store, dict):
        _fail(path, "missing 'store' section")
    for key in ("cold_load_s", "warm_load_s", "speedup", "grid_bytes"):
        v = store.get(key)
        if not isinstance(v, (int, float)) or v <= 0:
            _fail(path, f"store.{key} must be positive, got {v!r}")

    screen = doc.get("screen")
    if not isinstance(screen, dict):
        _fail(path, "missing 'screen' section")
    if not isinstance(screen.get("rankings_identical"), bool):
        _fail(path, "screen.rankings_identical must be a boolean")
    for sname in ("cold", "warm"):
        section = screen.get(sname)
        if not isinstance(section, dict):
            _fail(path, f"missing screen.{sname} section")
        for key in ("wall_s", "jobs_per_s"):
            v = section.get(key)
            if not isinstance(v, (int, float)) or v <= 0:
                _fail(path, f"screen.{sname}.{key} must be positive, "
                            f"got {v!r}")
        spans = section.get("spans")
        if not isinstance(spans, dict):
            _fail(path, f"missing screen.{sname}.spans")
        for name in _WARM_FORBIDDEN_SPANS:
            v = spans.get(name)
            if not isinstance(v, int) or v < 0:
                _fail(path, f"screen.{sname}.spans.{name} must be a "
                            f"non-negative integer, got {v!r}")


def store_gate(path: str, doc: dict, min_speedup: float) -> list[str]:
    """Acceptance gates of a store bench file.

    * a warm store-backed screen must never re-parse inputs or rebuild
      grids (the disk tier's reason to exist);
    * the cold screen must show the contrast (``grid.build`` fired), or
      the trace plumbing silently broke and the zero above means
      nothing;
    * the sharded warm manifest must merge to the same ranking as the
      single-file path;
    * sharded appends must beat full-document rewrites per completion.
    """
    problems = []
    screen = doc["screen"]
    warm = screen["warm"]["spans"]
    hot = {k: v for k, v in warm.items()
           if k in _WARM_FORBIDDEN_SPANS and v}
    status = "OK" if not hot else "NOT WARM"
    print(f"  warm screen spans {warm}  {status}")
    if hot:
        problems.append(f"{path}: warm screen fired cold-path spans "
                        f"{hot} (must all be zero)")
    if not any(screen["cold"]["spans"].get(name, 0)
               for name in _WARM_FORBIDDEN_SPANS):
        problems.append(f"{path}: cold screen fired none of "
                        f"{list(_WARM_FORBIDDEN_SPANS)} — trace counting "
                        f"is broken, the warm zeros prove nothing")
    if not screen["rankings_identical"]:
        problems.append(f"{path}: sharded-manifest ranking differs from "
                        f"the single-file ranking")
    speedup = doc["manifest"]["append_vs_rewrite_speedup"]
    status = "OK" if speedup >= min_speedup else "TOO SLOW"
    print(f"  manifest append-vs-rewrite speedup {speedup:6.1f}x "
          f"(need >= {min_speedup:.1f}x)  {status}")
    if status != "OK":
        problems.append(
            f"{path}: sharded append is only {speedup:.2f}x faster than "
            f"a full rewrite per job (need >= {min_speedup:.1f}x)")
    return problems


def compare_store(baseline: dict, fresh: dict,
                  tolerance: float) -> list[str]:
    """Machine-normalised regression check of the store throughputs.

    Rates scale inversely with machine slowness, so the comparable
    number is ``rate x numpy_ref_s`` — work units per calibration unit.
    """
    metrics = (("pack lig/s", lambda d: d["pack"]["pack_ligands_per_s"]),
               ("read lig/s", lambda d: d["pack"]["read_ligands_per_s"]),
               ("append/s", lambda d: d["manifest"]["sharded_jobs_per_s"]),
               ("warm jobs/s",
                lambda d: d["screen"]["warm"]["jobs_per_s"]))
    problems = []
    for label, get in metrics:
        base_n = get(baseline) * baseline["machine"]["numpy_ref_s"]
        fresh_n = get(fresh) * fresh["machine"]["numpy_ref_s"]
        ratio = fresh_n / base_n
        status = "OK" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(f"  {label:12s} normalised {fresh_n:10.1f} vs "
              f"baseline {base_n:10.1f}  ({ratio:5.2f}x)  {status}")
        if status != "OK":
            problems.append(
                f"{label}: machine-normalised rate fell to {ratio:.2f}x "
                f"of baseline (tolerance {1.0 - tolerance:.2f}x)")
    return problems


def _store_main(args: argparse.Namespace, baseline: dict) -> int:
    """``bench-store-io/v1`` branch of :func:`main` (schema-dispatched)."""
    try:
        validate_store(args.baseline, baseline)
        fresh = None
        if args.fresh:
            fresh = load(args.fresh)
            if fresh.get("schema") != STORE_SCHEMA:
                _fail(args.fresh, f"schema {fresh.get('schema')!r} != "
                                  f"{STORE_SCHEMA!r} (baseline is a "
                                  f"store file)")
            validate_store(args.fresh, fresh)
    except BenchError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    print(f"OK: {args.baseline}: schema {STORE_SCHEMA} valid")
    problems = store_gate(args.baseline, baseline,
                          args.manifest_min_speedup)
    if fresh is not None:
        print(f"OK: {args.fresh}: schema {STORE_SCHEMA} valid")
        problems += store_gate(args.fresh, fresh,
                               args.manifest_min_speedup)
        problems += compare_store(baseline, fresh, args.tolerance)
    if problems:
        for msg in problems:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    if fresh is not None:
        print(f"OK: no regression beyond {args.tolerance:.0%} tolerance")
    return 0


def normalised(doc: dict, section: str) -> dict[str, float]:
    """Machine-normalised throughput per backend: evals per calibration
    unit (evals/s x numpy_ref_s)."""
    ref_s = doc["machine"]["numpy_ref_s"]
    return {b: rec["evals_per_s"] * ref_s
            for b, rec in doc[section]["backends"].items()}


def compare(baseline: dict, fresh: dict, tolerance: float,
            section: str = "smoke") -> list[str]:
    if baseline.get(section) is None:
        return [f"baseline has no {section!r} section to compare against"]
    if fresh.get(section) is None:
        return [f"fresh file has no {section!r} section"]
    base_n = normalised(baseline, section)
    fresh_n = normalised(fresh, section)
    problems = []
    for backend in sorted(set(base_n) & set(fresh_n)):
        ratio = fresh_n[backend] / base_n[backend]
        status = "OK" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(f"  {backend:14s} normalised {fresh_n[backend]:8.1f} vs "
              f"baseline {base_n[backend]:8.1f}  ({ratio:5.2f}x)  {status}")
        if status != "OK":
            problems.append(
                f"{section}/{backend}: machine-normalised evals/s fell to "
                f"{ratio:.2f}x of baseline (tolerance {1.0 - tolerance:.2f}x)")
    if not set(base_n) & set(fresh_n):
        problems.append(f"no common backends in {section!r} sections")
    return problems


def compare_cohort(baseline: dict, fresh: dict, tolerance: float,
                   section: str = "cohort_smoke") -> list[str]:
    """Per-size machine-normalised regression check of a cohort sweep."""
    if baseline.get(section) is None or fresh.get(section) is None:
        return []          # sweep absent on one side: nothing to gate
    base_ref = baseline["machine"]["numpy_ref_s"]
    fresh_ref = fresh["machine"]["numpy_ref_s"]
    base_sizes = baseline[section]["sizes"]
    fresh_sizes = fresh[section]["sizes"]
    problems = []
    common = sorted(set(base_sizes) & set(fresh_sizes), key=int)
    for size in common:
        base_n = base_sizes[size]["evals_per_s"] * base_ref
        fresh_n = fresh_sizes[size]["evals_per_s"] * fresh_ref
        ratio = fresh_n / base_n
        status = "OK" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(f"  cohort {size:>3s}    normalised {fresh_n:8.1f} vs "
              f"baseline {base_n:8.1f}  ({ratio:5.2f}x)  {status}")
        if status != "OK":
            problems.append(
                f"{section}/size {size}: machine-normalised evals/s fell "
                f"to {ratio:.2f}x of baseline "
                f"(tolerance {1.0 - tolerance:.2f}x)")
    if not common:
        problems.append(f"no common sizes in {section!r} sweeps")
    return problems


def cohort_gate(path: str, doc: dict, min_speedup: float) -> list[str]:
    """Within-file speedup gate: cohort 16 vs the single-ligand path at
    the same screening configuration (the ``screen`` section).

    Only applies when the file carries both measurements (full reference
    runs); smoke files pass vacuously.
    """
    ref = doc.get("screen")
    sweep = doc.get("cohort")
    if ref is None or sweep is None:
        return []
    single = ref["backends"].get("baseline")
    rec = sweep["sizes"].get(_GATE_SIZE)
    if single is None or rec is None:
        return []
    ratio = rec["evals_per_s"] / single["evals_per_s"]
    status = "OK" if ratio >= min_speedup else "TOO SLOW"
    print(f"  cohort {_GATE_SIZE} speedup: {rec['evals_per_s']:.0f} vs "
          f"single {single['evals_per_s']:.0f} evals/s "
          f"({ratio:.2f}x, need >= {min_speedup:.1f}x)  {status}")
    if status != "OK":
        return [f"{path}: cohort {_GATE_SIZE} is only {ratio:.2f}x the "
                f"single-ligand baseline (need >= {min_speedup:.1f}x)"]
    return []


def _gateway_main(args: argparse.Namespace, baseline: dict) -> int:
    """``bench-gateway/v1`` branch of :func:`main` (schema-dispatched)."""
    try:
        validate_gateway(args.baseline, baseline)
        fresh = None
        if args.fresh:
            fresh = load(args.fresh)
            if fresh.get("schema") != GATEWAY_SCHEMA:
                _fail(args.fresh, f"schema {fresh.get('schema')!r} != "
                                  f"{GATEWAY_SCHEMA!r} (baseline is a "
                                  f"gateway file)")
            validate_gateway(args.fresh, fresh)
    except BenchError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    print(f"OK: {args.baseline}: schema {GATEWAY_SCHEMA} valid")
    problems = gateway_gate(args.baseline, baseline, args.max_p50_err)
    if fresh is not None:
        print(f"OK: {args.fresh}: schema {GATEWAY_SCHEMA} valid")
        problems += gateway_gate(args.fresh, fresh, args.max_p50_err)
        problems += compare_gateway(baseline, fresh, args.tolerance)
    if problems:
        for msg in problems:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    if fresh is not None:
        print(f"OK: no regression beyond {args.tolerance:.0%} tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("baseline", help="committed BENCH_hot_path.json")
    p.add_argument("--fresh", default=None,
                   help="freshly measured file to compare (smoke section); "
                        "omitted = schema validation only")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="allowed fractional throughput drop (default 0.30)")
    p.add_argument("--section", default="smoke",
                   choices=("smoke", "reference"),
                   help="which section to regression-compare")
    p.add_argument("--cohort-min-speedup", type=float, default=2.0,
                   help="required cohort-16 speedup over the "
                        "single-ligand baseline backend (files carrying "
                        "both measurements; default 2.0)")
    p.add_argument("--max-p50-err", type=float, default=0.30,
                   help="gateway files: max allowed predictor p50 "
                        "relative error (default 0.30)")
    p.add_argument("--manifest-min-speedup", type=float, default=2.0,
                   help="store files: required sharded-append speedup "
                        "over single-file rewrite per job (default 2.0)")
    args = p.parse_args(argv)

    try:
        baseline = load(args.baseline)
        if baseline.get("schema") == GATEWAY_SCHEMA:
            return _gateway_main(args, baseline)
        if baseline.get("schema") == STORE_SCHEMA:
            return _store_main(args, baseline)
        validate(args.baseline, baseline)
        fresh = None
        if args.fresh:
            fresh = load(args.fresh)
            validate(args.fresh, fresh)
    except BenchError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    print(f"OK: {args.baseline}: schema {SCHEMA} valid")
    problems = cohort_gate(args.baseline, baseline,
                           args.cohort_min_speedup)
    if fresh is not None:
        print(f"OK: {args.fresh}: schema {SCHEMA} valid")
        problems += cohort_gate(args.fresh, fresh,
                                args.cohort_min_speedup)
        problems += compare(baseline, fresh, args.tolerance, args.section)
        if (baseline.get("screen") is not None
                and fresh.get("screen") is not None):
            problems += compare(baseline, fresh, args.tolerance, "screen")
        problems += compare_cohort(baseline, fresh, args.tolerance)
    if problems:
        for msg in problems:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    if fresh is not None:
        print(f"OK: no regression beyond {args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
