#!/usr/bin/env python
"""Validate a ``bench_hot_path`` JSON file and gate on regressions.

CI's bench-smoke job runs ``benchmarks/bench_hot_path.py --smoke`` on the
PR checkout and pipes the fresh file through this checker together with
the committed baseline (``BENCH_hot_path.json`` at the repository root)::

    python tools/check_bench.py BENCH_hot_path.json \
        --fresh fresh.json --tolerance 0.30

Three gates:

* **schema** — every file must carry the ``bench-hot-path/v2`` layout:
  machine calibration, per-backend throughput records with positive
  evals/s and a per-stage breakdown, plus cohort sweep sections
  (``cohort_smoke`` / ``cohort`` / ``cohort_mixed``) whose per-size
  records carry positive throughput and a ``pad_ratio`` in ``[0, 1)``;
* **regression** — for every backend present in both files' smoke
  sections, and every cohort size present in both files' cohort-smoke
  sweeps, the fresh *machine-normalised* throughput (evals/s scaled by
  the machine's ``numpy_ref_s`` calibration time, i.e. evals per
  calibration-unit) must be within ``--tolerance`` of the committed
  baseline.  Absolute evals/s is machine-dependent; the calibration
  workload makes a laptop's file comparable to a CI runner's;
* **cohort speedup** — a file carrying both a ``screen`` single-ligand
  measurement and a ``cohort`` sweep with size 16 must show the cohort
  at >= ``--cohort-min-speedup`` (default 2.0) times the single-ligand
  baseline-backend throughput — the multi-ligand engine's reason to
  exist.  Both sides run the *same* screening configuration (few runs
  per ligand, the workload the cohort engine widens) on the same
  machine in the same run, so the ratio needs no normalisation.

Pure stdlib, so it runs before any project dependency is importable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "bench-hot-path/v2"

_STAGE_KEYS = ("score_s", "ga_s", "ls_s", "reduce4_s")
_COHORT_SECTIONS = ("cohort_smoke", "cohort", "cohort_mixed")
#: gated cohort width of the speedup acceptance check
_GATE_SIZE = "16"


class BenchError(Exception):
    pass


def _fail(path: str, msg: str) -> None:
    raise BenchError(f"{path}: {msg}")


def load(path: str) -> dict:
    try:
        doc = json.loads(Path(path).read_text())
    except FileNotFoundError:
        _fail(path, "no such file")
    except json.JSONDecodeError as exc:
        _fail(path, f"not valid JSON: {exc}")
    if not isinstance(doc, dict):
        _fail(path, "top level must be an object")
    return doc


def validate(path: str, doc: dict) -> None:
    if doc.get("schema") != SCHEMA:
        _fail(path, f"schema {doc.get('schema')!r} != {SCHEMA!r}")

    machine = doc.get("machine")
    if not isinstance(machine, dict):
        _fail(path, "missing 'machine' section")
    ref_s = machine.get("numpy_ref_s")
    if not isinstance(ref_s, (int, float)) or ref_s <= 0:
        _fail(path, f"machine.numpy_ref_s must be positive, got {ref_s!r}")

    sections = [s for s in ("smoke", "reference", "screen")
                if doc.get(s) is not None]
    if not any(s in ("smoke", "reference") for s in sections):
        _fail(path, "needs at least one of 'smoke' / 'reference'")
    for sname in sections:
        section = doc[sname]
        for key in ("case", "n_runs", "seed", "lga", "backends"):
            if key not in section:
                _fail(path, f"{sname}: missing {key!r}")
        backends = section["backends"]
        if not isinstance(backends, dict) or not backends:
            _fail(path, f"{sname}: 'backends' must be a non-empty object")
        for bname, rec in backends.items():
            where = f"{sname}.backends.{bname}"
            for key in ("wall_s", "total_evals", "evals_per_s"):
                v = rec.get(key)
                if not isinstance(v, (int, float)) or v <= 0:
                    _fail(path, f"{where}: {key} must be positive, "
                                f"got {v!r}")
            stages = rec.get("stages")
            if not isinstance(stages, dict):
                _fail(path, f"{where}: missing 'stages' breakdown")
            unknown = set(stages) - set(_STAGE_KEYS)
            if unknown:
                _fail(path, f"{where}: unknown stage keys {sorted(unknown)}")
            for key, v in stages.items():
                if v is not None and (not isinstance(v, (int, float))
                                      or v < 0):
                    _fail(path, f"{where}: stage {key} must be null or "
                                f">= 0, got {v!r}")

    for sname in _COHORT_SECTIONS:
        section = doc.get(sname)
        if section is None:
            continue
        for key in ("case", "n_runs", "seed", "lga", "backend", "sizes"):
            if key not in section:
                _fail(path, f"{sname}: missing {key!r}")
        sizes = section["sizes"]
        if not isinstance(sizes, dict) or not sizes:
            _fail(path, f"{sname}: 'sizes' must be a non-empty object")
        for size, rec in sizes.items():
            where = f"{sname}.sizes.{size}"
            if not str(size).isdigit() or int(size) < 1:
                _fail(path, f"{sname}: size key {size!r} must be a "
                            f"positive integer")
            for key in ("cohort", "wall_s", "total_evals", "evals_per_s"):
                v = rec.get(key)
                if not isinstance(v, (int, float)) or v <= 0:
                    _fail(path, f"{where}: {key} must be positive, "
                                f"got {v!r}")
            pad = rec.get("pad_ratio")
            if (not isinstance(pad, (int, float))
                    or not 0.0 <= pad < 1.0):
                _fail(path, f"{where}: pad_ratio must be in [0, 1), "
                            f"got {pad!r}")


def normalised(doc: dict, section: str) -> dict[str, float]:
    """Machine-normalised throughput per backend: evals per calibration
    unit (evals/s x numpy_ref_s)."""
    ref_s = doc["machine"]["numpy_ref_s"]
    return {b: rec["evals_per_s"] * ref_s
            for b, rec in doc[section]["backends"].items()}


def compare(baseline: dict, fresh: dict, tolerance: float,
            section: str = "smoke") -> list[str]:
    if baseline.get(section) is None:
        return [f"baseline has no {section!r} section to compare against"]
    if fresh.get(section) is None:
        return [f"fresh file has no {section!r} section"]
    base_n = normalised(baseline, section)
    fresh_n = normalised(fresh, section)
    problems = []
    for backend in sorted(set(base_n) & set(fresh_n)):
        ratio = fresh_n[backend] / base_n[backend]
        status = "OK" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(f"  {backend:14s} normalised {fresh_n[backend]:8.1f} vs "
              f"baseline {base_n[backend]:8.1f}  ({ratio:5.2f}x)  {status}")
        if status != "OK":
            problems.append(
                f"{section}/{backend}: machine-normalised evals/s fell to "
                f"{ratio:.2f}x of baseline (tolerance {1.0 - tolerance:.2f}x)")
    if not set(base_n) & set(fresh_n):
        problems.append(f"no common backends in {section!r} sections")
    return problems


def compare_cohort(baseline: dict, fresh: dict, tolerance: float,
                   section: str = "cohort_smoke") -> list[str]:
    """Per-size machine-normalised regression check of a cohort sweep."""
    if baseline.get(section) is None or fresh.get(section) is None:
        return []          # sweep absent on one side: nothing to gate
    base_ref = baseline["machine"]["numpy_ref_s"]
    fresh_ref = fresh["machine"]["numpy_ref_s"]
    base_sizes = baseline[section]["sizes"]
    fresh_sizes = fresh[section]["sizes"]
    problems = []
    common = sorted(set(base_sizes) & set(fresh_sizes), key=int)
    for size in common:
        base_n = base_sizes[size]["evals_per_s"] * base_ref
        fresh_n = fresh_sizes[size]["evals_per_s"] * fresh_ref
        ratio = fresh_n / base_n
        status = "OK" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(f"  cohort {size:>3s}    normalised {fresh_n:8.1f} vs "
              f"baseline {base_n:8.1f}  ({ratio:5.2f}x)  {status}")
        if status != "OK":
            problems.append(
                f"{section}/size {size}: machine-normalised evals/s fell "
                f"to {ratio:.2f}x of baseline "
                f"(tolerance {1.0 - tolerance:.2f}x)")
    if not common:
        problems.append(f"no common sizes in {section!r} sweeps")
    return problems


def cohort_gate(path: str, doc: dict, min_speedup: float) -> list[str]:
    """Within-file speedup gate: cohort 16 vs the single-ligand path at
    the same screening configuration (the ``screen`` section).

    Only applies when the file carries both measurements (full reference
    runs); smoke files pass vacuously.
    """
    ref = doc.get("screen")
    sweep = doc.get("cohort")
    if ref is None or sweep is None:
        return []
    single = ref["backends"].get("baseline")
    rec = sweep["sizes"].get(_GATE_SIZE)
    if single is None or rec is None:
        return []
    ratio = rec["evals_per_s"] / single["evals_per_s"]
    status = "OK" if ratio >= min_speedup else "TOO SLOW"
    print(f"  cohort {_GATE_SIZE} speedup: {rec['evals_per_s']:.0f} vs "
          f"single {single['evals_per_s']:.0f} evals/s "
          f"({ratio:.2f}x, need >= {min_speedup:.1f}x)  {status}")
    if status != "OK":
        return [f"{path}: cohort {_GATE_SIZE} is only {ratio:.2f}x the "
                f"single-ligand baseline (need >= {min_speedup:.1f}x)"]
    return []


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("baseline", help="committed BENCH_hot_path.json")
    p.add_argument("--fresh", default=None,
                   help="freshly measured file to compare (smoke section); "
                        "omitted = schema validation only")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="allowed fractional throughput drop (default 0.30)")
    p.add_argument("--section", default="smoke",
                   choices=("smoke", "reference"),
                   help="which section to regression-compare")
    p.add_argument("--cohort-min-speedup", type=float, default=2.0,
                   help="required cohort-16 speedup over the "
                        "single-ligand baseline backend (files carrying "
                        "both measurements; default 2.0)")
    args = p.parse_args(argv)

    try:
        baseline = load(args.baseline)
        validate(args.baseline, baseline)
        fresh = None
        if args.fresh:
            fresh = load(args.fresh)
            validate(args.fresh, fresh)
    except BenchError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    print(f"OK: {args.baseline}: schema {SCHEMA} valid")
    problems = cohort_gate(args.baseline, baseline,
                           args.cohort_min_speedup)
    if fresh is not None:
        print(f"OK: {args.fresh}: schema {SCHEMA} valid")
        problems += cohort_gate(args.fresh, fresh,
                                args.cohort_min_speedup)
        problems += compare(baseline, fresh, args.tolerance, args.section)
        if (baseline.get("screen") is not None
                and fresh.get("screen") is not None):
            problems += compare(baseline, fresh, args.tolerance, "screen")
        problems += compare_cohort(baseline, fresh, args.tolerance)
    if problems:
        for msg in problems:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    if fresh is not None:
        print(f"OK: no regression beyond {args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
