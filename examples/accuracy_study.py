#!/usr/bin/env python3
"""Mini accuracy study: how the reduction back-end changes search quality.

A scaled-down version of the paper's Section 4 analysis: run the same LGA
search (same seeds) under the three reduction back-ends and compare
success rates and E50 estimates for both criteria on one medium case.

Run:  python examples/accuracy_study.py        (~2-3 minutes)
"""

from repro.analysis import estimate_e50, evaluate_run, format_curves, \
    success_curve
from repro.search import LGAConfig, ParallelLGA
from repro.testcases import get_test_case

N_RUNS = 12
CASE = "7cpa"


def main() -> None:
    case = get_test_case(CASE)
    cfg = LGAConfig(pop_size=30, max_evals=12_000, max_gens=300,
                    ls_iters=100, ls_rate=0.15)
    print(f"Case {case.name} (N_rot={case.n_rot}), {N_RUNS} LGA runs, "
          f"budget {cfg.max_evals} evals/run\n")
    print(f"{'backend':>10s} {'score succ':>10s} {'E50 score':>10s} "
          f"{'rmsd succ':>10s} {'E50 rmsd':>10s}")

    curves = {}
    for backend in ("baseline", "tc-fp16", "tcec-tf32"):
        runs = ParallelLGA(case.scoring(), backend, cfg, seed=99).run(N_RUNS)
        outcomes = [evaluate_run(r, case) for r in runs]
        budgets = [r.evals_used for r in runs]
        times_score = [o.first_success_score for o in outcomes]
        curves[backend] = success_curve(times_score, budgets)
        e_s = estimate_e50(times_score, budgets)
        e_r = estimate_e50([o.first_success_rmsd for o in outcomes], budgets)

        def fmt(e):
            return "   (inf)" if e.e50 == float("inf") else f"{e.e50:10.0f}"

        print(f"{backend:>10s} {e_s.n_success:7d}/{N_RUNS:<2d} {fmt(e_s)} "
              f"{e_r.n_success:7d}/{N_RUNS:<2d} {fmt(e_r)}")

    print()
    print(format_curves(curves, title="success probability vs evaluation "
                                      "budget (score criterion)"))
    print()
    print("Expected shape (paper Figures 1 and 3): tc-fp16 needs more")
    print("evaluations than the FP32 baseline; tcec-tf32 matches it.")
    print()
    print(f"Caveat: with only {N_RUNS} runs per back-end at scaled-down")
    print("budgets, single-case E50 carries substantial run-to-run variance")
    print("(back-end trajectories decorrelate chaotically), so individual")
    print("seeds can flip orderings.  The statistically solid comparison is")
    print("benchmarks/bench_fig1_e50_fp16.py's matched-start panel; the")
    print("kernel-level numerics are pinned in tests/test_docking_gradients.py.")


if __name__ == "__main__":
    main()
