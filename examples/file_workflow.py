#!/usr/bin/env python3
"""The paper's artifact-appendix workflow, end to end, on files.

Reproduces Section A.5's command sequence with the file formats the real
AutoDock-GPU consumes: export a receptor's grid maps (`protein.maps.fld` +
per-type `.map` files, AutoGrid format) and the ligand (PDBQT), dock via
the command-line interface, then inspect the `.dlg` exactly as the
appendix does:

    $ grep "Run time" *.dlg
    $ grep "Number of energy evaluations performed" *.dlg

Run:  python examples/file_workflow.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

from repro.cli import main as autodock_main
from repro.io import write_maps, write_pdbqt
from repro.testcases import get_test_case


def main() -> None:
    case = get_test_case("3ce3")
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # 1. "AutoGrid": export receptor maps
        fld = write_maps(case.maps, tmp / "data", stem="protein")
        print(f"wrote {fld}")
        for p in sorted((tmp / "data").glob("*.map"))[:3]:
            print(f"  {p.name}")
        print("  ...")

        # 2. ligand preparation: PDBQT
        lig = tmp / "data" / "rand-0.pdbqt"
        write_pdbqt(case.ligand, lig)
        print(f"wrote {lig}")

        # 3. the appendix invocation (autodock_gpu_64wi equivalent)
        argv = ["-ffile", str(fld), "-lfile", str(lig),
                "-nrun", "4", "-lsmet", "ad", "-A", "0", "-H", "0",
                "--tensor", "tcec-tf32", "--nwi", "64",
                "--evals", "4000", "--pop", "20", "--lsit", "40",
                "-resnam", str(tmp / "ad_3ce3")]
        print("\n$ autodock-py " + " ".join(argv) + "\n")
        rc = autodock_main(argv)
        assert rc == 0

        # 4. inspect the docking log the appendix way
        dlg = tmp / "ad_3ce3.dlg"
        print("\n$ grep 'Run time' *.dlg")
        out = subprocess.run(["grep", "Run time", str(dlg)],
                             capture_output=True, text=True)
        print(out.stdout.strip())
        print("$ grep 'Number of energy evaluations performed' *.dlg")
        out = subprocess.run(
            ["grep", "Number of energy evaluations performed", str(dlg)],
            capture_output=True, text=True)
        print(out.stdout.strip())


if __name__ == "__main__":
    sys.exit(main())
