#!/usr/bin/env python3
"""The matrix-shaped Tensor Core reduction, step by step (Listing 1).

Walks through the Schieffer-Peng algorithm (Equations 1-4) on the
simulated Tensor Core, in both flavours the paper compares:

1. the FP16 WMMA version with the accumulator held in the Tensor Core
   (the paper's Listing 1, bottom) — watch the rounding error grow, and
   the saturation once values exceed FP16 range;
2. the TCEC version (Listing 1, top): TF32 operands, error-corrected
   products, FP32 round-to-nearest accumulation outside the Tensor Core.

Run:  python examples/tensor_core_reduction.py
"""

import numpy as np

from repro.reduction import (
    build_p_matrix,
    build_q_matrix,
    get_reduction_backend,
    pack_vectors,
)
from repro.tensorcore import wmma


def listing1_single_tile(data: np.ndarray) -> np.ndarray:
    """The literal Listing 1 code shape: V = A x P + V on fragments."""
    frag_a = wmma.fragment(wmma.matrix_a, fmt="tf32")
    frag_p = wmma.fragment(wmma.matrix_b, fmt="tf32")
    frag_v = wmma.fragment(wmma.accumulator)
    wmma.load_matrix_sync(frag_a, data, 16, wmma.col_major)
    wmma.fill_fragment(frag_p, 1.0)
    wmma.fill_fragment(frag_v, 0.0)
    wmma.mma_sync(frag_v, frag_a, frag_p, frag_v)
    tmp = np.zeros(256, dtype=np.float32)
    wmma.store_matrix_sync(tmp, frag_v, 16, wmma.mem_col_major)
    return tmp.reshape(16, 16).T


def main() -> None:
    rng = np.random.default_rng(0)

    print("=== Equation (2): the A / P / Q matrices ===")
    vectors = rng.normal(size=(64, 4)).astype(np.float32)
    a = pack_vectors(vectors)[0]
    print(f"A tile (64 {{x,y,z,e}} vectors, column-major): {a.shape}")
    print(f"P = ones{build_p_matrix().shape}, "
          f"Q = 4x4 grid of I_4 -> {build_q_matrix().shape}")

    print("\n=== Listing 1: V = A x P + V on WMMA fragments ===")
    v = listing1_single_tile(a.T.ravel())
    exact_rows = a.astype(np.float64).sum(axis=1)
    print(f"row-sum error after one mma: "
          f"{np.max(np.abs(v[:, 0] - exact_rows)):.2e}")

    print("\n=== Reducing many vectors: error accumulation ===")
    n = 4096
    big = (rng.normal(size=(n, 4)) * 3 + 1.0).astype(np.float32)
    exact = big.astype(np.float64).sum(axis=0)
    for name in ("baseline", "tc-fp16", "tcec-tf32"):
        got = get_reduction_backend(name).reduce4(big[None])[0]
        err = np.abs(got - exact) / np.abs(exact)
        print(f"{name:10s}: sums {np.round(got, 2)}  "
              f"max rel err {np.max(err):.2e}")

    print("\n=== FP16 saturation: the docking failure mode ===")
    spiky = big.copy()
    spiky[:40, 0] = 9_000.0        # clash-like gradient spikes
    exact = spiky.astype(np.float64).sum(axis=0)
    for name in ("tc-fp16", "tcec-tf32"):
        got = get_reduction_backend(name).reduce4(spiky[None])[0]
        print(f"{name:10s}: x-sum = {got[0]:.6g} "
              f"(exact {exact[0]:.6g})")
    print("\nThe FP16 accumulator overflows at 65504 and the sum is lost;")
    print("TCEC's TF32 range and external FP32 accumulation survive —")
    print("this is why the paper's Figure 3 recovers Figure 1's accuracy.")


if __name__ == "__main__":
    main()
