#!/usr/bin/env python3
"""Explore the performance model: devices, block sizes, Amdahl limits.

Prints (i) the Table 4 Amdahl grid, (ii) per-device kernel times and
Tensor Core fractions for the 7cpa workload, and (iii) where the measured
speedup sits relative to the Amdahl bound — the Section 5.1.1 analysis.

Run:  python examples/performance_model.py
"""

from repro.analysis import predicted_speedup, speedup_table
from repro.analysis.amdahl import effective_fraction
from repro.analysis.tables import format_table
from repro.simt import KernelCostModel, list_devices
from repro.testcases import get_test_case


def main() -> None:
    print(format_table(speedup_table(),
                       title="Amdahl grid (Equation 6): predicted speedup"))
    print()

    case = get_test_case("7cpa")
    wl = case.workload(20 * 150)
    rows = []
    for dev in list_devices():
        for block in (64, 128, 256):
            base = KernelCostModel(dev, block, "baseline")
            tcec = KernelCostModel(dev, block, "tcec-tf32")
            tb = base.iteration_seconds(wl) * 300 * 1e3
            tt = tcec.iteration_seconds(wl) * 300 * 1e3
            f_eff = effective_fraction(base.tensor_fraction(wl))
            rows.append({
                "GPU": dev.name, "block": block,
                "base_ms": tb, "tcec_ms": tt,
                "f_eff": round(f_eff, 3),
                "amdahl": predicted_speedup(f_eff, dev.tensor_speedup),
                "measured": tb / tt,
            })
    print(format_table(
        rows, ["GPU", "block", "base_ms", "tcec_ms", "f_eff", "amdahl",
               "measured"],
        title="ADADELTA kernel (7cpa, 300 iterations): model vs Amdahl"))
    print()
    print("Measured speedups exceed the Amdahl prediction because the")
    print("Tensor Core path also removes synchronisation overhead outside")
    print("the instrumented reduction span (paper Table 5).")


if __name__ == "__main__":
    main()
