#!/usr/bin/env python3
"""Quickstart: dock the paper's reference case with Tensor Core reductions.

Docks the ``7cpa`` test case (medium complexity, 15 rotatable bonds) with
the TCEC back-end — the paper's error-corrected TF32 Tensor Core
configuration — and prints the metrics the paper reports per case:
best score @ RMSD, best RMSD @ score, evaluation count, and the simulated
docking runtime / µs-per-evaluation on an A100.

Run:  python examples/quickstart.py
"""

from repro import DockingConfig, DockingEngine, get_test_case
from repro.search.lga import LGAConfig


def main() -> None:
    case = get_test_case("7cpa")
    print(f"Case {case.name}: {case.ligand.n_atoms} atoms, "
          f"{case.n_rot} rotatable bonds, "
          f"{case.ligand.n_intra} intramolecular pairs")
    print(f"Known global minimum: {case.global_min_score:.2f} kcal/mol")
    print()

    config = DockingConfig(
        backend="tcec-tf32",       # the paper's contribution
        device="A100",
        block_size=64,
        lga=LGAConfig(pop_size=30, max_evals=12_000, max_gens=300,
                      ls_iters=100, ls_rate=0.15),
    )
    engine = DockingEngine(case, config)

    print("Docking with 8 LGA runs (TCEC back-end)...")
    result = engine.dock(n_runs=8, seed=7)

    print()
    print(f"Best score : {result.best_score:+8.2f} kcal/mol "
          f"@ RMSD {result.rmsd_of_best:.2f} Å")
    print(f"Best RMSD  : {result.best_rmsd:8.2f} Å "
          f"@ score {result.score_of_best_rmsd:+.2f} kcal/mol")
    print(f"Evaluations: {result.total_evals}")
    print(f"Simulated A100 runtime: {result.runtime_seconds:.3f} s "
          f"({result.us_per_eval:.3f} µs/eval)")

    ok = result.best_score <= case.global_min_score + 1.0
    print()
    print("Search success (score criterion):", "YES" if ok else "no")


if __name__ == "__main__":
    main()
