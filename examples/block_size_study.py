#!/usr/bin/env python3
"""Block-size study: the NUMWI sweep of the paper's Figure 4 / Table 6.

AutoDock-GPU is compiled per block size (``make NUMWI=64/128/256``); the
paper evaluates all three on every GPU.  This example sweeps the same grid
with the cost model and shows the two opposing forces:

* larger blocks waste lanes on the irregular short loops (the baseline
  slows down), and
* the baseline's tree reductions pay ever more synchronisation — which is
  exactly the overhead the Tensor Core offload removes, so TCEC's relative
  advantage grows with block size.

Run:  python examples/block_size_study.py
"""

from repro.analysis.figures import ascii_bars
from repro.analysis.tables import format_table
from repro.simt import KernelCostModel, list_devices
from repro.testcases import get_test_case


def main() -> None:
    case = get_test_case("7cpa")
    wl = case.workload(20 * 150)
    print(f"Case {case.name}: kernel workload {wl}\n")

    rows = []
    rel = {}
    for dev in list_devices():
        for block in (64, 128, 256):
            tb = KernelCostModel(dev, block, "baseline") \
                .iteration_seconds(wl) * 300 * 1e3
            tt = KernelCostModel(dev, block, "tcec-tf32") \
                .iteration_seconds(wl) * 300 * 1e3
            f = KernelCostModel(dev, block, "baseline").tensor_fraction(wl)
            rows.append({"GPU": dev.name, "NUMWI": block,
                         "baseline_ms": tb, "tcec_ms": tt,
                         "f": round(f, 3), "relative": tb / tt})
            rel[(dev.name, block)] = tb / tt

    print(format_table(
        rows, ["GPU", "NUMWI", "baseline_ms", "tcec_ms", "f", "relative"],
        title="ADADELTA kernel (300 iterations) across block sizes"))
    print()
    print(ascii_bars([(f"{d}/{b}", v) for (d, b), v in rel.items()],
                     title="TCEC relative speedup by configuration",
                     unit="x"))
    print()
    best = max(rel, key=rel.get)
    print(f"Peak relative gain: {best[0]} at NUMWI={best[1]} "
          f"({rel[best]:.2f}x) — the paper reports the same peak "
          f"configuration (H100, 256 threads, 1.63x).")


if __name__ == "__main__":
    main()
