#!/usr/bin/env python3
"""Virtual screening: rank a small ligand library against binding pockets.

The workload the paper's introduction motivates: molecular docking is used
to identify ligands with favourable binding energy among many candidates.
This example docks several set-of-42 ligands (each into its own pocket),
ranks them by best score, and reports the screening throughput implied by
the simulated A100 runtime — comparing the SM-only baseline against TCEC.

Run:  python examples/virtual_screening.py
"""

from repro import DockingConfig, DockingEngine, get_test_case
from repro.search.lga import LGAConfig

LIBRARY = ["1u4d", "1yv3", "2bm2", "3ce3", "7cpa"]


def main() -> None:
    lga = LGAConfig(pop_size=25, max_evals=6_000, max_gens=200,
                    ls_iters=60, ls_rate=0.2)

    print(f"Screening {len(LIBRARY)} ligand-receptor complexes "
          f"(4 LGA runs each)\n")

    table = []
    runtimes = {"baseline": 0.0, "tcec-tf32": 0.0}
    for name in LIBRARY:
        case = get_test_case(name)
        row = {"case": name, "n_rot": case.n_rot}
        for backend in ("baseline", "tcec-tf32"):
            cfg = DockingConfig(backend=backend, device="A100",
                                block_size=64, lga=lga)
            result = DockingEngine(case, cfg).dock(n_runs=4, seed=11)
            runtimes[backend] += result.runtime_seconds
            if backend == "tcec-tf32":
                row["score"] = result.best_score
                row["rmsd"] = result.rmsd_of_best
                row["evals"] = result.total_evals
        table.append(row)

    table.sort(key=lambda r: r["score"])
    print(f"{'rank':>4s} {'case':>6s} {'N_rot':>5s} {'best score':>11s} "
          f"{'RMSD':>6s} {'evals':>7s}")
    for k, r in enumerate(table, 1):
        print(f"{k:4d} {r['case']:>6s} {r['n_rot']:5d} "
              f"{r['score']:11.2f} {r['rmsd']:6.2f} {r['evals']:7d}")

    print()
    speedup = runtimes["baseline"] / runtimes["tcec-tf32"]
    print(f"Simulated A100 screening time: "
          f"baseline {runtimes['baseline']:.2f} s, "
          f"TCEC {runtimes['tcec-tf32']:.2f} s "
          f"-> {speedup:.2f}x faster with Tensor Cores")


if __name__ == "__main__":
    main()
