"""GPU device catalogue with the paper's Table 2 characteristics.

Each :class:`DeviceSpec` carries the published architectural numbers plus a
small set of micro-architectural latency constants (shared-memory access,
block-wide barrier) that the cost model needs.  The latency constants are not
in Table 2; they are calibrated so the model reproduces the *shape* of the
paper's Figure 4 / Table 5 results (see DESIGN.md Section 5): Hopper's
block-wide synchronisation is comparatively expensive — which is what makes
the H100 baseline degrade at 256 threads and gives TCEC its largest relative
gain there — while Blackwell improves sync latency and raises memory
bandwidth 4x, compressing the relative gain of Tensor Cores.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "A100", "H100", "B200", "get_device", "list_devices"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU accelerator.

    Published characteristics (paper Table 2)
    -----------------------------------------
    name / architecture / compute_capability, ``sm_count``,
    ``fp32_cores_per_sm``, ``tensor_cores_per_sm``, ``fp32_tflops`` (SIMT
    peak), ``tf32_tflops`` (Tensor Core peak, dense), ``mem_bw_tb_s``.

    Calibrated micro-architecture constants
    ---------------------------------------
    ``smem_latency_cycles``   shared-memory round trip used by tree reductions
    ``barrier_base_cycles``   fixed cost of ``__syncthreads``
    ``barrier_warp_cycles``   additional barrier cost per warp in the block
    ``mma_issue_cycles``      pipeline latency of one WMMA issue
    ``max_threads_per_sm`` / ``max_blocks_per_sm``  occupancy limits
    """

    name: str
    architecture: str
    compute_capability: str
    sm_count: int
    fp32_cores_per_sm: int
    tensor_cores_per_sm: int
    fp32_tflops: float
    tf32_tflops: float
    mem_bw_tb_s: float
    smem_latency_cycles: float
    barrier_base_cycles: float
    barrier_warp_cycles: float
    mma_issue_cycles: float
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32

    # ---- derived quantities -------------------------------------------------

    @property
    def clock_ghz(self) -> float:
        """Effective clock backed out of the published FP32 peak."""
        return self.fp32_tflops * 1e3 / (self.sm_count * self.fp32_cores_per_sm * 2)

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def simt_flops_per_cycle_sm(self) -> float:
        """FP32 FMA FLOPs one SM retires per cycle (2 per core)."""
        return 2.0 * self.fp32_cores_per_sm

    @property
    def tc_flops_per_cycle_sm(self) -> float:
        """TF32 Tensor Core FLOPs one SM retires per cycle."""
        return self.tf32_tflops * 1e12 / (self.sm_count * self.clock_hz)

    @property
    def tc_flops_per_cycle_unit(self) -> float:
        """TF32 FLOPs a single Tensor Core retires per cycle."""
        return self.tc_flops_per_cycle_sm / self.tensor_cores_per_sm

    @property
    def tensor_speedup(self) -> float:
        """``S`` of Equation (6): TC peak over SIMT FP32 peak."""
        return self.tf32_tflops / self.fp32_tflops

    @property
    def mem_bytes_per_second(self) -> float:
        return self.mem_bw_tb_s * 1e12

    def barrier_cycles(self, block_size: int) -> float:
        """Cost of one block-wide barrier for ``block_size`` threads.

        Arrival/release fan-in grows sub-linearly with the warp count;
        the per-warp coefficient is calibrated per device (Hopper's
        block-wide synchronisation is markedly more expensive, which is
        what degrades its SIMT baseline at 256 threads — Figure 4).
        """
        warps = max(1, block_size // 32)
        return self.barrier_base_cycles + self.barrier_warp_cycles * warps ** 0.5

    def resident_blocks(self, block_size: int) -> int:
        """Maximum co-resident thread blocks per SM at this block size."""
        by_threads = self.max_threads_per_sm // block_size
        return max(1, min(self.max_blocks_per_sm, by_threads))


# Published numbers from Table 2; latency constants calibrated per DESIGN.md.
A100 = DeviceSpec(
    name="A100", architecture="Ampere", compute_capability="8.0",
    sm_count=108, fp32_cores_per_sm=64, tensor_cores_per_sm=4,
    fp32_tflops=19.49, tf32_tflops=155.92, mem_bw_tb_s=1.56,
    smem_latency_cycles=29.0, barrier_base_cycles=24.0,
    barrier_warp_cycles=30.0, mma_issue_cycles=18.0,
)

H100 = DeviceSpec(
    name="H100", architecture="Hopper", compute_capability="9.0",
    sm_count=114, fp32_cores_per_sm=128, tensor_cores_per_sm=4,
    fp32_tflops=51.22, tf32_tflops=378.00, mem_bw_tb_s=2.04,
    smem_latency_cycles=33.0, barrier_base_cycles=30.0,
    barrier_warp_cycles=100.0, mma_issue_cycles=16.0,
)

B200 = DeviceSpec(
    name="B200", architecture="Blackwell", compute_capability="10.0",
    sm_count=264, fp32_cores_per_sm=128, tensor_cores_per_sm=4,
    fp32_tflops=80.0, tf32_tflops=1200.0, mem_bw_tb_s=8.00,
    smem_latency_cycles=27.0, barrier_base_cycles=26.0,
    barrier_warp_cycles=2.0, mma_issue_cycles=14.0,
)

_CATALOGUE = {d.name.lower(): d for d in (A100, H100, B200)}


def get_device(name: str | DeviceSpec) -> DeviceSpec:
    """Look up a device by (case-insensitive) name."""
    if isinstance(name, DeviceSpec):
        return name
    try:
        return _CATALOGUE[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; available: {sorted(_CATALOGUE)}"
        ) from None


def list_devices() -> list[DeviceSpec]:
    """All devices in the catalogue, in the paper's order."""
    return [A100, H100, B200]
