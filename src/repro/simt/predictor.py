"""Per-job wall-time prediction: the SIMT cost model, calibrated to host.

The gateway's SLO scheduler needs to know — *before* running anything —
how long a docking job will take on this machine, so it can bin-pack jobs
onto shards, reject work that cannot meet its deadline, and size worker
pools from predicted backlog.  The :class:`~repro.simt.costmodel
.KernelCostModel` already prices a docking iteration as a function of the
irregular workload shape (atoms, rotation-list entries, intra pairs,
genotype length); what it prices is *simulated GPU* time, not the host
wall time the service actually spends.  The two are linked by the shape:
the host engine executes the same per-eval loop bounds, so host per-eval
cost is, to good approximation, an affine function of the model's
per-eval cost.

:class:`RuntimePredictor` fits that affine map against **committed bench
traces** (``BENCH_gateway.json``: measured ``wall_s`` over ``total_evals``
for library cases spanning the N_rot range) and predicts

``wall ≈ machine_factor × budget_evals × (a + b × model_eval_seconds)``

where ``machine_factor`` rescales the committed calibration machine to
the local one via the shared ``numpy_ref_s`` workload (the
``bench_hot_path`` convention).  The acceptance gate — p50 relative error
≤ 30% against the committed traces — is enforced by
``tests/test_gateway_predictor.py``.
"""

from __future__ import annotations

import json
import math
import statistics
from dataclasses import dataclass
from pathlib import Path

from repro.simt.costmodel import KernelCostModel, KernelWorkload

__all__ = ["JobShape", "RuntimePredictor", "shape_from_case",
           "shape_from_pdbqt", "DEFAULT_BENCH_PATH", "BENCH_SCHEMA"]

#: committed calibration/latency record (repository root)
DEFAULT_BENCH_PATH = Path(__file__).resolve().parents[3] / \
    "BENCH_gateway.json"

#: schema tag of the gateway bench JSON (validated by tools/check_bench.py)
BENCH_SCHEMA = "bench-gateway/v1"


@dataclass(frozen=True)
class JobShape:
    """Irregular shape of one job, in cost-model (paper-scaled) units.

    Mirrors :class:`~repro.simt.costmodel.KernelWorkload` minus the grid
    size — the predictor prices one block and scales by the eval budget.
    """

    n_atoms: int
    n_rot: int
    n_rotlist: int
    n_intra: int
    n_genes: int

    def workload(self, n_blocks: int = 1) -> KernelWorkload:
        return KernelWorkload(
            n_rotlist=max(1, self.n_rotlist),
            n_atoms=max(1, self.n_atoms),
            n_intra=max(1, self.n_intra),
            n_genes=max(1, self.n_genes),
            n_blocks=n_blocks)

    def to_dict(self) -> dict:
        return {"n_atoms": self.n_atoms, "n_rot": self.n_rot,
                "n_rotlist": self.n_rotlist, "n_intra": self.n_intra,
                "n_genes": self.n_genes}

    @classmethod
    def from_dict(cls, d: dict) -> "JobShape":
        return cls(n_atoms=int(d["n_atoms"]), n_rot=int(d["n_rot"]),
                   n_rotlist=int(d["n_rotlist"]),
                   n_intra=int(d["n_intra"]), n_genes=int(d["n_genes"]))


def shape_from_case(case) -> JobShape:
    """The cost-model shape of a built
    :class:`~repro.testcases.generator.TestCase`."""
    wl = case.workload(1)
    return JobShape(n_atoms=wl.n_atoms, n_rot=case.n_rot,
                    n_rotlist=wl.n_rotlist, n_intra=wl.n_intra,
                    n_genes=wl.n_genes)


def shape_from_pdbqt(path: str, ratios: dict | None = None) -> JobShape:
    """Estimate a shape from a PDBQT file without building the case.

    Counts ATOM/HETATM and BRANCH records (cheap, single pass — the
    admission decision must not parse grids or refine poses) and applies
    the committed shape table's median per-atom ratios for the fields a
    line count cannot see (rotation-list entries, intra pairs).
    """
    atoms = n_rot = 0
    with open(path) as fh:
        for line in fh:
            if line.startswith(("ATOM", "HETATM")):
                atoms += 1
            elif line.startswith("BRANCH"):
                n_rot += 1
    atoms = max(atoms, 1)
    r = ratios or {}
    scale = float(r.get("atoms_scale", 2.5))
    rotlist_per_atom = float(r.get("rotlist_per_atom", 1.0))
    intra_per_atom = float(r.get("intra_per_atom", 1.0))
    n_atoms = max(1, int(atoms * scale))
    return JobShape(
        n_atoms=n_atoms, n_rot=n_rot,
        n_rotlist=max(1, int(n_atoms * rotlist_per_atom)),
        n_intra=max(1, int(n_atoms * intra_per_atom)),
        n_genes=6 + n_rot)


class RuntimePredictor:
    """Affine-calibrated cost-model predictor of host docking wall time.

    Parameters
    ----------
    shapes:
        ``case name -> JobShape`` table (usually the committed one).
    entries:
        Calibration traces: dicts with ``case``, ``backend``, ``device``,
        ``block_size``, ``total_evals`` and ``wall_s``.
    ref_s:
        ``numpy_ref_s`` of the machine the entries were measured on.
    local_ref_s:
        The local machine's calibration time; predictions scale by
        ``local_ref_s / ref_s`` (``None`` = same machine, factor 1).
    """

    def __init__(self, shapes: dict[str, JobShape],
                 entries: list[dict], ref_s: float,
                 local_ref_s: float | None = None) -> None:
        if not entries:
            raise ValueError("predictor needs at least one "
                             "calibration entry")
        self.shapes = dict(shapes)
        self.entries = list(entries)
        self.ref_s = float(ref_s)
        self.machine_factor = (float(local_ref_s) / self.ref_s
                               if local_ref_s else 1.0)
        self._model_cache: dict[tuple, float] = {}
        self.coeff_a, self.coeff_b = self._fit()
        self.backend_factor = self._fit_backend_factors()

    # ------------------------------------------------------------------
    # model proxy

    def model_eval_seconds(self, shape: JobShape,
                           device: str = "A100",
                           block_size: int = 64) -> float:
        """Simulated seconds of one ADADELTA iteration of one block —
        the cost-model *shape function* host time is regressed on.

        Always the baseline column: the model's per-backend columns rank
        *GPU* cost (tensor-core backends are faster), but the host
        engine *emulates* those reductions in numpy, where they cost
        more — the backend column would invert the signal.  Backend
        enters the prediction as a fitted multiplicative factor instead
        (:attr:`backend_factor`).
        """
        key = (shape, device, block_size)
        hit = self._model_cache.get(key)
        if hit is not None:
            return hit
        model = KernelCostModel(device, block_size, "baseline")
        s = model.iteration_cost(shape.workload(1)).seconds
        self._model_cache[key] = s
        return s

    @staticmethod
    def _backend_key(backend: str) -> str:
        return "baseline" if backend == "exact" else backend

    def _entry_xy(self, entry: dict) -> tuple[float, float]:
        """(model per-eval seconds, measured per-eval seconds)."""
        shape = self.shapes.get(entry["case"])
        if shape is None:
            raise KeyError(f"no committed shape for case "
                           f"{entry['case']!r}")
        x = self.model_eval_seconds(
            shape, entry.get("device", "A100"),
            int(entry.get("block_size", 64)))
        y = float(entry["wall_s"]) / max(1, int(entry["total_evals"]))
        return x, y

    def _baseline_entries(self) -> list[dict]:
        base = [e for e in self.entries
                if self._backend_key(e.get("backend", "baseline"))
                == "baseline"]
        return base or self.entries

    def _fit(self) -> tuple[float, float]:
        """Least-squares ``y = a + b x`` on per-eval (model, host) pairs
        of the *baseline-backend* entries (other backends are handled by
        :meth:`_fit_backend_factors`).

        Coefficients are clamped non-negative: a negative intercept or
        slope has no physical reading (host per-eval cost is a fixed
        Python/numpy overhead plus work growing with the shape), and the
        clamped fallbacks (origin fit / flat median) stay well-defined
        with degenerate calibration sets.
        """
        pairs = [self._entry_xy(e) for e in self._baseline_entries()]
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        n = len(pairs)
        if n == 1:
            return 0.0, ys[0] / xs[0] if xs[0] > 0 else 0.0
        mx = sum(xs) / n
        my = sum(ys) / n
        sxx = sum((x - mx) ** 2 for x in xs)
        sxy = sum((x - mx) * (y - my) for x, y in pairs)
        b = sxy / sxx if sxx > 0 else 0.0
        a = my - b * mx
        if b < 0:                       # shape carries no signal: flat fit
            return my, 0.0
        if a < 0:                       # force through the origin
            sxx0 = sum(x * x for x in xs)
            return 0.0, (sum(x * y for x, y in pairs) / sxx0
                         if sxx0 > 0 else 0.0)
        return a, b

    def _fit_backend_factors(self) -> dict[str, float]:
        """Per-backend host-cost multiplier vs the baseline fit.

        The host emulation overhead of a reduction backend is roughly a
        constant factor on per-eval cost, so one median ratio per
        backend (measured / shape-fit prediction) captures it.  Unseen
        backends predict with factor 1.0.
        """
        ratios: dict[str, list[float]] = {}
        for entry in self.entries:
            backend = self._backend_key(entry.get("backend", "baseline"))
            x, y = self._entry_xy(entry)
            fit = self.coeff_a + self.coeff_b * x
            if fit > 0:
                ratios.setdefault(backend, []).append(y / fit)
        return {backend: max(0.1, statistics.median(rs))
                for backend, rs in ratios.items()}

    # ------------------------------------------------------------------
    # prediction

    def eval_seconds(self, shape: JobShape, backend: str = "baseline",
                     device: str = "A100", block_size: int = 64) -> float:
        """Predicted host seconds per score evaluation."""
        x = self.model_eval_seconds(shape, device, block_size)
        factor = self.backend_factor.get(self._backend_key(backend), 1.0)
        return self.machine_factor * factor * (
            self.coeff_a + self.coeff_b * x)

    def predict_seconds(self, shape: JobShape, budget_evals: int,
                        backend: str = "baseline", device: str = "A100",
                        block_size: int = 64) -> float:
        """Predicted wall seconds for ``budget_evals`` evaluations."""
        return max(0.0, budget_evals) * self.eval_seconds(
            shape, backend, device, block_size)

    def shape_for_spec(self, spec: dict) -> JobShape:
        """Resolve a job spec (see :func:`repro.serve.cache.load_case`)
        to a shape: committed table for named cases, nearest-N_rot
        interpolation for unknown names, line-count estimation for
        file-based ligands."""
        kind = spec.get("kind")
        if kind == "case" and spec.get("case") in self.shapes:
            return self.shapes[spec["case"]]
        if kind == "case" or not spec.get("ligand"):
            from repro.testcases.library import _NAME_TO_NROT
            n_rot = _NAME_TO_NROT.get(spec.get("case"), 8)
            return self._shape_for_nrot(n_rot)
        return shape_from_pdbqt(spec["ligand"], self._ratios())

    def _shape_for_nrot(self, n_rot: int) -> JobShape:
        """Nearest committed shape by rotatable-bond count."""
        if not self.shapes:
            return JobShape(n_atoms=40, n_rot=n_rot, n_rotlist=40,
                            n_intra=40, n_genes=6 + n_rot)
        best = min(self.shapes.values(),
                   key=lambda s: abs(s.n_rot - n_rot))
        return best

    def _ratios(self) -> dict:
        """Median per-atom ratios of the committed shape table, used to
        estimate rotation-list / intra-pair counts for file ligands."""
        if not self.shapes:
            return {}
        shapes = list(self.shapes.values())
        return {
            "atoms_scale": 2.5,
            "rotlist_per_atom": statistics.median(
                s.n_rotlist / s.n_atoms for s in shapes),
            "intra_per_atom": statistics.median(
                s.n_intra / s.n_atoms for s in shapes),
        }

    # ------------------------------------------------------------------
    # accuracy report (the EXPERIMENTS / acceptance numbers)

    def accuracy(self) -> dict:
        """Relative error of the fit against its own calibration traces.

        Returns per-entry records plus ``p50_rel_err`` / ``p90_rel_err``
        — the committed-file numbers the acceptance gate (p50 ≤ 0.30)
        and the EXPERIMENTS scatter are read from.
        """
        records = []
        for entry in self.entries:
            shape = self.shapes[entry["case"]]
            pred = self.predict_seconds(
                shape, int(entry["total_evals"]),
                entry.get("backend", "baseline"),
                entry.get("device", "A100"),
                int(entry.get("block_size", 64))) / self.machine_factor
            measured = float(entry["wall_s"])
            rel = abs(pred - measured) / measured if measured > 0 \
                else math.inf
            records.append({"case": entry["case"],
                            "backend": entry.get("backend", "baseline"),
                            "total_evals": int(entry["total_evals"]),
                            "wall_s": measured,
                            "predicted_s": pred,
                            "rel_err": rel})
        errs = sorted(r["rel_err"] for r in records)

        def q(p: float) -> float:
            if not errs:
                return math.nan
            k = min(len(errs) - 1, max(0, math.ceil(p * len(errs)) - 1))
            return errs[k]

        return {"entries": records, "n": len(records),
                "p50_rel_err": q(0.50), "p90_rel_err": q(0.90),
                "coeff_a": self.coeff_a, "coeff_b": self.coeff_b}

    # ------------------------------------------------------------------
    # persistence

    @classmethod
    def from_bench(cls, path: str | Path = DEFAULT_BENCH_PATH,
                   local_ref_s: float | None = None) -> "RuntimePredictor":
        """Load the committed gateway bench file and fit on its traces."""
        doc = json.loads(Path(path).read_text())
        if doc.get("schema") != BENCH_SCHEMA:
            raise ValueError(f"{path}: schema {doc.get('schema')!r} "
                             f"!= {BENCH_SCHEMA!r}")
        shapes = {name: JobShape.from_dict(d)
                  for name, d in doc.get("shapes", {}).items()}
        cal = doc.get("calibration", {})
        return cls(shapes, cal.get("entries", []),
                   ref_s=doc["machine"]["numpy_ref_s"],
                   local_ref_s=local_ref_s)
