"""Roofline-model placement of the profiled kernels.

The paper notes (Section 5.2) that Nsight Compute's roofline analysis
classifies both the baseline and TCEC kernels as *compute-bound* on every
evaluated GPU.  This module derives the same classification from the
simulator's counters: a kernel is compute-bound when its operational
intensity exceeds the device's ridge point ``OI* = peak_flops / peak_bw``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simt.devices import DeviceSpec, get_device
from repro.simt.profiler import KernelProfile

__all__ = ["RooflinePoint", "ridge_point", "classify"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on a device's roofline."""

    device: str
    backend: str
    block_size: int
    operational_intensity: float     # FLOP / Byte
    gflops: float                    # achieved
    ridge_oi: float                  # device ridge point [FLOP/Byte]
    peak_gflops: float               # applicable compute roof
    bound: str                       # "compute" or "memory"

    @property
    def roof_gflops(self) -> float:
        """Attainable GFLOP/s at this OI."""
        mem_roof = self.operational_intensity * self.peak_gflops / self.ridge_oi
        return min(self.peak_gflops, mem_roof)

    @property
    def efficiency(self) -> float:
        """Achieved / attainable performance."""
        return self.gflops / self.roof_gflops


def ridge_point(device: str | DeviceSpec, use_tensor_cores: bool = False
                ) -> float:
    """The device's ridge OI [FLOP/Byte] for the applicable compute roof."""
    dev = get_device(device)
    peak = (dev.tf32_tflops if use_tensor_cores else dev.fp32_tflops) * 1e12
    return peak / dev.mem_bytes_per_second


def classify(profile: KernelProfile) -> RooflinePoint:
    """Place a profiled kernel on its device's roofline."""
    dev = get_device(profile.device)
    uses_tc = profile.backend != "baseline"
    peak = (dev.tf32_tflops if uses_tc else dev.fp32_tflops) * 1e3  # GFLOP/s
    ridge = ridge_point(dev, use_tensor_cores=uses_tc)
    bound = ("compute" if profile.operational_intensity >= ridge
             else "memory")
    return RooflinePoint(
        device=profile.device,
        backend=profile.backend,
        block_size=profile.block_size,
        operational_intensity=profile.operational_intensity,
        gflops=profile.gflops,
        ridge_oi=ridge,
        peak_gflops=peak,
        bound=bound,
    )
