"""SIMT GPU execution model: devices, cycle accounting, kernel cost model.

The paper's runtime results are ratios (speedups, microseconds per score
evaluation) measured on NVIDIA A100 / H100 / B200.  This subpackage replaces
the hardware with an analytic model that consumes the *same* op streams the
CUDA kernels execute:

* :mod:`repro.simt.devices` — the device catalogue with the paper's Table 2
  characteristics and derived per-cycle throughputs;
* :mod:`repro.simt.counters` — region-based cycle counters, the analogue of
  the ``clock64()`` instrumentation used to measure the Tensor Core fraction
  ``f`` (Section 5.1.1);
* :mod:`repro.simt.costmodel` — the ADADELTA kernel cost model (compute,
  barriers, reductions, memory) for baseline / TC / TCEC back-ends;
* :mod:`repro.simt.profiler` — Nsight-Compute-style derived metrics
  (operational intensity, GFLOP/s, FMA / ALU / TC utilisation; Table 6);
* :mod:`repro.simt.predictor` — host wall-time prediction for the
  serving gateway: the cost model's per-eval shape function, affine-
  calibrated against committed bench traces (``BENCH_gateway.json``).
"""

from repro.simt.counters import OpCounters, RegionClock
from repro.simt.costmodel import (
    IterationCost,
    KernelCostModel,
    KernelWorkload,
    REDUCTION_BACKENDS,
)
from repro.simt.devices import A100, B200, H100, DeviceSpec, get_device, list_devices
from repro.simt.predictor import (JobShape, RuntimePredictor,
                                  shape_from_case, shape_from_pdbqt)
from repro.simt.profiler import KernelProfile, profile_kernel
from repro.simt.roofline import RooflinePoint, classify, ridge_point

__all__ = [
    "OpCounters",
    "RegionClock",
    "IterationCost",
    "KernelCostModel",
    "KernelWorkload",
    "REDUCTION_BACKENDS",
    "A100",
    "H100",
    "B200",
    "DeviceSpec",
    "get_device",
    "list_devices",
    "JobShape",
    "RuntimePredictor",
    "shape_from_case",
    "shape_from_pdbqt",
    "KernelProfile",
    "RooflinePoint",
    "classify",
    "ridge_point",
    "profile_kernel",
]
