"""Nsight-Compute-style kernel profiling metrics (paper Table 6).

Derives, from one simulated ADADELTA kernel execution:

* execution time [ms],
* operational intensity OI [FLOP/Byte],
* achieved performance [GFLOP/s],
* FMA / ALU / Tensor Core pipe utilisation [%].

Utilisation is active-cycles of the unit divided by elapsed kernel cycles,
the same definition Nsight Compute reports.

The paper notes an artefact worth reproducing: baseline runs should show 0%
TC utilisation, yet Nsight Compute v2023.x reported 0-1% on the A100 and
H100 while v2025.1.1 on the B200 correctly reported 0%.  The profiler
emulates that version quirk (deterministically) so Table 6 can be
regenerated including the anomaly; pass ``emulate_nsight_quirk=False`` for
clean numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simt.costmodel import KernelCostModel, KernelWorkload
from repro.simt.devices import DeviceSpec

__all__ = ["KernelProfile", "profile_kernel", "NSIGHT_VERSIONS"]

#: Nsight Compute versions used per device in the paper (Section 5.2).
NSIGHT_VERSIONS = {"A100": "2023.3.1", "H100": "2023.2.2", "B200": "2025.1.1"}

#: Phantom TC utilisation the old profiler versions attribute to baseline
#: kernels (reads of TC pipe counters polluted by other engines).
_QUIRK_TC_UTIL = {"A100": 0.9, "H100": 0.3, "B200": 0.0}


@dataclass(frozen=True)
class KernelProfile:
    """One row of the paper's Table 6."""

    device: str
    backend: str
    block_size: int
    exec_time_ms: float
    operational_intensity: float   # FLOP / Byte
    gflops: float                  # achieved GFLOP/s
    fma_util_pct: float
    alu_util_pct: float
    tc_util_pct: float
    nsight_version: str

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "device": self.device,
            "backend": self.backend,
            "block": self.block_size,
            "time_ms": round(self.exec_time_ms, 1),
            "OI": round(self.operational_intensity, 1),
            "GFLOP/s": round(self.gflops, 1),
            "FMA%": round(self.fma_util_pct, 1),
            "ALU%": round(self.alu_util_pct, 1),
            "TC%": round(self.tc_util_pct, 1),
        }


def profile_kernel(
    device: DeviceSpec | str,
    block_size: int,
    backend: str,
    workload: KernelWorkload,
    iterations: int = 300,
    emulate_nsight_quirk: bool = True,
) -> KernelProfile:
    """Profile one ADADELTA kernel launch (``iterations`` LS steps/block)."""
    model = KernelCostModel(device, block_size, backend)
    dev = model.device
    cost = model.iteration_cost(workload)

    exec_time_s = cost.seconds * iterations
    ops = cost.ops.scaled(iterations)

    elapsed_cycles = exec_time_s * dev.clock_hz
    # per-SM pipe capacity over the elapsed window
    fma_capacity = elapsed_cycles * dev.sm_count * dev.simt_flops_per_cycle_sm
    alu_capacity = elapsed_cycles * dev.sm_count * dev.fp32_cores_per_sm
    tc_capacity = elapsed_cycles * dev.sm_count * dev.tc_flops_per_cycle_sm

    fma_util = 100.0 * ops.fma_flops / fma_capacity
    alu_util = 100.0 * ops.alu_ops / alu_capacity
    tc_util = 100.0 * ops.tc_flops / tc_capacity

    if emulate_nsight_quirk and backend == "baseline":
        tc_util = max(tc_util, _QUIRK_TC_UTIL.get(dev.name, 0.0))

    oi = ops.total_flops / ops.dram_bytes if ops.dram_bytes else float("inf")
    gflops = ops.total_flops / exec_time_s / 1e9

    return KernelProfile(
        device=dev.name,
        backend=backend,
        block_size=block_size,
        exec_time_ms=exec_time_s * 1e3,
        operational_intensity=oi,
        gflops=gflops,
        fma_util_pct=fma_util,
        alu_util_pct=alu_util,
        tc_util_pct=tc_util,
        nsight_version=NSIGHT_VERSIONS.get(dev.name, "2025.1.1"),
    )
