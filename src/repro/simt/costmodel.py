"""Analytic cost model of the ADADELTA local-search kernel.

The model consumes the same irregular workload shape the CUDA kernel sees —
``N_rot-list`` pose-rotation items, ``N_atom`` intermolecular items,
``N_intra-contrib`` intramolecular pairs, ``N_genes`` genotype entries — and
prices one kernel iteration in **lane-slot cycles**: the SM retires
``fp32_cores`` lane-cycles per clock, and a data-parallel segment with ``N``
items executed by a ``B``-thread block consumes ``ceil(N / B) * B`` lane
slots per instruction — idle lanes in partially-filled rounds are the
irregularity tax that makes larger blocks slower (the paper's Figure 4 /
Table 6 trend).

Cost classes:

``compute``
    Data-parallel segments, slot-priced with a per-device efficiency factor
    (``ilp_factor``) calibrated to the paper's absolute kernel times.
``reduction`` / ``reduction_overhead``
    The seven block-level sum reductions.  The baseline executes them as
    sequential shared-memory trees whose barrier/latency stalls are only
    partially hidden by co-resident blocks (Schieffer & Peng measured ~40%
    of warp stalls on memory barriers); the Tensor Core back-ends replace
    them with two matrix-shaped reductions driven by one warp (Equations
    1-4).  ``reduction`` mirrors the span the paper brackets with
    ``clock64()``; pack/unpack and surrounding barriers land in
    ``reduction_overhead`` — which is why measured speedups exceed the
    Amdahl prediction, exactly as in Table 5.
``memory``
    Grid-level DRAM traffic at the device bandwidth.

Cycle charges flow through a :class:`~repro.simt.counters.RegionClock`, so
the Tensor Core fraction ``f`` is recovered the same way the paper measures
it (Section 5.1.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.simt.counters import OpCounters, RegionClock
from repro.simt.devices import DeviceSpec, get_device

__all__ = [
    "KernelWorkload",
    "SegmentCost",
    "IterationCost",
    "KernelCostModel",
    "REDUCTION_BACKENDS",
    "ADADELTA_SEGMENTS",
]

#: Reduction back-ends the paper evaluates.
REDUCTION_BACKENDS = ("baseline", "tc-fp16", "tcec-tf32")

#: FLOPs of one 16x16x16 WMMA issue (2*M*N*K).
MMA_FLOPS = 2 * 16 * 16 * 16

#: Values reduced per 16x16 A-tile in the Schieffer-Peng layout.
VECTORS_PER_TILE = 64

#: Per-device compute-efficiency calibration: effective cycles per modelled
#: lane-slot cycle.  Irregular, latency-bound kernels sit far from peak;
#: newer parts need more parallelism to saturate, so the factor grows.
#: Calibrated against the paper's Table 6 baseline execution times.
ILP_FACTOR = {"A100": 1.90, "H100": 3.27, "B200": 3.93}

#: Per-device SM-wide lane-slots idled per unhidden reduction stall cycle
#: (the tree reduction is latency-bound: its stall time scales with stage
#: count and barrier latency, not with block width).  Calibrated against
#: the paper's clock64-measured Tensor Core fractions (Table 5).
STALL_LANES = {"A100": 27.0, "H100": 27.0, "B200": 170.0}

#: Reduction-adjacent work (staging partials, extra barriers) outside the
#: clock64-instrumented span, as a share of the measured region.  This is
#: why measured speedups exceed the Amdahl prediction (Table 5).
OVERHEAD_SHARE = {"A100": 0.33, "H100": 0.70, "B200": 0.40}

#: The overhead share grows with warp count: wider blocks stage more
#: partial values and pay more for the extra barriers around the
#: instrumented span (per-device exponent calibrated against Table 5's
#: measured speedups at 128/256 threads; Blackwell's higher memory
#: bandwidth shortens the staging, flattening its growth).
OVERHEAD_WARP_EXPONENT = {"A100": 0.85, "H100": 0.70, "B200": 0.35}

#: Tensor Core contention cap: resident blocks' reduction warps share the
#: SM's 4 TCs, but issues pipeline, bounding the effective slowdown.
TC_CONTENTION_CAP = 2.0


@dataclass(frozen=True)
class KernelWorkload:
    """Irregular shape of one ligand-receptor docking problem.

    The loop bounds of Algorithms 2 and 4: the rotation list, the ligand
    atoms, the intramolecular contributor pairs, and the genotype length
    (3 translation + 3 orientation + ``N_rot`` torsions).
    """

    n_rotlist: int
    n_atoms: int
    n_intra: int
    n_genes: int
    n_blocks: int

    def __post_init__(self) -> None:
        for name in ("n_rotlist", "n_atoms", "n_intra", "n_genes", "n_blocks"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class SegmentCost:
    """Per-item cost of one data-parallel kernel segment."""

    name: str
    items_attr: str      # which KernelWorkload field gives the trip count
    flops: float         # FP32 FLOPs per item (FMA pipe)
    alu: float           # integer/addressing ops per item (ALU pipe)
    dram_bytes: float    # DRAM traffic per item

    def items(self, wl: KernelWorkload) -> int:
        return getattr(wl, self.items_attr)

    @property
    def lane_cycles(self) -> float:
        """Lane-busy cycles per item: FMA pipe at 2 FLOP/cycle with the ALU
        pipe partially overlapped."""
        return self.flops / 2.0 + self.alu / 4.0


#: One ADADELTA iteration = gradient calculation (Algorithm 4) + scoring of
#: the candidate genotype (Algorithm 2) + the ADADELTA update itself.
#: Per-item costs approximate the arithmetic of the corresponding CUDA code
#: (quaternion chains, 8-corner trilinear interpolation over 4 maps,
#: smoothed pairwise terms with derivatives).  DRAM bytes are small: the
#: kernels work out of shared memory/L2 (paper OI is 1.4-3.6 kFLOP/Byte).
ADADELTA_SEGMENTS: tuple[SegmentCost, ...] = (
    SegmentCost("grad_pose", "n_rotlist", flops=380.0, alu=130.0, dram_bytes=0.6),
    SegmentCost("grad_inter", "n_atoms", flops=540.0, alu=180.0, dram_bytes=2.4),
    SegmentCost("grad_intra", "n_intra", flops=450.0, alu=150.0, dram_bytes=0.3),
    SegmentCost("grad_convert", "n_genes", flops=260.0, alu=90.0, dram_bytes=0.8),
    SegmentCost("score_pose", "n_rotlist", flops=300.0, alu=110.0, dram_bytes=0.2),
    SegmentCost("score_inter", "n_atoms", flops=340.0, alu=120.0, dram_bytes=1.6),
    SegmentCost("score_intra", "n_intra", flops=300.0, alu=100.0, dram_bytes=0.2),
    SegmentCost("adadelta_update", "n_genes", flops=90.0, alu=40.0, dram_bytes=1.2),
)

#: Scoring-only segments (genetic-algorithm kernel, Algorithm 2).
SCORE_SEGMENTS: tuple[SegmentCost, ...] = tuple(
    s for s in ADADELTA_SEGMENTS if s.name.startswith("score_")
)


@dataclass
class IterationCost:
    """Cost of one kernel iteration across the whole launch grid."""

    device: DeviceSpec
    block_size: int
    backend: str
    clock: RegionClock = field(default_factory=RegionClock)
    ops: OpCounters = field(default_factory=OpCounters)
    mem_seconds: float = 0.0

    @property
    def slot_cycles(self) -> float:
        """Grid-wide lane-slot cycles (all regions)."""
        return self.clock.cycles()

    @property
    def seconds(self) -> float:
        """Wall time of one grid-wide iteration."""
        dev = self.device
        lanes = dev.sm_count * dev.fp32_cores_per_sm
        compute_s = self.slot_cycles / lanes / dev.clock_hz
        return compute_s + self.mem_seconds

    def tensor_fraction(self) -> float:
        """clock64-style ``f``: reduction-region share of kernel cycles."""
        return self.clock.fraction("reduction")


class KernelCostModel:
    """Slot-cycle model of the ADADELTA kernel for one configuration.

    Parameters
    ----------
    device:
        Target GPU (name or :class:`~repro.simt.devices.DeviceSpec`).
    block_size:
        CUDA threads per block (the paper sweeps 64 / 128 / 256).
    backend:
        ``"baseline"`` (SIMT tree reductions), ``"tc-fp16"`` (Schieffer-Peng)
        or ``"tcec-tf32"`` (this paper's error-corrected variant).
    """

    def __init__(self, device: str | DeviceSpec, block_size: int,
                 backend: str = "baseline") -> None:
        self.device = get_device(device)
        if block_size < 32 or block_size % 32:
            raise ValueError("block_size must be a positive multiple of 32")
        self.block_size = block_size
        if backend not in REDUCTION_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {REDUCTION_BACKENDS}")
        self.backend = backend
        self._ilp = ILP_FACTOR.get(self.device.name, 3.0)
        self._stall_lanes = STALL_LANES.get(self.device.name, 60.0)
        self._overhead_share = OVERHEAD_SHARE.get(self.device.name, 0.5)

    # ------------------------------------------------------------------
    # cost pieces (per block, per iteration, in lane-slot cycles)

    def _segment_slots(self, seg: SegmentCost, wl: KernelWorkload) -> float:
        rounds = math.ceil(seg.items(wl) / self.block_size)
        return rounds * self.block_size * seg.lane_cycles * self._ilp

    def _baseline_reduction_slots(self) -> tuple[float, float]:
        """(measured-region, overhead) slots of 7 tree reductions.

        Latency-bound: ``log2(B)`` stages, each stalling for one shared-
        memory round trip plus one barrier; the SM-wide slot cost per stall
        cycle is the calibrated ``STALL_LANES`` exposure.
        """
        dev, B = self.device, self.block_size
        stages = int(math.log2(B))
        per_stage = dev.smem_latency_cycles + dev.barrier_cycles(B)
        core = 7.0 * stages * per_stage * self._stall_lanes
        warps = max(1, B // 32)
        exponent = OVERHEAD_WARP_EXPONENT.get(dev.name, 0.7)
        share = self._overhead_share * (warps / 2.0) ** exponent
        overhead = share * core
        return core, overhead

    def _tc_reduction_slots(self, resident: int) -> tuple[float, float, int]:
        """(measured-region, overhead, issue count) of the 2 matrix
        reductions; one warp drives the Tensor Core."""
        dev, B = self.device, self.block_size
        issues_per_tile = 1 if self.backend == "tc-fp16" else 3
        unit_flops = dev.tc_flops_per_cycle_unit * (
            2.0 if self.backend == "tc-fp16" else 1.0)
        contention = min(TC_CONTENTION_CAP,
                         max(1.0, resident / dev.tensor_cores_per_sm))
        batches = math.ceil(B / VECTORS_PER_TILE)
        issues = 2 * (batches + 1) * issues_per_tile   # A*P per batch + Q*V
        warp_cycles = issues * (dev.mma_issue_cycles
                                + contention * MMA_FLOPS / unit_flops)
        core = 32.0 * warp_cycles                      # one warp's lanes
        # pack 4-vectors into shared tiles, 2 barriers; TCEC adds operand
        # splitting and external RN accumulation
        overhead_cycles = (4.0 * dev.smem_latency_cycles
                           + 2.0 * dev.barrier_cycles(B))
        if self.backend == "tcec-tf32":
            overhead_cycles += 2.0 * dev.smem_latency_cycles + 24.0
        overhead = overhead_cycles * self._stall_lanes * 0.5
        return core, overhead, issues

    def _resident(self, wl: KernelWorkload) -> int:
        per_sm = math.ceil(wl.n_blocks / self.device.sm_count)
        return min(self.device.resident_blocks(self.block_size), per_sm)

    # ------------------------------------------------------------------
    # public API

    def iteration_cost(self, wl: KernelWorkload,
                       segments: tuple[SegmentCost, ...] = ADADELTA_SEGMENTS,
                       with_reductions: bool = True) -> IterationCost:
        """Cost of one kernel iteration over the whole grid."""
        dev, B = self.device, self.block_size
        cost = IterationCost(device=dev, block_size=B, backend=self.backend)
        n = wl.n_blocks

        grid_bytes = 0.0
        for seg in segments:
            cost.clock.charge("compute", n * self._segment_slots(seg, wl))
            items = seg.items(wl)
            cost.ops.add(fma_flops=n * items * seg.flops,
                         alu_ops=n * items * seg.alu)
            grid_bytes += n * items * seg.dram_bytes
        # one block-wide barrier per segment
        cost.clock.charge(
            "barrier",
            n * len(segments) * dev.barrier_cycles(B) * self._stall_lanes * 0.25)

        if with_reductions:
            if self.backend == "baseline":
                core, over = self._baseline_reduction_slots()
                cost.clock.charge("reduction", n * core)
                cost.clock.charge("reduction_overhead", n * over)
                cost.ops.add(fma_flops=n * 8.0 * B, alu_ops=n * 4.0 * B)
            else:
                core, over, issues = self._tc_reduction_slots(
                    self._resident(wl))
                cost.clock.charge("reduction", n * core)
                cost.clock.charge("reduction_overhead", n * over)
                cost.ops.add(tc_flops=n * issues * MMA_FLOPS,
                             alu_ops=n * 6.0 * B)
                if self.backend == "tcec-tf32":
                    cost.ops.add(fma_flops=n * 12.0 * B)

        cost.ops.add(dram_bytes=grid_bytes)
        cost.mem_seconds = grid_bytes / dev.mem_bytes_per_second
        return cost

    def iteration_seconds(self, wl: KernelWorkload) -> float:
        """Wall time of one ADADELTA iteration across the grid."""
        return self.iteration_cost(wl).seconds

    def score_only_seconds(self, wl: KernelWorkload) -> float:
        """Wall time of one scoring-only (GA kernel) iteration; the genetic
        algorithm keeps its single SIMT energy reduction in all back-ends."""
        saved = self.backend
        try:
            self.backend = "baseline"
            cost = self.iteration_cost(wl, segments=SCORE_SEGMENTS,
                                       with_reductions=False)
            dev, B = self.device, self.block_size
            stages = int(math.log2(B))
            per_stage = dev.smem_latency_cycles + dev.barrier_cycles(B)
            cost.clock.charge(
                "reduction",
                wl.n_blocks * stages * per_stage * self._stall_lanes)
        finally:
            self.backend = saved
        return cost.seconds

    def tensor_fraction(self, wl: KernelWorkload) -> float:
        """clock64-measured reduction fraction ``f`` for this back-end."""
        return self.iteration_cost(wl).tensor_fraction()
