"""A functional SIMT thread-block machine (threads as coroutines).

The cost model prices kernels analytically; this module *executes* them
with real CUDA block semantics, as a validation substrate:

* every thread is a Python generator advanced by the block scheduler;
* ``yield from ctx.syncthreads()`` is a block-wide barrier — the scheduler
  verifies all live threads arrive (barrier divergence raises, exactly the
  undefined behaviour CUDA forbids);
* ``yield from ctx.shfl_down(value, offset)`` exchanges registers inside a
  32-lane warp (``__shfl_down_sync``);
* ``yield from ctx.mma_sync(a_frag, b_frag, c_frag, ...)`` is the paper's
  32-threads-to-1-Tensor-Core mapping: all 32 lanes of a warp must arrive,
  the warp issues one 16x16x16 MMA on the simulated Tensor Core, and every
  lane observes the result.

The reduction kernels in :mod:`repro.simt.kernels` run on this machine and
are tested bit-identical to the vectorised implementations in
:mod:`repro.reduction` — the proof that the fast NumPy paths compute what
the CUDA kernels would.
"""

from __future__ import annotations

from typing import Callable, Generator

import numpy as np

__all__ = ["BarrierDivergence", "SharedMemory", "ThreadContext",
           "ThreadBlock", "WARP_SIZE"]

WARP_SIZE = 32


class BarrierDivergence(RuntimeError):
    """Threads of one block reached different synchronisation points."""


class SharedMemory:
    """Block-shared float32 storage with CUDA-like indexing."""

    def __init__(self, size: int) -> None:
        self.data = np.zeros(size, dtype=np.float32)

    def __getitem__(self, idx):
        return self.data[idx]

    def __setitem__(self, idx, value):
        self.data[idx] = np.float32(value)

    def __len__(self) -> int:
        return self.data.size


class ThreadContext:
    """Per-thread view of the block: ``tid``, shared memory, sync prims.

    The synchronisation methods are generators — kernels must delegate
    with ``yield from``.
    """

    def __init__(self, tid: int, block: "ThreadBlock") -> None:
        self.tid = tid
        self.block = block
        self.shared = block.shared

    @property
    def lane(self) -> int:
        """Lane index within the warp."""
        return self.tid % WARP_SIZE

    @property
    def warp(self) -> int:
        """Warp index within the block."""
        return self.tid // WARP_SIZE

    def syncthreads(self) -> Generator:
        """Block-wide barrier (``__syncthreads``)."""
        yield ("barrier",)

    def shfl_down(self, value: float, offset: int) -> Generator:
        """``__shfl_down_sync``: returns lane ``lane + offset``'s value
        (own value if out of range).  All lanes of the warp must arrive."""
        received = yield ("shfl_down", np.float32(value), offset)
        return received

    def mma_sync(self, a: np.ndarray, b: np.ndarray, c: np.ndarray,
                 in_format: str = "fp16", accumulate: str = "rz",
                 accumulator_format: str = "fp32") -> Generator:
        """Warp-cooperative 16x16x16 MMA on the simulated Tensor Core.

        Every lane passes the same fragment arrays; the warp issues one
        MMA and each lane receives the (shared) result tile.
        """
        result = yield ("mma", a, b, c, in_format, accumulate,
                        accumulator_format)
        return result


class ThreadBlock:
    """Executes a kernel with ``block_size`` coroutine threads.

    Parameters
    ----------
    block_size:
        Threads per block (multiple of 32, like the paper's 64/128/256).
    shared_size:
        Shared-memory floats available to the kernel.
    """

    def __init__(self, block_size: int, shared_size: int = 4096) -> None:
        if block_size <= 0 or block_size % WARP_SIZE:
            raise ValueError("block_size must be a positive multiple of 32")
        self.block_size = block_size
        self.shared = SharedMemory(shared_size)
        self.barriers_executed = 0
        self.mma_issues = 0

    # ------------------------------------------------------------------

    def run(self, kernel: Callable[..., Generator], *args) -> None:
        """Run ``kernel(ctx, *args)`` across all threads to completion.

        Scheduling semantics match CUDA's: warp primitives (``shfl_down``,
        ``mma``) complete as soon as all 32 lanes of the warp arrive —
        independently of other warps, which may be blocked at a
        ``__syncthreads`` barrier; the barrier itself releases only once
        *every* live thread reaches it.  Inconsistent states (a warp split
        across primitives, threads exiting past a barrier others wait at)
        raise :class:`BarrierDivergence`, CUDA's undefined behaviour.
        """
        threads: list[Generator | None] = []
        for tid in range(self.block_size):
            gen = kernel(ThreadContext(tid, self), *args)
            if not hasattr(gen, "send"):
                raise TypeError("kernel must be a generator function "
                                "(use 'yield from ctx.syncthreads()')")
            threads.append(gen)
        #: current blocked request per thread; None = ready to advance
        requests: list = [None] * self.block_size
        pending: list = [None] * self.block_size   # value for next send

        def advance(tid: int) -> None:
            gen = threads[tid]
            if gen is None:
                return
            try:
                requests[tid] = gen.send(pending[tid])
            except StopIteration:
                threads[tid] = None
                requests[tid] = None
            pending[tid] = None

        while True:
            for tid in range(self.block_size):
                if threads[tid] is not None and requests[tid] is None:
                    advance(tid)
            live = [t for t in range(self.block_size)
                    if threads[t] is not None]
            if not live:
                return

            progressed = False

            # 1. serve warp primitives warp by warp
            for w in range(self.block_size // WARP_SIZE):
                lanes = [t for t in range(w * WARP_SIZE, (w + 1) * WARP_SIZE)]
                alive = [t for t in lanes if threads[t] is not None]
                if not alive:
                    continue
                kinds = {requests[t][0] for t in alive}
                if kinds <= {"barrier"}:
                    continue
                if len(kinds) != 1:
                    raise BarrierDivergence(
                        f"warp {w} diverged across sync points: {kinds}")
                kind = next(iter(kinds))
                if len(alive) != WARP_SIZE:
                    raise BarrierDivergence(
                        f"warp {w}: {kind} with exited lanes (deadlock)")
                self._execute_warp(kind, lanes, requests, pending)
                for t in lanes:
                    requests[t] = None
                progressed = True

            if progressed:
                continue

            # 2. block-wide barrier: every live thread must be there
            if all(requests[t][0] == "barrier" for t in live):
                if len(live) != sum(1 for g in threads if g is not None):
                    raise AssertionError  # unreachable; live is that set
                if any(threads[t] is None for t in range(self.block_size)
                       if requests[t] is not None):
                    raise BarrierDivergence("exited thread held a request")
                if len(live) != self.block_size and \
                        any(threads[t] is None for t in range(self.block_size)):
                    raise BarrierDivergence(
                        "some threads exited while others wait at a barrier")
                self.barriers_executed += 1
                for t in live:
                    requests[t] = None
                continue

            raise BarrierDivergence(
                "threads blocked inconsistently: "
                f"{ {requests[t][0] for t in live} }")

    # ------------------------------------------------------------------

    def _execute_warp(self, kind: str, lanes: list, requests: list,
                      pending: list) -> None:
        reqs = [requests[t] for t in lanes]
        if kind == "shfl_down":
            offsets = {r[2] for r in reqs}
            if len(offsets) != 1:
                raise BarrierDivergence("shfl_down offsets differ in warp")
            offset = next(iter(offsets))
            values = np.array([r[1] for r in reqs], dtype=np.float32)
            shifted = values.copy()
            shifted[: WARP_SIZE - offset] = values[offset:]
            for k, t in enumerate(lanes):
                pending[t] = np.float32(shifted[k])
        elif kind == "mma":
            from repro.tensorcore.mma import mma as tc_mma
            _, a, b, c, fmt, acc, acc_fmt = reqs[0]
            result = tc_mma(a, b, c, in_format=fmt, accumulate=acc,
                            accumulator_format=acc_fmt)
            self.mma_issues += 1
            for t in lanes:
                pending[t] = result
        else:   # pragma: no cover - guarded by the caller
            raise AssertionError(kind)
