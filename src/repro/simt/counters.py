"""Cycle and operation accounting — the ``clock64()`` analogue.

The paper instruments AutoDock-GPU with ``clock64()`` around the seven sum
reduction regions to measure the fraction ``f`` of kernel cycles spent in
code offloaded to Tensor Cores (Section 5.1.1).  :class:`RegionClock`
reproduces that workflow: the cost model charges cycles into named regions
and ``fraction("reduction")`` returns ``f``.

:class:`OpCounters` tallies retired work by functional unit (FMA / ALU /
Tensor Core) and DRAM traffic, from which the profiler derives the Table 6
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RegionClock", "OpCounters"]


class RegionClock:
    """Accumulates simulated cycles into named regions.

    Mirrors wrapping kernel code regions with ``clock64()`` reads: every
    charge lands both in the named region and in the running total.
    """

    def __init__(self) -> None:
        self._regions: dict[str, float] = {}

    def charge(self, region: str, cycles: float) -> None:
        """Add ``cycles`` to ``region`` (creating it on first use)."""
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles}")
        self._regions[region] = self._regions.get(region, 0.0) + cycles

    def cycles(self, region: str | None = None) -> float:
        """Cycles charged to ``region``, or the total when region is None."""
        if region is None:
            return sum(self._regions.values())
        return self._regions.get(region, 0.0)

    def fraction(self, region: str) -> float:
        """Share of total cycles spent in ``region`` — the paper's ``f``."""
        total = self.cycles()
        if total == 0.0:
            return 0.0
        return self.cycles(region) / total

    def regions(self) -> dict[str, float]:
        """Copy of the per-region cycle map."""
        return dict(self._regions)

    def reset(self) -> None:
        self._regions.clear()

    def merge(self, other: "RegionClock") -> None:
        """Fold another clock's charges into this one."""
        for region, cycles in other._regions.items():
            self.charge(region, cycles)


@dataclass
class OpCounters:
    """Retired-work tallies by functional unit plus DRAM traffic.

    ``fma_flops``  FP32 FLOPs retired on fused multiply-add pipes
    ``alu_ops``    integer / logic / conversion operations (ALU pipe)
    ``tc_flops``   FLOPs retired on Tensor Cores
    ``dram_bytes`` bytes moved to/from device memory
    """

    fma_flops: float = 0.0
    alu_ops: float = 0.0
    tc_flops: float = 0.0
    dram_bytes: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def total_flops(self) -> float:
        """All floating-point work, the numerator of OI and GFLOP/s."""
        return self.fma_flops + self.tc_flops

    def add(self, *, fma_flops: float = 0.0, alu_ops: float = 0.0,
            tc_flops: float = 0.0, dram_bytes: float = 0.0) -> None:
        if min(fma_flops, alu_ops, tc_flops, dram_bytes) < 0:
            raise ValueError("operation counts must be non-negative")
        self.fma_flops += fma_flops
        self.alu_ops += alu_ops
        self.tc_flops += tc_flops
        self.dram_bytes += dram_bytes

    def merge(self, other: "OpCounters") -> None:
        self.add(fma_flops=other.fma_flops, alu_ops=other.alu_ops,
                 tc_flops=other.tc_flops, dram_bytes=other.dram_bytes)

    def scaled(self, factor: float) -> "OpCounters":
        """A copy with every tally multiplied by ``factor``."""
        return OpCounters(
            fma_flops=self.fma_flops * factor,
            alu_ops=self.alu_ops * factor,
            tc_flops=self.tc_flops * factor,
            dram_bytes=self.dram_bytes * factor,
        )
