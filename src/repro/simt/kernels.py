"""CUDA-style kernels for the SIMT machine — the reductions, line by line.

These are the thread-level programs the paper's Section 3 describes,
written for :class:`repro.simt.machine.ThreadBlock`:

* :func:`tree_reduce_kernel` — the baseline shared-memory tree (seven of
  these run per gradient iteration);
* :func:`warp_shuffle_reduce_kernel` — the warp-shuffle variant;
* :func:`tc_reduce_kernel` — Schieffer & Peng's matrix reduction: threads
  stage the 4-vectors into the Equation (2) layout in shared memory, warp
  0 issues the ``V += A x P`` and ``W = Q x V`` MMAs (the 32-to-1
  thread-to-Tensor-Core mapping).

Each is tested bit-identical to its vectorised counterpart in
:mod:`repro.reduction` — the fast NumPy paths compute exactly what these
thread programs compute.
"""

from __future__ import annotations

import numpy as np

from repro.reduction.matrices import TILE, VECTORS_PER_TILE, build_p_matrix, \
    build_q_matrix
from repro.simt.machine import WARP_SIZE, ThreadContext

__all__ = ["tree_reduce_kernel", "warp_shuffle_reduce_kernel",
           "tc_reduce_kernel"]


def tree_reduce_kernel(ctx: ThreadContext, values: np.ndarray,
                       out: np.ndarray):
    """Shared-memory stride-halving tree over ``block_size`` slots.

    ``values`` may be shorter than the block (missing lanes load zero) but
    not longer; ``out[0]`` receives the block sum.
    """
    tid = ctx.tid
    n = ctx.block.block_size
    smem = ctx.shared
    smem[tid] = values[tid] if tid < len(values) else 0.0
    yield from ctx.syncthreads()

    s = n // 2
    while s > 0:
        if tid < s:
            smem[tid] = np.float32(smem[tid] + smem[tid + s])
        yield from ctx.syncthreads()
        s //= 2
    if tid == 0:
        out[0] = smem[0]


def warp_shuffle_reduce_kernel(ctx: ThreadContext, values: np.ndarray,
                               out: np.ndarray):
    """Warp-shuffle butterfly + sequential cross-warp combine."""
    tid = ctx.tid
    v = np.float32(values[tid]) if tid < len(values) else np.float32(0.0)

    offset = WARP_SIZE // 2
    while offset > 0:
        other = yield from ctx.shfl_down(v, offset)
        v = np.float32(v + other)
        offset //= 2

    # lane 0 of each warp publishes its partial
    if ctx.lane == 0:
        ctx.shared[ctx.warp] = v
    yield from ctx.syncthreads()

    if tid == 0:
        acc = np.float32(ctx.shared[0])
        for w in range(1, ctx.block.block_size // WARP_SIZE):
            acc = np.float32(acc + ctx.shared[w])
        out[0] = acc


def tc_reduce_kernel(ctx: ThreadContext, vectors: np.ndarray,
                     out: np.ndarray, in_format: str = "fp16",
                     accumulator_format: str = "fp16"):
    """The Schieffer-Peng matrix reduction as a thread program.

    ``vectors`` is ``(n, 4)``; ``out[0:4]`` receives the four sums.
    Threads cooperatively stage each 64-vector batch into the Equation (2)
    column-major A tile in shared memory; warp 0 drives the Tensor Core.
    """
    tid = ctx.tid
    n = vectors.shape[0]
    n_tiles = max(1, -(-n // VECTORS_PER_TILE))
    smem = ctx.shared   # A tile lives in smem[0:256]

    p_tile = build_p_matrix()
    q_tile = build_q_matrix()
    v_acc = np.zeros((TILE, TILE), dtype=np.float32)

    for t in range(n_tiles):
        # stage this batch's 64 vectors (zero-padded) into the A layout:
        # A[4j + i, c] = component i of vector 64t + 4c + j, column-major
        for flat in range(tid, TILE * TILE, ctx.block.block_size):
            row, col = flat % TILE, flat // TILE
            j, i = divmod(row, 4)
            k = t * VECTORS_PER_TILE + 4 * col + j
            smem[flat] = vectors[k, i] if k < n else 0.0
        yield from ctx.syncthreads()

        if ctx.warp == 0:
            a_tile = np.ascontiguousarray(
                smem.data[: TILE * TILE].reshape(TILE, TILE).T)
            v_acc = yield from ctx.mma_sync(
                a_tile, p_tile, v_acc, in_format=in_format,
                accumulator_format=accumulator_format)
        yield from ctx.syncthreads()

    if ctx.warp == 0:
        w_tile = yield from ctx.mma_sync(
            q_tile, v_acc, np.zeros((TILE, TILE), dtype=np.float32),
            in_format=in_format, accumulator_format=accumulator_format)
        if tid < 4:
            out[tid] = w_tile[tid, 0]
    yield from ctx.syncthreads()
