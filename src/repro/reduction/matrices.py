"""The A / P / Q matrices of the matrix-shaped reduction (Equations 1-4).

Schieffer & Peng reduce four-element vectors ``{x, y, z, e}`` 64 at a time by
packing them into a 16x16 matrix ``A`` (column ``c`` holds vectors
``4c .. 4c+3`` stacked component-first), multiplying by the all-ones matrix
``P`` (``V += A x P`` sums across columns), and finally by the block-identity
matrix ``Q`` (``W = Q x V`` folds the four row groups together).  Column 0 of
``W`` then holds the four totals.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_p_matrix", "build_q_matrix", "pack_vectors", "unpack_result",
           "VECTORS_PER_TILE", "TILE"]

#: WMMA tile edge.
TILE = 16

#: Four-element vectors held by one A tile (16 columns x 4 vectors each).
VECTORS_PER_TILE = 64


def build_p_matrix() -> np.ndarray:
    """The all-ones 16x16 matrix ``P`` of Equation (2)."""
    return np.ones((TILE, TILE), dtype=np.float32)


def build_q_matrix() -> np.ndarray:
    """The 16x16 block matrix ``Q`` of 4x4 identity tiles (Equation 2).

    ``Q[r, c] = 1`` iff ``c ≡ r (mod 4)``.
    """
    r = np.arange(TILE)
    q = (r[:, None] % 4 == r[None, :] % 4).astype(np.float32)
    return q


def pack_vectors(vectors: np.ndarray) -> np.ndarray:
    """Pack ``(..., n, 4)`` vectors into ``(..., n_tiles, 16, 16)`` A tiles.

    Vectors are zero-padded to a multiple of 64.  Within a tile, element
    ``A[4j + i, c]`` is component ``i`` of vector ``4c + j`` — the
    column-major layout of Equation (2).
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim < 2 or vectors.shape[-1] != 4:
        raise ValueError(f"expected (..., n, 4) vectors, got {vectors.shape}")
    lead = vectors.shape[:-2]
    n = vectors.shape[-2]
    n_tiles = max(1, -(-n // VECTORS_PER_TILE))
    padded = np.zeros(lead + (n_tiles * VECTORS_PER_TILE, 4), dtype=np.float32)
    padded[..., :n, :] = vectors
    # (..., tiles, 16 columns, 4 vectors-in-column, 4 components)
    v = padded.reshape(lead + (n_tiles, TILE, 4, 4))
    # rows are (j, i) pairs -> move (j, i) before the column axis
    a = np.moveaxis(v, (-2, -1), (-3, -2))        # (..., tiles, 4j, 4i, 16c)
    return np.ascontiguousarray(
        a.reshape(lead + (n_tiles, TILE, TILE))
    )


def unpack_result(w: np.ndarray) -> np.ndarray:
    """Extract the four reduction totals from the ``W`` matrix (first column
    of Equation 4). Accepts ``(..., 16, 16)``, returns ``(..., 4)``."""
    w = np.asarray(w)
    if w.shape[-2:] != (TILE, TILE):
        raise ValueError(f"expected (..., 16, 16) W matrix, got {w.shape}")
    return np.ascontiguousarray(w[..., :4, 0])
