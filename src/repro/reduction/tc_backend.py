"""Matrix-shaped Tensor Core reductions (batched numerical kernels).

Two variants of the Equation (1) pipeline ``W = Q x (sum_t A_t x P)``:

* :func:`tc_reduce_xyze` — Schieffer & Peng's FP16 version.  ``V`` is kept in
  the Tensor Core accumulator across batches, so every batch suffers an
  FP16 input truncation *and* a round-toward-zero accumulation; values whose
  magnitude exceeds FP16 range saturate.  This is the accuracy-degrading
  baseline of Figure 1.
* :func:`tcec_reduce_xyze` — the paper's TCEC version.  TF32 operands with
  two error-correction terms per product, and the running ``V`` accumulation
  moved outside the Tensor Core onto FP32/RN SIMT adds (Figure 2, right).

Both accept leading batch dimensions (a population of thread blocks) and are
numerically identical to issuing each block's WMMA calls one at a time
through :mod:`repro.tensorcore.wmma`.
"""

from __future__ import annotations

import numpy as np

from repro.fpemu.rounding import round_f64_to_f32_rn
from repro.reduction.matrices import (
    TILE,
    build_p_matrix,
    build_q_matrix,
    pack_vectors,
    unpack_result,
)
from repro.tensorcore.mma import mma
from repro.tensorcore.tcec import TcecConfig, tcec_mma

__all__ = ["tc_reduce_xyze", "tcec_reduce_xyze"]

_P = build_p_matrix()
_Q = build_q_matrix()


def tc_reduce_xyze(vectors: np.ndarray, *, in_format: str = "fp16",
                   accumulate: str = "rz",
                   accumulator_format: str = "fp16") -> np.ndarray:
    """Schieffer-Peng reduction of ``(..., n, 4)`` vectors to ``(..., 4)``.

    ``V`` accumulates across 64-vector batches inside the Tensor Core
    (``mma_sync(V, A, P, V)``), compounding one rounding per batch.  Their
    kernel declares ``frag_V`` as ``half`` (paper Listing 1, bottom), so the
    default accumulator format is FP16 — running sums lose absolute
    precision as they grow and saturate beyond 65504.
    """
    tiles = pack_vectors(vectors)              # (..., n_tiles, 16, 16)
    lead = tiles.shape[:-3]
    n_tiles = tiles.shape[-3]
    v = np.zeros(lead + (TILE, TILE), dtype=np.float32)
    for t in range(n_tiles):
        v = mma(tiles[..., t, :, :], _P, v, in_format=in_format,
                accumulate=accumulate, accumulator_format=accumulator_format)
    w = mma(_Q, v, np.zeros_like(v), in_format=in_format,
            accumulate=accumulate, accumulator_format=accumulator_format)
    return unpack_result(w)


def tcec_reduce_xyze(vectors: np.ndarray,
                     config: TcecConfig | None = None) -> np.ndarray:
    """TCEC reduction of ``(..., n, 4)`` vectors to ``(..., 4)``.

    Every Tensor Core issue computes a single product with a zero
    accumulator; the running ``V`` is carried on simulated SIMT cores in
    FP32 round-to-nearest, then folded by an error-corrected ``Q x V``.
    """
    config = config or TcecConfig()
    tiles = pack_vectors(vectors)
    lead = tiles.shape[:-3]
    n_tiles = tiles.shape[-3]
    v = np.zeros(lead + (TILE, TILE), dtype=np.float32)
    zero = np.zeros(lead + (TILE, TILE), dtype=np.float32)
    for t in range(n_tiles):
        prod = tcec_mma(tiles[..., t, :, :], _P, zero, config)
        # external FP32/RN accumulation (one SIMT add per element)
        v = round_f64_to_f32_rn(v.astype(np.float64) + prod.astype(np.float64))
    w = tcec_mma(_Q, v, np.zeros_like(v), config)
    return unpack_result(w)
