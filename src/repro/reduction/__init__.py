"""Block-level sum reductions: SIMT baseline, Tensor Core, and TCEC.

The ADADELTA gradient kernel ends every iteration with seven block-level sum
reductions (energy, force x/y/z, torque x/y/z).  Three interchangeable
back-ends are provided:

* :class:`SimtReduction` — sequential shared-memory tree reductions in FP32,
  the AutoDock-GPU baseline;
* :class:`TcFp16Reduction` — Schieffer & Peng's matrix-shaped reduction
  (Equations 1-4): 4-element vectors packed into 16x16 tiles, reduced with
  two FP16 Tensor Core GEMMs, accumulator kept inside the TC (RZ);
* :class:`TcecReduction` — the paper's contribution: same matrix shape but
  TF32 operands, error-corrected products, and FP32/RN accumulation outside
  the Tensor Core.

All back-ends share the batched vector layout of :mod:`repro.reduction.matrices`.
"""

from repro.reduction.api import (
    ReductionBackend,
    SimtReduction,
    TcFp16Reduction,
    TcecReduction,
    get_reduction_backend,
)
from repro.reduction.matrices import (
    build_p_matrix,
    build_q_matrix,
    pack_vectors,
    unpack_result,
)
from repro.reduction.simt_backend import simt_tree_reduce

__all__ = [
    "ReductionBackend",
    "SimtReduction",
    "TcFp16Reduction",
    "TcecReduction",
    "get_reduction_backend",
    "build_p_matrix",
    "build_q_matrix",
    "pack_vectors",
    "unpack_result",
    "simt_tree_reduce",
]
