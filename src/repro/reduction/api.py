"""Pluggable reduction back-ends for the docking kernels.

A :class:`ReductionBackend` turns per-contribution 4-vectors
``{x, y, z, e}`` into block-level totals.  The ADADELTA kernel calls
:meth:`~ReductionBackend.reduce4` twice per iteration (forces+energy,
torques) — the seven reductions of Section 3 — and the choice of back-end is
the *only* difference between the paper's three configurations, both
numerically (gradient accuracy) and in the cost model (cycles charged).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.reduction.simt_backend import simt_tree_reduce, warp_shuffle_reduce
from repro.reduction.tc_backend import tc_reduce_xyze, tcec_reduce_xyze
from repro.tensorcore.tcec import TcecConfig

__all__ = [
    "ReductionBackend",
    "SimtReduction",
    "WarpShuffleReduction",
    "TcFp16Reduction",
    "TcecReduction",
    "ExactReduction",
    "get_reduction_backend",
]


class ReductionBackend:
    """Interface: reduce ``(..., n, 4)`` contribution vectors to ``(..., 4)``.

    Back-ends must honour the *suffix-zero-padding contract* relied on by
    the cohort engine (:mod:`repro.docking.cohort`): appending all-zero
    4-vectors after the real contributions of a reduction row must leave
    the result bit-identical, and rows of a leading batch axis must reduce
    independently of each other.  All five built-in back-ends satisfy this
    — the SIMT trees pair real elements exactly as in the unpadded call
    (the zero partials only ever add ``+0.0``), and the matrix back-ends'
    extra all-zero fragments contribute nothing through either FP16 or
    TF32+EC accumulation — which is what lets a packed multi-ligand batch
    run one wide ``reduce4`` per call site with per-ligand slices
    bit-identical to separate single-ligand calls.
    """

    #: cost-model backend key (see repro.simt.costmodel.REDUCTION_BACKENDS)
    cost_key: str = "baseline"
    name: str = "abstract"
    #: suffix-zero rows / batch slices leave results bit-identical (see
    #: class docstring); the cohort engine requires this
    pad_invariant: bool = True

    def reduce4(self, vectors: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(repr=False)
class SimtReduction(ReductionBackend):
    """Seven sequential FP32 shared-memory tree reductions (baseline)."""

    cost_key: str = "baseline"
    name: str = "baseline"

    def reduce4(self, vectors: np.ndarray) -> np.ndarray:
        # one reduction over axis -2 covers all four lanes: the pairwise
        # tree is applied per lane exactly as four per-lane calls would,
        # without the strided lane extraction and re-stack
        v = np.asarray(vectors, dtype=np.float32)
        return simt_tree_reduce(v, axis=-2)


@dataclass(repr=False)
class WarpShuffleReduction(ReductionBackend):
    """AutoDock-GPU's warp-shuffle SIMT variant (no shared-memory tree).

    Numerically in the same FP32 accuracy class as the baseline (a
    different rounding order); priced as the baseline by the cost model
    (it removes shared-memory latency but keeps the sync rhythm).
    """

    cost_key: str = "baseline"
    name: str = "warp-shuffle"

    def reduce4(self, vectors: np.ndarray) -> np.ndarray:
        # single call over axis -2: per-lane butterfly order is unchanged
        v = np.asarray(vectors, dtype=np.float32)
        return warp_shuffle_reduce(v, axis=-2)


@dataclass(repr=False)
class TcFp16Reduction(ReductionBackend):
    """Schieffer-Peng FP16 matrix reduction (accuracy-degrading, Figure 1).

    Faithful to their kernel: FP16 operands *and* an FP16 accumulator
    fragment, with the Tensor Core's round-toward-zero behaviour.
    """

    in_format: str = "fp16"
    accumulate: str = "rz"
    accumulator_format: str = "fp16"
    cost_key: str = "tc-fp16"
    name: str = "tc-fp16"

    def reduce4(self, vectors: np.ndarray) -> np.ndarray:
        return tc_reduce_xyze(vectors, in_format=self.in_format,
                              accumulate=self.accumulate,
                              accumulator_format=self.accumulator_format)


@dataclass(repr=False)
class TcecReduction(ReductionBackend):
    """The paper's TCEC reduction: TF32 + error correction (Figure 3)."""

    config: TcecConfig = field(default_factory=TcecConfig)
    cost_key: str = "tcec-tf32"
    name: str = "tcec-tf32"

    def reduce4(self, vectors: np.ndarray) -> np.ndarray:
        return tcec_reduce_xyze(vectors, self.config)


@dataclass(repr=False)
class ExactReduction(ReductionBackend):
    """Float64 reference reduction (not a paper configuration; used by tests
    and for establishing ground-truth global minima)."""

    cost_key: str = "baseline"
    name: str = "exact"

    def reduce4(self, vectors: np.ndarray) -> np.ndarray:
        return np.asarray(vectors, dtype=np.float64).sum(axis=-2).astype(np.float32)


_REGISTRY = {
    "baseline": SimtReduction,
    "warp-shuffle": WarpShuffleReduction,
    "tc-fp16": TcFp16Reduction,
    "tcec-tf32": TcecReduction,
    "exact": ExactReduction,
}


def get_reduction_backend(name: str | ReductionBackend, **kwargs) -> ReductionBackend:
    """Instantiate a reduction back-end by name.

    Accepts an already-constructed back-end (returned unchanged) so APIs can
    take either form.  A ``"guarded:<name>"`` spec wraps the named back-end
    in a fault-checking :class:`~repro.robustness.GuardedReduction` (keyword
    arguments — ``policy``, ``ledger``, ... — go to the wrapper)::

        get_reduction_backend("guarded:tc-fp16", policy="degrade")
    """
    if isinstance(name, ReductionBackend):
        return name
    spec = name.lower()
    if spec.startswith("guarded:"):
        # local import: robustness builds on this module
        from repro.robustness.guarded import GuardedReduction
        inner = get_reduction_backend(spec.removeprefix("guarded:"))
        return GuardedReduction(inner, **kwargs)
    try:
        cls = _REGISTRY[spec]
    except KeyError:
        raise ValueError(
            f"unknown reduction backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
