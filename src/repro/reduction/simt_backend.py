"""FP32 SIMT reductions — shared-memory tree and warp-shuffle butterfly.

:func:`simt_tree_reduce` reproduces the classic stride-halving tree in
shared memory: values are padded with zeros to a power of two, then
pairwise-added in FP32 round-to-nearest, ``log2`` stages deep.  This is
the reduction order the OpenCL/CUDA baselines execute, so its rounding
error is the reference the Tensor Core variants are compared against.

:func:`warp_shuffle_reduce` models AutoDock-GPU's warp-level optimisation:
each 32-lane warp reduces with a ``__shfl_down_sync`` butterfly (no shared
memory, no block barrier inside the warp), then one warp combines the
per-warp partials.  The summation *tree* is identical in shape to the
shared-memory version within a warp, but the cross-warp combine is a short
sequential chain — a subtly different FP32 rounding order, same O(eps)
accuracy class.
"""

from __future__ import annotations

import numpy as np

__all__ = ["simt_tree_reduce", "warp_shuffle_reduce"]

_WARP = 32


def simt_tree_reduce(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Tree-reduce ``values`` along ``axis`` with FP32 pairwise adds.

    Matches the shared-memory stride-halving loop::

        for (s = n/2; s > 0; s >>= 1)
            if (tid < s) buf[tid] += buf[tid + s];

    Zero padding to the next power of two leaves sums unchanged.
    """
    v = np.asarray(values, dtype=np.float32)
    v = np.moveaxis(v, axis, -1)
    n = v.shape[-1]
    if n == 0:
        return np.zeros(v.shape[:-1], dtype=np.float32)
    size = 1 << (n - 1).bit_length()
    if size != n:
        pad = np.zeros(v.shape[:-1] + (size - n,), dtype=np.float32)
        v = np.concatenate([v, pad], axis=-1)
    else:
        v = v.copy()
    while size > 1:
        half = size // 2
        # in-place pairwise add into the scratch copy (same FP32 adds the
        # copy-assign form performed, without the per-stage temporary)
        v[..., :half] += v[..., half:size]
        size = half
    return v[..., 0]


def warp_shuffle_reduce(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Warp-shuffle butterfly reduction along ``axis`` in FP32.

    Lanes are grouped into 32-wide warps (zero padding); each warp folds
    with the ``offset = 16, 8, 4, 2, 1`` shuffle chain::

        for (offset = 16; offset > 0; offset >>= 1)
            v += __shfl_down_sync(mask, v, offset);

    and lane 0's partials are then summed sequentially across warps (the
    final pass a single warp performs in the CUDA kernel).
    """
    v = np.asarray(values, dtype=np.float32)
    v = np.moveaxis(v, axis, -1)
    n = v.shape[-1]
    if n == 0:
        return np.zeros(v.shape[:-1], dtype=np.float32)
    n_warps = -(-n // _WARP)
    padded = np.zeros(v.shape[:-1] + (n_warps * _WARP,), dtype=np.float32)
    padded[..., :n] = v
    lanes = padded.reshape(v.shape[:-1] + (n_warps, _WARP)).copy()
    offset = _WARP // 2
    while offset > 0:
        lanes[..., :offset] += lanes[..., offset:2 * offset]
        offset //= 2
    partials = lanes[..., 0]                     # (..., n_warps)
    acc = partials[..., 0]
    for w in range(1, n_warps):
        acc = (acc + partials[..., w]).astype(np.float32)
    return acc
