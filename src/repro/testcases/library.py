"""The 42-case evaluation library (names, N_rot spread, caching).

Case names follow the AD-GPU set-of-42 PDB codes; the rotatable-bond counts
span 0-32 as the paper states, with ``7cpa`` fixed at ``N_rot = 15``
("medium complexity", Section 5.1.1).  Cases are generated lazily and
cached per process — building all 42 takes tens of seconds, so tests and
benchmarks request only what they need via :func:`get_test_case` /
:func:`set_of_42`.
"""

from __future__ import annotations

from repro.testcases.generator import TestCase, make_test_case

__all__ = ["SET_OF_42", "get_test_case", "set_of_42", "clear_cache"]

#: (name, n_rot) for the 42 evaluation complexes.  Names are the PDB codes
#: of the AD-GPU set (labels for the synthetic molecules); N_rot covers the
#: paper's 0-32 range with a ligand-library-like skew toward small counts.
SET_OF_42: tuple[tuple[str, int], ...] = (
    ("1u4d", 0), ("1xoz", 1), ("1yv3", 2), ("1owe", 3), ("1oyt", 4),
    ("1ywr", 5), ("1t46", 5), ("2bm2", 6), ("1mzc", 6), ("1r55", 7),
    ("5wlo", 7), ("1kzk", 8), ("3ce3", 8), ("5kao", 9), ("1hfs", 9),
    ("1jyq", 10), ("2d1o", 10), ("1ig3", 11), ("4er4", 11), ("1n1m", 12),
    ("1l7f", 12), ("1r8o", 13), ("2bsm", 13), ("1y6b", 14), ("1hvy", 14),
    ("7cpa", 15), ("1w9u", 16), ("1p62", 17), ("1gpk", 18), ("1t9b", 19),
    ("2brb", 20), ("1u1c", 21), ("1nja", 22), ("1q4g", 23), ("1yvf", 24),
    ("1v0p", 25), ("2j47", 26), ("1w1p", 27), ("3er5", 28), ("1x8r", 30),
    ("1z95", 31), ("2bai", 32),
)

_NAME_TO_NROT = dict(SET_OF_42)
_CACHE: dict[str, TestCase] = {}
_BASE_SEED = 20250

def get_test_case(name: str) -> TestCase:
    """Build (or fetch from cache) one named case of the set of 42."""
    if name not in _NAME_TO_NROT:
        raise ValueError(f"unknown test case {name!r}; "
                         f"known: {[n for n, _ in SET_OF_42]}")
    if name not in _CACHE:
        idx = [n for n, _ in SET_OF_42].index(name)
        _CACHE[name] = make_test_case(name, _NAME_TO_NROT[name],
                                      seed=_BASE_SEED + idx)
    return _CACHE[name]


def set_of_42(limit: int | None = None) -> list[TestCase]:
    """The evaluation set, optionally truncated to the first ``limit``
    cases (ordered by N_rot) for scaled-down runs."""
    names = [n for n, _ in SET_OF_42][:limit]
    return [get_test_case(n) for n in names]


def clear_cache() -> None:
    """Drop all cached cases (frees memory in long sessions)."""
    _CACHE.clear()
