"""Synthetic docking problem generator with known ground truth.

``make_test_case`` builds, from a name / rotatable-bond count / seed:

1. a branched ligand — a heavy-atom backbone long enough to host the
   requested number of rotatable bonds plus terminal decorations, with AD4
   atom types and charges;
2. a *native pose* (random but recorded) and a receptor pocket constructed
   around it with complementary atom types, so the native basin is a deep
   minimum;
3. grid maps over a box enclosing the pocket;
4. the reference global-minimum score, obtained by refining the native pose
   with an exact-arithmetic ADADELTA run.

The known native pose / global score give the two success criteria of the
E50 analysis exact ground truth — the property the substitution must
preserve (DESIGN.md Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.genotype import genotype_length
from repro.docking.gradients import GradientCalculator
from repro.docking.grids import GridMaps
from repro.docking.ligand import Ligand, TorsionBond
from repro.docking.pose import calc_coords
from repro.docking.receptor import Receptor
from repro.docking.scoring import ScoringFunction
from repro.search.adadelta import AdadeltaConfig, AdadeltaLocalSearch
from repro.simt.costmodel import KernelWorkload

__all__ = ["TestCase", "make_test_case"]

_BOND_LENGTH = 1.5
_GRID_SPACING = 0.5


@dataclass
class TestCase:
    """One ligand-receptor docking problem with ground truth."""

    name: str
    ligand: Ligand
    receptor: Receptor
    maps: GridMaps
    native_genotype: np.ndarray
    native_coords: np.ndarray
    global_min_score: float

    @property
    def n_rot(self) -> int:
        return self.ligand.n_rot

    def scoring(self) -> ScoringFunction:
        """A scoring function bound to this case."""
        return ScoringFunction(self.ligand, self.maps)

    def workload(self, n_blocks: int,
                 scale: float = 2.5) -> KernelWorkload:
        """Kernel workload shape for the cost model (Table 5/6 inputs).

        ``scale`` bridges the synthetic minis to the molecules their names
        refer to: the real set-of-42 ligands carry ~2.5x more atoms /
        intra pairs / rotation-list entries than our search-tractable
        synthetics, and the cost model prices the paper-equivalent shape.
        The genotype length (6 + N_rot) matches the real molecule exactly
        and is not scaled.
        """
        return KernelWorkload(
            n_rotlist=max(1, int(self.ligand.n_rotlist * scale)),
            n_atoms=max(1, int(self.ligand.n_atoms * scale)),
            n_intra=max(1, int(self.ligand.n_intra * scale)),
            n_genes=genotype_length(self.ligand),
            n_blocks=n_blocks,
        )

    def __repr__(self) -> str:
        return (f"TestCase({self.name!r}, n_rot={self.n_rot}, "
                f"n_atoms={self.ligand.n_atoms}, "
                f"global_min={self.global_min_score:.2f})")


# ---------------------------------------------------------------------------
# ligand construction


def _grow_ligand(rng: np.random.Generator, name: str, n_rot: int) -> Ligand:
    """Grow a branched heavy-atom tree hosting exactly ``n_rot`` torsions."""
    backbone_len = max(4, n_rot + 2)
    n_branches = int(rng.integers(2, 5))

    coords: list[np.ndarray] = [np.zeros(3)]
    parent: list[int] = [-1]
    children: list[list[int]] = [[]]

    def _attach(parent_idx: int) -> int:
        """Add one atom bonded to ``parent_idx`` at a tetrahedral-ish angle,
        rejecting positions that clash with existing non-bonded atoms."""
        base = coords[parent_idx]
        if parent[parent_idx] >= 0:
            away = base - coords[parent[parent_idx]]
            away /= np.linalg.norm(away)
        else:
            away = np.array([1.0, 0.0, 0.0])
        existing = np.asarray(coords)
        others = np.delete(existing, parent_idx, axis=0)
        pos = None
        for noise in (0.8, 0.8, 0.6, 0.6, 0.4, 0.4, 0.3, 0.2, 0.1, 0.05):
            direction = away + noise * rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            cand = base + _BOND_LENGTH * direction
            if others.size == 0 or np.min(
                    np.linalg.norm(others - cand, axis=1)) >= 2.2:
                pos = cand
                break
        if pos is None:   # fall back to straight extension
            pos = base + _BOND_LENGTH * away
        coords.append(pos)
        parent.append(parent_idx)
        children.append([])
        idx = len(coords) - 1
        children[parent_idx].append(idx)
        return idx

    # backbone chain
    tip = 0
    for _ in range(backbone_len - 1):
        tip = _attach(tip)

    # terminal branch decorations (never create new rotatable bonds: they
    # hang off backbone atoms as leaves)
    backbone = list(range(backbone_len))
    for _ in range(n_branches):
        host = int(rng.choice(backbone[1:-1])) if backbone_len > 2 else 0
        if len(children[host]) < 3:
            _attach(host)

    n = len(coords)
    bonds = [(parent[i], i) for i in range(1, n)]

    # subtree (descendant) sets for torsion moved lists
    def _descendants(idx: int) -> list[int]:
        out: list[int] = []
        stack = list(children[idx])
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(children[u])
        return sorted(out)

    # rotatable bonds: the first n_rot backbone bonds whose child has
    # descendants, in root-to-leaf order
    torsions: list[TorsionBond] = []
    for i in range(backbone_len - 1):
        a, b = backbone[i], backbone[i + 1]
        moved = [m for m in _descendants(b)]
        if moved and len(torsions) < n_rot:
            torsions.append(TorsionBond(atom_a=a, atom_b=b,
                                        moved=tuple(moved)))
    if len(torsions) != n_rot:
        raise AssertionError(
            f"constructed {len(torsions)} torsions, wanted {n_rot}")

    # atom types: a varied backbone palette (type diversity makes the
    # native arrangement chemically unique — flipped or shifted poses no
    # longer occupy equivalent wells) plus polar decorations at branch tips
    backbone_palette = ["C", "A", "N", "C", "OA", "A", "S", "C"]
    type_charge = {"C": 0.03, "A": 0.01, "N": -0.22, "OA": -0.32,
                   "S": -0.05, "NA": -0.25, "HD": 0.21}
    types = ["C"] * n
    charges = rng.normal(0.0, 0.03, size=n)
    offset = int(rng.integers(0, len(backbone_palette)))
    for pos, atom in enumerate(backbone):
        t = backbone_palette[(pos + offset) % len(backbone_palette)]
        types[atom] = t
        charges[atom] = type_charge[t] + float(rng.normal(0, 0.02))
    leaves = [i for i in range(n) if not children[i] and i != 0]
    polar_pool = ["OA", "N", "NA", "HD", "OA"]
    rng.shuffle(leaves)
    for k, leaf in enumerate(leaves[: max(2, n // 5)]):
        t = polar_pool[k % len(polar_pool)]
        types[leaf] = t
        charges[leaf] = type_charge[t]

    return Ligand(name=name, atom_types=types,
                  ref_coords=np.asarray(coords), charges=charges,
                  bonds=bonds, torsions=torsions)


# ---------------------------------------------------------------------------
# receptor pocket construction


_COMPLEMENT = {"HD": ("OA", -0.42), "OA": ("HD", 0.32), "NA": ("HD", 0.32),
               "N": ("HD", 0.28)}
_NEUTRAL_TYPES = ("C", "C", "A", "OA", "N")


def _build_pocket(rng: np.random.Generator, name: str, ligand: Ligand,
                  native_coords: np.ndarray) -> Receptor:
    """Place receptor atoms around the native pose, complementing its polar
    atoms so the native basin is strongly favourable."""
    centre = native_coords.mean(axis=0)
    rec_coords: list[np.ndarray] = []
    rec_types: list[str] = []
    rec_charges: list[float] = []

    def _try_place(pos: np.ndarray, t: str, q: float) -> None:
        # keep every receptor atom in the strictly attractive zone
        # (>= 3.6 Å) of every native ligand atom, so the native pose sits in
        # a purely favourable pocket
        if np.linalg.norm(native_coords - pos, axis=1).min() < 3.6:
            return
        if rec_coords and np.linalg.norm(
                np.asarray(rec_coords) - pos, axis=1).min() < 2.8:
            return   # would clash with an existing receptor atom
        rec_coords.append(pos)
        rec_types.append(t)
        rec_charges.append(q)

    # The pocket is a *partial* cage: directions within the opening cone
    # around ``opening`` stay clear, so the search can thread the ligand in
    # (real binding sites are open on one side).  Two shells: a contact
    # shell just outside the vdW optimum (strictly attractive for
    # Rij ~ 4 Å) and a bulk shell that deepens the pocket.
    opening = rng.normal(size=3)
    opening /= np.linalg.norm(opening)
    shells = ((4.0, 4.8, 4), (5.0, 7.5, 8))
    for i, atom_pos in enumerate(native_coords):
        outward = atom_pos - centre
        norm = np.linalg.norm(outward)
        outward = outward / norm if norm > 1e-9 else rng.normal(size=3)
        lig_type = ligand.atom_types[i]
        for d_lo, d_hi, attempts in shells:
            for _ in range(attempts):
                direction = outward + 0.7 * rng.normal(size=3)
                direction /= np.linalg.norm(direction)
                if float(direction @ opening) > 0.35:
                    continue   # inside the opening cone
                pos = atom_pos + rng.uniform(d_lo, d_hi) * direction
                if lig_type in _COMPLEMENT and rng.random() < 0.8:
                    t, q = _COMPLEMENT[lig_type]
                else:
                    t = str(rng.choice(_NEUTRAL_TYPES))
                    q = {"OA": -0.3, "N": -0.2}.get(
                        t, float(rng.normal(0, 0.05)))
                _try_place(pos, t, q)

    if len(rec_coords) < 8:
        raise RuntimeError(f"pocket construction failed for {name}")
    return Receptor(name=f"{name}-pocket", atom_types=rec_types,
                    coords=np.asarray(rec_coords),
                    charges=np.asarray(rec_charges))


# ---------------------------------------------------------------------------
# full case assembly


def make_test_case(name: str, n_rot: int, seed: int,
                   refine_iters: int = 150) -> TestCase:
    """Build one synthetic docking test case.

    Parameters
    ----------
    name:
        Case label (PDB-code style).
    n_rot:
        Number of rotatable bonds (paper range: 0 to 32).
    seed:
        RNG seed — cases are fully reproducible.
    refine_iters:
        Exact-arithmetic ADADELTA iterations used to establish the
        global-minimum reference score.
    """
    rng = np.random.default_rng(seed)
    ligand = _grow_ligand(rng, name, n_rot)

    # native pose: modest torsion angles (a compact, pocket-like shape);
    # resample until the conformation is clash-free
    glen = genotype_length(ligand)
    pairs = ligand.intra_pairs()
    best_native, best_sep = None, -np.inf
    for _ in range(30):
        cand = np.zeros(glen)
        cand[3:6] = rng.normal(0.0, 0.4, size=3)
        cand[6:] = rng.uniform(-0.6, 0.6, size=glen - 6)
        coords = calc_coords(ligand, cand)
        if pairs.shape[0]:
            sep = float(np.min(np.linalg.norm(
                coords[pairs[:, 0]] - coords[pairs[:, 1]], axis=1)))
        else:
            sep = np.inf
        if sep > best_sep:
            best_native, best_sep = cand, sep
        if sep >= 3.0:
            break
    native = best_native
    native_coords = calc_coords(ligand, native)

    receptor = _build_pocket(rng, name, ligand, native_coords)

    # docking box around the native pose (receptor atoms outside the box
    # still shape the maps; the box only bounds the search space)
    centre = native_coords.mean(axis=0)
    half = float(np.max(np.abs(native_coords - centre))) + 4.5
    n_side = 2 * int(np.ceil(half / _GRID_SPACING)) + 1
    origin = centre - (n_side - 1) / 2 * _GRID_SPACING

    probe_types = sorted(set(ligand.atom_types))
    maps = receptor.make_maps(probe_types, origin,
                              (n_side, n_side, n_side), _GRID_SPACING)

    # Shape-complementarity sculpting: a real binding site is sterically and
    # chemically complementary to its native ligand — contacts the sparse
    # synthetic shell cannot reproduce.  We restore that by stamping a
    # type-specific gaussian well at each native atom position into the
    # corresponding affinity map.  The native arrangement (every atom in its
    # own matching well) is then the global optimum *by construction*, which
    # is exactly the ground truth the E50 metric requires (the paper defines
    # E50 against "the optimal score for a given ligand-receptor pair").
    # Two length scales make a funnel: a wide shallow basin that guides the
    # search from several Å away plus a tighter well that rewards native
    # contacts (real pockets have the same structure: long-range
    # electrostatics/desolvation over short-range shape fit).
    well_depth = max(0.45, 12.0 / ligand.n_atoms)   # kcal/mol per atom
    well_scales = ((4.5, 0.4), (2.5, 0.6))          # (sigma Å, depth share)
    axes = [origin[k] + _GRID_SPACING * np.arange(n_side) for k in range(3)]
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    type_idx = maps.type_index(ligand.atom_types)
    for i, pos in enumerate(native_coords):
        d2 = ((gx - pos[0]) ** 2 + (gy - pos[1]) ** 2 + (gz - pos[2]) ** 2)
        for sigma, share in well_scales:
            maps.affinity[type_idx[i]] -= (well_depth * share
                                           * np.exp(-d2 / (2.0 * sigma ** 2)))

    # reference global minimum: exact-arithmetic refinement from the native
    scoring = ScoringFunction(ligand, maps)
    refiner = AdadeltaLocalSearch(
        GradientCalculator(scoring, "exact"),
        AdadeltaConfig(max_iters=refine_iters))
    refined, _, _ = refiner.minimize(native[None, :])
    global_min = float(min(scoring.score(refined[0])[0],
                           scoring.score(native)[0]))

    return TestCase(name=name, ligand=ligand, receptor=receptor, maps=maps,
                    native_genotype=native, native_coords=native_coords,
                    global_min_score=global_min)
