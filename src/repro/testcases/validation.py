"""Validation of generated test cases (the set-of-42 quality gates).

Every synthetic case must satisfy the invariants the evaluation relies on;
:func:`validate_case` checks them and returns a structured report:

1. the native conformation is clash-free (intra pairs >= 2 Å apart);
2. every receptor atom keeps the >= 3.6 Å clearance from the native pose
   (the pocket is strictly attractive around the native);
3. the native pose fits inside the docking box;
4. the recorded global minimum is at most the native score (refinement
   never loses to its start);
5. the native basin clearly beats random poses (margin >= 2 kcal/mol —
   twice the score success tolerance — over the best of ``n_probes``
   random genotypes);
6. grid maps are finite everywhere.

``validate_case`` is used by the test suite on sampled cases and available
for auditing the full library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.docking.genotype import random_genotypes
from repro.testcases.generator import TestCase

__all__ = ["CaseReport", "validate_case"]


@dataclass
class CaseReport:
    """Validation outcome for one test case."""

    name: str
    ok: bool
    failures: list[str] = field(default_factory=list)
    native_score: float = float("nan")
    random_best: float = float("nan")
    min_intra_distance: float = float("nan")
    min_receptor_clearance: float = float("nan")

    def __str__(self) -> str:  # pragma: no cover - convenience
        status = "OK" if self.ok else "FAIL: " + "; ".join(self.failures)
        return f"{self.name}: {status}"


def validate_case(case: TestCase, n_probes: int = 50,
                  margin: float = 2.0, seed: int = 0) -> CaseReport:
    """Run all quality gates on a case."""
    report = CaseReport(name=case.name, ok=True)

    def fail(msg: str) -> None:
        report.ok = False
        report.failures.append(msg)

    # 1. clash-free native conformation
    pairs = case.ligand.intra_pairs()
    if pairs.shape[0]:
        d = np.linalg.norm(case.native_coords[pairs[:, 0]]
                           - case.native_coords[pairs[:, 1]], axis=1)
        report.min_intra_distance = float(d.min())
        if report.min_intra_distance < 2.0:
            fail(f"native intra clash at {report.min_intra_distance:.2f} Å")

    # 2. receptor clearance
    d = np.linalg.norm(case.receptor.coords[:, None, :]
                       - case.native_coords[None, :, :], axis=-1)
    report.min_receptor_clearance = float(d.min())
    if report.min_receptor_clearance < 3.6 - 1e-9:
        fail(f"receptor clearance {report.min_receptor_clearance:.2f} Å")

    # 3. native inside the box
    if not (np.all(case.native_coords >= case.maps.box_lo)
            and np.all(case.native_coords <= case.maps.box_hi)):
        fail("native pose outside the docking box")

    # 4. global minimum consistent with the native score
    sf = case.scoring()
    report.native_score = float(sf.score(case.native_genotype)[0])
    if case.global_min_score > report.native_score + 1e-6:
        fail("recorded global minimum above the native score")

    # 5. native basin dominates random poses
    rng = np.random.default_rng(seed)
    probes = random_genotypes(rng, n_probes, case.ligand,
                              case.maps.box_lo, case.maps.box_hi)
    report.random_best = float(sf.score(probes).min())
    if case.global_min_score > report.random_best - margin:
        fail(f"weak basin: global {case.global_min_score:.2f} vs random "
             f"best {report.random_best:.2f}")

    # 6. finite maps
    for arr in (case.maps.affinity, case.maps.elec,
                case.maps.desolv_v, case.maps.desolv_s):
        if not np.all(np.isfinite(arr)):
            fail("non-finite grid map values")
            break

    return report
