"""Synthetic ligand-receptor test cases (the set-of-42 stand-in).

The paper evaluates on 42 prepared protein-ligand complexes (AD-GPU set of
42) spanning up to 32 rotatable bonds.  Those inputs are PDBQT/grid-map
files we cannot ship, so :mod:`repro.testcases.generator` synthesises
equivalent problems: a branched ligand with a prescribed number of rotatable
bonds, a complementary receptor pocket built *around* a known native pose
(so every case has ground truth for both success criteria), and the grid
maps computed by the AutoGrid-style builder.

Case names reuse the PDB codes of the original set (labels only — the
molecules are synthetic); ``7cpa`` keeps its paper role as the
medium-complexity case with ``N_rot = 15``.
"""

from repro.testcases.generator import TestCase, make_test_case
from repro.testcases.library import (
    SET_OF_42,
    get_test_case,
    set_of_42,
)
from repro.testcases.validation import CaseReport, validate_case

__all__ = [
    "TestCase",
    "make_test_case",
    "SET_OF_42",
    "get_test_case",
    "set_of_42",
    "CaseReport",
    "validate_case",
]
