"""Reduced-precision floating-point formats as quantisation of FP32.

A Tensor Core operand format is described by its exponent / mantissa widths.
Quantising an FP32 array to such a format keeps the value on the format's
representable lattice while the storage dtype stays ``float32`` — exactly how
TF32 behaves in hardware (19 significant bits stored in a 32-bit register),
and numerically equivalent for FP16/BF16 as every FP16/BF16 value is exactly
representable in FP32.

Rounding mode for the FP32 -> format conversion is round-to-nearest
(ties-away, matching the ``cvt.rna.tf32.f32`` conversion NVIDIA documents for
TF32) by default; truncation (RZ) is available for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "FP16",
    "BF16",
    "TF32",
    "FP32",
    "get_format",
    "quantize",
    "to_fp16",
    "to_bf16",
    "to_tf32",
]


@dataclass(frozen=True)
class FloatFormat:
    """Static description of a floating-point operand format.

    Attributes
    ----------
    name:
        Canonical lower-case name (``"fp16"``, ``"tf32"``, ...).
    exponent_bits:
        Width of the biased exponent field.
    mantissa_bits:
        Number of explicitly stored fraction bits (excludes the hidden bit).
    max_value:
        Largest finite representable magnitude.
    min_normal:
        Smallest positive normal magnitude.
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    max_value: float
    min_normal: float

    @property
    def machine_epsilon(self) -> float:
        """Unit roundoff for round-to-nearest conversion into this format."""
        return 2.0 ** -(self.mantissa_bits + 1)

    @property
    def split_scale(self) -> float:
        """Residual up-scaling factor used by two-term operand splitting.

        Chosen as ``2**(mantissa_bits + 1)`` following Ootomo & Yokota so the
        residual occupies the format's full mantissa.
        """
        return float(2 ** (self.mantissa_bits + 1))


FP16 = FloatFormat("fp16", exponent_bits=5, mantissa_bits=10,
                   max_value=65504.0, min_normal=2.0 ** -14)
BF16 = FloatFormat("bf16", exponent_bits=8, mantissa_bits=7,
                   max_value=float(np.finfo(np.float32).max),
                   min_normal=2.0 ** -126)
TF32 = FloatFormat("tf32", exponent_bits=8, mantissa_bits=10,
                   max_value=float(np.finfo(np.float32).max),
                   min_normal=2.0 ** -126)
FP32 = FloatFormat("fp32", exponent_bits=8, mantissa_bits=23,
                   max_value=float(np.finfo(np.float32).max),
                   min_normal=2.0 ** -126)

_FORMATS = {f.name: f for f in (FP16, BF16, TF32, FP32)}


def get_format(name: str | FloatFormat) -> FloatFormat:
    """Look up a format by name; passes :class:`FloatFormat` through."""
    if isinstance(name, FloatFormat):
        return name
    try:
        return _FORMATS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown float format {name!r}; expected one of {sorted(_FORMATS)}"
        ) from None


def _round_fp32_mantissa(x: np.ndarray, drop_bits: int, mode: str) -> np.ndarray:
    """Round the low ``drop_bits`` mantissa bits of FP32 values away.

    Operates on the raw IEEE-754 encoding, so exponent carries from mantissa
    rounding are handled for free.  NaN/Inf are preserved.
    """
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = x32.view(np.uint32).copy()
    special = ~np.isfinite(x32)
    if mode == "rn":
        # round-half-away: add half of the dropped ULP, then truncate
        bits = bits + np.uint32(1 << (drop_bits - 1))
    elif mode != "rz":
        raise ValueError(f"unknown rounding mode {mode!r}")
    bits &= np.uint32(0xFFFFFFFF) << np.uint32(drop_bits)
    out = bits.view(np.float32)
    # rounding may have carried a max-exponent value into the Inf encoding;
    # that is correct behaviour (overflow to Inf), but NaN payloads must not
    # be disturbed.
    out = np.where(special, x32, out)
    return out


def to_tf32(x: np.ndarray, mode: str = "rn") -> np.ndarray:
    """Quantise FP32 values to the TF32 lattice (8-bit exp, 10-bit mantissa)."""
    return _round_fp32_mantissa(np.asarray(x), drop_bits=13, mode=mode)


def to_bf16(x: np.ndarray, mode: str = "rn") -> np.ndarray:
    """Quantise FP32 values to the BF16 lattice (8-bit exp, 7-bit mantissa)."""
    return _round_fp32_mantissa(np.asarray(x), drop_bits=16, mode=mode)


def to_fp16(x: np.ndarray, mode: str = "rn") -> np.ndarray:
    """Quantise FP32 values to FP16 (5-bit exp, 10-bit mantissa).

    Out-of-range magnitudes saturate to ``±inf`` exactly as the hardware
    conversion does; subnormal flushing follows IEEE (NumPy's float16
    conversion keeps subnormals, matching ``cvt.rn.f16.f32``).
    """
    x32 = np.asarray(x, dtype=np.float32)
    if mode == "rn":
        with np.errstate(over="ignore"):
            return x32.astype(np.float16).astype(np.float32)
    if mode == "rz":
        with np.errstate(over="ignore"):
            y = x32.astype(np.float16).astype(np.float32)
        # nudge toward zero where nearest-rounding moved away from zero
        grew = np.isfinite(x32) & (np.abs(y) > np.abs(x32))
        if np.any(grew):
            y = y.copy()
            y16 = y.astype(np.float16)
            y16[grew] = np.nextafter(y16[grew], np.float16(0.0))
            y = y16.astype(np.float32)
        return y
    raise ValueError(f"unknown rounding mode {mode!r}")


def quantize(x: np.ndarray, fmt: str | FloatFormat, mode: str = "rn") -> np.ndarray:
    """Quantise ``x`` to the representable lattice of ``fmt``.

    Returns a ``float32`` array whose values are exactly representable in the
    requested format.
    """
    fmt = get_format(fmt)
    if fmt.name == "fp32":
        return np.asarray(x, dtype=np.float32)
    if fmt.name == "fp16":
        return to_fp16(x, mode=mode)
    if fmt.name == "bf16":
        return to_bf16(x, mode=mode)
    if fmt.name == "tf32":
        return to_tf32(x, mode=mode)
    raise AssertionError(f"unhandled format {fmt.name}")
