"""Bit-faithful emulation of the reduced-precision formats used by Tensor Cores.

NVIDIA Tensor Cores consume FP16 / BF16 / TF32 operands and accumulate in
FP32 with round-toward-zero (RZ) behaviour (Ootomo & Yokota, 2022).  None of
these conversions are directly controllable from Python, so this subpackage
reproduces them with IEEE-754 bit manipulation on NumPy arrays:

* :mod:`repro.fpemu.formats` — FP16 / BF16 / TF32 quantisation (values are
  returned as ``float32`` arrays restricted to the target format's lattice).
* :mod:`repro.fpemu.rounding` — directed rounding of ``float64`` results to
  ``float32`` (RN and RZ), plus the RZ-add primitive used by the simulated
  MMA accumulator.
* :mod:`repro.fpemu.split` — two-term (hi + residual) operand splitting used
  by the Ootomo–Yokota error-correction scheme.
"""

from repro.fpemu.formats import (
    FP16,
    BF16,
    TF32,
    FP32,
    FloatFormat,
    get_format,
    quantize,
    to_bf16,
    to_fp16,
    to_tf32,
)
from repro.fpemu.rounding import (
    round_f64_to_f32_rn,
    round_f64_to_f32_rz,
    rz_add_f32,
    ulp_f32,
)
from repro.fpemu.split import split_operand

__all__ = [
    "FP16",
    "BF16",
    "TF32",
    "FP32",
    "FloatFormat",
    "get_format",
    "quantize",
    "to_bf16",
    "to_fp16",
    "to_tf32",
    "round_f64_to_f32_rn",
    "round_f64_to_f32_rz",
    "rz_add_f32",
    "ulp_f32",
    "split_operand",
]
