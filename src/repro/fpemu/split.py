"""Two-term operand splitting for error-corrected Tensor Core GEMM.

Following Ootomo & Yokota (2022), an FP32 operand ``x`` is represented as

    x ~= hi + lo / S        with  hi = q(x),  lo = q((x - hi) * S)

where ``q`` quantises to the Tensor Core input format and ``S`` is the
format's :attr:`~repro.fpemu.formats.FloatFormat.split_scale` (``2**11`` for
TF32/FP16).  Scaling the residual up before quantisation keeps its leading
bits inside the narrow mantissa and — crucially for FP16 — above the
subnormal threshold, which is the "input scaling to avoid underflow"
enhancement the paper adopts.
"""

from __future__ import annotations

import numpy as np

from repro.fpemu.formats import FloatFormat, get_format, quantize

__all__ = ["split_operand"]


def split_operand(
    x: np.ndarray,
    fmt: str | FloatFormat,
    *,
    scale_residual: bool = True,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Split FP32 values into a (hi, lo, scale) error-correction pair.

    Parameters
    ----------
    x:
        FP32 input values (any shape).
    fmt:
        Target Tensor Core input format (``"tf32"`` / ``"fp16"`` / ...).
    scale_residual:
        When True (the default, matching WMMA-Extension), the residual is
        multiplied by ``fmt.split_scale`` before quantisation and the
        returned ``scale`` compensates.  Disabling this reproduces the
        underflow-prone naive split used for the ablation benchmarks.

    Returns
    -------
    (hi, lo, scale):
        ``hi`` and ``lo`` are float32 arrays on the format lattice and the
        reconstruction is ``x ~= hi + lo / scale``.
    """
    fmt = get_format(fmt)
    x32 = np.asarray(x, dtype=np.float32)
    hi = quantize(x32, fmt)
    residual = x32.astype(np.float64) - hi.astype(np.float64)
    scale = fmt.split_scale if scale_residual else 1.0
    lo = quantize((residual * scale).astype(np.float32), fmt)
    return hi, lo, scale
