"""Directed rounding of float64 intermediates into float32 results.

The simulated Tensor Core computes dot products exactly (float64 carries the
exact product of two <=11-bit-mantissa operands and their 16-term sums with
plenty of headroom) and then rounds into the FP32 accumulator.  Hardware
applies round-toward-zero (RZ) at that step; SIMT cores apply
round-to-nearest (RN).  Both directions are provided here.

The RZ implementation rounds the float64 value to float32 nearest first and
then steps one ULP toward zero whenever the magnitude grew.  The residual
double-rounding discrepancy is bounded by 2^-53 relative — five orders of
magnitude below the 2^-24 effects being modelled.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "round_f64_to_f32_rn",
    "round_f64_to_f32_rz",
    "rz_add_f32",
    "ulp_f32",
]

_F32_MAX = np.float64(np.finfo(np.float32).max)
_F32_MAX32 = np.float32(np.finfo(np.float32).max)


def round_f64_to_f32_rn(x: np.ndarray) -> np.ndarray:
    """Round float64 values to float32 with round-to-nearest-even."""
    with np.errstate(over="ignore", invalid="ignore"):
        return np.asarray(x, dtype=np.float64).astype(np.float32)


def round_f64_to_f32_rz(x: np.ndarray) -> np.ndarray:
    """Round float64 values to float32 with round-toward-zero.

    Finite inputs never produce ``inf``: magnitudes beyond the float32 range
    truncate to the largest finite float32, as RZ requires.
    """
    x64 = np.asarray(x, dtype=np.float64)
    with np.errstate(over="ignore", invalid="ignore"):
        y = x64.astype(np.float32)
    finite_in = np.isfinite(x64)
    if y.ndim == 0:
        y = y.reshape(())  # keep ndarray semantics for the masked writes
    y = np.array(y, copy=True)
    # finite input overflowed to inf -> clamp to max finite magnitude
    ovf = finite_in & ~np.isfinite(y)
    if np.any(ovf):
        y[ovf] = np.sign(x64[ovf]).astype(np.float32) * _F32_MAX32
    # nearest rounding moved away from zero -> step one ULP back
    grew = finite_in & (np.abs(y.astype(np.float64)) > np.abs(x64))
    if np.any(grew):
        y[grew] = np.nextafter(y[grew], np.float32(0.0))
    return y


def rz_add_f32(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a + b`` where both are float32 lattices, rounded to float32 with RZ.

    This is the accumulator-add primitive of the simulated Tensor Core.
    """
    s = np.asarray(a, dtype=np.float64) + np.asarray(b, dtype=np.float64)
    return round_f64_to_f32_rz(s)


def ulp_f32(x: np.ndarray) -> np.ndarray:
    """Distance from ``|x|`` to the next representable float32 magnitude."""
    x32 = np.abs(np.asarray(x, dtype=np.float32))
    return np.nextafter(x32, np.float32(np.inf)) - x32
