"""AutoGrid map files: ``.map`` grids and the ``.maps.fld`` index.

The paper's artifact appendix drives AutoDock-GPU with
``-ffile .../protein.maps.fld`` — AutoGrid's master index referencing one
``.map`` file per probe atom type plus the electrostatics and desolvation
maps.  This module writes and reads that format for
:class:`repro.docking.grids.GridMaps`, so the reproduction supports the
same file-based workflow (see ``repro.cli``'s ``-ffile``).

AutoGrid ``.map`` layout (text): six header lines

.. code-block:: none

    GRID_PARAMETER_FILE <name>
    GRID_DATA_FILE <name>.maps.fld
    MACROMOLECULE <receptor>
    SPACING 0.375
    NELEMENTS nx-1 ny-1 nz-1
    CENTER cx cy cz

followed by one energy value per line in x-fastest (Fortran) order.
The reproduction carries two desolvation maps (volume- and
solvation-weighted receptor sums, see :mod:`repro.docking.grids`), stored
with the suffixes ``.d1.map`` and ``.d2.map``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.docking.grids import GridMaps
from repro.io.errors import ParseError

__all__ = ["write_maps", "read_maps"]

_HEADER_LINES = 6


def _write_one_map(path: Path, stem: str, values: np.ndarray,
                   origin: np.ndarray, spacing: float) -> None:
    nx, ny, nz = values.shape
    centre = origin + spacing * (np.array([nx, ny, nz]) - 1) / 2.0
    header = [
        f"GRID_PARAMETER_FILE {stem}.gpf",
        f"GRID_DATA_FILE {stem}.maps.fld",
        f"MACROMOLECULE {stem}",
        f"SPACING {spacing:.3f}",
        f"NELEMENTS {nx - 1} {ny - 1} {nz - 1}",
        f"CENTER {centre[0]:.3f} {centre[1]:.3f} {centre[2]:.3f}",
    ]
    # x-fastest order: transpose to (z, y, x) then ravel
    flat = values.transpose(2, 1, 0).ravel()
    body = "\n".join(f"{v:.3f}" for v in flat)
    path.write_text("\n".join(header) + "\n" + body + "\n")


def _read_one_map(path: Path) -> tuple[np.ndarray, np.ndarray, float]:
    lines = path.read_text().splitlines()
    spacing = None
    nelements = None
    centre = None
    for lineno, line in enumerate(lines[:_HEADER_LINES], start=1):
        key, *rest = line.split() or [""]
        try:
            if key == "SPACING":
                spacing = float(rest[0])
            elif key == "NELEMENTS":
                nelements = tuple(int(v) + 1 for v in rest)
                if len(nelements) != 3:
                    raise ValueError("expected three dimensions")
            elif key == "CENTER":
                centre = np.array([float(v) for v in rest])
                if centre.shape != (3,):
                    raise ValueError("expected three coordinates")
        except (ValueError, IndexError) as exc:
            raise ParseError(path, f"malformed {key} header: {exc}",
                             line=lineno, text=line) from exc
    if spacing is None or nelements is None or centre is None:
        missing = [k for k, v in (("SPACING", spacing),
                                  ("NELEMENTS", nelements),
                                  ("CENTER", centre)) if v is None]
        raise ParseError(path, "incomplete AutoGrid header: missing "
                               + ", ".join(missing))
    nx, ny, nz = nelements
    expected = nx * ny * nz
    body = [(lineno, line)
            for lineno, line in enumerate(lines[_HEADER_LINES:],
                                          start=_HEADER_LINES + 1)
            if line.strip()]
    if len(body) != expected:
        raise ParseError(path, f"expected {expected} grid values "
                               f"({nx}x{ny}x{nz}), found {len(body)} — "
                               f"file truncated?")
    try:
        # fast path: one vectorised conversion of the whole body
        data = np.fromiter((float(line) for _, line in body),
                           dtype=np.float64, count=expected)
    except ValueError:
        # slow diagnostic pass: locate the offending line
        for lineno, line in body:
            try:
                float(line)
            except ValueError as exc:
                raise ParseError(path, f"bad grid value: {exc}",
                                 line=lineno, text=line) from exc
        raise  # pragma: no cover - unreachable: some line must fail
    values = data.reshape(nz, ny, nx).transpose(2, 1, 0)
    origin = centre - spacing * (np.array([nx, ny, nz]) - 1) / 2.0
    return values, origin, spacing


def write_maps(maps: GridMaps, directory: str | Path,
               stem: str = "protein") -> Path:
    """Write grid maps as AutoGrid files; returns the ``.maps.fld`` path.

    Produces ``<stem>.<TYPE>.map`` per probe type, ``<stem>.e.map``
    (electrostatics), ``<stem>.d1.map`` / ``<stem>.d2.map`` (the two
    desolvation maps) and the ``<stem>.maps.fld`` index.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    entries: list[str] = []
    for t_idx, t in enumerate(maps.type_names):
        name = f"{stem}.{t}.map"
        _write_one_map(directory / name, stem, maps.affinity[t_idx],
                       maps.origin, maps.spacing)
        entries.append(name)
    for suffix, arr in (("e", maps.elec), ("d1", maps.desolv_v),
                        ("d2", maps.desolv_s)):
        name = f"{stem}.{suffix}.map"
        _write_one_map(directory / name, stem, arr, maps.origin, maps.spacing)
        entries.append(name)

    nx, ny, nz = maps.shape
    fld = [
        "# AVS field file (AutoGrid-style index, repro reproduction)",
        f"# SPACING {maps.spacing:.3f}",
        f"# NELEMENTS {nx - 1} {ny - 1} {nz - 1}",
        f"# TYPES {' '.join(maps.type_names)}",
        "ndim=3",
        f"dim1={nx}", f"dim2={ny}", f"dim3={nz}",
        "nspace=3",
        f"veclen={len(entries)}",
        "data=float",
        "field=uniform",
    ]
    fld += [f"variable {k + 1} file={name} filetype=ascii skip={_HEADER_LINES}"
            for k, name in enumerate(entries)]
    fld_path = directory / f"{stem}.maps.fld"
    fld_path.write_text("\n".join(fld) + "\n")
    return fld_path


def read_maps(fld_path: str | Path) -> GridMaps:
    """Load grid maps from a ``.maps.fld`` index written by :func:`write_maps`."""
    fld_path = Path(fld_path)
    directory = fld_path.parent
    type_names: list[str] = []
    files: list[str] = []
    for line in fld_path.read_text().splitlines():
        if line.startswith("# TYPES"):
            type_names = line.split()[2:]
        elif line.startswith("variable"):
            for token in line.split():
                if token.startswith("file="):
                    files.append(token[5:])
    if not type_names:
        raise ParseError(fld_path, "no '# TYPES' line in index")
    if len(files) != len(type_names) + 3:
        raise ParseError(
            fld_path, f"index lists {len(files)} map files but "
                      f"{len(type_names)} probe types need "
                      f"{len(type_names) + 3} (types + e + d1 + d2)")
    for name in files:
        if not (directory / name).exists():
            raise ParseError(fld_path,
                             f"referenced map file {name!r} not found "
                             f"next to the index")

    affinity = []
    origin = spacing = None
    for name in files[: len(type_names)]:
        values, origin, spacing = _read_one_map(directory / name)
        affinity.append(values)
    elec, _, _ = _read_one_map(directory / files[-3])
    desolv_v, _, _ = _read_one_map(directory / files[-2])
    desolv_s, _, _ = _read_one_map(directory / files[-1])

    return GridMaps(origin=origin, spacing=spacing, type_names=type_names,
                    affinity=np.stack(affinity), elec=elec,
                    desolv_v=desolv_v, desolv_s=desolv_s)
