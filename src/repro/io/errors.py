"""Structured parse errors for the file-format readers.

Malformed input files are an operational reality at production scale
(truncated uploads, foreign PDBQT dialects, corrupted grid maps); the
readers raise :class:`ParseError` — carrying the file path, the 1-based
line number and the offending text — instead of leaking bare
``ValueError``/``IndexError`` from deep inside the parsing code.

``ParseError`` subclasses :class:`ValueError` so existing ``except
ValueError`` call sites keep working.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["ParseError"]


class ParseError(ValueError):
    """A file could not be parsed; pinpoints where and why.

    Attributes
    ----------
    path:
        The file being parsed.
    line:
        1-based line number of the offending line (``None`` for
        whole-file problems such as unbalanced blocks).
    reason:
        Human-readable description of what was wrong.
    text:
        The offending line's text, when available.
    """

    def __init__(self, path: str | Path, reason: str, *,
                 line: int | None = None, text: str | None = None) -> None:
        self.path = Path(path)
        self.line = line
        self.reason = reason
        self.text = text
        location = f"{self.path}"
        if line is not None:
            location += f":{line}"
        message = f"{location}: {reason}"
        if text is not None:
            message += f" (line: {text.strip()!r})"
        super().__init__(message)
