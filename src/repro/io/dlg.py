"""AutoDock-style docking log (``*.dlg``) writer and parser.

Mirrors the artifact-appendix workflow of the paper::

    $ grep "Run time" *.dlg
    $ grep "Number of energy evaluations performed" *.dlg

``write_dlg`` emits those exact phrases plus the per-run results;
``parse_dlg`` recovers the metrics for the benchmark harness.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.engine import DockingResult

__all__ = ["write_dlg", "parse_dlg"]


def write_dlg(result: DockingResult, path: str | Path, case=None) -> None:
    """Write a docking result as an AutoDock-style .dlg log.

    When the originating :class:`~repro.testcases.generator.TestCase` is
    supplied, the log additionally contains the AutoDock-style
    ``CLUSTERING HISTOGRAM`` of the per-run best poses (RMSD tolerance
    2 Å, annotated with each cluster seed's RMSD to the native pose).
    """
    lines = [
        "AutoDock-GPU (Python reproduction) docking log",
        f"Ligand-receptor case: {result.case_name}",
        f"Reduction backend: {result.config.backend}",
        f"Simulated device: {result.config.device} "
        f"(block size {result.config.block_size})",
        "",
        f"Number of runs: {len(result.runs)}",
        "",
    ]
    for k, (run, r) in enumerate(zip(result.runs, result.final_rmsds)):
        lines += [
            f"    Run {k + 1}:",
            f"        Estimated Free Energy of Binding   ="
            f" {run.best_score:+9.3f} kcal/mol",
            f"        RMSD from reference structure      ="
            f" {r:9.3f} A",
        ]
    if case is not None:
        from repro.analysis.clustering import (cluster_result,
                                               format_clustering_histogram)
        lines += ["", format_clustering_histogram(
            cluster_result(result, case))]
    lines += [
        "",
        f"Number of energy evaluations performed: {result.total_evals}",
        f"Number of generations: {result.generations}",
        f"Best score: {result.best_score:+.3f} kcal/mol "
        f"@ RMSD {result.rmsd_of_best:.3f} A",
        f"Best RMSD: {result.best_rmsd:.3f} A "
        f"@ score {result.score_of_best_rmsd:+.3f} kcal/mol",
        f"Run time {result.runtime_seconds:.3f} sec",
        "",
    ]
    Path(path).write_text("\n".join(lines))


def parse_dlg(path: str | Path) -> dict:
    """Extract the headline metrics from a .dlg written by :func:`write_dlg`."""
    text = Path(path).read_text()
    out: dict = {"runs": []}
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("Ligand-receptor case:"):
            out["case"] = line.split(":", 1)[1].strip()
        elif line.startswith("Reduction backend:"):
            out["backend"] = line.split(":", 1)[1].strip()
        elif line.startswith("Number of energy evaluations performed:"):
            out["evals"] = int(line.split(":", 1)[1])
        elif line.startswith("Run time"):
            out["runtime_s"] = float(line.split()[2])
        elif line.startswith("Estimated Free Energy of Binding"):
            out["runs"].append(float(line.split("=")[1].split()[0]))
        elif line.startswith("Best score:"):
            out["best_score"] = float(line.split()[2])
    return out
