"""PDBQT-style ligand serialisation.

Writes/reads the subset of the AutoDock PDBQT dialect our ligand model
needs: ``ATOM`` records with coordinates / partial charge / AD type, the
``ROOT`` block, nested ``BRANCH``/``ENDBRANCH`` blocks for rotatable bonds,
and the trailing ``TORSDOF`` count.  Round-trips :class:`repro.docking.Ligand`
objects (the torsion tree is reconstructed from the branch nesting).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.docking.ligand import Ligand, TorsionBond
from repro.io.errors import ParseError

__all__ = ["write_pdbqt", "read_pdbqt"]


def write_pdbqt(ligand: Ligand, path: str | Path,
                coords: np.ndarray | None = None) -> None:
    """Write a ligand (optionally with pose coordinates) as PDBQT.

    Atoms are grouped by torsion signature: the rigid root block first,
    then one ``BRANCH`` block per rotatable bond in tree order.
    """
    coords = ligand.ref_coords if coords is None else np.asarray(coords)
    if coords.shape != (ligand.n_atoms, 3):
        raise ValueError(f"coords must be ({ligand.n_atoms}, 3)")

    sigs = ligand.torsion_signature()
    lines = [f"REMARK  Name = {ligand.name}",
             f"REMARK  {ligand.n_rot} active torsions"]

    def atom_line(i: int) -> str:
        x, y, z = coords[i]
        return (f"ATOM  {i + 1:>5d}  {ligand.atom_types[i]:<3.3s} LIG A   1"
                f"    {x:8.3f}{y:8.3f}{z:8.3f}  1.00  0.00"
                f"    {ligand.charges[i]:6.3f} {ligand.atom_types[i]}")

    # root block: atoms moved by no torsion
    lines.append("ROOT")
    for i in range(ligand.n_atoms):
        if not sigs[i]:
            lines.append(atom_line(i))
    lines.append("ENDROOT")

    # branches in tree order; emit atoms whose innermost torsion is this one
    open_branches: list[int] = []
    for k, tors in enumerate(ligand.torsions):
        lines.append(f"BRANCH {tors.atom_a + 1:>3d} {tors.atom_b + 1:>3d}")
        open_branches.append(k)
        for i in tors.moved:
            if max(sigs[i]) == k:
                lines.append(atom_line(i))
    for k in reversed(open_branches):
        tors = ligand.torsions[k]
        lines.append(f"ENDBRANCH {tors.atom_a + 1:>3d} {tors.atom_b + 1:>3d}")
    lines.append(f"TORSDOF {ligand.n_rot}")

    Path(path).write_text("\n".join(lines) + "\n")


def read_pdbqt(path: str | Path, name: str | None = None) -> Ligand:
    """Read a PDBQT ligand written by :func:`write_pdbqt`.

    Reconstructs atoms, charges, types, the torsion tree (from the branch
    nesting) and a chain of bonds sufficient to reproduce the torsion
    separation structure.
    """
    path = Path(path)
    name = name or path.stem

    # atoms keyed by their serial (the writer preserves original indices)
    atoms: dict[int, tuple[str, list[float], float]] = {}
    branch_stack: list[tuple[int, int, list[int]]] = []
    torsions_raw: list[tuple[int, int, list[int]]] = []

    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        try:
            if line.startswith("ATOM"):
                idx = int(line[6:11]) - 1
                charge_field = line[66:76].split()
                if not charge_field:
                    raise ValueError("missing partial charge")
                atoms[idx] = (line[12:16].strip(),
                              [float(line[30:38]), float(line[38:46]),
                               float(line[46:54])],
                              float(charge_field[0]))
                for _, _, moved in branch_stack:
                    moved.append(idx)
            elif line.startswith("BRANCH"):
                _, a, b = line.split()
                branch_stack.append((int(a) - 1, int(b) - 1, []))
            elif line.startswith("ENDBRANCH"):
                if not branch_stack:
                    raise ValueError("ENDBRANCH without open BRANCH")
                a, b, moved = branch_stack.pop()
                torsions_raw.append((a, b, moved))
        except (ValueError, IndexError) as exc:
            record = line.split()[0] if line.split() else "record"
            raise ParseError(path, f"malformed {record}: {exc}",
                             line=lineno, text=line) from exc

    if branch_stack:
        raise ParseError(path, f"{len(branch_stack)} unbalanced BRANCH "
                               f"block(s) never closed by ENDBRANCH")
    if not atoms:
        raise ParseError(path, "no ATOM records found")
    if sorted(atoms) != list(range(len(atoms))):
        raise ParseError(path, "non-contiguous atom serials")

    n = len(atoms)
    atom_types = [atoms[i][0] for i in range(n)]
    xyz = np.asarray([atoms[i][1] for i in range(n)])
    charges = np.asarray([atoms[i][2] for i in range(n)])

    # branches close innermost-first; restore root-to-leaf order by the
    # tree structure (parents have strictly larger moved sets)
    torsions_raw.sort(key=lambda t: -len(t[2]))
    torsions = [TorsionBond(atom_a=a, atom_b=b, moved=tuple(sorted(m)))
                for a, b, m in torsions_raw if m]

    # bonds: torsion axes plus a nearest-neighbour chain for the rest
    bonds = {(min(a, b), max(a, b)) for a, b, _ in torsions_raw}
    for i in range(1, n):
        d = np.linalg.norm(xyz[:i] - xyz[i], axis=1)
        j = int(np.argmin(d))
        bonds.add((min(i, j), max(i, j)))

    return Ligand(name=name, atom_types=atom_types, ref_coords=xyz,
                  charges=charges, bonds=sorted(bonds),
                  torsions=torsions)
