"""File formats: PDBQT-style ligands and AutoDock-style .dlg docking logs.

The paper's artifact appendix drives everything through files — ligands in
PDBQT, results in ``*.dlg`` logs inspected with ``grep "Run time"`` and
``grep "Number of energy evaluations performed"``.  These writers/parsers
reproduce that workflow for the synthetic molecules.
"""

from repro.io.autogrid import read_maps, write_maps
from repro.io.dlg import parse_dlg, write_dlg
from repro.io.errors import ParseError
from repro.io.pdbqt import read_pdbqt, write_pdbqt
from repro.io.rlig import RligReader, decode_ligand, encode_ligand, pack_rlig

__all__ = ["parse_dlg", "write_dlg", "read_pdbqt", "write_pdbqt",
           "read_maps", "write_maps", "ParseError",
           "pack_rlig", "RligReader", "encode_ligand", "decode_ligand"]
