"""``.rlig`` — a compact binary ligand library ("pack") format.

Screening 10^5–10^6 ligands through text PDBQT means every worker
re-tokenises the same branch trees job after job.  A pack parses the
library *once* and stores each ligand as a struct-of-arrays record that
decodes with a couple of ``np.frombuffer`` calls — no text, no tree
reconstruction — and can be sliced by offset straight out of one file
handle, so cohorts stream to workers without directory walks.

File layout (all integers little-endian)::

    header   32 B   magic "RLIG" | u8 version | 3 B pad
                    | u64 n_ligands | u64 index_offset | u64 index_length
    records         back-to-back ligand records (see below)
    index           JSON: {"ligands": [{"name", "offset", "length",
                                        "sha256"}, ...]}

Record layout::

    u32 meta_length | meta JSON (padded with spaces to 8-B alignment)
    | coords  f8 (n_atoms, 3)   — centred reference conformation
    | charges f8 (n_atoms,)
    | bonds   i4 (n_bonds, 2)
    | moved   i4 (sum of torsion moved-counts,)

where the meta JSON carries ``name`` / ``atom_types`` / ``torsions`` (as
``[atom_a, atom_b, n_moved]`` triples indexing into the concatenated
``moved`` array) and the array lengths.  Meta JSON is serialised with
sorted keys, so encoding is deterministic: pack → read → pack is
byte-identical, and the per-record SHA-256 digests stored in the index
are stable content addresses (the screen layer stamps them into job
specs, so job identity at 10^6 ligands costs an index lookup, not a
hash over file bytes).

Truncated or corrupt packs raise :class:`~repro.io.errors.ParseError`
with the path and the structural reason.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from pathlib import Path

import numpy as np

from repro.docking.ligand import Ligand, TorsionBond
from repro.io.errors import ParseError

__all__ = ["pack_rlig", "RligReader", "encode_ligand", "decode_ligand",
           "RLIG_VERSION"]

RLIG_MAGIC = b"RLIG"
RLIG_VERSION = 1

_HEADER = struct.Struct("<4sB3xQQQ")
_META_LEN = struct.Struct("<I")


def _align8(n: int) -> int:
    return (n + 7) & ~7


# ---------------------------------------------------------------------------
# single-record codec (also used by the blob store's TestCase codec)


def encode_ligand(ligand: Ligand) -> bytes:
    """One deterministic binary record for a parsed ligand."""
    coords = np.ascontiguousarray(ligand.ref_coords, dtype="<f8")
    charges = np.ascontiguousarray(ligand.charges, dtype="<f8")
    bonds = np.ascontiguousarray(
        np.asarray(ligand.bonds, dtype="<i4").reshape(-1, 2))
    moved = np.concatenate(
        [np.asarray(t.moved, dtype="<i4") for t in ligand.torsions]
    ) if ligand.torsions else np.empty(0, dtype="<i4")
    meta = {
        "name": ligand.name,
        "atom_types": list(ligand.atom_types),
        "n_atoms": int(coords.shape[0]),
        "n_bonds": int(bonds.shape[0]),
        "torsions": [[int(t.atom_a), int(t.atom_b), len(t.moved)]
                     for t in ligand.torsions],
    }
    meta_bytes = json.dumps(meta, sort_keys=True,
                            separators=(",", ":")).encode()
    padded = _align8(_META_LEN.size + len(meta_bytes)) - _META_LEN.size
    meta_bytes = meta_bytes.ljust(padded, b" ")
    return b"".join([_META_LEN.pack(len(meta_bytes)), meta_bytes,
                     coords.tobytes(), charges.tobytes(),
                     bonds.tobytes(), moved.tobytes()])


def decode_ligand(buf: bytes | memoryview,
                  path: str | Path = "<rlig record>") -> Ligand:
    """Invert :func:`encode_ligand`; raises :class:`ParseError` on a
    structurally truncated or malformed record."""
    buf = memoryview(buf)

    def fail(reason: str):
        raise ParseError(path, reason)

    if len(buf) < _META_LEN.size:
        fail("record truncated before meta length")
    (meta_len,) = _META_LEN.unpack(buf[:_META_LEN.size])
    off = _META_LEN.size + meta_len
    if len(buf) < off:
        fail("record truncated inside meta JSON")
    try:
        meta = json.loads(bytes(buf[_META_LEN.size:off]))
        name = meta["name"]
        atom_types = meta["atom_types"]
        n_atoms = int(meta["n_atoms"])
        n_bonds = int(meta["n_bonds"])
        torsions = meta["torsions"]
    except (ValueError, KeyError, TypeError):
        fail("record meta JSON malformed")
    n_moved = sum(int(t[2]) for t in torsions)
    need = off + 8 * 3 * n_atoms + 8 * n_atoms + 4 * 2 * n_bonds + 4 * n_moved
    if len(buf) < need:
        fail(f"record truncated: need {need} bytes, have {len(buf)}")

    def take(count: int, dtype: str, itemsize: int) -> np.ndarray:
        nonlocal off
        arr = np.frombuffer(buf, dtype=dtype, count=count, offset=off)
        off += count * itemsize
        return arr

    coords = take(3 * n_atoms, "<f8", 8).reshape(n_atoms, 3)
    charges = take(n_atoms, "<f8", 8)
    bonds = take(2 * n_bonds, "<i4", 4).reshape(n_bonds, 2)
    moved = take(n_moved, "<i4", 4)
    tbs, pos = [], 0
    try:
        for a, b, k in torsions:
            tbs.append(TorsionBond(int(a), int(b),
                                   tuple(int(m) for m in moved[pos:pos + k])))
            pos += int(k)
        ligand = Ligand(name=name, atom_types=list(atom_types),
                        ref_coords=coords.copy(), charges=charges.copy(),
                        bonds=[(int(i), int(j)) for i, j in bonds],
                        torsions=tbs)
    except (ValueError, TypeError) as exc:
        fail(f"record fails ligand validation: {exc}")
    # Ligand.__post_init__ re-centres, which is not exactly idempotent in
    # floating point; the stored coords are already centred, so restore
    # them bit-for-bit — this is what makes repacking byte-stable
    ligand.ref_coords = coords.copy()
    return ligand


# ---------------------------------------------------------------------------
# pack writer


def pack_rlig(out_path: str | Path, sources, names=None) -> int:
    """Write a ``.rlig`` pack; returns the number of ligands packed.

    ``sources`` is an iterable of parsed :class:`Ligand` objects and/or
    PDBQT paths (parsed here — this is the *one* parse the library ever
    pays).  ``names`` optionally overrides record names.
    """
    from repro.io.pdbqt import read_pdbqt
    out_path = Path(out_path)
    index = []
    tmp = out_path.with_name(f"{out_path.name}.tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(_HEADER.pack(RLIG_MAGIC, RLIG_VERSION, 0, 0, 0))
        for i, src in enumerate(sources):
            ligand = src if isinstance(src, Ligand) else read_pdbqt(src)
            if names is not None and names[i] != ligand.name:
                ligand = Ligand(names[i], list(ligand.atom_types),
                                ligand.ref_coords.copy(),
                                ligand.charges.copy(),
                                list(ligand.bonds), list(ligand.torsions))
            record = encode_ligand(ligand)
            index.append({"name": ligand.name, "offset": fh.tell(),
                          "length": len(record),
                          "sha256": hashlib.sha256(record).hexdigest()})
            fh.write(record)
        index_offset = fh.tell()
        index_bytes = json.dumps({"ligands": index}, sort_keys=True,
                                 separators=(",", ":")).encode()
        fh.write(index_bytes)
        fh.seek(0)
        fh.write(_HEADER.pack(RLIG_MAGIC, RLIG_VERSION, len(index),
                              index_offset, len(index_bytes)))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, out_path)
    return len(index)


# ---------------------------------------------------------------------------
# pack reader


class RligReader:
    """Random-access reader over a ``.rlig`` pack.

    The file is memory-mapped: reading ligand ``i`` slices its record out
    of the map and decodes it — no seeks, no text parsing — so cohort
    dispatch at position ``i`` is O(record size) regardless of library
    size.  Usable as a context manager; safe to share read-only across
    forked processes (each spawn-started worker opens its own).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self._fh = open(self.path, "rb")
        except OSError as exc:
            raise ParseError(self.path, f"cannot open pack: {exc}") from exc
        try:
            size = self.path.stat().st_size
            if size < _HEADER.size:
                raise ParseError(self.path, "pack truncated before header")
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
            magic, version, n, idx_off, idx_len = _HEADER.unpack(
                self._mm[:_HEADER.size])
            if magic != RLIG_MAGIC:
                raise ParseError(self.path, f"bad magic {magic!r}")
            if version != RLIG_VERSION:
                raise ParseError(self.path,
                                 f"unsupported pack version {version}")
            if idx_off + idx_len > size or idx_off < _HEADER.size:
                raise ParseError(
                    self.path,
                    f"pack truncated: index at {idx_off}+{idx_len} "
                    f"but file has {size} bytes")
            try:
                doc = json.loads(self._mm[idx_off:idx_off + idx_len])
                self.index = doc["ligands"]
            except (ValueError, KeyError):
                raise ParseError(self.path, "pack index malformed") from None
            if len(self.index) != n:
                raise ParseError(
                    self.path, f"pack index lists {len(self.index)} ligands, "
                               f"header says {n}")
            for ent in self.index:
                if ent["offset"] + ent["length"] > idx_off:
                    raise ParseError(
                        self.path,
                        f"record {ent['name']!r} overruns the index")
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.index)

    @property
    def names(self) -> list[str]:
        return [ent["name"] for ent in self.index]

    def sha256(self, i: int) -> str:
        """Content digest of record ``i`` (precomputed at pack time)."""
        return self.index[i]["sha256"]

    def read(self, i: int) -> Ligand:
        ent = self.index[i]
        record = memoryview(self._mm)[ent["offset"]:
                                      ent["offset"] + ent["length"]]
        return decode_ligand(record, self.path)

    def read_bytes(self, i: int) -> bytes:
        """Raw record bytes (for re-hashing / verification)."""
        ent = self.index[i]
        return self._mm[ent["offset"]:ent["offset"] + ent["length"]]

    def __iter__(self):
        for i in range(len(self.index)):
            yield self.read(i)

    def close(self) -> None:
        mm = getattr(self, "_mm", None)
        if mm is not None:
            mm.close()
            self._mm = None
        fh = getattr(self, "_fh", None)
        if fh is not None:
            fh.close()
            self._fh = None

    def __enter__(self) -> "RligReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
