"""The public docking API (the paper's system, assembled).

:class:`~repro.core.engine.DockingEngine` binds a ligand-receptor test case
to a reduction back-end (baseline / tc-fp16 / tcec-tf32), a target GPU and
a block size, runs the Lamarckian Genetic Algorithm, and reports the
paper's metrics: best score @ RMSD, best RMSD @ score, actual evaluation
counts, simulated docking runtimes and µs/eval.
"""

from repro.core.config import DockingConfig
from repro.core.engine import DockingEngine, DockingResult, dock_cohort

__all__ = ["DockingConfig", "DockingEngine", "DockingResult", "dock_cohort"]
