"""DockingEngine: run docking experiments and collect the paper's metrics.

Typical use::

    from repro.core import DockingEngine, DockingConfig
    from repro.testcases import get_test_case

    engine = DockingEngine(get_test_case("7cpa"),
                           DockingConfig(backend="tcec-tf32", device="A100",
                                         block_size=64))
    result = engine.dock(n_runs=20, seed=7)
    print(result.best_score, "@", result.rmsd_of_best, "Å")
    print(result.us_per_eval, "µs/eval")

The engine runs the LGA numerically (so back-end precision effects are
real) and prices the execution with the device cost model (so runtimes and
speedups follow the simulated hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.analysis.runtime import RuntimeModel
from repro.analysis.success import RunOutcome, evaluate_run
from repro.core.config import DockingConfig
from repro.docking.pose import calc_coords
from repro.docking.rmsd import rmsd
from repro.obs import get_metrics, get_tracer
from repro.reduction.api import ReductionBackend, get_reduction_backend
from repro.robustness import FaultLedger, GuardedReduction
from repro.robustness.inject import (FaultInjector, InjectingReduction,
                                     corrupt_grid_maps)
from repro.search.cohort import CohortLGA
from repro.search.lga import LGAResult, LGARun
from repro.search.parallel import ParallelLGA, as_seed_sequence
from repro.testcases.generator import TestCase

__all__ = ["DockingEngine", "DockingResult", "build_backend", "dock_cohort"]


def build_backend(cfg: DockingConfig) -> tuple[str | ReductionBackend,
                                               FaultLedger | None]:
    """Reduction back-end per config: raw, or guarded (+ injected).

    Grid-site injection (``inject_site="grid"``) corrupts the lookup
    path, not the reduction outputs, so the back-end is guarded but not
    wrapped in an :class:`InjectingReduction`.
    """
    if cfg.fault_policy is None:
        return cfg.backend, None
    inner = get_reduction_backend(cfg.backend)
    if cfg.inject_rate > 0 and cfg.inject_site == "reduce4":
        inner = InjectingReduction(
            inner, FaultInjector(cfg.inject_rate, mode=cfg.inject_mode,
                                 seed=cfg.inject_seed))
    ledger = FaultLedger()
    return GuardedReduction(inner, policy=cfg.fault_policy,
                            ledger=ledger), ledger


def _runtime_model(case: TestCase, cfg: DockingConfig,
                   n_runs: int) -> RuntimeModel:
    """Cost model for ``n_runs`` LGA runs of ``case``."""
    n_blocks = n_runs * cfg.lga.pop_size
    return RuntimeModel(cfg.device, cfg.block_size, cfg.cost_backend,
                        case.workload(n_blocks))


def _assemble_result(case: TestCase, cfg: DockingConfig,
                     runs: list[LGAResult],
                     ledger: FaultLedger | None = None) -> DockingResult:
    """Turn finished LGA runs into a :class:`DockingResult` (outcome
    evaluation, final-pose RMSDs, runtime pricing, metrics)."""
    tracer = get_tracer()
    with tracer.span("engine.finalize", case=case.name):
        outcomes = [evaluate_run(r, case, cfg.criteria) for r in runs]
        final_coords = calc_coords(
            case.ligand, np.stack([r.best_genotype for r in runs]))
        final_rmsds = [float(x) for x in
                       rmsd(final_coords, case.native_coords)]

    total_evals = sum(r.evals_used for r in runs)
    generations = runs[0].generations
    # evaluation mix: LS evals are ls_rate*pop*ls_iters per gen
    ls_per_gen = int(round(cfg.lga.ls_rate * cfg.lga.pop_size)) \
        * cfg.lga.ls_iters
    ga_per_gen = cfg.lga.pop_size
    per_gen = ls_per_gen + ga_per_gen
    ls_share = ls_per_gen / per_gen if per_gen else 0.0

    model = _runtime_model(case, cfg, len(runs))
    ls_evals = int(total_evals * ls_share)
    ga_evals = total_evals - ls_evals
    runtime = model.runtime_seconds(ls_evals, ga_evals, generations)
    m = get_metrics()
    m.counter("engine.docks").inc()
    m.histogram("engine.evals_per_dock").observe(total_evals)

    return DockingResult(
        case_name=case.name,
        config=cfg,
        runs=runs,
        outcomes=outcomes,
        total_evals=total_evals,
        generations=generations,
        runtime_seconds=runtime,
        final_rmsds=final_rmsds,
        fault_stats=ledger.summary() if ledger is not None else None,
    )


def dock_cohort(cases: list[TestCase],
                config: DockingConfig | None = None,
                n_runs: int = 20,
                seeds=0,
                on_generation=None) -> list[DockingResult]:
    """Dock a cohort of ligands through one lock-step packed LGA.

    Each ligand's result is bit-identical to
    ``DockingEngine(case, config).dock(n_runs, seed=seeds[i])`` — the
    cohort only widens the batch the scoring/gradient/reduce4 kernels see
    (see :mod:`repro.docking.cohort` for the packing contract).  ``seeds``
    is one seed (broadcast to every member) or a per-ligand sequence.

    AutoStop cannot run packed (it needs per-run termination control) and
    transparently falls back to per-ligand docking.  Fault handling runs
    *in* the packed path: the cohort shares one :class:`FaultLedger`
    (each member's ``fault_stats`` reports the cohort-aggregate counts,
    with per-lane attribution in ``by_lane``), injection corrupts the
    batched reduce4 stream or the cohort grid-gather per
    ``config.inject_site`` — note the injector stride walks the *batched*
    call sequence, so the injected fault set differs from a solo dock of
    the same member — and a member whose energies/gradients go non-finite
    (or whose guard trips under ``raise``) is quarantined: its result
    carries the best-so-far poses plus a ``quarantine`` record, while
    every surviving member stays bit-identical to a cohort that never
    contained it.
    """
    cfg = config or DockingConfig()
    C = len(cases)
    if C == 0:
        return []
    if isinstance(seeds, (int, np.integer, np.random.SeedSequence)):
        seeds = [seeds] * C
    seeds = list(seeds)
    if len(seeds) != C:
        raise ValueError(f"{len(seeds)} seeds for {C} cases")
    if cfg.lga.autostop:
        return [DockingEngine(case, cfg).dock(n_runs, seed=s,
                                              on_generation=on_generation)
                for case, s in zip(cases, seeds)]

    tracer = get_tracer()
    span = tracer.span("engine.dock_cohort", cohort=C, backend=cfg.backend,
                       device=cfg.device, n_runs=n_runs)
    with span:
        backend, ledger = build_backend(cfg)
        scorings = [case.scoring() for case in cases]
        with tracer.span("engine.search", method=cfg.lga.ls_method,
                         autostop=False, cohort=C):
            runner = CohortLGA(scorings, backend, cfg.lga, seeds=seeds)
            if cfg.inject_rate > 0 and cfg.inject_site == "grid":
                runner.cohort.pack.grid_injector = FaultInjector(
                    cfg.inject_rate, mode=cfg.inject_mode,
                    seed=cfg.inject_seed)
            all_runs = runner.run(n_runs, on_generation=on_generation)
        results = [_assemble_result(case, cfg, runs, ledger)
                   for case, runs in zip(cases, all_runs)]
        for lane, q in runner.quarantines.items():
            results[lane].quarantine = q.to_dict()
        m = get_metrics()
        m.counter("engine.cohorts").inc()
        m.histogram("cohort.size").observe(C)
        span.set(total_evals=sum(r.total_evals for r in results),
                 quarantined=len(runner.quarantines))
    return results


@dataclass
class DockingResult:
    """Outcome of one docking experiment (one case, ``n_runs`` LGA runs)."""

    case_name: str
    config: DockingConfig
    runs: list[LGAResult]
    outcomes: list[RunOutcome]
    #: actual score evaluations summed over runs (N_score-evals^actual)
    total_evals: int
    generations: int
    #: deterministic simulated docking runtime [s]
    runtime_seconds: float
    #: RMSD of each run's final best pose against the native pose [Å]
    final_rmsds: list[float] = field(default_factory=list)
    #: fault-ledger summary when the run was guarded (config.fault_policy)
    fault_stats: dict | None = None
    #: :class:`~repro.robustness.LaneQuarantine` record (as a dict) when
    #: this member was frozen out of a cohort run; ``None`` for healthy
    #: members and single-ligand docks
    quarantine: dict | None = None

    @property
    def best_score(self) -> float:
        """Best score over all runs [kcal/mol]."""
        return min(r.best_score for r in self.runs)

    @property
    def _best_run_index(self) -> int:
        return int(np.argmin([r.best_score for r in self.runs]))

    @property
    def rmsd_of_best(self) -> float:
        """RMSD of the best-scoring pose (Table 3's 'best score @RMSD')."""
        return self.final_rmsds[self._best_run_index]

    @property
    def best_rmsd(self) -> float:
        """Lowest RMSD over all runs' final best poses."""
        return min(self.final_rmsds)

    @property
    def score_of_best_rmsd(self) -> float:
        """Score of the pose with the lowest RMSD ('best RMSD @score')."""
        i = int(np.argmin(self.final_rmsds))
        return self.runs[i].best_score

    @property
    def us_per_eval(self) -> float:
        """The paper's primary performance metric [µs/eval].

        ``nan`` when no evaluations ran (e.g. a zero-budget dry run) —
        there is no meaningful per-eval cost to report.
        """
        if self.total_evals == 0:
            return float("nan")
        return self.runtime_seconds * 1e6 / self.total_evals

    # ------------------------------------------------------------------
    # JSON round-trip (service manifests, RPC payloads)

    def to_dict(self, include_history: bool = True) -> dict:
        """JSON-ready dict; round-trips through :meth:`from_dict`.

        ``include_history=False`` drops the per-run improvement traces —
        virtual-screen manifests only need the final poses and metrics.
        """
        return {
            "case_name": self.case_name,
            "config": self.config.to_dict(),
            "runs": [r.to_dict(include_history=include_history)
                     for r in self.runs],
            "outcomes": [o.to_dict() for o in self.outcomes],
            "total_evals": int(self.total_evals),
            "generations": int(self.generations),
            "runtime_seconds": float(self.runtime_seconds),
            "final_rmsds": [float(x) for x in self.final_rmsds],
            "fault_stats": self.fault_stats,
            "quarantine": self.quarantine,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DockingResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            case_name=d["case_name"],
            config=DockingConfig.from_dict(d["config"]),
            runs=[LGAResult.from_dict(r) for r in d["runs"]],
            outcomes=[RunOutcome.from_dict(o) for o in d["outcomes"]],
            total_evals=int(d["total_evals"]),
            generations=int(d["generations"]),
            runtime_seconds=float(d["runtime_seconds"]),
            final_rmsds=[float(x) for x in d["final_rmsds"]],
            fault_stats=d.get("fault_stats"),
            quarantine=d.get("quarantine"),
        )


class DockingEngine:
    """Dock one test case under a full experiment configuration."""

    def __init__(self, case: TestCase,
                 config: DockingConfig | None = None) -> None:
        self.config = config or DockingConfig()
        if self.config.inject_rate > 0 \
                and self.config.inject_site == "grid":
            # grid-site injection: poison affinity cells of a *copy* of
            # the maps (cases are shared via caches and must stay clean)
            case = replace(case, maps=corrupt_grid_maps(
                case.maps, FaultInjector(self.config.inject_rate,
                                         mode=self.config.inject_mode,
                                         seed=self.config.inject_seed)))
        self.case = case
        self.scoring = case.scoring()

    # ------------------------------------------------------------------

    def runtime_model(self, n_runs: int) -> RuntimeModel:
        """Cost model for ``n_runs`` LGA runs of this case."""
        return _runtime_model(self.case, self.config, n_runs)

    def _build_backend(self) -> tuple[str | ReductionBackend,
                                      FaultLedger | None]:
        """Reduction back-end per config: raw, or guarded (+ injected)."""
        return build_backend(self.config)

    def dock(self, n_runs: int = 20,
             seed: int | np.random.SeedSequence = 0,
             on_generation=None) -> DockingResult:
        """Run ``n_runs`` independent LGA runs and collect all metrics.

        ``seed`` is a plain int or a spawned
        :class:`numpy.random.SeedSequence` (the multi-process seeding
        contract is documented in :mod:`repro.core.config`).
        ``on_generation(generations, evals)`` is forwarded to the
        lock-step runner so a :class:`repro.robustness.Watchdog` can abort
        a runaway job cleanly (AutoStop runs terminate per run and ignore
        the hook).
        """
        cfg = self.config
        tracer = get_tracer()
        span = tracer.span("engine.dock", case=self.case.name,
                           backend=cfg.backend, device=cfg.device,
                           n_runs=n_runs)
        with span:
            backend, ledger = self._build_backend()
            with tracer.span("engine.search", method=cfg.lga.ls_method,
                             autostop=cfg.lga.autostop):
                if not cfg.lga.autostop:
                    runner = ParallelLGA(self.scoring, backend, cfg.lga,
                                         seed=seed)
                    runs = runner.run(n_runs, on_generation=on_generation)
                else:
                    # AutoStop needs per-run termination control; run
                    # sequentially with independent spawned generators
                    sseq = as_seed_sequence(seed)
                    runs = [LGARun(self.scoring, backend, cfg.lga,
                                   np.random.Generator(
                                       np.random.PCG64(s))).run()
                            for s in sseq.spawn(n_runs)]
            result = _assemble_result(self.case, cfg, runs, ledger)
            span.set(total_evals=result.total_evals,
                     generations=result.generations,
                     simulated_seconds=result.runtime_seconds)
        return result

    def runtime_statistics(self, result: DockingResult, n_samples: int = 100,
                           seed: int = 0) -> dict:
        """Table 3's runtime statistics: min/max/avg/stddev over samples.

        Each sample re-prices the measured evaluation mix with the model's
        seeded run-to-run jitter (clock variability), mirroring the paper's
        100 execution samples.
        """
        model = self.runtime_model(len(result.runs))
        cfg = self.config
        ls_per_gen = int(round(cfg.lga.ls_rate * cfg.lga.pop_size)) \
            * cfg.lga.ls_iters
        per_gen = ls_per_gen + cfg.lga.pop_size
        ls_share = ls_per_gen / per_gen if per_gen else 0.0
        ls_evals = int(result.total_evals * ls_share)
        ga_evals = result.total_evals - ls_evals

        rng = np.random.default_rng(seed)
        samples = np.array([
            model.sample(ls_evals, ga_evals, result.generations, rng).seconds
            for _ in range(n_samples)])
        return {
            "min": float(samples.min()),
            "max": float(samples.max()),
            "avg": float(samples.mean()),
            "std": float(samples.std(ddof=1)),
        }

    def best_pose_coords(self, result: DockingResult) -> np.ndarray:
        """Cartesian coordinates of the overall best pose."""
        best = result.runs[result._best_run_index]
        return calc_coords(self.case.ligand, best.best_genotype)
