"""Engine configuration: back-end, target device, block size, LGA budgets.

Seeding contract (entropy vs spawn keys)
----------------------------------------
Every entry point that takes a ``seed`` (:meth:`DockingEngine.dock
<repro.core.engine.DockingEngine.dock>`,
:class:`~repro.search.parallel.ParallelLGA`) accepts either a plain int or
a :class:`numpy.random.SeedSequence`, and the two occupy *disjoint* stream
keyspaces:

* a plain int ``s`` is interpreted as ``SeedSequence(entropy=s)`` — root of
  the keyspace, empty ``spawn_key``;
* multi-process callers (the :mod:`repro.serve` worker pool) must derive
  per-job sequences by *spawning* —
  ``SeedSequence(entropy=master, spawn_key=(job_index,))`` — never by
  handing sibling workers arithmetic ints (``master + i`` collides with a
  user who passes those same ints as independent experiment seeds).

Internally every consumer only ever **spawns children** from the sequence
it is given (run streams are children ``(i,)``; the Solis-Wets sampler
uses a reserved high stream key, see
:data:`repro.search.parallel.SW_STREAM_KEY`), so two sibling spawned
sequences can never collide with each other or with any plain-int seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.success import SuccessCriteria
from repro.search.adadelta import AdadeltaConfig
from repro.search.ga import GAConfig
from repro.search.lga import LGAConfig
from repro.search.solis_wets import SolisWetsConfig
from repro.simt.costmodel import REDUCTION_BACKENDS

__all__ = ["DockingConfig"]

_BACKENDS = (*REDUCTION_BACKENDS, "exact")


@dataclass(frozen=True)
class DockingConfig:
    """Full configuration of a docking experiment.

    Parameters
    ----------
    backend:
        Reduction back-end: ``"baseline"`` (FP32 SIMT, the paper's
        reference), ``"tc-fp16"`` (Schieffer-Peng), ``"tcec-tf32"`` (the
        paper's contribution) or ``"exact"`` (float64 debugging aid).
    device:
        Simulated GPU for the runtime model: ``"A100"`` / ``"H100"`` /
        ``"B200"``.
    block_size:
        CUDA threads per block (the paper sweeps 64 / 128 / 256).
    lga:
        Search budgets and operators (scaled-down defaults; see
        :class:`~repro.search.lga.LGAConfig`).
    criteria:
        Success thresholds for the E50/outcome analysis.
    fault_policy:
        ``None`` runs the raw back-end; ``"raise"`` / ``"degrade"`` /
        ``"ignore"`` wraps it in a fault-checking
        :class:`~repro.robustness.GuardedReduction` and surfaces the
        :class:`~repro.robustness.FaultLedger` in the result.
    inject_rate / inject_mode / inject_seed:
        Deterministic fault injection (:mod:`repro.robustness.inject`);
        rate 0 disables.
    inject_site:
        Where the injector corrupts: ``"reduce4"`` (reduction output
        blocks, the default) or ``"grid"`` (grid-map lookups — corrupt
        affinity cells for the single-ligand path, the gathered trilinear
        corner values for the cohort grid-gather).
    """

    backend: str = "tcec-tf32"
    device: str = "A100"
    block_size: int = 64
    lga: LGAConfig = field(default_factory=lambda: LGAConfig(
        pop_size=30, max_evals=15_000, max_gens=300,
        ls_iters=100, ls_rate=0.15))
    criteria: SuccessCriteria = field(default_factory=SuccessCriteria)
    fault_policy: str | None = None
    inject_rate: float = 0.0
    inject_mode: str = "nan"
    inject_seed: int = 0
    inject_site: str = "reduce4"

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {_BACKENDS}")
        if self.block_size not in (32, 64, 128, 256, 512):
            raise ValueError(f"unsupported block size {self.block_size}")
        if self.fault_policy not in (None, "raise", "degrade", "ignore"):
            raise ValueError(
                f"unknown fault policy {self.fault_policy!r}; expected "
                f"None, 'raise', 'degrade' or 'ignore'")
        if not 0.0 <= self.inject_rate <= 1.0:
            raise ValueError("inject_rate must be in [0, 1]")
        if self.inject_site not in ("reduce4", "grid"):
            raise ValueError(
                f"unknown inject_site {self.inject_site!r}; expected "
                f"'reduce4' or 'grid'")
        if self.inject_rate > 0 and self.fault_policy is None:
            raise ValueError(
                "fault injection requires a fault_policy so the faults are "
                "at least audited ('ignore') or handled")

    @property
    def cost_backend(self) -> str:
        """Cost-model key ('exact' prices like the FP32 baseline)."""
        return "baseline" if self.backend == "exact" else self.backend

    # ------------------------------------------------------------------
    # JSON round-trip (service manifests, job hashing, future RPC)

    def to_dict(self) -> dict:
        """JSON-ready dict covering every nested config dataclass."""
        from dataclasses import asdict
        d = asdict(self)
        d["lga"]["adadelta"] = (None if self.lga.adadelta is None
                                else asdict(self.lga.adadelta))
        d["lga"]["solis_wets"] = (None if self.lga.solis_wets is None
                                  else asdict(self.lga.solis_wets))
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "DockingConfig":
        """Inverse of :meth:`to_dict`."""
        d = dict(d)
        lga = dict(d.pop("lga"))
        lga["ga"] = GAConfig(**lga.pop("ga"))
        ad = lga.pop("adadelta")
        lga["adadelta"] = None if ad is None else AdadeltaConfig(**ad)
        sw = lga.pop("solis_wets")
        lga["solis_wets"] = None if sw is None else SolisWetsConfig(**sw)
        criteria = SuccessCriteria(**d.pop("criteria"))
        return cls(lga=LGAConfig(**lga), criteria=criteria, **d)
