"""Command-line interface mirroring the AutoDock-GPU binary.

The paper's artifact appendix runs::

    ./bin/autodock_gpu_64wi -ffile .../protein.maps.fld -lfile .../rand-0.pdbqt
        -nrun 100 -lsmet ad -A 0 -H 0 -resnam ad_7cpa_cuda

This CLI accepts the same style of invocation against the synthetic test
library (``-case 7cpa`` replaces the map/ligand file pair; ``-lfile`` is
also accepted for PDBQT ligands docked into a named case's maps), plus the
reproduction-specific switches (``--tensor`` backend, ``--device``,
``--nwi`` block size, mirroring the ``NUMWI``/``TENSOR`` make options).

Example::

    autodock-py -case 7cpa -nrun 20 -lsmet ad --tensor tcec-tf32 \\
        --device A100 --nwi 64 -resnam ad_7cpa
"""

from __future__ import annotations

import argparse
import sys

from repro.core import DockingConfig, DockingEngine
from repro.search.lga import LGAConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="autodock-py",
        description="AutoDock-GPU reproduction with Tensor Core reductions")
    p.add_argument("-case", default=None,
                   help="named test case from the set of 42 (e.g. 7cpa)")
    p.add_argument("-ffile", default=None,
                   help="AutoGrid .maps.fld index (receptor grid maps); "
                        "requires -lfile")
    p.add_argument("-lfile", default=None,
                   help="PDBQT ligand file (docked into -ffile's or "
                        "-case's maps)")
    p.add_argument("-nrun", type=int, default=20,
                   help="number of LGA runs (paper default: 100/20)")
    p.add_argument("-lsmet", choices=("ad", "sw"), default="ad",
                   help="local-search method: ADADELTA or Solis-Wets")
    p.add_argument("-resnam", default=None,
                   help="name of the docking log output file (.dlg)")
    p.add_argument("-seed", type=int, default=0)
    p.add_argument("-A", dest="autostop", type=int, default=0,
                   help="autostop: 1 enables convergence-based early stop")
    p.add_argument("-H", dest="heur", type=int, default=0,
                   help="heuristics: 1 picks the eval budget from N_rot")
    p.add_argument("--tensor", default="baseline",
                   choices=("baseline", "tc-fp16", "tcec-tf32", "exact"),
                   help="reduction backend (make TENSOR=ON -> tcec-tf32)")
    p.add_argument("--device", default="A100",
                   choices=("A100", "H100", "B200"),
                   help="simulated GPU for the runtime model")
    p.add_argument("--nwi", type=int, default=64, choices=(32, 64, 128, 256),
                   help="work items per block (the NUMWI make option)")
    p.add_argument("--evals", type=int, default=15_000,
                   help="max score evaluations per run (scaled-down default)")
    p.add_argument("--pop", type=int, default=30, help="population size")
    p.add_argument("--lsit", type=int, default=100,
                   help="max local-search iterations")
    r = p.add_argument_group("robustness (repro.robustness)")
    r.add_argument("--fault-policy", default="off",
                   choices=("off", "raise", "degrade", "ignore"),
                   help="guard the reduction backend against NaN/Inf/FP16 "
                        "overflow: raise on fault, degrade to the exact "
                        "FP32 block fallback, or audit only")
    r.add_argument("--inject-rate", type=float, default=0.0,
                   help="deterministic fault-injection rate per reduction "
                        "block (0 disables)")
    r.add_argument("--inject-mode", default="nan",
                   choices=("nan", "inf", "overflow", "bitflip"),
                   help="kind of fault injected")
    r.add_argument("--inject-seed", type=int, default=0,
                   help="seed of the injector's lane/bit choices")
    o = p.add_argument_group("observability (repro.obs)")
    o.add_argument("--trace", default=None, metavar="JSONL",
                   help="append spans/events (engine, search, reductions) "
                        "to this JSONL event log; summarise afterwards "
                        "with 'stats <log>'")
    return p


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "inject":
        return inject_main(argv[1:])
    if argv and argv[0] == "screen":
        return screen_main(argv[1:])
    if argv and argv[0] == "pack":
        return pack_main(argv[1:])
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    if argv and argv[0] == "gateway":
        return gateway_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.trace:
        from repro.obs import configure
        configure(args.trace, source="main")

    if args.case is None and args.ffile is None:
        print("error: pass -case <name> or -ffile <maps.fld> -lfile "
              "<ligand.pdbqt>", file=sys.stderr)
        return 2

    # bracket case construction: generating a synthetic case refines its
    # native pose (an ADADELTA descent of its own), which would otherwise
    # show up in traces as orphan spans outside engine.dock
    from repro.obs import get_tracer
    if args.ffile is not None:
        if args.lfile is None:
            print("error: -ffile requires -lfile", file=sys.stderr)
            return 2
        with get_tracer().span("case.build", fld=args.ffile):
            case = case_from_files(args.ffile, args.lfile)
        print(f"Docking {case.ligand.name} into maps from {args.ffile}")
    else:
        from repro.testcases import get_test_case
        with get_tracer().span("case.build", case=args.case):
            case = get_test_case(args.case)
            if args.lfile:
                from repro.io import read_pdbqt
                ligand = read_pdbqt(args.lfile)
                case = replace_case_ligand(case, ligand)
        if args.lfile:
            print(f"Docking external ligand {case.ligand.name} into "
                  f"{args.case}'s maps")

    max_evals = args.evals
    if args.heur:
        from repro.search import heuristic_max_evals
        # scale the paper-sized heuristic budget down to CLI proportions
        max_evals = heuristic_max_evals(case.n_rot,
                                        scale=args.evals / 2_500_000)
        print(f"Heuristics (-H): eval budget set to {max_evals} "
              f"(N_rot={case.n_rot})")
    fault_policy = None if args.fault_policy == "off" else args.fault_policy
    if args.inject_rate > 0 and fault_policy is None:
        # injection without a guard is pure sabotage; audit at minimum
        fault_policy = "ignore"
        print("Fault injection requested without --fault-policy; "
              "auditing with policy 'ignore'")
    cfg = DockingConfig(
        backend=args.tensor,
        device=args.device,
        block_size=args.nwi,
        lga=LGAConfig(pop_size=args.pop, max_evals=max_evals,
                      ls_method=args.lsmet, ls_iters=args.lsit,
                      ls_rate=0.15, autostop=bool(args.autostop)),
        fault_policy=fault_policy,
        inject_rate=args.inject_rate,
        inject_mode=args.inject_mode,
        inject_seed=args.inject_seed,
    )
    engine = DockingEngine(case, cfg)
    print(f"Docking {case.name} (N_rot={case.n_rot}) with "
          f"backend={args.tensor} on {args.device}/{args.nwi}wi, "
          f"{args.nrun} LGA runs ...")
    result = engine.dock(n_runs=args.nrun, seed=args.seed)

    print(f"Number of energy evaluations performed: {result.total_evals}")
    print(f"Best score: {result.best_score:+.3f} kcal/mol "
          f"@ RMSD {result.rmsd_of_best:.2f} A")
    print(f"Best RMSD: {result.best_rmsd:.2f} A "
          f"@ score {result.score_of_best_rmsd:+.3f} kcal/mol")
    print(f"Run time {result.runtime_seconds:.3f} sec (simulated on "
          f"{args.device}); {result.us_per_eval:.3f} us/eval")
    if result.fault_stats is not None:
        fs = result.fault_stats
        print(f"Fault ledger: {fs['blocks_faulty']}/{fs['blocks_checked']} "
              f"reduction blocks faulty, {fs['blocks_recovered']} recovered "
              f"by exact fallback, {fs['blocks_unrecoverable']} "
              f"unrecoverable")

    if args.resnam:
        from repro.io import write_dlg
        out = args.resnam if args.resnam.endswith(".dlg") \
            else args.resnam + ".dlg"
        write_dlg(result, out, case=case)
        print(f"Docking log written to {out}")
    return 0


def case_from_files(fld_path: str, pdbqt_path: str):
    """Assemble a dockable case from AutoGrid maps + a PDBQT ligand.

    File-based cases have no ground truth (no native pose, no known global
    minimum): success-criterion fields default to the zero genotype and the
    engine's E50/outcome analysis is not meaningful for them.
    """
    import numpy as np
    from repro.docking.pose import calc_coords
    from repro.docking.receptor import Receptor
    from repro.io import read_maps, read_pdbqt
    from repro.testcases.generator import TestCase

    maps = read_maps(fld_path)
    ligand = read_pdbqt(pdbqt_path)
    missing = set(ligand.atom_types) - set(maps.type_names)
    if missing:
        raise ValueError(f"maps lack atom types {sorted(missing)}")
    native = np.zeros(6 + ligand.n_rot)
    native[0:3] = (maps.box_lo + maps.box_hi) / 2.0
    placeholder = Receptor(name="from-maps", atom_types=["C"],
                           coords=np.array([[1e6, 1e6, 1e6]]),
                           charges=np.zeros(1))
    return TestCase(name=ligand.name, ligand=ligand, receptor=placeholder,
                    maps=maps, native_genotype=native,
                    native_coords=calc_coords(ligand, native),
                    global_min_score=float("-inf"))


def build_inject_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="autodock-py inject",
        description="Fault-injection recovery study: run the same docking "
                    "ensemble under the clean FP32 baseline and under an "
                    "injected Tensor Core backend with the 'ignore' and "
                    "'degrade' fault policies, and report best scores plus "
                    "the fault ledger (see EXPERIMENTS.md).")
    p.add_argument("-case", default="1u4d",
                   help="named test case (default 1u4d)")
    p.add_argument("--base", default="tc-fp16",
                   choices=("tc-fp16", "tcec-tf32", "baseline"),
                   help="backend the faults are injected into")
    p.add_argument("--rate", type=float, default=1e-3,
                   help="injection rate per reduction block")
    p.add_argument("--mode", default="overflow",
                   choices=("nan", "inf", "overflow", "bitflip"))
    p.add_argument("-nrun", type=int, default=4)
    p.add_argument("-seed", type=int, default=0)
    p.add_argument("--evals", type=int, default=4_000)
    p.add_argument("--pop", type=int, default=16)
    p.add_argument("--lsit", type=int, default=20)
    return p


def inject_main(argv: list[str] | None = None) -> int:
    """The ``autodock-py inject`` subcommand."""
    from repro.robustness.inject import run_injection_study

    args = build_inject_parser().parse_args(argv)
    lga = LGAConfig(pop_size=args.pop, max_evals=args.evals,
                    max_gens=max(1, args.evals // args.pop),
                    ls_iters=args.lsit, ls_rate=0.25)
    print(f"Injecting {args.mode} faults into {args.base} at rate "
          f"{args.rate:g} ({args.case}, {args.nrun} runs) ...")
    study = run_injection_study(args.case, base=args.base, rate=args.rate,
                                mode=args.mode, n_runs=args.nrun,
                                seed=args.seed, lga=lga)
    print(f"baseline (clean FP32)      best score "
          f"{study['baseline_best']:+.3f} kcal/mol")
    for policy in ("ignore", "degrade"):
        d = study["policies"][policy]
        led = d["ledger"]
        print(f"{args.base} + policy={policy:<8} best score "
              f"{d['best_score']:+.3f} kcal/mol | {d['injected']} injected, "
              f"{led['blocks_faulty']} detected, "
              f"{led['blocks_recovered']} recovered")
    drift_ignore = abs(study["policies"]["ignore"]["best_score"]
                       - study["baseline_best"])
    drift_degrade = abs(study["policies"]["degrade"]["best_score"]
                        - study["baseline_best"])
    print(f"best-score drift vs baseline: ignore {drift_ignore:.3f}, "
          f"degrade {drift_degrade:.3f} kcal/mol")
    return 0


def build_screen_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="autodock-py screen",
        description="Virtual screening service: fan a ligand library "
                    "across a sharded worker pool (repro.serve), with a "
                    "content-addressed grid cache, crash recovery and a "
                    "resumable ranked manifest.")
    t = p.add_argument_group("target (pick one style)")
    t.add_argument("-ffile", default=None,
                   help="AutoGrid .maps.fld index shared by every ligand")
    t.add_argument("-case", default=None,
                   help="named library case whose maps every ligand "
                        "docks into")
    t.add_argument("--cases", nargs="+", default=None, metavar="NAME",
                   help="screen named library cases (each docks its own "
                        "ligand; no files needed)")
    p.add_argument("-l", "--ligands", nargs="+", default=None,
                   metavar="PDBQT", help="ligand PDBQT files to screen")
    p.add_argument("--library", default=None, metavar="RLIG",
                   help="packed binary ligand library (.rlig, built with "
                        "the 'pack' subcommand) instead of -l: ligands "
                        "stream to workers by offset with no per-job "
                        "text parsing")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes (0 = run inline)")
    p.add_argument("--cohort-size", type=int, default=1, metavar="N",
                   help="pack up to N ligands per lock-step cohort job "
                        "(1 = one ligand per job); per-ligand results "
                        "are bit-identical either way")
    p.add_argument("-nrun", type=int, default=4,
                   help="LGA runs per ligand")
    p.add_argument("-seed", type=int, default=2025,
                   help="master entropy; job i uses the spawned stream "
                        "(seed, spawn_key=(i,))")
    p.add_argument("--tensor", default="tcec-tf32",
                   choices=("baseline", "tc-fp16", "tcec-tf32", "exact"),
                   help="reduction backend for every job")
    p.add_argument("--device", default="A100",
                   choices=("A100", "H100", "B200"))
    p.add_argument("--nwi", type=int, default=64,
                   choices=(32, 64, 128, 256))
    p.add_argument("--evals", type=int, default=4_000,
                   help="max score evaluations per run")
    p.add_argument("--pop", type=int, default=16, help="population size")
    p.add_argument("--lsit", type=int, default=20,
                   help="max local-search iterations")
    p.add_argument("--manifest", default="screen_manifest.json",
                   help="resumable ranked manifest path (JSON, written "
                        "atomically after every job)")
    p.add_argument("--manifest-shards", type=int, default=None,
                   metavar="N",
                   help="write the manifest as N per-shard NDJSON append "
                        "logs under a directory at --manifest (O(record) "
                        "appends; merge with tools/merge_manifests.py). "
                        "Default: auto — single-file below 10k ligands, "
                        "sharded above; 0 forces single-file")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="shared disk cache tier: content-addressed "
                        "mmap-able blobs (flat grid buffers, assembled "
                        "cases) under DIR, shared by all workers and "
                        "reused across screens")
    p.add_argument("--resume", action="store_true",
                   help="skip jobs already completed in --manifest "
                        "(dead-letter records stay terminal)")
    p.add_argument("--retry-dead", action="store_true",
                   help="with --resume: re-admit dead-letter jobs with "
                        "a fresh retry budget")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per crashed/failed job")
    p.add_argument("--job-timeout", type=float, default=None,
                   metavar="SEC", help="per-job watchdog budget")
    p.add_argument("--lease", type=float, default=None, metavar="SEC",
                   help="parent-side hard lease: an in-flight job older "
                        "than this gets its worker terminated (default "
                        "4x --job-timeout)")
    p.add_argument("--cache-mb", type=int, default=256,
                   help="per-worker content cache capacity [MiB]")
    p.add_argument("--top", type=int, default=10,
                   help="ranked hits to print")
    p.add_argument("--trace", default=None, metavar="JSONL",
                   help="shared JSONL trace log: the parent and every "
                        "worker append spans/events to it (summarise "
                        "with 'stats <log>')")
    p.add_argument("--heartbeat", type=float, default=None, metavar="SEC",
                   help="worker heartbeat interval in seconds (liveness "
                        "cadence of idle workers; default "
                        f"{_default_heartbeat()}s)")
    p.add_argument("--allow-dead", action="store_true",
                   help="exit 0 even when the manifest contains "
                        "dead-lettered (status='dead') jobs; by default "
                        "dead jobs make the screen exit nonzero so CI "
                        "sees the failure")
    return p


def _default_heartbeat() -> float:
    from repro.serve.pool import DEFAULT_HEARTBEAT_SECONDS
    return DEFAULT_HEARTBEAT_SECONDS


def screen_main(argv: list[str] | None = None) -> int:
    """The ``autodock-py screen`` subcommand."""
    from repro.serve import VirtualScreen

    args = build_screen_parser().parse_args(argv)
    styles = sum(x is not None for x in (args.ffile, args.case, args.cases))
    if styles != 1:
        print("error: pass exactly one of -ffile, -case or --cases",
              file=sys.stderr)
        return 2
    if args.ligands and args.library:
        print("error: pass -l or --library, not both", file=sys.stderr)
        return 2
    if args.cases is None and not args.ligands and not args.library:
        print("error: -ffile/-case need -l <ligand.pdbqt> ... or "
              "--library <pack.rlig>", file=sys.stderr)
        return 2

    cfg = DockingConfig(
        backend=args.tensor, device=args.device, block_size=args.nwi,
        lga=LGAConfig(pop_size=args.pop, max_evals=args.evals,
                      max_gens=max(1, args.evals // args.pop),
                      ls_iters=args.lsit, ls_rate=0.25))
    screen = VirtualScreen(
        cases=args.cases, ligands=args.ligands, rlig=args.library,
        fld=args.ffile, case=args.case, config=cfg, n_runs=args.nrun,
        seed=args.seed)

    n_jobs = screen._n_entries()
    print(f"Screening {n_jobs} ligands with backend={args.tensor} on "
          f"{args.device}/{args.nwi}wi, {args.workers} workers, "
          f"{args.nrun} runs each ...")

    done = {"n": 0}

    def stream(result):
        done["n"] += 1
        if result.status == "ok":
            print(f"  [{done['n']}/{n_jobs}] {result.label}: "
                  f"best {result.best_score:+.3f} kcal/mol "
                  f"({result.attempts} attempt(s), "
                  f"{result.wall_seconds:.2f}s)")
        else:
            err = (result.error or {}).get("error_type", "unknown")
            word = "DEAD" if result.status == "dead" else "FAILED"
            print(f"  [{done['n']}/{n_jobs}] {result.label}: {word} "
                  f"({err} after {result.attempts} attempt(s))")

    report = screen.run(workers=args.workers, manifest=args.manifest,
                        resume=args.resume, stream=stream,
                        retries=args.retries,
                        job_wall_seconds=args.job_timeout,
                        lease_seconds=args.lease,
                        cache_bytes=args.cache_mb * 1024 * 1024,
                        trace=args.trace,
                        cohort_size=args.cohort_size,
                        retry_dead=args.retry_dead,
                        heartbeat_seconds=args.heartbeat,
                        manifest_shards=args.manifest_shards,
                        store=args.store)

    s = report.stats
    print(f"\nScreen finished: {s['jobs_completed']} new, "
          f"{s['jobs_cached']} cached, {s['jobs_failed']} failed "
          f"({s['jobs_dead']} dead-lettered, "
          f"{s['jobs_per_second']:.2f} jobs/s over "
          f"{s['wall_seconds']:.1f}s)")
    if s.get("pool", {}).get("quarantines"):
        print(f"Lane quarantines: {s['pool']['quarantines']} cohort "
              f"member(s) re-dispatched individually")
    c = s["cache"]
    print(f"Grid cache: {c['hits']} hits / {c['misses']} misses "
          f"(hit rate {c['hit_rate']:.0%})")
    if args.store:
        print(f"Disk store: {c.get('disk_hits', 0)} hits / "
              f"{c.get('disk_misses', 0)} misses / "
              f"{c.get('disk_writes', 0)} writes under {args.store}")
    print(f"\nTop hits (of {len(report.ranking)} ranked):")
    for hit in report.ranking[: args.top]:
        print(f"  #{hit['rank']:<3} {hit['label']:<24} "
              f"{hit['best_score']:+9.3f} kcal/mol  [{hit['status']}]")
    print(f"Manifest written to {report.manifest_path}")
    # Exit code contract: plain failures are always fatal (1); a
    # manifest left with dead-lettered jobs is fatal too (3) unless the
    # operator explicitly accepts partial results with --allow-dead.
    if s["jobs_failed"] > s["jobs_dead"]:
        return 1
    if s["jobs_dead"]:
        if args.allow_dead:
            print(f"{s['jobs_dead']} dead-lettered job(s) accepted "
                  f"(--allow-dead)")
            return 0
        print(f"error: manifest contains {s['jobs_dead']} dead-lettered "
              f"job(s); rerun with --resume --retry-dead to re-admit "
              f"them, or pass --allow-dead to accept partial results",
              file=sys.stderr)
        return 3
    return 0


def build_pack_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="autodock-py pack",
        description="Pack PDBQT ligands into a .rlig binary library: "
                    "the text is parsed exactly once, records decode "
                    "with buffer slices, and the per-record content "
                    "digests in the index become job identities "
                    "(screen --library <pack.rlig>).")
    p.add_argument("inputs", nargs="+", metavar="PDBQT|DIR",
                   help="ligand PDBQT files and/or directories to scan "
                        "for *.pdbqt")
    p.add_argument("--out", required=True, metavar="RLIG",
                   help="output pack path")
    return p


def pack_main(argv: list[str] | None = None) -> int:
    """The ``autodock-py pack`` subcommand."""
    import time as _time
    from pathlib import Path

    from repro.io import ParseError, pack_rlig

    args = build_pack_parser().parse_args(argv)
    sources: list[Path] = []
    for inp in args.inputs:
        path = Path(inp)
        if path.is_dir():
            sources.extend(sorted(path.glob("*.pdbqt")))
        else:
            sources.append(path)
    if not sources:
        print("error: no ligand files found", file=sys.stderr)
        return 2
    t0 = _time.perf_counter()
    try:
        n = pack_rlig(args.out, sources)
    except ParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    dt = _time.perf_counter() - t0
    out_bytes = Path(args.out).stat().st_size
    in_bytes = sum(p.stat().st_size for p in sources)
    print(f"Packed {n} ligands into {args.out} "
          f"({out_bytes} bytes from {in_bytes} bytes of PDBQT, "
          f"{n / dt:.0f} ligands/s)")
    return 0


def build_stats_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="autodock-py stats",
        description="Summarise a JSONL trace log written by --trace "
                    "(repro.obs): per-stage span timings, job throughput, "
                    "queue depth, cache hit rate and worker heartbeats.")
    p.add_argument("log", help="JSONL event log to summarise")
    p.add_argument("--top", type=int, default=20,
                   help="span rows to print (sorted by total time)")
    p.add_argument("--check", action="store_true",
                   help="validate every record against the event schema "
                        "before summarising (exit 2 on the first bad line)")
    return p


def stats_main(argv: list[str] | None = None) -> int:
    """The ``autodock-py stats`` subcommand."""
    from repro.obs import (SchemaError, render_summary, summarize_log,
                           validate_log)

    args = build_stats_parser().parse_args(argv)
    try:
        if args.check:
            counts = validate_log(args.log)
            print(f"{args.log}: schema v1 OK "
                  f"({counts['spans']} spans, {counts['events']} events, "
                  f"{len(counts['sources'])} sources)")
        summary = summarize_log(args.log)
    except FileNotFoundError:
        print(f"error: no such trace log: {args.log}", file=sys.stderr)
        return 2
    except SchemaError as exc:
        print(f"error: invalid trace log: {exc}", file=sys.stderr)
        return 2
    print(render_summary(summary, top=args.top))
    return 0


def build_gateway_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="autodock-py gateway",
        description="Serving gateway (repro.gateway): an asyncio HTTP "
                    "front-end over sharded worker pools with SLO-driven, "
                    "cost-model-aware admission and scheduling.")
    sub = p.add_subparsers(dest="cmd", required=True)

    s = sub.add_parser("serve", help="run a gateway instance")
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8321,
                   help="listen port (0 = ephemeral)")
    s.add_argument("--shards", type=int, default=2,
                   help="content-hash shard count (one pool each)")
    s.add_argument("--workers", type=int, default=0,
                   help="worker processes per shard (0 = inline)")
    s.add_argument("--slo", type=float, default=None, metavar="SEC",
                   help="submit-to-result SLO; jobs predicted to miss "
                        "it are rejected with 429")
    s.add_argument("--route", default="hash", choices=("hash", "packed"),
                   help="shard routing: strict content-hash partition, "
                        "or bin-pack new ids by predicted backlog")
    s.add_argument("--quantum", type=float, default=1.0, metavar="SEC",
                   help="weighted-deficit-round-robin quantum")
    s.add_argument("--autoscale", action="store_true",
                   help="resize shard pools from predicted backlog "
                        "(requires --workers > 0)")
    s.add_argument("--min-workers", type=int, default=1)
    s.add_argument("--max-workers", type=int, default=4)
    s.add_argument("--drain-target", type=float, default=30.0,
                   metavar="SEC", help="autoscale drain target")
    s.add_argument("--retries", type=int, default=1)
    s.add_argument("--job-timeout", type=float, default=None,
                   metavar="SEC")
    s.add_argument("--heartbeat", type=float,
                   default=_default_heartbeat(), metavar="SEC",
                   help="worker heartbeat interval")
    s.add_argument("--manifest", default=None,
                   help="ranked manifest path (atomic rewrite per job)")
    s.add_argument("--trace", default=None, metavar="JSONL")
    s.add_argument("--bench", default=None, metavar="JSON",
                   help="predictor calibration file (default: the "
                        "committed BENCH_gateway.json)")

    c = sub.add_parser("submit", help="submit jobs over HTTP")
    c.add_argument("--url", required=True,
                   help="gateway base URL (http://host:port)")
    c.add_argument("--cases", nargs="+", required=True, metavar="NAME",
                   help="library cases to dock")
    c.add_argument("-nrun", type=int, default=4)
    c.add_argument("-seed", type=int, default=2025)
    c.add_argument("--tensor", default="tcec-tf32",
                   choices=("baseline", "tc-fp16", "tcec-tf32", "exact"))
    c.add_argument("--device", default="A100",
                   choices=("A100", "H100", "B200"))
    c.add_argument("--nwi", type=int, default=64,
                   choices=(32, 64, 128, 256))
    c.add_argument("--evals", type=int, default=4_000)
    c.add_argument("--pop", type=int, default=16)
    c.add_argument("--lsit", type=int, default=20)
    c.add_argument("--tenant", default="default")
    c.add_argument("--deadline", type=float, default=None, metavar="SEC",
                   help="per-job deadline; jobs predicted to miss it "
                        "are rejected")
    c.add_argument("--priority", type=int, default=0)
    c.add_argument("--watch", action="store_true",
                   help="stream results until every job is terminal")

    w = sub.add_parser("watch", help="stream terminal results (NDJSON)")
    w.add_argument("--url", required=True)
    w.add_argument("--once", action="store_true",
                   help="dump currently-terminal records and exit")
    return p


def gateway_main(argv: list[str] | None = None) -> int:
    """The ``autodock-py gateway`` subcommand."""
    args = build_gateway_parser().parse_args(argv)

    if args.cmd == "serve":
        from repro.gateway import Gateway, GatewayConfig
        cfg = GatewayConfig(
            host=args.host, port=args.port, n_shards=args.shards,
            workers=args.workers, slo_seconds=args.slo, route=args.route,
            quantum_s=args.quantum, autoscale=args.autoscale,
            min_workers=args.min_workers, max_workers=args.max_workers,
            drain_target_s=args.drain_target, retries=args.retries,
            job_wall_seconds=args.job_timeout,
            heartbeat_seconds=args.heartbeat, manifest=args.manifest,
            trace=args.trace, bench_path=args.bench)
        return Gateway(cfg).run()

    from repro.gateway import GatewayClient

    if args.cmd == "submit":
        client = GatewayClient(args.url)
        docs = [{"case": name, "n_runs": args.nrun,
                 "seed": {"entropy": args.seed, "index": i},
                 "backend": args.tensor, "device": args.device,
                 "block_size": args.nwi, "evals": args.evals,
                 "pop": args.pop, "ls_iters": args.lsit,
                 "tenant": args.tenant, "priority": args.priority,
                 **({"deadline_s": args.deadline}
                    if args.deadline is not None else {})}
                for i, name in enumerate(args.cases)]
        out = client.submit_batch(docs)
        for rec in out["accepted"]:
            dup = " (duplicate)" if rec.get("duplicate") else ""
            print(f"accepted {rec['label']:<12} shard {rec['shard']} "
                  f"predicted {rec['predicted_s']:.2f}s "
                  f"[{rec['job_id'][:12]}]{dup}")
        for rej in out["rejected"]:
            print(f"REJECTED {rej['job_id'][:12]}: {rej['reason']} "
                  f"(predicted {rej['predicted_seconds']:.2f}s + "
                  f"{rej['backlog_seconds']:.2f}s backlog > "
                  f"{rej['limit_seconds']:.2f}s; retry after "
                  f"{rej['retry_after_s']:.1f}s)")
        if args.watch and out["accepted"]:
            for rec in client.stream():
                score = rec.get("best_score")
                score_txt = (f"best {score:+.3f} kcal/mol"
                             if score is not None else rec["status"])
                print(f"  {rec['label']:<12} [{rec['status']}] "
                      f"{score_txt}")
        return 1 if out["rejected"] and not out["accepted"] else 0

    if args.cmd == "watch":
        import json as _json
        client = GatewayClient(args.url)
        for rec in client.stream(once=args.once):
            print(_json.dumps(rec))
        return 0
    return 2


def replace_case_ligand(case, ligand):
    """Rebind a test case to an external ligand (same receptor/maps).

    Ground-truth fields (native pose, global minimum) are not meaningful
    for an external ligand; they are reset to the refined best the maps
    admit from a zero genotype.
    """
    from dataclasses import replace
    import numpy as np
    from repro.docking.pose import calc_coords
    for t in set(ligand.atom_types) - set(case.maps.type_names):
        raise ValueError(f"maps of {case.name} lack atom type {t!r}")
    glen = 6 + ligand.n_rot
    native = np.zeros(glen)
    return replace(case, ligand=ligand, native_genotype=native,
                   native_coords=calc_coords(ligand, native))


if __name__ == "__main__":
    raise SystemExit(main())
