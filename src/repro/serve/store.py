"""Disk-backed content-addressed blob store — the second cache tier.

:class:`ContentCache` bounds one process's memory, but at fleet scale the
expensive artefacts (fused flat grid buffers, assembled test cases) are
*shared*: every worker on a host re-parses the same ``.map`` text and
re-concatenates the same flat buffer.  The :class:`BlobStore` persists
those artefacts once, keyed by the same content digests the memory tier
uses, as mmap-able ``.npy`` blobs under a configurable root:

.. code-block:: text

    <root>/<kind>/<aa>/<digest>/
        meta.json        # codec name + shape/type metadata
        <name>.npy       # one file per array payload

Writers stage a blob in a private tmp directory (every file fsynced) and
publish it with one atomic ``rename`` — readers never observe a partial
blob, and a concurrent writer of the same key simply loses the rename
race and discards its copy.  Readers open arrays with
``np.load(mmap_mode="r")``, so a grid shared by eight workers costs one
page-cache copy, not eight heap copies.

Codecs translate between cached python objects and ``(arrays, meta)``
blob payloads; :class:`GridMapsCodec` and :class:`TestCaseCodec` cover
the two artefact kinds the serving layer caches.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from pathlib import Path

import numpy as np

__all__ = ["BlobStore", "GridMapsCodec", "TestCaseCodec", "codec_for_key"]

_META_NAME = "meta.json"

#: characters allowed in a key segment (hex digests plus case names)
_SAFE = set("abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def _check_segment(seg: str) -> str:
    if not seg or seg.startswith(".") or any(c not in _SAFE for c in seg):
        raise ValueError(f"unsafe blob key segment {seg!r}")
    return seg


def fsync_dir(path: str | Path) -> None:
    """fsync a directory entry (rename durability); no-op where unsupported."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class BlobStore:
    """Content-addressed blob directory with atomic publish and mmap reads.

    Parameters
    ----------
    root:
        Store root; created on demand.
    mmap:
        Open stored arrays memory-mapped read-only (the default).  Set to
        ``False`` to load private in-heap copies instead.
    """

    def __init__(self, root: str | Path, mmap: bool = True) -> None:
        self.root = Path(root)
        self.mmap = bool(mmap)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._seq = 0
        self.puts = 0
        self.put_races = 0
        self.gets = 0
        self.get_misses = 0

    # ------------------------------------------------------------------

    def _blob_dir(self, key: str) -> Path:
        """``<root>/<kind>/<aa>/<digest>`` for a ``kind/digest`` key."""
        kind, _, digest = key.partition("/")
        _check_segment(kind)
        _check_segment(digest)
        fan = digest[:2] if len(digest) >= 2 else "__"
        return self.root / kind / fan / digest

    def has(self, key: str) -> bool:
        return (self._blob_dir(key) / _META_NAME).is_file()

    def put(self, key: str, arrays: dict[str, np.ndarray],
            meta: dict) -> bool:
        """Publish a blob atomically; ``False`` if the key already exists
        (including losing the publish race to a concurrent writer)."""
        final = self._blob_dir(key)
        if (final / _META_NAME).is_file():
            return False
        with self._lock:
            self._seq += 1
            seq = self._seq
        tmp = self.root / ".tmp" / f"{os.getpid()}-{seq}-{final.name}"
        tmp.mkdir(parents=True, exist_ok=True)
        try:
            for name, arr in arrays.items():
                _check_segment(name)
                path = tmp / f"{name}.npy"
                with open(path, "wb") as fh:
                    np.save(fh, np.ascontiguousarray(arr))
                    fh.flush()
                    os.fsync(fh.fileno())
            meta_path = tmp / _META_NAME
            with open(meta_path, "w") as fh:
                json.dump(meta, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            fsync_dir(tmp)
            final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(tmp, final)
            except OSError:
                # a concurrent writer published the same content first;
                # theirs is bit-identical by construction, drop ours
                self.put_races += 1
                return False
            fsync_dir(final.parent)
            self.puts += 1
            return True
        finally:
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)

    def get(self, key: str):
        """``(arrays, meta)`` for a stored blob, or ``None`` on a miss.

        Arrays come back memory-mapped read-only when the store was built
        with ``mmap=True``.
        """
        blob = self._blob_dir(key)
        meta_path = blob / _META_NAME
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            self.get_misses += 1
            return None
        arrays = {}
        mode = "r" if self.mmap else None
        try:
            for path in sorted(blob.glob("*.npy")):
                arrays[path.stem] = np.load(path, mmap_mode=mode)
        except (OSError, ValueError):
            self.get_misses += 1
            return None
        self.gets += 1
        return arrays, meta

    def keys(self, kind: str | None = None):
        """Iterate stored keys (``kind/digest``), optionally one kind."""
        kinds = [self.root / _check_segment(kind)] if kind else [
            p for p in self.root.iterdir()
            if p.is_dir() and not p.name.startswith(".")]
        for kdir in kinds:
            if not kdir.is_dir():
                continue
            for fan in sorted(kdir.iterdir()):
                if not fan.is_dir():
                    continue
                for blob in sorted(fan.iterdir()):
                    if (blob / _META_NAME).is_file():
                        yield f"{kdir.name}/{blob.name}"

    def stats(self) -> dict:
        return {"root": str(self.root), "puts": self.puts,
                "put_races": self.put_races, "gets": self.gets,
                "get_misses": self.get_misses}


# ---------------------------------------------------------------------------
# codecs: cached object <-> (arrays, meta) blob payload


class GridMapsCodec:
    """Spill a :class:`~repro.docking.grids.GridMaps` as its fused flat
    buffer — exactly what the hot-path gathers read, so a store hit hands
    workers a ready-to-use grid with zero parsing or concatenation."""

    name = "gridmaps/v1"

    @staticmethod
    def encode(maps) -> tuple[dict, dict]:
        return ({"flat_maps": maps.flat_maps},
                {"codec": GridMapsCodec.name,
                 "origin": [float(v) for v in maps.origin],
                 "spacing": float(maps.spacing),
                 "type_names": list(maps.type_names),
                 "shape": [int(d) for d in maps.shape]})

    @staticmethod
    def decode(arrays: dict, meta: dict):
        from repro.docking.grids import GridMaps
        return GridMaps.from_flat(
            arrays["flat_maps"], origin=meta["origin"],
            spacing=meta["spacing"], type_names=meta["type_names"],
            shape=tuple(meta["shape"]))


class TestCaseCodec:
    """Spill a fully assembled library :class:`TestCase` (synthetic-case
    generation runs a native-pose refinement — by far the most expensive
    builder the cache fronts).  The grid rides as its flat buffer, the
    ligand as one ``.rlig`` record blob."""

    name = "testcase/v1"

    @staticmethod
    def encode(case) -> tuple[dict, dict]:
        from repro.io.rlig import encode_ligand
        arrays, meta = GridMapsCodec.encode(case.maps)
        arrays["ligand_blob"] = np.frombuffer(
            encode_ligand(case.ligand), dtype=np.uint8)
        arrays["receptor_coords"] = case.receptor.coords
        arrays["receptor_charges"] = case.receptor.charges
        arrays["native_genotype"] = case.native_genotype
        arrays["native_coords"] = case.native_coords
        meta.update({
            "codec": TestCaseCodec.name,
            "name": case.name,
            "receptor_name": case.receptor.name,
            "receptor_types": list(case.receptor.atom_types),
            "global_min_score": float(case.global_min_score),
        })
        return arrays, meta

    @staticmethod
    def decode(arrays: dict, meta: dict):
        from repro.docking.receptor import Receptor
        from repro.io.rlig import decode_ligand
        from repro.testcases.generator import TestCase
        maps = GridMapsCodec.decode(arrays, meta)
        ligand = decode_ligand(bytes(np.asarray(arrays["ligand_blob"])))
        receptor = Receptor(name=meta["receptor_name"],
                            atom_types=list(meta["receptor_types"]),
                            coords=np.array(arrays["receptor_coords"]),
                            charges=np.array(arrays["receptor_charges"]))
        return TestCase(name=meta["name"], ligand=ligand, receptor=receptor,
                        maps=maps,
                        native_genotype=np.array(arrays["native_genotype"]),
                        native_coords=np.array(arrays["native_coords"]),
                        global_min_score=meta["global_min_score"])


#: codec registry by key kind — ``maps/<digest>`` blobs hold flat grid
#: buffers, ``case/<name>`` blobs hold assembled library cases
_CODECS = {"maps": GridMapsCodec, "case": TestCaseCodec}


def codec_for_key(key: str):
    """The spill codec for a cache key's kind, or ``None`` (not spillable)."""
    return _CODECS.get(key.partition("/")[0])
