"""`VirtualScreen`: fan a ligand library across the worker pool.

The high-level service API: build one content-addressed
:class:`~repro.serve.queue.DockingJob` per ligand, order them through the
priority :class:`~repro.serve.queue.JobQueue`, execute on a
:class:`~repro.serve.pool.WorkerPool`, stream
:class:`~repro.serve.pool.JobResult` records as they complete, and keep
an atomically-updated manifest on disk so an interrupted screen resumes
without re-docking anything already finished.

::

    from repro.serve import VirtualScreen

    screen = VirtualScreen(fld="protein.maps.fld",
                           ligands=["l1.pdbqt", "l2.pdbqt"],
                           config=DockingConfig(backend="tcec-tf32"),
                           n_runs=4, seed=2025)
    report = screen.run(workers=4, manifest="screen.json", resume=True)
    for hit in report.ranking[:10]:
        print(hit["label"], hit["best_score"])
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import DockingConfig
from repro.obs import get_tracer
from repro.serve.cache import DEFAULT_CAPACITY, file_sha256, maps_digest
from repro.serve.manifest import (DEFAULT_MANIFEST_SHARDS,
                                  SHARD_AUTO_THRESHOLD, ShardedManifest,
                                  atomic_write_json, load_manifest_jobs)
from repro.serve.pool import JobResult, WorkerPool
from repro.serve.queue import (DockingJob, JobQueue, canonical_spec,
                               pack_cohorts, spawn_seed)

__all__ = ["VirtualScreen", "ScreenReport"]

MANIFEST_VERSION = 1


@dataclass
class ScreenReport:
    """Terminal state of one screen invocation."""

    #: job_id -> terminal JobResult (ok / failed / dead / cached)
    results: dict[str, JobResult]
    #: completed jobs sorted best-score-first
    ranking: list[dict]
    stats: dict
    manifest_path: str | None = None

    @property
    def completed(self) -> list[JobResult]:
        return [r for r in self.results.values()
                if r.status not in ("failed", "dead")]

    @property
    def failed(self) -> list[JobResult]:
        """Terminal failures: legacy ``failed`` plus dead-letter records."""
        return [r for r in self.results.values()
                if r.status in ("failed", "dead")]

    @property
    def dead(self) -> list[JobResult]:
        """Dead-letter records (``repro screen --retry-dead`` re-admits)."""
        return [r for r in self.results.values() if r.status == "dead"]


@dataclass
class VirtualScreen:
    """A docking screen of many ligands against one receptor.

    Exactly one target style must be given:

    * ``cases`` — named library cases, each docking its own ligand;
    * ``case`` + ``ligands`` — external PDBQT ligands into a named
      library case's maps;
    * ``fld`` + ``ligands`` — AutoGrid map files plus PDBQT ligands.

    Instead of a PDBQT ``ligands`` list, ``case``/``fld`` screens can
    take ``rlig`` — a packed binary ligand library (see
    :mod:`repro.io.rlig`): ligands stream to workers by offset, and the
    per-record content digests precomputed at pack time become the job
    identities, so submit-time hashing is an index lookup.

    Parameters
    ----------
    config:
        Engine configuration shared by every job.
    n_runs:
        LGA runs per ligand.
    seed:
        Master entropy; job ``i`` gets the spawned stream
        ``SeedSequence(seed, spawn_key=(i,))`` (see the seeding contract
        in :mod:`repro.core.config`).
    priorities:
        Optional per-ligand priority list (lower runs first).
    deadline_seconds:
        Relative deadline applied to every job at queue-build time.
    queue_size:
        Backpressure bound of the staging queue (``None`` = unbounded).
    chaos:
        Optional chaos-injection map ``label -> extra spec keys`` merged
        into that entry's job spec (``crash_once`` / ``hang_once`` /
        ``slow_once`` / ``corrupt_result_once`` marker paths,
        ``poison_nonfinite`` — see :mod:`repro.serve.pool`).  Chaos keys
        are part of the content-addressed job id, so chaos runs never
        collide with clean manifests.  Test/CI hook, not a user feature.
    """

    cases: list[str] | None = None
    ligands: list[str | Path] | None = None
    rlig: str | Path | None = None
    fld: str | Path | None = None
    case: str | None = None
    config: DockingConfig = field(default_factory=DockingConfig)
    n_runs: int = 4
    seed: int = 2025
    priorities: list[int] | None = None
    deadline_seconds: float | None = None
    queue_size: int | None = None
    chaos: dict | None = None

    def __post_init__(self) -> None:
        styles = [self.cases is not None,
                  self.case is not None,
                  self.fld is not None]
        if sum(styles) != 1:
            raise ValueError(
                "give exactly one of cases=, case=+ligands=, fld=+ligands=")
        if self.ligands is not None and self.rlig is not None:
            raise ValueError("give ligands= or rlig=, not both")
        if (self.case is not None or self.fld is not None) \
                and not self.ligands and self.rlig is None:
            raise ValueError("ligand file list must not be empty")
        self._rlig_index: list[dict] | None = None
        if self.rlig is not None:
            from repro.serve.cache import open_rlig
            self._rlig_index = list(open_rlig(self.rlig).index)
            if not self._rlig_index:
                raise ValueError(f"ligand pack {self.rlig} is empty")
        if self.priorities is not None \
                and len(self.priorities) != self._n_entries():
            raise ValueError("priorities length must match the library")

    def _n_entries(self) -> int:
        if self.cases is not None:
            return len(self.cases)
        if self._rlig_index is not None:
            return len(self._rlig_index)
        return len(self.ligands)

    # ------------------------------------------------------------------

    def _specs(self) -> list[tuple[str, dict]]:
        """(label, spec) per library entry, with content digests stamped."""
        out: list[tuple[str, dict]] = []
        if self.cases is not None:
            for name in self.cases:
                out.append((name, {"kind": "case", "case": name}))
            return self._with_chaos(out)
        fld_digest = maps_digest(self.fld) if self.fld is not None else None
        if self._rlig_index is not None:
            pack = str(self.rlig)
            for i, ent in enumerate(self._rlig_index):
                spec = {"kind": "rlig", "pack": pack, "index": i,
                        "ligand_sha256": ent["sha256"]}
                if self.case is not None:
                    spec["case"] = self.case
                else:
                    spec["fld"] = str(self.fld)
                    spec["fld_sha256"] = fld_digest
                out.append((ent["name"], spec))
            return self._with_chaos(out)
        for path in self.ligands:
            path = str(path)
            label = Path(path).stem
            lig_digest = file_sha256(path)
            if self.case is not None:
                out.append((label, {
                    "kind": "case-ligand", "case": self.case,
                    "ligand": path, "ligand_sha256": lig_digest}))
            else:
                out.append((label, {
                    "kind": "files", "fld": str(self.fld),
                    "fld_sha256": fld_digest,
                    "ligand": path, "ligand_sha256": lig_digest}))
        return self._with_chaos(out)

    def _with_chaos(self, specs: list[tuple[str, dict]]
                    ) -> list[tuple[str, dict]]:
        if not self.chaos:
            return specs
        return [(label, {**spec, **self.chaos.get(label, {})})
                for label, spec in specs]

    def jobs(self) -> list[DockingJob]:
        """One content-addressed job per library entry."""
        deadline = (time.monotonic() + self.deadline_seconds
                    if self.deadline_seconds is not None else None)
        jobs = []
        # Seed streams are spawned per unique *content*, not per list
        # position, so byte-identical duplicate ligands share one seed
        # (and thus one job id — the queue dedups them).
        stream_index: dict[str, int] = {}
        for k, (label, spec) in enumerate(self._specs()):
            key = json.dumps(canonical_spec(spec), sort_keys=True)
            i = stream_index.setdefault(key, len(stream_index))
            jobs.append(DockingJob(
                spec=spec, config=self.config, n_runs=self.n_runs,
                seed=spawn_seed(self.seed, i),
                priority=(self.priorities[k]
                          if self.priorities is not None else 0),
                deadline=deadline, label=label))
        return jobs

    # ------------------------------------------------------------------

    def run(self, workers: int = 2,
            manifest: str | Path | None = None,
            resume: bool = False,
            stream=None,
            retries: int = 2,
            backoff: float = 0.25,
            job_wall_seconds: float | None = None,
            lease_seconds: float | None = None,
            cache_bytes: int = DEFAULT_CAPACITY,
            start_method: str = "spawn",
            include_history: bool = False,
            trace: str | Path | None = None,
            cohort_size: int = 1,
            retry_dead: bool = False,
            heartbeat_seconds: float | None = None,
            manifest_shards: int | None = None,
            store: str | Path | None = None) -> ScreenReport:
        """Execute the screen; returns the final :class:`ScreenReport`.

        ``cohort_size > 1`` packs compatible jobs into lock-step cohorts
        of up to that many ligands (:func:`repro.serve.queue.pack_cohorts`)
        before dispatch; results stay keyed — and bit-identical — per
        ligand, so manifests, resume and dedup are unaffected by packing.

        ``manifest`` is rewritten atomically after *every* completed job
        (the :class:`~repro.analysis.campaign.E50Campaign` tmp +
        ``os.replace`` pattern), so a killed screen loses at most the
        jobs in flight; ``resume=True`` reloads it and skips every job
        whose id is already terminal — identical inputs do zero new
        docking work.  Dead-letter records (``status="dead"``) are kept
        terminal on resume; ``retry_dead=True`` (the ``--retry-dead``
        CLI flag) drops them from the loaded manifest so those jobs are
        re-admitted with a fresh retry budget.  ``stream(result)`` is
        called per terminal :class:`JobResult` as it arrives.  ``trace``
        names a JSONL event log: the parent *and every worker* append
        spans/events to it (``repro stats <log>`` renders the summary
        afterwards).

        ``manifest_shards`` selects the large-screen manifest format:
        the manifest path becomes a *directory* of per-shard NDJSON
        append logs (:class:`~repro.serve.manifest.ShardedManifest`) —
        appending a result is O(record), not O(screen).  ``None`` picks
        automatically (sharded above
        :data:`~repro.serve.manifest.SHARD_AUTO_THRESHOLD` library
        entries, single-file below); an existing manifest's format
        always wins so resumes stay stable.  Resume and dead-letter
        semantics are identical shard-wise, and
        ``tools/merge_manifests.py`` merges/ranks shard directories.

        ``store`` names a shared disk cache tier root
        (:class:`~repro.serve.store.BlobStore`): workers front their
        in-memory caches with content-addressed mmap-able blobs, so a
        warm store serves grids with zero text parsing or flat-buffer
        rebuilds, across processes and across screens.
        """
        if resume and manifest is None:
            raise ValueError("resume=True requires a manifest path")
        t0 = time.monotonic()

        if trace is not None:
            from repro.obs import configure
            tracer = configure(trace, source="main")
        else:
            tracer = get_tracer()

        results: dict[str, JobResult] = {}
        if resume and manifest is not None and Path(manifest).exists():
            for job_id, rd in load_manifest_jobs(manifest).items():
                prior = JobResult.from_dict(rd)
                if prior.status in ("ok", "cached"):
                    prior.status = "cached"
                    results[prior.job_id] = prior
                elif prior.status in ("dead", "failed") and not retry_dead:
                    # dead letters are terminal: resuming must not retry
                    # a job that already exhausted its budget unless the
                    # operator explicitly re-admits it
                    results[prior.job_id] = prior
        sharded = (self._open_sharded(manifest, manifest_shards)
                   if manifest is not None else None)

        span = tracer.span("screen.run", workers=workers, resume=resume)
        heartbeats: dict = {}
        with span:
            with tracer.span("screen.build_queue"):
                queue = JobQueue(maxsize=self.queue_size)
                for job in self.jobs():
                    queue.submit(job, block=True)  # dedups same content
                to_run = [job for job in queue.drain()
                          if job.job_id not in results]  # manifest skip
                if cohort_size > 1:
                    # pack after dedup/skip so cached work never rides
                    # along in a cohort
                    to_run = pack_cohorts(to_run, cohort_size)
            tracer.event("queue.stats", **queue.stats())

            new_results: list[JobResult] = []
            pool_stats: dict = {}
            if to_run:
                pool_kwargs = dict(
                    workers=workers, retries=retries, backoff=backoff,
                    job_wall_seconds=job_wall_seconds,
                    lease_seconds=lease_seconds, cache_bytes=cache_bytes,
                    start_method=start_method,
                    include_history=include_history,
                    store_root=(str(store) if store is not None else None),
                    trace_path=(str(trace) if trace is not None
                                else None))
                if heartbeat_seconds is not None:
                    pool_kwargs["heartbeat_seconds"] = heartbeat_seconds
                pool = WorkerPool(**pool_kwargs)
                for result in pool.map(to_run):
                    results[result.job_id] = result
                    new_results.append(result)
                    heartbeats = pool.heartbeats
                    pool_stats = self._pool_stats(pool)
                    # persist before notifying: a crash in the consumer
                    # must not lose a job that already finished
                    if sharded is not None:
                        sharded.append(result.to_dict())
                        if len(new_results) % 100 == 0:
                            sharded.write_meta(
                                self._screen_header(),
                                self._stats(results, new_results, queue,
                                            t0, workers, heartbeats,
                                            pool_stats))
                    elif manifest is not None:
                        self._save_manifest(manifest, results, queue,
                                            t0, workers, heartbeats,
                                            pool_stats)
                    if stream is not None:
                        stream(result)
                heartbeats = pool.heartbeats
                pool_stats = self._pool_stats(pool)
            span.set(jobs_total=len(results),
                     jobs_new=len(new_results),
                     jobs_dead=sum(1 for r in new_results
                                   if r.status == "dead"))

        report = ScreenReport(
            results=results,
            ranking=self._ranking(results),
            stats=self._stats(results, new_results, queue, t0, workers,
                              heartbeats, pool_stats),
            manifest_path=str(manifest) if manifest is not None else None)
        if sharded is not None:
            sharded.write_meta(self._screen_header(), report.stats)
            sharded.compact()
            sharded.close()
        elif manifest is not None:
            self._save_manifest(manifest, results, queue, t0, workers,
                                heartbeats, pool_stats)
        tracer.flush()
        return report

    @staticmethod
    def _pool_stats(pool: WorkerPool) -> dict:
        """Pool-side fault counters surfaced in stats and the manifest."""
        return {"quarantines": pool.quarantines,
                "dead_letters": len(pool.dead_letters),
                "workers_replaced": pool.workers_replaced}

    # ------------------------------------------------------------------

    @staticmethod
    def _ranking(results: dict[str, JobResult]) -> list[dict]:
        ranked = [r for r in results.values()
                  if r.status in ("ok", "cached") and r.result is not None]
        ranked.sort(key=lambda r: r.best_score)
        return [{"rank": k + 1, "label": r.label, "job_id": r.job_id,
                 "best_score": r.best_score,
                 "total_evals": r.result["total_evals"],
                 "status": r.status}
                for k, r in enumerate(ranked)]

    @staticmethod
    def _stats(results, new_results, queue: JobQueue, t0: float,
               workers: int, heartbeats: dict | None = None,
               pool_stats: dict | None = None) -> dict:
        wall = time.monotonic() - t0
        cache = {"hits": 0, "misses": 0, "evictions": 0, "races": 0,
                 "disk_hits": 0, "disk_misses": 0, "disk_writes": 0}
        for r in new_results:
            if r.cache:
                for key in cache:
                    cache[key] += r.cache.get(key, 0)
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0
        n_new = sum(1 for r in new_results if r.status == "ok")
        return {
            "workers": workers,
            "wall_seconds": wall,
            "jobs_total": len(results),
            "jobs_completed": n_new,
            "jobs_cached": sum(1 for r in results.values()
                               if r.status == "cached"),
            # jobs_failed counts every terminal failure (legacy "failed"
            # plus dead-letter records) for manifest compatibility;
            # jobs_dead counts the dead-letter subset
            "jobs_failed": sum(1 for r in results.values()
                               if r.status in ("failed", "dead")),
            "jobs_dead": sum(1 for r in results.values()
                             if r.status == "dead"),
            "jobs_per_second": n_new / wall if wall > 0 else 0.0,
            "queue": queue.stats(),
            "cache": cache,
            "pool": dict(pool_stats or {}),
            # last heartbeat per worker: liveness + per-worker metrics
            # snapshot (cache hit rates, job counts) for the manifest
            "heartbeats": {str(k): v
                           for k, v in (heartbeats or {}).items()},
        }

    def _screen_header(self) -> dict:
        return {"seed": self.seed, "n_runs": self.n_runs,
                "config": self.config.to_dict(),
                "written_at": time.time()}

    def _open_sharded(self, manifest: str | Path,
                      manifest_shards: int | None) -> ShardedManifest | None:
        """Pick the manifest format; ``None`` means single-file JSON.

        An existing manifest's on-disk format always wins (resume must
        keep appending where the first run wrote); otherwise an explicit
        ``manifest_shards`` decides, and ``None`` auto-shards at
        :data:`SHARD_AUTO_THRESHOLD` library entries.
        """
        path = Path(manifest)
        if ShardedManifest.is_sharded(path):
            return ShardedManifest(path)
        if path.is_file():
            if manifest_shards:
                raise ValueError(
                    f"{path} is a single-file manifest; cannot resume it "
                    f"with manifest_shards={manifest_shards}")
            return None
        if manifest_shards is None:
            if self._n_entries() < SHARD_AUTO_THRESHOLD:
                return None
            manifest_shards = DEFAULT_MANIFEST_SHARDS
        if manifest_shards <= 0:
            return None
        return ShardedManifest(path, n_shards=manifest_shards)

    def _save_manifest(self, path: str | Path,
                       results: dict[str, JobResult], queue: JobQueue,
                       t0: float, workers: int,
                       heartbeats: dict | None = None,
                       pool_stats: dict | None = None) -> None:
        """Durable atomic write: fsynced before the rename and tmp-named
        per PID, so neither a power cut nor a concurrent screen on the
        same path can leave a torn or empty manifest."""
        payload = {
            "version": MANIFEST_VERSION,
            "screen": self._screen_header(),
            "jobs": {jid: r.to_dict() for jid, r in results.items()},
            "ranking": self._ranking(results),
            "stats": self._stats(results, list(results.values()),
                                 queue, t0, workers, heartbeats,
                                 pool_stats),
        }
        atomic_write_json(path, payload)

    @staticmethod
    def _load_manifest(path: str | Path) -> dict:
        """job_id -> JobResult dict from a manifest written by run()."""
        return load_manifest_jobs(path)
