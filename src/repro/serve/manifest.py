"""Manifest persistence: durable single-file writes and sharded logs.

The single-file manifest (:class:`VirtualScreen` default) serialises
*every* terminal job and rewrites the whole JSON after each completion —
perfect for thousands of ligands, O(n²) I/O at 10^5–10^6.  This module
adds the large-screen format: per-shard append-only NDJSON result logs,

.. code-block:: text

    <manifest-dir>/
        meta.json            # version, n_shards, screen header, stats
        shard-0000.ndjson    # one JSON line per terminal JobResult
        shard-0001.ndjson    # ...

where a result lands in shard ``shard_for(job_id, n_shards)`` — the same
coordination-free content-hash partition the queue and gateway use — so
appends from independent screens or gateway shard runners never contend
on one file.  Appending is O(record); a crash tears at most the final
line, which loaders skip.  Re-appended job ids (retries, resumed
overwrites) are resolved last-record-wins at load time and squeezed out
by periodic :meth:`ShardedManifest.compact`.

:func:`atomic_write_json` is the shared durable-write primitive (tmp in
the same directory, ``fsync``, atomic ``os.replace``, directory fsync);
the tmp name carries the PID and thread id so two writers pointed at
one path — even shard threads inside one process — cannot tear each
other's tmp file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.serve.queue import shard_for

__all__ = ["ShardedManifest", "atomic_write_json", "load_manifest_jobs",
           "SHARD_AUTO_THRESHOLD", "DEFAULT_MANIFEST_SHARDS"]

SHARDED_MANIFEST_VERSION = 1

#: library size at which ``manifest_shards=None`` switches to sharded logs
SHARD_AUTO_THRESHOLD = 10_000

#: shard count used when the auto threshold trips
DEFAULT_MANIFEST_SHARDS = 8

_META_NAME = "meta.json"


def atomic_write_json(path: str | Path, payload: dict,
                      indent: int | None = 2) -> None:
    """Durably replace ``path`` with ``payload`` as JSON.

    The tmp file is written in the target directory, fsynced *before*
    the rename (a power cut can otherwise publish an empty rename), and
    named with the writer's PID *and* thread id so concurrent writers to
    the same path — worker processes or same-process shard threads —
    never truncate or steal each other's in-flight tmp.  The directory
    entry is fsynced after the replace where the platform allows it.
    """
    path = Path(path)
    tmp = path.with_name(
        f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}")
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=indent)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    from repro.serve.store import fsync_dir
    fsync_dir(path.parent)


class ShardedManifest:
    """Append-friendly sharded result log for large screens.

    Parameters
    ----------
    path:
        Manifest directory (created on demand).
    n_shards:
        Shard count for a *new* manifest; an existing directory's
        ``meta.json`` wins (the partition must stay stable across
        resumes).
    compact_every:
        Appends per shard between automatic last-wins compactions.
    fsync_every:
        Appends per shard between fsyncs (each append is flushed to the
        OS immediately; a crash loses at most what the kernel had not
        yet written, and never more than the final, torn line).
    """

    def __init__(self, path: str | Path, n_shards: int | None = None,
                 compact_every: int = 4096, fsync_every: int = 64) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.compact_every = int(compact_every)
        self.fsync_every = int(fsync_every)
        meta = self._read_meta()
        if meta is not None:
            self.n_shards = int(meta["n_shards"])
        else:
            if n_shards is None or n_shards <= 0:
                raise ValueError(
                    f"new sharded manifest {self.path} needs n_shards >= 1")
            self.n_shards = int(n_shards)
            self.write_meta()
        self._handles: dict[int, object] = {}
        self._appends: dict[int, int] = {}

    # ------------------------------------------------------------------

    @staticmethod
    def is_sharded(path: str | Path) -> bool:
        """True if ``path`` is (or will resume as) a sharded manifest."""
        return (Path(path) / _META_NAME).is_file()

    def shard_path(self, shard: int) -> Path:
        return self.path / f"shard-{shard:04d}.ndjson"

    def _read_meta(self) -> dict | None:
        try:
            meta = json.loads((self.path / _META_NAME).read_text())
        except (OSError, ValueError):
            return None
        if meta.get("version") != SHARDED_MANIFEST_VERSION:
            raise ValueError(
                f"unsupported sharded-manifest version {meta.get('version')!r}")
        return meta

    def write_meta(self, screen: dict | None = None,
                   stats: dict | None = None) -> None:
        """Durably (re)write ``meta.json``; job records live in shards."""
        payload = {"version": SHARDED_MANIFEST_VERSION,
                   "n_shards": getattr(self, "n_shards", None),
                   "written_at": time.time()}
        prior = self._read_meta() or {}
        payload["screen"] = screen if screen is not None \
            else prior.get("screen")
        payload["stats"] = stats if stats is not None else prior.get("stats")
        if payload["n_shards"] is None:
            payload["n_shards"] = prior.get("n_shards")
        atomic_write_json(self.path / _META_NAME, payload)

    # ------------------------------------------------------------------

    def append(self, record: dict) -> int:
        """Append one terminal JobResult record; returns its shard."""
        job_id = record["job_id"]
        shard = shard_for(job_id, self.n_shards)
        fh = self._handles.get(shard)
        if fh is None:
            fh = open(self.shard_path(shard), "a")
            self._handles[shard] = fh
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        fh.flush()
        n = self._appends.get(shard, 0) + 1
        self._appends[shard] = n
        if n % self.fsync_every == 0:
            os.fsync(fh.fileno())
        if n % self.compact_every == 0:
            self.compact(shard)
        return shard

    def load(self) -> dict[str, dict]:
        """``job_id -> record`` across every shard, last record winning.

        A torn final line (crash mid-append) is skipped, not fatal.
        """
        out: dict[str, dict] = {}
        for shard in range(self.n_shards):
            for rec in self._read_shard(shard):
                out[rec["job_id"]] = rec
        return out

    def _read_shard(self, shard: int) -> list[dict]:
        path = self.shard_path(shard)
        if not path.is_file():
            return []
        records = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue    # torn tail from a crash mid-append
                if isinstance(rec, dict) and "job_id" in rec:
                    records.append(rec)
        return records

    def compact(self, shard: int | None = None) -> None:
        """Squeeze superseded records out of shard logs (last-wins),
        rewriting each file atomically."""
        shards = range(self.n_shards) if shard is None else [shard]
        for k in shards:
            records = self._read_shard(k)
            if not records:
                continue
            latest: dict[str, dict] = {}
            for rec in records:
                latest[rec["job_id"]] = rec
            if len(latest) == len(records):
                continue        # nothing superseded
            fh = self._handles.pop(k, None)
            if fh is not None:
                fh.close()
            path = self.shard_path(k)
            tmp = path.with_name(
                f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}")
            with open(tmp, "w") as out:
                for rec in latest.values():
                    out.write(json.dumps(rec, separators=(",", ":")) + "\n")
                out.flush()
                os.fsync(out.fileno())
            os.replace(tmp, path)

    def close(self) -> None:
        for fh in self._handles.values():
            try:
                fh.flush()
                os.fsync(fh.fileno())
            except (OSError, ValueError):
                pass
            fh.close()
        self._handles.clear()

    def __enter__(self) -> "ShardedManifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_manifest_jobs(path: str | Path) -> dict[str, dict]:
    """``job_id -> record`` from either manifest format.

    Dispatches on what is on disk: a directory with a ``meta.json`` loads
    shard logs; a plain file loads the single-file JSON format.
    """
    path = Path(path)
    if ShardedManifest.is_sharded(path):
        with ShardedManifest(path) as sm:
            return sm.load()
    payload = json.loads(path.read_text())
    from repro.serve.screen import MANIFEST_VERSION
    if payload.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {payload.get('version')!r}")
    return payload.get("jobs", {})
