"""Sharded virtual-screening service layer.

Turns the one-shot :class:`~repro.core.engine.DockingEngine` into a
multi-process screening pipeline, the deployment shape the paper's
throughput argument is about (screening large ligand libraries):

* :mod:`repro.serve.queue` — priority :class:`JobQueue` of
  content-addressed :class:`DockingJob` units, with dedup and bounded
  backpressure (:class:`QueueFull`);
* :mod:`repro.serve.cache` — per-worker content-addressed LRU
  :class:`ContentCache` so a screen parses its receptor grids once, not
  once per ligand;
* :mod:`repro.serve.pool` — spawn-safe multiprocessing
  :class:`WorkerPool` with crash recovery, watchdog timeouts and
  retry-with-backoff;
* :mod:`repro.serve.screen` — the high-level :class:`VirtualScreen` API:
  streamed :class:`JobResult` records, an atomic resumable manifest and
  a ranked hit list (also the ``screen`` CLI subcommand).
"""

from repro.serve.cache import ContentCache, file_sha256, maps_digest
from repro.serve.manifest import (ShardedManifest, atomic_write_json,
                                  load_manifest_jobs)
from repro.serve.pool import (DEFAULT_HEARTBEAT_SECONDS, JobResult,
                              WorkerPool, execute_cohort, execute_job,
                              validate_result_payload)
from repro.serve.store import BlobStore
from repro.serve.queue import (
    CohortJob,
    DockingJob,
    JobQueue,
    QueueFull,
    WrongShard,
    pack_cohorts,
    seed_from_spec,
    shard_for,
    shard_key,
    shard_ranges,
    spawn_seed,
)
from repro.serve.screen import ScreenReport, VirtualScreen

__all__ = [
    "BlobStore",
    "CohortJob",
    "ContentCache",
    "DEFAULT_HEARTBEAT_SECONDS",
    "DockingJob",
    "JobQueue",
    "JobResult",
    "QueueFull",
    "ScreenReport",
    "ShardedManifest",
    "VirtualScreen",
    "WorkerPool",
    "WrongShard",
    "atomic_write_json",
    "execute_cohort",
    "execute_job",
    "file_sha256",
    "load_manifest_jobs",
    "maps_digest",
    "pack_cohorts",
    "seed_from_spec",
    "shard_for",
    "shard_key",
    "shard_ranges",
    "spawn_seed",
    "validate_result_payload",
]
