"""Sharded multiprocessing worker pool with crash recovery.

Workers are spawn-started processes (spawn-safe by construction: no
inherited RNG or cache state) that steal :class:`~repro.serve.queue.DockingJob`
work from a shared task queue, each owning a private
:class:`~repro.serve.cache.ContentCache`.  The parent tracks in-flight
jobs through ``started`` acknowledgements, so a worker that is killed
mid-job (OOM, segfault, operator) is detected by liveness polling, its
job re-queued with exponential backoff (the
:class:`~repro.analysis.campaign.E50Campaign` retry idiom) and a
replacement worker spawned.  Per-job wall-clock budgets reuse the
cooperative :class:`~repro.robustness.Watchdog` inside the worker, backed
by a parent-side hard lease for workers too wedged to cooperate.

Completions are idempotent by job id, so the at-least-once dispatch that
crash recovery implies can never produce duplicate results.

Fault containment
-----------------
Results are validated parent-side (:func:`validate_result_payload`): a
payload with missing runs or non-finite best scores counts as a failed
attempt, not a completion.  A job that exhausts its retry budget (or
fails non-retryably) lands in the pool's **dead-letter queue**: a
terminal ``status="dead"`` :class:`JobResult` carrying the error class
and the full attempt history (``pool.dead_letters`` collects them).
Cohorts complete *partially*: healthy members complete straight from the
batched run, and only members the lock-step engine quarantined (see
:class:`~repro.robustness.LaneQuarantine`) are re-dispatched
individually with a fresh per-member retry budget; the whole-cohort
split remains only as the backstop for crashes, where no per-member
attribution exists.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass, field

from repro.obs import get_metrics, get_tracer
from repro.serve.cache import DEFAULT_CAPACITY, ContentCache, load_case
from repro.serve.queue import CohortJob, DockingJob, seed_from_spec

__all__ = ["DEFAULT_HEARTBEAT_SECONDS", "JobResult", "WorkerPool",
           "execute_cohort", "execute_job", "validate_result_payload"]

#: exit code a worker uses for the injected-crash test hook
_CRASH_EXIT = 17


@dataclass
class JobResult:
    """Terminal record of one job (streamed and manifest-persisted)."""

    job_id: str
    label: str
    status: str                       # "ok" | "failed" | "dead" | "cached"
    attempts: int = 1
    worker_id: int | None = None
    wall_seconds: float = 0.0
    #: serialized :class:`~repro.core.engine.DockingResult` (``ok`` only)
    result: dict | None = None
    #: per-job cache hit/miss/eviction deltas
    cache: dict | None = None
    error: dict | None = None
    extra: dict = field(default_factory=dict)

    @property
    def best_score(self) -> float | None:
        if self.result is None:
            return None
        return min(r["best_score"] for r in self.result["runs"])

    def to_dict(self) -> dict:
        return {"job_id": self.job_id, "label": self.label,
                "status": self.status, "attempts": self.attempts,
                "worker_id": self.worker_id,
                "wall_seconds": self.wall_seconds, "result": self.result,
                "cache": self.cache, "error": self.error,
                "extra": dict(self.extra)}

    @classmethod
    def from_dict(cls, d: dict) -> "JobResult":
        return cls(job_id=d["job_id"], label=d.get("label", ""),
                   status=d["status"], attempts=int(d.get("attempts", 1)),
                   worker_id=d.get("worker_id"),
                   wall_seconds=float(d.get("wall_seconds", 0.0)),
                   result=d.get("result"), cache=d.get("cache"),
                   error=d.get("error"), extra=d.get("extra", {}))


def _apply_poison(case, spec: dict):
    """Chaos hook: ``"poison_nonfinite": true`` NaNs out the grid maps.

    The shared/cached case object is never mutated — the poisoned copy is
    built with :func:`dataclasses.replace`, mirroring how the grid-site
    fault injector treats cases.  A poisoned solo job produces non-finite
    best scores (caught by parent-side validation); a poisoned cohort
    member trips lane quarantine in the lock-step engine.
    """
    if not spec.get("poison_nonfinite"):
        return case
    import numpy as np
    from dataclasses import replace
    maps = replace(case.maps,
                   affinity=np.full_like(case.maps.affinity, np.nan))
    return replace(case, maps=maps)


def validate_result_payload(payload: dict) -> dict | None:
    """Parent-side result validation; returns an error dict or ``None``.

    A worker can crash, but it can also *lie* — a wedged allocator or an
    injected fault can hand back a structurally-broken or non-finite
    result.  Completion therefore requires the payload to carry a
    non-empty run list with finite best scores; anything else counts as
    a failed (retryable) attempt, never as a completion.
    """
    result = payload.get("result") if isinstance(payload, dict) else None
    runs = result.get("runs") if isinstance(result, dict) else None
    if not isinstance(runs, list) or not runs:
        return {"error_type": "CorruptResult",
                "message": "result payload has no runs",
                "retryable": True}
    for i, run in enumerate(runs):
        score = run.get("best_score") if isinstance(run, dict) else None
        if not isinstance(score, (int, float)) or not math.isfinite(score):
            return {"error_type": "NonFiniteResult",
                    "message": f"run {i} best_score is {score!r}",
                    "retryable": True}
    return None


def execute_job(job: DockingJob, cache: ContentCache | None = None,
                wall_seconds: float | None = None,
                include_history: bool = False) -> dict:
    """Run one docking job; returns the ``ok`` payload dict.

    Raises whatever the engine raises — the caller (worker loop or
    inline pool) decides on retry policy.
    """
    from repro.core.engine import DockingEngine
    from repro.robustness import Watchdog

    before = cache.stats() if cache is not None else None
    t0 = time.monotonic()
    span = get_tracer().span("job.execute", job_id=job.job_id,
                             label=job.label)
    with span:
        case = _apply_poison(load_case(job.spec, cache), job.spec)
        engine = DockingEngine(case, job.config)
        watchdog = (Watchdog(wall_seconds=wall_seconds)
                    if wall_seconds is not None else None)
        result = engine.dock(
            n_runs=job.n_runs, seed=seed_from_spec(job.seed),
            on_generation=watchdog.check if watchdog is not None else None)
        payload = {
            "result": result.to_dict(include_history=include_history),
            "wall_seconds": time.monotonic() - t0,
        }
        if cache is not None:
            payload["cache"] = ContentCache.delta(before, cache.stats())
        span.set(wall_seconds=payload["wall_seconds"],
                 total_evals=result.total_evals)
    m = get_metrics()
    m.histogram("job.wall_seconds").observe(payload["wall_seconds"])
    m.histogram("job.evals").observe(result.total_evals)
    return payload


def execute_cohort(job: CohortJob, cache: ContentCache | None = None,
                   wall_seconds: float | None = None,
                   include_history: bool = False) -> dict:
    """Run a cohort job through the packed lock-step engine.

    Returns ``{"members": [{"job_id", "label", "payload"}, ...],
    "quarantined": [{"job_id", "label", "quarantine"}, ...], ...}`` —
    one ``ok``-shaped payload per *healthy* member, each bit-identical to
    what :func:`execute_job` would have produced for that member alone.
    Members the lock-step engine quarantined (non-finite lane or guard
    trip, see :class:`~repro.robustness.LaneQuarantine`) carry their
    quarantine record instead of a result; the caller re-dispatches them
    individually.  Wall time is split evenly across members (the
    lock-step engine advances them together, so there is no per-member
    attribution).
    """
    from repro.core.engine import dock_cohort
    from repro.robustness import Watchdog

    before = cache.stats() if cache is not None else None
    t0 = time.monotonic()
    span = get_tracer().span("job.execute_cohort", job_id=job.job_id,
                             label=job.label, cohort=len(job.jobs))
    with span:
        cases = [_apply_poison(load_case(m.spec, cache), m.spec)
                 for m in job.jobs]
        seeds = [seed_from_spec(m.seed) for m in job.jobs]
        watchdog = (Watchdog(wall_seconds=wall_seconds)
                    if wall_seconds is not None else None)
        results = dock_cohort(
            cases, job.config, n_runs=job.n_runs, seeds=seeds,
            on_generation=watchdog.check if watchdog is not None else None)
        wall = time.monotonic() - t0
        share = wall / len(job.jobs)
        members, quarantined = [], []
        for m, r in zip(job.jobs, results):
            if r.quarantine is not None:
                quarantined.append({"job_id": m.job_id, "label": m.label,
                                    "quarantine": r.quarantine})
            else:
                members.append({"job_id": m.job_id, "label": m.label,
                                "payload": {
                                    "result": r.to_dict(
                                        include_history=include_history),
                                    "wall_seconds": share}})
        payload = {
            "members": members,
            "quarantined": quarantined,
            "wall_seconds": wall,
            "cohort_size": len(job.jobs),
        }
        if cache is not None:
            payload["cache"] = ContentCache.delta(before, cache.stats())
        span.set(wall_seconds=wall, quarantined=len(quarantined),
                 total_evals=sum(r.total_evals for r in results))
    m = get_metrics()
    m.histogram("job.wall_seconds").observe(wall)
    for r in results:
        m.histogram("job.evals").observe(r.total_evals)
    return payload


def _fire_once(spec: dict, key: str) -> bool:
    """Check-and-set a fired-once chaos marker file; True if it fires."""
    marker = spec.get(key)
    if marker and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write(key)
        return True
    return False


def _maybe_inject_chaos(job: DockingJob | CohortJob) -> None:
    """Pre-execution chaos hooks for the recovery tests.

    Job specs opt in via fired-once marker paths (so the retry proceeds
    normally), mirroring the deterministic fault injection of
    :mod:`repro.robustness.inject`:

    * ``"crash_once": <path>`` — the first worker that picks the job up
      dies hard (``os._exit``, no cleanup — the closest portable
      stand-in for a kill -9 mid-job), exercising crash detection,
      respawn and re-dispatch.
    * ``"hang_once": <path>`` — the worker wedges forever; only the
      parent-side hard lease can free the job, exercising lease
      termination and crash-style recovery.
    * ``"slow_once": <path>`` — the worker stalls for
      ``spec["slow_seconds"]`` (default 1.0) before executing,
      exercising lease head-room and stall accounting without failing.
    """
    if isinstance(job, CohortJob):
        for member in job.jobs:
            _maybe_inject_chaos(member)
        return
    if _fire_once(job.spec, "crash_once"):
        # give the result queue's feeder thread a beat to flush the
        # "started" ack — a crash *mid-job* (ack delivered) exercises the
        # worker-liveness recovery path; a crash before the ack lands in
        # the slower lost-dispatch backstop instead
        time.sleep(0.25)
        os._exit(_CRASH_EXIT)
    if _fire_once(job.spec, "hang_once"):
        while True:              # wedged: only the parent lease frees us
            time.sleep(0.5)
    if _fire_once(job.spec, "slow_once"):
        time.sleep(float(job.spec.get("slow_seconds", 1.0)))


def _maybe_corrupt_result(job: DockingJob | CohortJob, payload: dict) -> dict:
    """Post-execution chaos hook: ``"corrupt_result_once": <path>``.

    Mangles the first attempt's result (best scores → NaN) *after* a
    clean run, so the parent-side :func:`validate_result_payload` path —
    reject, retry, eventually dead-letter — is exercised end to end.
    """
    def poison(p: dict) -> None:
        for run in p["result"]["runs"]:
            run["best_score"] = float("nan")

    if isinstance(job, CohortJob):
        spec_by_id = {m.job_id: m.spec for m in job.jobs}
        for entry in payload.get("members", []):
            if _fire_once(spec_by_id[entry["job_id"]],
                          "corrupt_result_once"):
                poison(entry["payload"])
    elif _fire_once(job.spec, "corrupt_result_once"):
        poison(payload)
    return payload


#: default worker heartbeat cadence (seconds); override per pool/CLI
DEFAULT_HEARTBEAT_SECONDS = 5.0


def _heartbeat(worker_id: int, jobs_done: int, jobs_failed: int,
               cache: ContentCache,
               interval_s: float = DEFAULT_HEARTBEAT_SECONDS) -> dict:
    """One worker heartbeat: liveness + a metrics snapshot.

    Emitted to the trace log and sent to the parent, which surfaces the
    last one per worker in :class:`~repro.serve.screen.VirtualScreen`'s
    manifest stats.  ``interval_s`` records the *effective* cadence so
    downstream consumers (``stats`` subcommand, gateway liveness checks)
    can judge staleness without knowing pool configuration.
    """
    return {
        "worker_id": worker_id,
        "pid": os.getpid(),
        "jobs_done": jobs_done,
        "jobs_failed": jobs_failed,
        "interval_s": interval_s,
        "cache": cache.stats(),
        "metrics": get_metrics().snapshot(),
    }


def _make_store(store_root: str | None):
    """Open the shared disk cache tier for a worker (``None`` = no tier)."""
    if store_root is None:
        return None
    from repro.serve.store import BlobStore
    return BlobStore(store_root)


def _worker_main(task_q, result_q, worker_id: int, cache_bytes: int,
                 wall_seconds: float | None, include_history: bool,
                 trace_path: str | None = None,
                 heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
                 store_root: str | None = None) -> None:
    """Worker loop: steal a job, ack, execute, report; ``None`` drains.

    Heartbeats are emitted after every job *and* whenever the queue stays
    empty for ``heartbeat_seconds`` — an idle worker still proves
    liveness at the configured cadence.
    """
    import queue as _queue

    tracer = get_tracer()
    if trace_path is not None:
        from repro.obs import configure
        tracer = configure(trace_path, source=f"worker-{worker_id}")
    cache = ContentCache(cache_bytes, store=_make_store(store_root))
    jobs_done = jobs_failed = 0
    tracer.event("worker.start", worker_id=worker_id, pid=os.getpid())
    while True:
        try:
            job = task_q.get(timeout=max(heartbeat_seconds, 0.05))
        except _queue.Empty:
            hb = _heartbeat(worker_id, jobs_done, jobs_failed, cache,
                            interval_s=heartbeat_seconds)
            tracer.event("worker.heartbeat", **hb)
            result_q.put(("heartbeat", None, worker_id, hb))
            continue
        if job is None:
            tracer.event("worker.stop", worker_id=worker_id,
                         jobs_done=jobs_done, jobs_failed=jobs_failed)
            result_q.put(("bye", None, worker_id, None))
            return
        result_q.put(("started", job.job_id, worker_id, None))
        _maybe_inject_chaos(job)
        try:
            if isinstance(job, CohortJob):
                payload = execute_cohort(
                    job, cache, wall_seconds=wall_seconds,
                    include_history=include_history)
            else:
                payload = execute_job(
                    job, cache, wall_seconds=wall_seconds,
                    include_history=include_history)
            payload = _maybe_corrupt_result(job, payload)
            jobs_done += 1
            result_q.put(("done", job.job_id, worker_id, payload))
        except Exception as exc:
            from repro.robustness import WatchdogTimeout
            jobs_failed += 1
            get_metrics().counter("worker.job_errors").inc()
            result_q.put(("failed", job.job_id, worker_id, {
                "error_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(limit=10),
                # watchdog aborts are deterministic: retrying burns the
                # same budget again (the campaign convention)
                "retryable": not isinstance(exc, WatchdogTimeout),
            }))
        hb = _heartbeat(worker_id, jobs_done, jobs_failed, cache,
                        interval_s=heartbeat_seconds)
        tracer.event("worker.heartbeat", **hb)
        result_q.put(("heartbeat", None, worker_id, hb))


class WorkerPool:
    """Fan :class:`DockingJob` work across spawn-safe worker processes.

    Parameters
    ----------
    workers:
        Worker process count; ``0`` executes inline in the parent (no
        multiprocessing — deterministic and convenient for tests and as
        the sequential baseline of the throughput benchmark).
    retries:
        Extra attempts for a job whose worker crashed or raised a
        transient error.
    backoff:
        Base of the exponential re-queue delay: attempt ``k`` waits
        ``backoff * 2**(k-1)`` seconds.
    job_wall_seconds:
        Cooperative per-job watchdog budget (``None`` disables).
    lease_seconds:
        Parent-side hard lease: an in-flight job older than this gets its
        worker terminated and is treated as a crash.  Defaults to
        ``4 * job_wall_seconds`` when a watchdog budget is set.
    cache_bytes:
        Per-worker :class:`ContentCache` capacity.
    store_root:
        Optional shared disk cache tier root
        (:class:`~repro.serve.store.BlobStore`): every worker fronts its
        in-memory cache with the same content-addressed blob directory,
        so grids are parsed once per *fleet*, not once per process.
    start_method:
        ``multiprocessing`` start method; ``"spawn"`` (default) is the
        portable, state-leak-free choice.
    include_history:
        Keep per-run improvement traces in result payloads (large).
    max_respawns:
        Crash-loop breaker: worker replacements allowed per :meth:`map`
        call before the pool aborts with ``RuntimeError`` instead of
        respawning forever (default ``8 * workers``).  Guards against
        systematically-broken worker environments — e.g. a ``spawn``
        ``__main__`` that cannot be re-imported, where every worker dies
        on startup before ever taking a job.
    trace_path:
        Shared JSONL trace log; workers configure their own
        :mod:`repro.obs` tracer appending to it (``None`` = no tracing).
    heartbeat_seconds:
        Worker heartbeat cadence: idle workers emit a liveness heartbeat
        at this interval (busy workers also heartbeat after every job).
        A serving-layer knob, not part of :class:`~repro.core.config
        .DockingConfig` — config fields feed the content hash that is a
        job's identity, and the heartbeat cadence must not change job
        ids or dedup semantics.
    """

    def __init__(self, workers: int = 2, retries: int = 2,
                 backoff: float = 0.25,
                 job_wall_seconds: float | None = None,
                 lease_seconds: float | None = None,
                 cache_bytes: int = DEFAULT_CAPACITY,
                 start_method: str = "spawn",
                 include_history: bool = False,
                 poll_seconds: float = 0.1,
                 stall_seconds: float = 10.0,
                 max_respawns: int | None = None,
                 trace_path: str | None = None,
                 heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
                 store_root: str | None = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.retries = retries
        self.backoff = backoff
        self.job_wall_seconds = job_wall_seconds
        if lease_seconds is None and job_wall_seconds is not None:
            lease_seconds = 4.0 * job_wall_seconds
        self.lease_seconds = lease_seconds
        self.cache_bytes = cache_bytes
        self.start_method = start_method
        self.include_history = include_history
        self.poll_seconds = poll_seconds
        self.stall_seconds = stall_seconds
        self.max_respawns = (max_respawns if max_respawns is not None
                             else 8 * max(workers, 1))
        self.trace_path = trace_path
        self.store_root = str(store_root) if store_root is not None else None
        if heartbeat_seconds <= 0:
            raise ValueError("heartbeat_seconds must be > 0")
        self.heartbeat_seconds = heartbeat_seconds
        #: workers replaced after a crash (cumulative over map calls)
        self.workers_replaced = 0
        #: last heartbeat per worker id (inline mode uses key "inline")
        self.heartbeats: dict = {}
        #: terminal ``status="dead"`` results (cumulative over map calls)
        self.dead_letters: list[JobResult] = []
        #: cohort members quarantined by the lock-step engine (count)
        self.quarantines = 0

    # ------------------------------------------------------------------

    def _dead(self, job, attempts: int, error: dict | None,
              history: list[dict], worker_id: int | None = None
              ) -> JobResult:
        """Build, record and return a terminal dead-letter result."""
        res = JobResult(
            job_id=job.job_id, label=job.label, status="dead",
            attempts=attempts, worker_id=worker_id, error=error,
            extra={"attempt_history": list(history)})
        self.dead_letters.append(res)
        get_metrics().counter("pool.dead_letters").inc()
        get_tracer().event("job.dead", job_id=job.job_id, label=job.label,
                           attempts=attempts,
                           error_type=(error or {}).get("error_type"))
        return res

    def _note_quarantines(self, cohort_id: str, quarantined: list[dict],
                          history: dict) -> None:
        """Account a cohort's quarantined members before re-dispatch."""
        self.quarantines += len(quarantined)
        get_metrics().counter("pool.quarantines").inc(len(quarantined))
        for q in quarantined:
            get_tracer().event(
                "cohort.quarantine_redispatch", cohort=cohort_id,
                job_id=q["job_id"], label=q["label"],
                reason=q["quarantine"].get("reason"))
            history.setdefault(q["job_id"], []).append({
                "attempt": 0, "error_type": "LaneQuarantine",
                "message": (f"{q['quarantine'].get('reason')}: "
                            f"{q['quarantine'].get('detail', '')}")})

    # ------------------------------------------------------------------

    def map(self, jobs: list[DockingJob]):
        """Yield one terminal :class:`JobResult` per job, as completed.

        Completion order follows execution, not submission; callers that
        need ranking sort afterwards.  Every job yields exactly one
        result even across worker crashes (idempotent completion by job
        id).
        """
        if self.workers == 0:
            yield from self._map_inline(jobs)
            return
        yield from self._map_processes(jobs)

    # -- inline (workers=0) -------------------------------------------

    def _map_inline(self, jobs):
        """Inline execution: one cache and one set of counters.

        The cache, the heartbeat's ``jobs_done``/``jobs_failed`` counters
        and the completed-id set are shared across the cohort-split /
        quarantine-re-dispatch recursion in :meth:`_run_inline`, so a
        split cohort reuses the warm cache, the heartbeat counts stay
        monotone across recursion, and a job can never complete twice
        (idempotent completion, same contract as the process pool).
        """
        cache = ContentCache(self.cache_bytes,
                             store=_make_store(self.store_root))
        state = {"done": 0, "failed": 0, "completed": set(),
                 "history": {}}
        yield from self._run_inline(list(jobs), cache, state)

    def _inline_heartbeat(self, cache, state) -> None:
        hb = _heartbeat(-1, state["done"], state["failed"], cache,
                        interval_s=self.heartbeat_seconds)
        self.heartbeats["inline"] = hb
        get_tracer().event("worker.heartbeat", **hb)

    def _run_inline(self, jobs, cache, state):
        tracer = get_tracer()
        for job in jobs:
            if job.job_id in state["completed"]:
                continue                 # already terminal via recursion
            if isinstance(job, CohortJob):
                tracer.event("job.dispatch", job_id=job.job_id,
                             label=job.label, cohort=len(job.jobs))
                try:
                    payload = execute_cohort(
                        job, cache, wall_seconds=self.job_wall_seconds,
                        include_history=self.include_history)
                except Exception as exc:
                    # no per-member attribution on a raw exception: fall
                    # back to the members individually (each gets the
                    # normal retry budget; completed ids are skipped)
                    get_metrics().counter("pool.cohort_splits").inc()
                    tracer.event("cohort.split", job_id=job.job_id,
                                 members=len(job.jobs),
                                 error_type=type(exc).__name__)
                    yield from self._run_inline(list(job.jobs), cache,
                                                state)
                    continue
                members_by_id = {m.job_id: m for m in job.jobs}
                redispatch = [members_by_id[q["job_id"]]
                              for q in payload["quarantined"]]
                self._note_quarantines(job.job_id, payload["quarantined"],
                                       state["history"])
                tracer.event("job.complete", job_id=job.job_id,
                             label=job.label, attempts=1,
                             wall_seconds=payload["wall_seconds"],
                             cache=payload.get("cache"),
                             cohort=len(job.jobs),
                             quarantined=len(payload["quarantined"]))
                for k, member in enumerate(payload["members"]):
                    err = validate_result_payload(member["payload"])
                    if err is not None:
                        state["history"].setdefault(
                            member["job_id"], []).append(
                            {"attempt": 1, **err})
                        redispatch.append(members_by_id[member["job_id"]])
                        continue
                    state["done"] += 1
                    state["completed"].add(member["job_id"])
                    yield JobResult(
                        job_id=member["job_id"], label=member["label"],
                        status="ok", attempts=1, worker_id=None,
                        wall_seconds=member["payload"]["wall_seconds"],
                        result=member["payload"]["result"],
                        cache=payload.get("cache") if k == 0 else None,
                        extra={"cohort": job.job_id,
                               "cohort_size": len(job.jobs)})
                self._inline_heartbeat(cache, state)
                if redispatch:
                    # quarantine-aware partial completion: only the
                    # frozen/invalid members retry individually
                    yield from self._run_inline(redispatch, cache, state)
                continue
            attempts = 0
            history = state["history"].setdefault(job.job_id, [])
            tracer.event("job.dispatch", job_id=job.job_id,
                         label=job.label)
            while True:
                attempts += 1
                err = None
                payload = None
                try:
                    payload = execute_job(
                        job, cache, wall_seconds=self.job_wall_seconds,
                        include_history=self.include_history)
                    err = validate_result_payload(payload)
                except Exception as exc:
                    from repro.robustness import WatchdogTimeout
                    err = {"error_type": type(exc).__name__,
                           "message": str(exc),
                           # watchdog aborts are deterministic: retrying
                           # burns the same budget again
                           "retryable": not isinstance(exc,
                                                       WatchdogTimeout)}
                if err is None:
                    state["done"] += 1
                    state["completed"].add(job.job_id)
                    tracer.event("job.complete", job_id=job.job_id,
                                 label=job.label, attempts=attempts,
                                 wall_seconds=payload["wall_seconds"],
                                 cache=payload.get("cache"))
                    yield JobResult(
                        job_id=job.job_id, label=job.label, status="ok",
                        attempts=attempts, worker_id=None,
                        wall_seconds=payload["wall_seconds"],
                        result=payload["result"],
                        cache=payload.get("cache"),
                        extra=({"attempt_history": list(history)}
                               if history else {}))
                    break
                history.append({"attempt": attempts,
                                "error_type": err["error_type"],
                                "message": err["message"]})
                if err.get("retryable", True) and attempts <= self.retries:
                    get_metrics().counter("pool.retries").inc()
                    tracer.event("job.retry", job_id=job.job_id,
                                 attempts=attempts)
                    time.sleep(self.backoff * 2 ** (attempts - 1))
                    continue
                state["failed"] += 1
                state["completed"].add(job.job_id)
                tracer.event("job.failed", job_id=job.job_id,
                             label=job.label, attempts=attempts,
                             error_type=err["error_type"])
                yield self._dead(job, attempts, err, history)
                break
            self._inline_heartbeat(cache, state)

    # -- multiprocessing ----------------------------------------------

    def _spawn_worker(self, ctx, task_q, result_q, worker_id):
        proc = ctx.Process(
            target=_worker_main,
            args=(task_q, result_q, worker_id, self.cache_bytes,
                  self.job_wall_seconds, self.include_history,
                  self.trace_path, self.heartbeat_seconds,
                  self.store_root),
            daemon=True, name=f"repro-serve-worker-{worker_id}")
        proc.start()
        return proc

    def _map_processes(self, jobs):
        import queue as _queue

        tracer = get_tracer()
        ctx = mp.get_context(self.start_method)
        task_q = ctx.Queue()
        result_q = ctx.Queue()

        pending: dict[str, DockingJob] = {}
        attempts: dict[str, int] = {}
        history: dict[str, list[dict]] = {}            # id -> attempt log
        in_flight: dict[str, tuple[int, float]] = {}   # id -> (wid, t0)
        worker_job: dict[int, str] = {}
        retry_at: list[tuple[float, DockingJob]] = []
        procs: dict[int, mp.process.BaseProcess] = {}
        respawns = {"n": 0}
        self._next_wid = 0

        def clear_flight(job_id: str) -> None:
            entry = in_flight.pop(job_id, None)
            if entry is not None:
                worker_job.pop(entry[0], None)

        def schedule_retry(job: DockingJob) -> None:
            delay = self.backoff * 2 ** max(attempts[job.job_id] - 1, 0)
            retry_at.append((time.monotonic() + delay, job))
            get_metrics().counter("pool.retries").inc()
            tracer.event("job.retry", job_id=job.job_id,
                         attempts=attempts[job.job_id], delay_s=delay)

        def split_cohort(cjob: CohortJob) -> None:
            """Re-dispatch a failed/crashed cohort's members individually.

            Splitting (rather than retrying the cohort) isolates the bad
            member: the others run to completion and only the culprit
            burns its retry budget.  Happens at most once per cohort —
            members are plain jobs afterwards.
            """
            att = attempts.get(cjob.job_id, 1)
            get_metrics().counter("pool.cohort_splits").inc()
            tracer.event("cohort.split", job_id=cjob.job_id,
                         members=len(cjob.jobs))
            for member in cjob.jobs:
                if member.job_id in pending:
                    continue
                pending[member.job_id] = member
                # the member's "started" ack will re-increment; inherit
                # the cohort's attempt count so budgets carry over
                attempts[member.job_id] = max(att - 1, 0)
                task_q.put(member)
                tracer.event("job.dispatch", job_id=member.job_id,
                             label=member.label,
                             split_from=cjob.job_id)

        def reap_dead_workers() -> list[JobResult]:
            """Dead/over-lease workers: re-queue or fail their jobs."""
            now = time.monotonic()
            if self.lease_seconds is not None:
                for jid, (wid, t0) in list(in_flight.items()):
                    proc = procs.get(wid)
                    if (now - t0 > self.lease_seconds and proc is not None
                            and proc.is_alive()):
                        proc.terminate()     # handled as a crash below
            lost: list[JobResult] = []
            for wid, proc in list(procs.items()):
                if proc.is_alive():
                    continue
                del procs[wid]
                job_id = worker_job.pop(wid, None)
                if job_id is not None and job_id in pending:
                    in_flight.pop(job_id, None)
                    job = pending[job_id]
                    crash = {"error_type": "WorkerCrash",
                             "message": f"worker {wid} died "
                                        f"(exit {proc.exitcode})",
                             "retryable": False}
                    history.setdefault(job_id, []).append(
                        {"attempt": attempts[job_id],
                         "error_type": crash["error_type"],
                         "message": crash["message"]})
                    if isinstance(job, CohortJob):
                        pending.pop(job_id)
                        split_cohort(job)
                    elif attempts[job_id] <= self.retries:
                        schedule_retry(job)
                    else:
                        pending.pop(job_id)
                        lost.append(self._dead(
                            job, attempts[job_id], crash,
                            history[job_id], worker_id=wid))
                if pending:                  # keep the pool at strength
                    if respawns["n"] >= self.max_respawns:
                        raise RuntimeError(
                            f"worker pool crash-looping: "
                            f"{respawns['n']} workers replaced (cap "
                            f"{self.max_respawns}) with "
                            f"{len(pending)} jobs unfinished — the "
                            f"worker environment is broken (last exit "
                            f"code {proc.exitcode})")
                    procs[self._next_wid] = self._spawn_worker(
                        ctx, task_q, result_q, self._next_wid)
                    self._next_wid += 1
                    respawns["n"] += 1
                    self.workers_replaced += 1
                    get_metrics().counter("pool.crashes").inc()
                    tracer.event("worker.respawn", died=wid,
                                 replacement=self._next_wid - 1,
                                 exitcode=proc.exitcode)
            return lost

        for job in jobs:
            if job.job_id in pending:
                continue                       # content-identical dup
            pending[job.job_id] = job
            attempts[job.job_id] = 0
            task_q.put(job)
            tracer.event("job.dispatch", job_id=job.job_id,
                         label=job.label)

        try:
            for _ in range(self.workers):
                procs[self._next_wid] = self._spawn_worker(
                    ctx, task_q, result_q, self._next_wid)
                self._next_wid += 1

            last_activity = time.monotonic()
            while pending:
                now = time.monotonic()

                # due retries back onto the shared queue
                while retry_at and retry_at[0][0] <= now:
                    _, job = retry_at.pop(0)
                    task_q.put(job)
                    tracer.event("job.dispatch", job_id=job.job_id,
                                 label=job.label, retry=True)
                    last_activity = now

                try:
                    kind, job_id, wid, payload = result_q.get(
                        timeout=self.poll_seconds)
                except _queue.Empty:
                    yield from reap_dead_workers()
                    if (time.monotonic() - last_activity
                            > self.stall_seconds and not in_flight
                            and not retry_at):
                        # lost-dispatch backstop: re-queue whatever is
                        # still unaccounted for (completions dedup)
                        for job in pending.values():
                            task_q.put(job)
                        last_activity = time.monotonic()
                    continue

                last_activity = time.monotonic()
                if kind == "started":
                    if job_id in pending:
                        attempts[job_id] += 1
                        in_flight[job_id] = (wid, last_activity)
                        worker_job[wid] = job_id
                elif kind == "heartbeat":
                    self.heartbeats[wid] = payload
                elif kind == "done":
                    if job_id not in pending:
                        continue               # duplicate completion
                    job = pending.pop(job_id)
                    clear_flight(job_id)
                    if isinstance(job, CohortJob):
                        quarantined = payload.get("quarantined") or []
                        members_by_id = {m.job_id: m for m in job.jobs}
                        redispatch = [members_by_id[q["job_id"]]
                                      for q in quarantined]
                        self._note_quarantines(job_id, quarantined,
                                               history)
                        tracer.event("job.complete", job_id=job_id,
                                     label=job.label, worker_id=wid,
                                     attempts=max(attempts[job_id], 1),
                                     wall_seconds=payload["wall_seconds"],
                                     cache=payload.get("cache"),
                                     cohort=len(job.jobs),
                                     quarantined=len(quarantined))
                        tracer.event("pool.depth", pending=len(pending),
                                     in_flight=len(in_flight))
                        for k, member in enumerate(payload["members"]):
                            err = validate_result_payload(
                                member["payload"])
                            if err is not None:
                                history.setdefault(
                                    member["job_id"], []).append(
                                    {"attempt": 1, **err})
                                redispatch.append(
                                    members_by_id[member["job_id"]])
                                continue
                            mh = history.get(member["job_id"])
                            yield JobResult(
                                job_id=member["job_id"],
                                label=member["label"], status="ok",
                                attempts=max(attempts[job_id], 1),
                                worker_id=wid,
                                wall_seconds=member["payload"]
                                                   ["wall_seconds"],
                                result=member["payload"]["result"],
                                cache=(payload.get("cache")
                                       if k == 0 else None),
                                extra={"cohort": job_id,
                                       "cohort_size": len(job.jobs),
                                       **({"attempt_history": list(mh)}
                                          if mh else {})})
                        # quarantine-aware partial completion: healthy
                        # members are done above; only frozen/invalid
                        # members retry individually, with a fresh
                        # per-member budget (they never ran solo)
                        for member in redispatch:
                            if member.job_id in pending:
                                continue
                            pending[member.job_id] = member
                            attempts[member.job_id] = 0
                            task_q.put(member)
                            tracer.event("job.dispatch",
                                         job_id=member.job_id,
                                         label=member.label,
                                         requeued_from=job_id)
                        continue
                    err = validate_result_payload(payload)
                    if err is not None:
                        # the worker reported success but the result is
                        # unusable: a failed attempt, never a completion
                        get_metrics().counter("pool.corrupt_results").inc()
                        tracer.event("job.corrupt_result", job_id=job_id,
                                     worker_id=wid,
                                     error_type=err["error_type"],
                                     message=err["message"])
                        history.setdefault(job_id, []).append(
                            {"attempt": attempts[job_id],
                             "error_type": err["error_type"],
                             "message": err["message"]})
                        if attempts[job_id] <= self.retries:
                            pending[job_id] = job
                            schedule_retry(job)
                        else:
                            yield self._dead(
                                job, max(attempts[job_id], 1), err,
                                history[job_id], worker_id=wid)
                        continue
                    tracer.event("job.complete", job_id=job_id,
                                 label=job.label, worker_id=wid,
                                 attempts=max(attempts[job_id], 1),
                                 wall_seconds=payload["wall_seconds"],
                                 cache=payload.get("cache"))
                    tracer.event("pool.depth", pending=len(pending),
                                 in_flight=len(in_flight))
                    jh = history.get(job_id)
                    yield JobResult(
                        job_id=job_id, label=job.label, status="ok",
                        attempts=max(attempts[job_id], 1), worker_id=wid,
                        wall_seconds=payload["wall_seconds"],
                        result=payload["result"],
                        cache=payload.get("cache"),
                        extra=({"attempt_history": list(jh)}
                               if jh else {}))
                elif kind == "failed":
                    if job_id not in pending:
                        continue
                    job = pending[job_id]
                    clear_flight(job_id)
                    history.setdefault(job_id, []).append(
                        {"attempt": attempts[job_id],
                         "error_type": payload.get("error_type"),
                         "message": payload.get("message")})
                    if isinstance(job, CohortJob):
                        # don't retry the whole batch: split so only the
                        # culprit member burns its budget (a watchdog
                        # timeout also splits — per-member budgets are
                        # fresh and the cohort budget was shared)
                        pending.pop(job_id)
                        tracer.event("job.failed", job_id=job_id,
                                     label=job.label, worker_id=wid,
                                     attempts=max(attempts[job_id], 1),
                                     error_type=payload.get("error_type"),
                                     cohort=len(job.jobs))
                        split_cohort(job)
                        continue
                    if (payload.get("retryable", True)
                            and attempts[job_id] <= self.retries):
                        schedule_retry(job)
                    else:
                        pending.pop(job_id)
                        tracer.event("job.failed", job_id=job_id,
                                     label=job.label, worker_id=wid,
                                     attempts=max(attempts[job_id], 1),
                                     error_type=payload.get("error_type"))
                        tracer.event("pool.depth", pending=len(pending),
                                     in_flight=len(in_flight))
                        yield self._dead(
                            job, max(attempts[job_id], 1), payload,
                            history[job_id], worker_id=wid)
                # "bye" needs no handling: drain happens after the loop

            # graceful drain: every job accounted for
            for _ in procs:
                task_q.put(None)
        finally:
            for proc in procs.values():
                proc.join(timeout=2.0)
            for proc in procs.values():
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
            task_q.cancel_join_thread()
            result_q.cancel_join_thread()
