"""Priority job queue with content-hash dedup and bounded backpressure.

A :class:`DockingJob` is the unit of work of the service layer: one
(case, config, seed, n_runs) tuple, content-addressed by the SHA-256 of
its canonical JSON payload — two submissions of the same work share one
job id and run once.  The :class:`JobQueue` orders jobs by priority (then
FIFO), skips jobs whose deadline has passed, and applies backpressure:
``submit`` on a full queue either blocks or rejects with a structured
:class:`QueueFull`.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DockingConfig
from repro.obs import get_metrics

__all__ = ["DockingJob", "JobQueue", "QueueFull",
           "canonical_spec", "spawn_seed", "seed_from_spec"]


def canonical_spec(spec: dict) -> dict:
    """The identity-bearing part of a job spec.

    File paths are transport, content digests are identity: when a spec
    carries ``ligand_sha256``/``fld_sha256``, the corresponding path is
    dropped so the same bytes under two names hash to the same job.
    """
    out = dict(spec)
    if "ligand_sha256" in out:
        out.pop("ligand", None)
    if "fld_sha256" in out:
        out.pop("fld", None)
    return out


def spawn_seed(entropy: int, index: int) -> dict:
    """JSON-able per-job seed spec under the entropy-spawn contract.

    Encodes ``SeedSequence(entropy=entropy, spawn_key=(index,))`` — the
    collision-free way to give every job of a screen its own stream (see
    the seeding contract in :mod:`repro.core.config`).
    """
    return {"entropy": int(entropy), "spawn_key": [int(index)]}


def seed_from_spec(seed: int | dict) -> int | np.random.SeedSequence:
    """Materialise a job seed: plain ints pass through, spawn specs
    become the :class:`numpy.random.SeedSequence` they encode."""
    if isinstance(seed, dict):
        return np.random.SeedSequence(
            entropy=int(seed["entropy"]),
            spawn_key=tuple(int(k) for k in seed["spawn_key"]))
    return int(seed)


@dataclass(frozen=True)
class DockingJob:
    """One unit of docking work, content-addressed via :attr:`job_id`.

    Parameters
    ----------
    spec:
        What to dock — see :func:`repro.serve.cache.load_case` for the
        recognised kinds.
    config:
        Full engine configuration.
    n_runs:
        LGA runs for this job.
    seed:
        Plain int or a :func:`spawn_seed` spec (JSON-able either way).
    priority:
        Lower runs first (unix-nice convention); ties are FIFO.
    deadline:
        Absolute :func:`time.monotonic` timestamp after which the job is
        dropped as expired instead of dispatched (``None`` = never).
    label:
        Human-readable tag for logs/manifests (not part of the hash —
        the same work under two labels is still the same work).
    """

    spec: dict
    config: DockingConfig = field(default_factory=DockingConfig)
    n_runs: int = 4
    seed: int | dict = 0
    priority: int = 0
    deadline: float | None = None
    label: str = ""

    @property
    def job_id(self) -> str:
        """SHA-256 of the canonical job payload (spec+config+runs+seed)."""
        payload = json.dumps(
            {"spec": canonical_spec(self.spec),
             "config": self.config.to_dict(),
             "n_runs": self.n_runs, "seed": self.seed},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {"spec": dict(self.spec), "config": self.config.to_dict(),
                "n_runs": self.n_runs, "seed": self.seed,
                "priority": self.priority, "deadline": self.deadline,
                "label": self.label}

    @classmethod
    def from_dict(cls, d: dict) -> "DockingJob":
        return cls(spec=dict(d["spec"]),
                   config=DockingConfig.from_dict(d["config"]),
                   n_runs=int(d["n_runs"]), seed=d["seed"],
                   priority=int(d.get("priority", 0)),
                   deadline=d.get("deadline"),
                   label=d.get("label", ""))


class QueueFull(RuntimeError):
    """Structured backpressure signal: the queue is at capacity."""

    def __init__(self, capacity: int, pending: int) -> None:
        super().__init__(
            f"job queue full ({pending}/{capacity} jobs pending)")
        self.capacity = capacity
        self.pending = pending


class JobQueue:
    """Bounded, deduplicating priority queue of :class:`DockingJob`.

    Parameters
    ----------
    maxsize:
        Pending-job capacity (``None`` = unbounded).
    clock:
        Injectable monotonic clock for deadline checks (tests).
    expired_keep:
        How many recently-expired jobs :attr:`expired` retains for
        inspection; the full count lives in :attr:`expired_total`, so
        the record stays bounded on long-running services.
    """

    def __init__(self, maxsize: int | None = None,
                 clock=time.monotonic, expired_keep: int = 64) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if expired_keep < 1:
            raise ValueError("expired_keep must be >= 1")
        self.maxsize = maxsize
        self._clock = clock
        self._heap: list[tuple[int, int, DockingJob]] = []
        self._seq = 0
        self._seen: set[str] = set()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        #: bounded record of recently-expired jobs (most recent last);
        #: :attr:`expired_total` counts every expiry ever
        self.expired: deque[DockingJob] = deque(maxlen=expired_keep)
        self.expired_total = 0
        self.submitted = 0
        self.deduped = 0
        self.popped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def submit(self, job: DockingJob, block: bool = False,
               timeout: float | None = None) -> str:
        """Enqueue a job; returns its content-hash id.

        A job whose id was already submitted (still queued, running, or
        done) is *not* enqueued again — the id is returned and the
        duplicate counted.  On a full queue, ``block=True`` waits up to
        ``timeout`` seconds for space; otherwise :class:`QueueFull`.
        """
        job_id = job.job_id
        with self._not_full:
            if job_id in self._seen:
                self.deduped += 1
                get_metrics().counter("queue.deduped").inc()
                return job_id
            if self.maxsize is not None:
                if not block and len(self._heap) >= self.maxsize:
                    raise QueueFull(self.maxsize, len(self._heap))
                ok = self._not_full.wait_for(
                    lambda: len(self._heap) < self.maxsize, timeout)
                if not ok:
                    raise QueueFull(self.maxsize, len(self._heap))
            self._seen.add(job_id)
            heapq.heappush(self._heap, (job.priority, self._seq, job))
            self._seq += 1
            self.submitted += 1
            m = get_metrics()
            m.counter("queue.submitted").inc()
            m.gauge("queue.depth").set(len(self._heap))
            return job_id

    def pop(self) -> DockingJob | None:
        """Highest-priority unexpired job, or ``None`` when empty.

        Jobs whose deadline has passed are recorded in :attr:`expired`
        (bounded; :attr:`expired_total` keeps the full count), skipped,
        and *forgotten by the dedup set* — an expired job was never run,
        so an identical resubmission must be accepted, not swallowed as
        a duplicate.
        """
        with self._not_full:
            now = self._clock()
            m = get_metrics()
            while self._heap:
                _, _, job = heapq.heappop(self._heap)
                self._not_full.notify()
                m.gauge("queue.depth").set(len(self._heap))
                if job.deadline is not None and now > job.deadline:
                    self._seen.discard(job.job_id)
                    self.expired.append(job)
                    self.expired_total += 1
                    m.counter("queue.expired").inc()
                    continue
                self.popped += 1
                m.counter("queue.popped").inc()
                return job
            return None

    def drain(self) -> list[DockingJob]:
        """Pop every unexpired job, in priority order."""
        out = []
        while True:
            job = self.pop()
            if job is None:
                return out
            out.append(job)

    def stats(self) -> dict:
        with self._lock:
            return {"submitted": self.submitted, "deduped": self.deduped,
                    "popped": self.popped, "expired": self.expired_total,
                    "pending": len(self._heap)}
