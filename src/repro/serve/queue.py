"""Priority job queue with content-hash dedup and bounded backpressure.

A :class:`DockingJob` is the unit of work of the service layer: one
(case, config, seed, n_runs) tuple, content-addressed by the SHA-256 of
its canonical JSON payload — two submissions of the same work share one
job id and run once.  The :class:`JobQueue` orders jobs by priority (then
FIFO), skips jobs whose deadline has passed, and applies backpressure:
``submit`` on a full queue either blocks or rejects with a structured
:class:`QueueFull`.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DockingConfig
from repro.obs import get_metrics

__all__ = ["DockingJob", "CohortJob", "JobQueue", "QueueFull",
           "WrongShard", "canonical_spec", "pack_cohorts", "spawn_seed",
           "seed_from_spec", "shard_for", "shard_ranges", "shard_key",
           "SHARD_KEY_BITS"]

# ---------------------------------------------------------------------------
# content-hash shard partitioning
#
# A shard owns a contiguous, disjoint range of the 32-bit key space carved
# out of the job's content hash.  The partition is a pure function of the
# job id string, so every process — gateway front-end, shard pools on this
# or any other host, a resuming manifest reader — computes the same
# assignment without coordination, and dedup/idempotent-completion
# semantics survive sharding: one job id maps to exactly one shard.

#: width of the shard key sliced off the front of the SHA-256 job id
SHARD_KEY_BITS = 32

_SHARD_SPACE = 1 << SHARD_KEY_BITS


def shard_key(job_id: str) -> int:
    """The 32-bit partition key of a content-hash job id.

    The leading 8 hex digits of the SHA-256 are uniform over the key
    space, so equal-width ranges receive equal expected load.
    """
    return int(job_id[: SHARD_KEY_BITS // 4], 16)


def shard_ranges(n_shards: int) -> list[tuple[int, int]]:
    """Disjoint half-open key ranges ``[lo, hi)`` covering the space.

    The ``2**32 % n_shards`` remainder keys go one-apiece to the lowest
    shards, so ranges differ in width by at most one key.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    span, extra = divmod(_SHARD_SPACE, n_shards)
    ranges, lo = [], 0
    for i in range(n_shards):
        hi = lo + span + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def shard_for(job_id: str, n_shards: int) -> int:
    """Which shard owns ``job_id`` — the arithmetic inverse of
    :func:`shard_ranges`, O(1) per lookup."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    key = shard_key(job_id)
    span, extra = divmod(_SHARD_SPACE, n_shards)
    wide = extra * (span + 1)           # keys held by the widened shards
    if key < wide:
        return key // (span + 1)
    return extra + (key - wide) // span


def canonical_spec(spec: dict) -> dict:
    """The identity-bearing part of a job spec.

    File paths are transport, content digests are identity: when a spec
    carries ``ligand_sha256``/``fld_sha256``, the corresponding path is
    dropped so the same bytes under two names hash to the same job.  A
    ``"rlig"`` spec (ligand streamed from a binary pack) likewise drops
    the pack path and record offset: identity is the record's content
    digest, so repacking the library — different pack file, different
    record order — preserves every job id and manifests resume across
    repacks.
    """
    out = dict(spec)
    if "ligand_sha256" in out:
        out.pop("ligand", None)
        if out.get("kind") == "rlig":
            out.pop("pack", None)
            out.pop("index", None)
            out["kind"] = "files" if "fld" in out or "fld_sha256" in out \
                else "case-ligand"
    if "fld_sha256" in out:
        out.pop("fld", None)
    return out


def spawn_seed(entropy: int, index: int) -> dict:
    """JSON-able per-job seed spec under the entropy-spawn contract.

    Encodes ``SeedSequence(entropy=entropy, spawn_key=(index,))`` — the
    collision-free way to give every job of a screen its own stream (see
    the seeding contract in :mod:`repro.core.config`).
    """
    return {"entropy": int(entropy), "spawn_key": [int(index)]}


def seed_from_spec(seed: int | dict) -> int | np.random.SeedSequence:
    """Materialise a job seed: plain ints pass through, spawn specs
    become the :class:`numpy.random.SeedSequence` they encode."""
    if isinstance(seed, dict):
        return np.random.SeedSequence(
            entropy=int(seed["entropy"]),
            spawn_key=tuple(int(k) for k in seed["spawn_key"]))
    return int(seed)


@dataclass(frozen=True)
class DockingJob:
    """One unit of docking work, content-addressed via :attr:`job_id`.

    Parameters
    ----------
    spec:
        What to dock — see :func:`repro.serve.cache.load_case` for the
        recognised kinds.
    config:
        Full engine configuration.
    n_runs:
        LGA runs for this job.
    seed:
        Plain int or a :func:`spawn_seed` spec (JSON-able either way).
    priority:
        Lower runs first (unix-nice convention); ties are FIFO.
    deadline:
        Absolute :func:`time.monotonic` timestamp after which the job is
        dropped as expired instead of dispatched (``None`` = never).
    label:
        Human-readable tag for logs/manifests (not part of the hash —
        the same work under two labels is still the same work).
    """

    spec: dict
    config: DockingConfig = field(default_factory=DockingConfig)
    n_runs: int = 4
    seed: int | dict = 0
    priority: int = 0
    deadline: float | None = None
    label: str = ""

    @property
    def job_id(self) -> str:
        """SHA-256 of the canonical job payload (spec+config+runs+seed)."""
        payload = json.dumps(
            {"spec": canonical_spec(self.spec),
             "config": self.config.to_dict(),
             "n_runs": self.n_runs, "seed": self.seed},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {"spec": dict(self.spec), "config": self.config.to_dict(),
                "n_runs": self.n_runs, "seed": self.seed,
                "priority": self.priority, "deadline": self.deadline,
                "label": self.label}

    @classmethod
    def from_dict(cls, d: dict) -> "DockingJob":
        return cls(spec=dict(d["spec"]),
                   config=DockingConfig.from_dict(d["config"]),
                   n_runs=int(d["n_runs"]), seed=d["seed"],
                   priority=int(d.get("priority", 0)),
                   deadline=d.get("deadline"),
                   label=d.get("label", ""))


@dataclass(frozen=True)
class CohortJob:
    """A batch of :class:`DockingJob` members docked as one packed cohort.

    Members must share an identical engine configuration and run count
    (the lock-step cohort engine advances all ligands under one budget);
    each keeps its own spec, seed and label, and its result is
    bit-identical to running the member job alone.  The cohort id hashes
    the *ordered* member ids — the same ligands packed differently are
    different work units, but every member result is keyed by the member's
    own content hash, so caches and manifests see through the packing.
    """

    jobs: tuple[DockingJob, ...]
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if not self.jobs:
            raise ValueError("cohort must have at least one member")
        head = self.jobs[0]
        for job in self.jobs[1:]:
            if (job.config.to_dict() != head.config.to_dict()
                    or job.n_runs != head.n_runs):
                raise ValueError(
                    "cohort members must share config and n_runs")

    @property
    def config(self) -> DockingConfig:
        return self.jobs[0].config

    @property
    def n_runs(self) -> int:
        return self.jobs[0].n_runs

    @property
    def priority(self) -> int:
        return min(job.priority for job in self.jobs)

    @property
    def job_id(self) -> str:
        payload = json.dumps(
            {"cohort": [job.job_id for job in self.jobs]},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {"cohort": [job.to_dict() for job in self.jobs],
                "label": self.label}

    @classmethod
    def from_dict(cls, d: dict) -> "CohortJob":
        return cls(jobs=tuple(DockingJob.from_dict(j)
                              for j in d["cohort"]),
                   label=d.get("label", ""))


def _spec_size_key(spec: dict) -> tuple[int, int]:
    """Greedy-packing sort key ``(atoms, torsions)`` for a job spec.

    Library cases report their known rotatable-bond count (atom counts
    scale with it, so one key suffices); file-based ligands are sized by
    counting ATOM/HETATM and BRANCH records.  Unreadable specs sort
    first — they still pack, just without a size hint.
    """
    kind = spec.get("kind")
    if kind == "case":
        from repro.testcases.library import _NAME_TO_NROT
        nrot = _NAME_TO_NROT.get(spec.get("case"), 0)
        return (nrot, nrot)
    path = spec.get("ligand")
    if not path:
        return (0, 0)
    try:
        atoms = tors = 0
        with open(path) as fh:
            for line in fh:
                if line.startswith(("ATOM", "HETATM")):
                    atoms += 1
                elif line.startswith("BRANCH"):
                    tors += 1
        return (atoms, tors)
    except OSError:
        return (0, 0)


def pack_cohorts(jobs: list[DockingJob],
                 cohort_size: int) -> list[DockingJob | CohortJob]:
    """Greedily bucket jobs into size-sorted cohorts of ``cohort_size``.

    Jobs are grouped by (config, n_runs) — a cohort must share both —
    then sorted by :func:`_spec_size_key` (atoms, torsions) so each
    cohort packs ligands of similar size, minimising the padding the
    lock-step engine burns on heterogeneity (``cohort.pad_ratio``).
    Leftover chunks of one stay plain :class:`DockingJob`; input order
    is otherwise irrelevant because results are keyed per member.
    """
    if cohort_size <= 1 or len(jobs) <= 1:
        return list(jobs)
    groups: dict[str, list[DockingJob]] = {}
    for job in jobs:
        key = json.dumps({"config": job.config.to_dict(),
                          "n_runs": job.n_runs},
                         sort_keys=True, separators=(",", ":"))
        groups.setdefault(key, []).append(job)
    out: list[DockingJob | CohortJob] = []
    for members in groups.values():
        members.sort(key=lambda j: _spec_size_key(j.spec))
        for i in range(0, len(members), cohort_size):
            chunk = members[i:i + cohort_size]
            if len(chunk) == 1:
                out.append(chunk[0])
            else:
                out.append(CohortJob(
                    jobs=tuple(chunk),
                    label=f"cohort[{chunk[0].label}..{chunk[-1].label}]"))
    return out


class QueueFull(RuntimeError):
    """Structured backpressure signal: the queue is at capacity."""

    def __init__(self, capacity: int, pending: int) -> None:
        super().__init__(
            f"job queue full ({pending}/{capacity} jobs pending)")
        self.capacity = capacity
        self.pending = pending


class WrongShard(RuntimeError):
    """A job was submitted to a shard that does not own its hash range."""

    def __init__(self, job_id: str, shard: int, owner: int) -> None:
        super().__init__(
            f"job {job_id[:12]} belongs to shard {owner}, "
            f"not shard {shard}")
        self.job_id = job_id
        self.shard = shard
        self.owner = owner


class JobQueue:
    """Bounded, deduplicating priority queue of :class:`DockingJob`.

    Parameters
    ----------
    maxsize:
        Pending-job capacity (``None`` = unbounded).
    clock:
        Injectable monotonic clock for deadline checks (tests).
    expired_keep:
        How many recently-expired jobs :attr:`expired` retains for
        inspection; the full count lives in :attr:`expired_total`, so
        the record stays bounded on long-running services.
    shard / n_shards:
        When both are given, this queue owns shard ``shard`` of an
        ``n_shards``-way content-hash partition (:func:`shard_ranges`)
        and :meth:`submit` raises :class:`WrongShard` for any job whose
        id hashes outside its range — multiple pools pulling from their
        own shard queues therefore see disjoint work by construction.
    """

    def __init__(self, maxsize: int | None = None,
                 clock=time.monotonic, expired_keep: int = 64,
                 shard: int | None = None,
                 n_shards: int | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if expired_keep < 1:
            raise ValueError("expired_keep must be >= 1")
        if (shard is None) != (n_shards is None):
            raise ValueError("shard and n_shards must be given together")
        if shard is not None and not 0 <= shard < n_shards:
            raise ValueError(f"shard {shard} out of range for "
                             f"{n_shards} shards")
        self.shard = shard
        self.n_shards = n_shards
        self.maxsize = maxsize
        self._clock = clock
        self._heap: list[tuple[int, int, DockingJob]] = []
        self._seq = 0
        self._seen: set[str] = set()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        #: bounded record of recently-expired jobs (most recent last);
        #: :attr:`expired_total` counts every expiry ever
        self.expired: deque[DockingJob] = deque(maxlen=expired_keep)
        self.expired_total = 0
        self.submitted = 0
        self.deduped = 0
        self.popped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def submit(self, job: DockingJob, block: bool = False,
               timeout: float | None = None) -> str:
        """Enqueue a job; returns its content-hash id.

        A job whose id was already submitted (still queued, running, or
        done) is *not* enqueued again — the id is returned and the
        duplicate counted.  On a full queue, ``block=True`` waits up to
        ``timeout`` seconds for space; otherwise :class:`QueueFull`.
        A sharded queue (``shard=``/``n_shards=``) raises
        :class:`WrongShard` for jobs outside its hash range.
        """
        job_id = job.job_id
        if self.shard is not None:
            owner = shard_for(job_id, self.n_shards)
            if owner != self.shard:
                raise WrongShard(job_id, self.shard, owner)
        with self._not_full:
            if job_id in self._seen:
                self.deduped += 1
                get_metrics().counter("queue.deduped").inc()
                return job_id
            if self.maxsize is not None:
                if not block and len(self._heap) >= self.maxsize:
                    raise QueueFull(self.maxsize, len(self._heap))
                ok = self._not_full.wait_for(
                    lambda: len(self._heap) < self.maxsize, timeout)
                if not ok:
                    raise QueueFull(self.maxsize, len(self._heap))
            self._seen.add(job_id)
            heapq.heappush(self._heap, (job.priority, self._seq, job))
            self._seq += 1
            self.submitted += 1
            m = get_metrics()
            m.counter("queue.submitted").inc()
            m.gauge("queue.depth").set(len(self._heap))
            return job_id

    def pop(self) -> DockingJob | None:
        """Highest-priority unexpired job, or ``None`` when empty.

        Jobs whose deadline has passed are recorded in :attr:`expired`
        (bounded; :attr:`expired_total` keeps the full count), skipped,
        and *forgotten by the dedup set* — an expired job was never run,
        so an identical resubmission must be accepted, not swallowed as
        a duplicate.
        """
        with self._not_full:
            now = self._clock()
            m = get_metrics()
            while self._heap:
                _, _, job = heapq.heappop(self._heap)
                self._not_full.notify()
                m.gauge("queue.depth").set(len(self._heap))
                if job.deadline is not None and now > job.deadline:
                    self._seen.discard(job.job_id)
                    self.expired.append(job)
                    self.expired_total += 1
                    m.counter("queue.expired").inc()
                    continue
                self.popped += 1
                m.counter("queue.popped").inc()
                return job
            return None

    def drain(self) -> list[DockingJob]:
        """Pop every unexpired job, in priority order."""
        out = []
        while True:
            job = self.pop()
            if job is None:
                return out
            out.append(job)

    def stats(self) -> dict:
        with self._lock:
            out = {"submitted": self.submitted, "deduped": self.deduped,
                   "popped": self.popped, "expired": self.expired_total,
                   "pending": len(self._heap)}
            if self.shard is not None:
                out["shard"] = self.shard
                out["n_shards"] = self.n_shards
            return out
