"""Content-addressed cache for receptor grids and parsed ligands.

A 1000-ligand virtual screen re-uses one receptor: without a cache every
job re-parses the ``.maps.fld`` index and its per-type ``.map`` files —
by far the most expensive part of small docking jobs.  The
:class:`ContentCache` keys everything by the SHA-256 of the *file bytes*
(plus grid parameters where relevant), so renamed or copied inputs still
hit, while any content change misses — and is bounded by a byte capacity
with LRU eviction, so a long-running worker cannot grow without limit.

Workers each own a private cache (caches are process-local; the service
layer aggregates the per-job hit/miss deltas into screen-level stats).
Optionally the cache fronts a shared :class:`~repro.serve.store.BlobStore`
disk tier: on a memory miss the store is consulted first, a stored blob
is *promoted* (decoded — for grids, mmap'd read-only with zero parsing),
and freshly built values are *demoted* (written through) so the next
process, or this one after an eviction, skips the build entirely.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.io.errors import ParseError

__all__ = ["ContentCache", "file_sha256", "maps_digest", "load_ligand",
           "load_maps", "load_case", "load_rlig_member", "open_rlig"]

#: default worker cache capacity [bytes]
DEFAULT_CAPACITY = 256 * 1024 * 1024

#: streaming hash chunk [bytes] — bounds memory when digesting blobs of
#: any size (a multi-GB grid set must never land in the heap just to hash)
HASH_CHUNK = 1 << 20


def file_sha256(*paths: str | Path) -> str:
    """SHA-256 over the concatenated bytes of one or more files.

    Streams in fixed-size chunks; memory use is O(:data:`HASH_CHUNK`)
    regardless of file size.
    """
    h = hashlib.sha256()
    for path in paths:
        with open(path, "rb") as fh:
            while True:
                chunk = fh.read(HASH_CHUNK)
                if not chunk:
                    break
                h.update(chunk)
    return h.hexdigest()


def maps_digest(fld_path: str | Path) -> str:
    """Content digest of a ``.maps.fld`` grid set.

    Covers the index *and* every referenced ``.map`` file, in index
    order — editing any single grid value changes the digest.  A
    referenced map that is missing on disk raises a structured
    :class:`ParseError` naming the index and the missing file.
    """
    fld_path = Path(fld_path)
    referenced = [fld_path]
    for line in fld_path.read_text().splitlines():
        if line.startswith("variable"):
            for token in line.split():
                if token.startswith("file="):
                    referenced.append(fld_path.parent / token[5:])
    for ref in referenced[1:]:
        if not ref.is_file():
            raise ParseError(
                fld_path,
                f"referenced map file {ref.name!r} not found next to index")
    return file_sha256(*referenced)


class ContentCache:
    """Byte-capacity-bounded LRU mapping content keys to parsed objects.

    Thread-safe; hit / miss / eviction counters are cumulative and
    :meth:`stats` snapshots are cheap, so per-job deltas can be taken by
    subtracting two snapshots.

    Parameters
    ----------
    capacity_bytes:
        Total size budget.  Entries larger than the whole capacity are
        returned to the caller but never stored (counted under
        ``oversize``).
    store:
        Optional :class:`~repro.serve.store.BlobStore` disk tier.  Keys
        whose kind has a registered spill codec are looked up there on a
        memory miss and written through after a build.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY,
                 store=None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.store = store
        self._entries: OrderedDict[str, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversize = 0
        self.races = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_writes = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def _from_store(self, key: str):
        """Decode ``key`` from the disk tier; ``None`` on miss/corruption."""
        from repro.serve.store import codec_for_key
        codec = codec_for_key(key)
        if codec is None:
            return None
        got = self.store.get(key)
        if got is None:
            self.disk_misses += 1
            return None
        try:
            value = codec.decode(*got)
        except Exception:
            # unreadable blob: fall back to the builder rather than fail
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        return value

    def _to_store(self, key: str, value) -> None:
        """Write a freshly built value through to the disk tier."""
        from repro.serve.store import codec_for_key
        codec = codec_for_key(key)
        if codec is None:
            return
        try:
            arrays, meta = codec.encode(value)
            if self.store.put(key, arrays, meta):
                self.disk_writes += 1
        except Exception:
            pass    # the store is an optimisation; never fail the job

    def get_or_build(self, key: str, builder, size_of=None):
        """Return the cached value for ``key``, building it on a miss.

        ``builder()`` produces the value; ``size_of(value)`` its byte
        cost (defaults to :func:`sizeof`).  The LRU order is refreshed on
        hits.  With a disk tier attached, a memory miss tries the store
        before the builder, and builder output is written through.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry[0]
            self.misses += 1
        value = None
        if self.store is not None:
            value = self._from_store(key)
        if value is None:
            value = builder()
            if self.store is not None:
                self._to_store(key, value)
        size = int((size_of or sizeof)(value))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # a racing builder won: serve the winner's object so every
                # caller of one key holds the *same* instance (the
                # bit-identical-grids invariant), and drop ours
                self.races += 1
                self._entries.move_to_end(key)
                return entry[0]
            if size > self.capacity_bytes:
                self.oversize += 1
                return value
            self._entries[key] = (value, size)
            self._bytes += size
            while self._bytes > self.capacity_bytes:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict:
        """Cumulative counters (JSON-ready)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "oversize": self.oversize,
                "races": self.races,
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "disk_writes": self.disk_writes,
                "entries": len(self._entries),
                "bytes_used": self._bytes,
                "capacity_bytes": self.capacity_bytes,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Per-job counter delta between two :meth:`stats` snapshots."""
        d = {k: after.get(k, 0) - before.get(k, 0)
             for k in ("hits", "misses", "evictions", "oversize", "races",
                       "disk_hits", "disk_misses", "disk_writes")}
        lookups = d["hits"] + d["misses"]
        d["hit_rate"] = d["hits"] / lookups if lookups else 0.0
        return d


def sizeof(value) -> int:
    """Byte-cost estimate for the objects the service layer caches.

    :class:`~repro.docking.grids.GridMaps` values (bare or nested inside
    a test case) are charged via :attr:`GridMaps.nbytes`, which includes
    the lazily-built fused flat buffer *up front* — the estimate is an
    upper bound on what the entry can grow to, so ``bytes_used`` stays
    within ``capacity_bytes`` even after post-insert flat-map builds.
    """
    from repro.docking.grids import GridMaps
    total = 1024
    if isinstance(value, GridMaps):
        return value.nbytes + total
    arrays = []
    if isinstance(value, np.ndarray):
        arrays.append(value)
    for attr in ("ref_coords", "charges", "coords",
                 "native_genotype", "native_coords"):
        arr = getattr(value, attr, None)
        if isinstance(arr, np.ndarray):
            arrays.append(arr)
    for attr in ("maps", "ligand", "receptor"):
        nested = getattr(value, attr, None)
        if isinstance(nested, GridMaps):
            total += nested.nbytes
        elif nested is not None:
            arrays.extend(a for a in (
                getattr(nested, n, None)
                for n in ("ref_coords", "charges", "coords"))
                if isinstance(a, np.ndarray))
    return sum(a.nbytes for a in arrays) + total


# ---------------------------------------------------------------------------
# cached loaders (the keys ARE the content addresses)


def load_ligand(path: str | Path, cache: ContentCache | None = None,
                digest: str | None = None):
    """Parse a PDBQT ligand through the cache (key: file SHA-256)."""
    from repro.io import read_pdbqt
    from repro.obs import get_tracer

    def build():
        with get_tracer().span("parse.ligand", path=str(path)):
            return read_pdbqt(path)

    if cache is None:
        return build()
    digest = digest or file_sha256(path)
    return cache.get_or_build(f"ligand/{digest}", build)


def load_maps(fld_path: str | Path, cache: ContentCache | None = None,
              digest: str | None = None):
    """Load AutoGrid maps through the cache.

    The key covers the bytes of the index and every referenced map file
    — i.e. the full grid content including spacing/shape parameters,
    which live in the map headers.  When the cache fronts a disk store,
    a warm store serves the grid as an mmap'd flat buffer with *no*
    ``parse.maps`` span at all.
    """
    from repro.io import read_maps
    from repro.obs import get_tracer

    def build():
        with get_tracer().span("parse.maps", path=str(fld_path)):
            return read_maps(fld_path)

    if cache is None:
        return build()
    digest = digest or maps_digest(fld_path)
    return cache.get_or_build(f"maps/{digest}", build)


# per-process pack reader table: one mmap per pack file, shared by every
# job in the worker (readers are cheap, but the index parse is not free)
_RLIG_READERS: dict[tuple, object] = {}
_RLIG_LOCK = threading.Lock()


def open_rlig(path: str | Path):
    """Process-wide shared :class:`~repro.io.rlig.RligReader` for a pack.

    Keyed by ``(realpath, mtime_ns, size)`` so a repacked file is
    re-opened, not served stale.
    """
    from repro.io.rlig import RligReader
    p = Path(path)
    st = p.stat()
    key = (str(p.resolve()), st.st_mtime_ns, st.st_size)
    with _RLIG_LOCK:
        reader = _RLIG_READERS.get(key)
        if reader is None:
            reader = RligReader(p)
            stale = [k for k in _RLIG_READERS if k[0] == key[0]]
            for k in stale:
                _RLIG_READERS.pop(k).close()
            _RLIG_READERS[key] = reader
        return reader


def load_rlig_member(pack: str | Path, index: int,
                     cache: ContentCache | None = None,
                     digest: str | None = None):
    """Decode ligand ``index`` from a ``.rlig`` pack through the cache.

    No ``parse.ligand`` span is emitted — the text parse happened once,
    at pack time; decoding is a couple of buffer slices (traced as
    ``pack.read``).
    """
    from repro.obs import get_tracer
    reader = open_rlig(pack)

    def build():
        with get_tracer().span("pack.read", pack=str(pack), index=index):
            return reader.read(index)

    if cache is None:
        return build()
    digest = digest or reader.sha256(index)
    return cache.get_or_build(f"ligand/{digest}", build)


def load_case(spec: dict, cache: ContentCache | None = None):
    """Assemble the :class:`~repro.testcases.generator.TestCase` a job
    spec describes, sharing parsed receptors/ligands via the cache.

    Spec kinds (see :class:`repro.serve.queue.DockingJob`):

    * ``{"kind": "case", "case": name}`` — a named library case;
    * ``{"kind": "case-ligand", "case": name, "ligand": path}`` — an
      external PDBQT ligand docked into a library case's maps;
    * ``{"kind": "files", "fld": path, "ligand": path}`` — AutoGrid maps
      plus a PDBQT ligand, fully file-based;
    * ``{"kind": "rlig", "pack": path, "index": i, "fld": path}`` — a
      ligand streamed by offset from a ``.rlig`` pack, docked into
      AutoGrid maps (or a library case's maps via ``"case"``).

    ``*_sha256`` entries (stamped by the screen layer at submit time) are
    reused as cache keys so workers skip re-hashing.
    """
    kind = spec.get("kind")
    if kind == "case":
        from repro.obs import get_tracer
        from repro.testcases import get_test_case

        def build():
            with get_tracer().span("grid.build", case=spec["case"]):
                return get_test_case(spec["case"])

        if cache is None:
            return build()
        return cache.get_or_build(f"case/{spec['case']}", build)
    if kind == "case-ligand":
        from repro.cli import replace_case_ligand
        base = load_case({"kind": "case", "case": spec["case"]}, cache)
        ligand = load_ligand(spec["ligand"], cache,
                             spec.get("ligand_sha256"))
        return replace_case_ligand(base, ligand)
    if kind == "files":
        from repro.cli import case_from_files
        if cache is None:
            return case_from_files(spec["fld"], spec["ligand"])
        maps = load_maps(spec["fld"], cache, spec.get("fld_sha256"))
        ligand = load_ligand(spec["ligand"], cache,
                             spec.get("ligand_sha256"))
        return _assemble_file_case(maps, ligand)
    if kind == "rlig":
        ligand = load_rlig_member(spec["pack"], spec["index"], cache,
                                  spec.get("ligand_sha256"))
        if "fld" in spec:
            maps = load_maps(spec["fld"], cache, spec.get("fld_sha256"))
            return _assemble_file_case(maps, ligand)
        from repro.cli import replace_case_ligand
        base = load_case({"kind": "case", "case": spec["case"]}, cache)
        return replace_case_ligand(base, ligand)
    raise ValueError(f"unknown job spec kind {kind!r}")


def _assemble_file_case(maps, ligand):
    """File-based case assembly against already-parsed maps/ligand.

    Mirrors :func:`repro.cli.case_from_files` but takes parsed objects so
    the cache, not the filesystem, is the source of truth.
    """
    from repro.docking.pose import calc_coords
    from repro.docking.receptor import Receptor
    from repro.testcases.generator import TestCase

    missing = set(ligand.atom_types) - set(maps.type_names)
    if missing:
        raise ValueError(f"maps lack atom types {sorted(missing)}")
    native = np.zeros(6 + ligand.n_rot)
    native[0:3] = (maps.box_lo + maps.box_hi) / 2.0
    placeholder = Receptor(name="from-maps", atom_types=["C"],
                           coords=np.array([[1e6, 1e6, 1e6]]),
                           charges=np.zeros(1))
    return TestCase(name=ligand.name, ligand=ligand, receptor=placeholder,
                    maps=maps, native_genotype=native,
                    native_coords=calc_coords(ligand, native),
                    global_min_score=float("-inf"))
