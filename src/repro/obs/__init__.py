"""repro.obs — tracing + metrics for the engine and the screening service.

Two cooperating pieces:

* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer` of nested
  spans and point events with an in-memory ring buffer and an
  append-only JSONL event log (off by default; opt in per process with
  :func:`~repro.obs.trace.configure`);
* :mod:`repro.obs.metrics` — an always-on process-local
  :class:`~repro.obs.metrics.MetricsRegistry` of counters / gauges /
  histograms with the snapshot/delta semantics the service layer's
  ``ContentCache.stats`` established.

The wire format is defined in :mod:`repro.obs.schema`;
:mod:`repro.obs.report` folds a log back into the ``repro stats``
summary.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               get_metrics, reset_metrics)
from repro.obs.report import render_summary, summarize_log
from repro.obs.schema import (SCHEMA_VERSION, WELL_KNOWN_EVENTS,
                              SchemaError, validate_event, validate_log)
from repro.obs.trace import (NullTracer, Span, Tracer, configure, disable,
                             get_tracer)

__all__ = [
    "Tracer", "NullTracer", "Span", "configure", "disable", "get_tracer",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "get_metrics", "reset_metrics",
    "SCHEMA_VERSION", "WELL_KNOWN_EVENTS", "SchemaError",
    "validate_event", "validate_log",
    "summarize_log", "render_summary",
]
