"""Nested-span tracing with a ring buffer and a JSON-lines sink.

The paper's measurements are all *per-region*: Schieffer & Peng bracket
the seven reductions with ``clock64()``, Table 6 splits the ADADELTA
kernel into segments, and every derived metric (µs/eval, utilisation
shares) sits on those instrumented spans.  :class:`Tracer` is the Python
equivalent for this reproduction: code brackets a region with
``with tracer.span("adadelta.minimize", batch=n):`` and the tracer
records one *span event* — name, duration, parent span — into

* an in-memory **ring buffer** (cheap, bounded, queryable in-process —
  tests and the engine's own summaries read it back), and
* an optional append-only **JSONL event log** shared by every process of
  a screen (each process appends whole lines in ``O_APPEND`` mode), from
  which ``repro stats`` reconstructs the run.

Point-in-time facts (worker heartbeats, queue depth, job dispatch) are
*point events* via :meth:`Tracer.event`.  The wire format is documented
and validated in :mod:`repro.obs.schema`.

Tracing is off by default: the process-global tracer is a
:class:`NullTracer` whose ``span``/``event`` are no-ops (one attribute
access and one method call of overhead), so instrumented hot paths cost
nothing measurable unless :func:`configure` switched tracing on.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path

__all__ = ["Span", "Tracer", "NullTracer", "configure", "get_tracer",
           "disable", "SCHEMA_VERSION"]

#: wire-format version stamped on every emitted event
SCHEMA_VERSION = 1


class Span:
    """One traced region: a name, a duration, and a parent.

    Returned by :meth:`Tracer.span`; used as a context manager.  Extra
    attributes that are only known at exit time (eval counts, outcome)
    are attached with :meth:`set`.
    """

    __slots__ = ("name", "span_id", "parent_id", "attrs",
                 "_tracer", "_t0", "_wall0")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, attrs: dict) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._tracer = tracer
        self._t0 = 0.0
        self._wall0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes (JSON-able values) to the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self, dur)


class _NullSpan:
    """Shared no-op span: the cost of tracing when tracing is off."""

    __slots__ = ()
    name = ""
    span_id = -1
    parent_id = None
    attrs: dict = {}

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op."""

    enabled = False
    source = "off"

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def records(self) -> list[dict]:
        return []

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


class Tracer:
    """Emit nested spans and point events to a ring buffer + JSONL sink.

    Parameters
    ----------
    path:
        JSONL event-log path (``None`` = ring buffer only).  The file is
        opened in append mode so several processes (screen parent +
        workers) can share one log; every event is written as a single
        whole line.
    source:
        Logical emitter name stamped on every event (``"main"``,
        ``"worker-3"``, ...) — the trace-level worker identity.
    ring_size:
        In-memory record capacity (oldest dropped first).

    Span nesting is tracked per thread, so concurrent threads build
    independent span stacks over one tracer.
    """

    enabled = True

    def __init__(self, path: str | Path | None = None,
                 source: str = "main", ring_size: int = 4096) -> None:
        self.source = source
        self._ring: deque[dict] = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._pid = os.getpid()
        self._fh = open(path, "a", encoding="utf-8") if path else None
        self.path = str(path) if path else None

    # -- span plumbing -------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else None
        stack.append(span)

    def _pop(self, span: Span, dur: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._emit({"type": "span", "name": span.name,
                    "span_id": span.span_id, "parent_id": span.parent_id,
                    "dur_s": dur, "ts": span._wall0,
                    "attrs": span.attrs})

    def span(self, name: str, **attrs) -> Span:
        """A context manager bracketing one region named ``name``."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, name, span_id, None, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point event (heartbeat, dispatch, depth sample)."""
        self._emit({"type": "event", "name": name, "ts": time.time(),
                    "attrs": attrs})

    # -- emission ------------------------------------------------------

    def _emit(self, record: dict) -> None:
        record["v"] = SCHEMA_VERSION
        record["pid"] = self._pid
        record["src"] = self.source
        with self._lock:
            self._ring.append(record)
            if self._fh is not None:
                self._fh.write(json.dumps(record, separators=(",", ":"),
                                          default=_json_fallback) + "\n")
                self._fh.flush()

    def records(self) -> list[dict]:
        """Snapshot of the in-memory ring buffer (oldest first)."""
        with self._lock:
            return list(self._ring)

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def _json_fallback(value):
    """Keep emission total: an un-serialisable attr becomes its repr."""
    return repr(value)


# ---------------------------------------------------------------------------
# process-global tracer

_TRACER: Tracer | NullTracer = NullTracer()


def configure(path: str | Path | None = None, source: str = "main",
              ring_size: int = 4096) -> Tracer:
    """Install (and return) the process-global tracer.

    Workers of a screen call this on startup with the shared log path and
    their own ``source`` so one JSONL file interleaves every process's
    events.
    """
    global _TRACER
    if isinstance(_TRACER, Tracer):
        _TRACER.close()
    _TRACER = Tracer(path, source=source, ring_size=ring_size)
    return _TRACER


def disable() -> None:
    """Tear the global tracer back down to the no-op default."""
    global _TRACER
    if isinstance(_TRACER, Tracer):
        _TRACER.close()
    _TRACER = NullTracer()


def get_tracer() -> Tracer | NullTracer:
    """The process-global tracer (a no-op unless :func:`configure` ran)."""
    return _TRACER
