"""Aggregate a JSONL trace log into the ``repro stats`` summary.

The reader is intentionally dumb: it folds the validated event stream
(:mod:`repro.obs.schema`) into a handful of plain dicts — per-name span
timings, point-event counts, the last heartbeat per worker, queue-depth
extremes, screen-wide cache traffic — and a renderer turns them into the
fixed-width text the CLI prints.  Nothing here imports numpy or the
docking stack, so ``repro stats`` works on any machine that has the log.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.schema import read_log, validate_event

__all__ = ["summarize_log", "render_summary"]


def summarize_log(path: str | Path) -> dict:
    """Fold a trace log into the summary dict ``render_summary`` prints.

    Keys: ``spans`` (per-name count/total/mean/min/max seconds),
    ``events`` (per-name counts), ``heartbeats`` (last per ``src``),
    ``queue_depth`` (samples/min/max/last of ``pool.depth``), ``cache``
    (summed per-job deltas from ``job.complete`` events), ``jobs``
    (dispatch/complete/failed counts) and ``sources``.
    """
    spans: dict[str, dict] = {}
    events: dict[str, int] = {}
    heartbeats: dict[str, dict] = {}
    depth = {"samples": 0, "min": None, "max": None, "last": None}
    cache = {"hits": 0, "misses": 0, "evictions": 0, "races": 0}
    jobs = {"dispatched": 0, "completed": 0, "failed": 0}
    sources: set[str] = set()

    for line_no, record in read_log(path):
        validate_event(record, line_no)
        sources.add(record["src"])
        attrs = record.get("attrs", {})
        if record["type"] == "span":
            agg = spans.setdefault(record["name"], {
                "count": 0, "total_s": 0.0,
                "min_s": float("inf"), "max_s": 0.0})
            dur = float(record["dur_s"])
            agg["count"] += 1
            agg["total_s"] += dur
            agg["min_s"] = min(agg["min_s"], dur)
            agg["max_s"] = max(agg["max_s"], dur)
            continue

        name = record["name"]
        events[name] = events.get(name, 0) + 1
        if name == "worker.heartbeat":
            heartbeats[record["src"]] = {"ts": record["ts"], **attrs}
        elif name == "pool.depth":
            d = int(attrs.get("pending", 0))
            depth["samples"] += 1
            depth["min"] = d if depth["min"] is None else min(depth["min"], d)
            depth["max"] = d if depth["max"] is None else max(depth["max"], d)
            depth["last"] = d
        elif name == "job.dispatch":
            jobs["dispatched"] += 1
        elif name == "job.complete":
            jobs["completed"] += 1
            for key in cache:
                cache[key] += int((attrs.get("cache") or {}).get(key, 0))
        elif name == "job.failed":
            jobs["failed"] += 1

    for agg in spans.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    lookups = cache["hits"] + cache["misses"]
    cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0
    return {"spans": spans, "events": events, "heartbeats": heartbeats,
            "queue_depth": depth, "cache": cache, "jobs": jobs,
            "sources": sorted(sources)}


def render_summary(summary: dict, top: int = 20) -> str:
    """Fixed-width text rendering of :func:`summarize_log`'s output."""
    lines: list[str] = []
    out = lines.append

    out(f"trace sources: {', '.join(summary['sources']) or '(none)'}")

    spans = summary["spans"]
    if spans:
        out("")
        out(f"{'span':<28} {'count':>6} {'total[s]':>9} "
            f"{'mean[ms]':>9} {'min[ms]':>9} {'max[ms]':>9}")
        ranked = sorted(spans.items(),
                        key=lambda kv: kv[1]["total_s"], reverse=True)
        for name, agg in ranked[:top]:
            out(f"{name:<28} {agg['count']:>6} {agg['total_s']:>9.3f} "
                f"{agg['mean_s'] * 1e3:>9.3f} {agg['min_s'] * 1e3:>9.3f} "
                f"{agg['max_s'] * 1e3:>9.3f}")

    jobs = summary["jobs"]
    if any(jobs.values()):
        out("")
        out(f"jobs: {jobs['dispatched']} dispatched, "
            f"{jobs['completed']} completed, {jobs['failed']} failed")

    depth = summary["queue_depth"]
    if depth["samples"]:
        out(f"queue depth: last {depth['last']}, min {depth['min']}, "
            f"max {depth['max']} ({depth['samples']} samples)")

    cache = summary["cache"]
    if cache["hits"] or cache["misses"]:
        out(f"cache: {cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {cache['hit_rate']:.0%}), "
            f"{cache['evictions']} evictions, {cache['races']} races")

    heartbeats = summary["heartbeats"]
    if heartbeats:
        out("")
        out("worker heartbeats (last per worker):")
        for src in sorted(heartbeats):
            hb = heartbeats[src]
            done = hb.get("jobs_done", "?")
            cstats = hb.get("cache") or {}
            rate = cstats.get("hit_rate")
            rate_txt = f", cache hit rate {rate:.0%}" \
                if isinstance(rate, (int, float)) else ""
            interval = hb.get("interval_s")
            interval_txt = f", heartbeat every {interval:g}s" \
                if isinstance(interval, (int, float)) else ""
            out(f"  {src}: {done} jobs done{rate_txt}{interval_txt}")

    points = {k: v for k, v in summary["events"].items()}
    if points:
        out("")
        out("events: " + ", ".join(
            f"{name} x{count}" for name, count in sorted(points.items())))
    return "\n".join(lines)
