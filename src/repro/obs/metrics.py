"""Counters, gauges and histograms with snapshot/delta semantics.

The service layer already established the idiom: cumulative counters
plus cheap :meth:`~repro.serve.cache.ContentCache.stats` snapshots, with
per-job attribution by subtracting two snapshots.  The
:class:`MetricsRegistry` generalises it to the whole stack — queue depth
(gauge), cache hit rate and retry/crash counts (counters), per-stage
wall and per-job eval costs (histograms) — behind one thread-safe,
process-local registry.

Instruments are created lazily by name (``registry.counter("queue.
submitted").inc()``), so instrumented modules never need registration
order.  A :meth:`MetricsRegistry.snapshot` is a plain JSON-able dict;
:meth:`MetricsRegistry.delta` subtracts two snapshots the way
``ContentCache.delta`` does, which is how worker heartbeats and per-job
records attribute shared cumulative state to one interval.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "get_metrics", "reset_metrics"]


class Counter:
    """Monotonic cumulative count (events, retries, faults)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError("counters only count up")
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value (queue depth, bytes used)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count / total / min / max (mean derives), which is what the
    trace summaries report and what survives snapshot subtraction — the
    extremes are cumulative-only and are dropped from deltas.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Thread-safe, lazily-populated bag of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter()
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge()
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram()
            return inst

    # -- snapshot / delta ----------------------------------------------

    def snapshot(self) -> dict:
        """Cheap JSON-able copy of every instrument's current state."""
        with self._lock:
            return {
                "counters": {k: c.value
                             for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {k: h.summary()
                               for k, h in self._histograms.items()},
            }

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """What happened between two :meth:`snapshot` calls.

        Counters and histogram count/total subtract (instruments absent
        from ``before`` count from zero); gauges take the ``after``
        value — an instantaneous reading has no meaningful difference.
        """
        counters = {
            k: v - before.get("counters", {}).get(k, 0)
            for k, v in after.get("counters", {}).items()}
        gauges = dict(after.get("gauges", {}))
        histograms = {}
        for k, h in after.get("histograms", {}).items():
            b = before.get("histograms", {}).get(
                k, {"count": 0, "total": 0.0})
            count = h["count"] - b["count"]
            total = h["total"] - b["total"]
            histograms[k] = {
                "count": count,
                "total": total,
                "mean": total / count if count else 0.0,
            }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


# ---------------------------------------------------------------------------
# process-global registry (always on: instruments are cheap in-memory
# arithmetic, unlike the opt-in JSONL tracer)

_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry instrumented modules record into."""
    return _METRICS


def reset_metrics() -> MetricsRegistry:
    """Replace the global registry (test isolation); returns the new one."""
    global _METRICS
    _METRICS = MetricsRegistry()
    return _METRICS
