"""Wire-format contract of the JSONL trace event log.

One JSON object per line.  Every event carries the common envelope

======== ======= ====================================================
field    type    meaning
======== ======= ====================================================
``v``    int     schema version (currently ``1``)
``type`` str     ``"span"`` or ``"event"``
``name`` str     dotted region/event name (``"adadelta.minimize"``)
``ts``   float   unix wall-clock time at span start / event emission
``pid``  int     emitting OS process
``src``  str     logical emitter (``"main"``, ``"worker-3"``, ...)
======== ======= ====================================================

``span`` events additionally carry ``span_id`` (int), ``parent_id``
(int or null — null marks a root span) and ``dur_s`` (float seconds);
``event`` events carry only ``attrs``.  ``attrs`` is a free-form
JSON object on both types (optional; defaults to empty).

The checker used by the CI trace-smoke job (``tools/check_trace.py``)
and :func:`validate_log` enforce this contract so the ``repro stats``
reader never has to guess.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

__all__ = ["SCHEMA_VERSION", "EVENT_TYPES", "WELL_KNOWN_EVENTS",
           "validate_event", "validate_log", "read_log", "SchemaError"]

SCHEMA_VERSION = 1

EVENT_TYPES = ("span", "event")

#: Documented point-event names, grouped by emitting layer.  The schema
#: is deliberately open (``name`` is free-form so layers can grow), but
#: consumers — the ``stats`` renderer, dashboards, the CI trace checker's
#: ``--expect`` flags — key off these names, so additions belong here.
WELL_KNOWN_EVENTS = {
    "worker": ("worker.start", "worker.stop", "worker.heartbeat",
               "worker.respawn"),
    "job": ("job.dispatch", "job.complete", "job.failed", "job.retry",
            "job.dead", "job.corrupt_result"),
    "queue": ("queue.stats", "pool.depth"),
    "cohort": ("cohort.split", "cohort.quarantine_redispatch"),
    # serving gateway (repro.gateway): request lifecycle + scheduler
    "gateway": ("gateway.request", "gateway.admit", "gateway.reject",
                "gateway.stream", "gateway.dispatch", "gateway.done",
                "gateway.autoscale", "gateway.shard.depth"),
}

_COMMON_FIELDS = {"v": int, "type": str, "name": str,
                  "ts": (int, float), "pid": int, "src": str}


class SchemaError(ValueError):
    """A trace event violates the wire-format contract."""


def _fail(msg: str, line_no: int | None = None) -> None:
    where = f"line {line_no}: " if line_no is not None else ""
    raise SchemaError(f"{where}{msg}")


def validate_event(record: object, line_no: int | None = None) -> dict:
    """Check one decoded event against the schema; returns it.

    Raises :class:`SchemaError` naming the offending field (and line,
    when the caller supplies one).
    """
    if not isinstance(record, dict):
        _fail(f"event must be a JSON object, got {type(record).__name__}",
              line_no)
    for fld, typ in _COMMON_FIELDS.items():
        if fld not in record:
            _fail(f"missing required field {fld!r}", line_no)
        if not isinstance(record[fld], typ) or isinstance(record[fld], bool):
            _fail(f"field {fld!r} has wrong type "
                  f"{type(record[fld]).__name__}", line_no)
    if record["v"] != SCHEMA_VERSION:
        _fail(f"unsupported schema version {record['v']!r}", line_no)
    if record["type"] not in EVENT_TYPES:
        _fail(f"unknown event type {record['type']!r}", line_no)
    attrs = record.get("attrs", {})
    if not isinstance(attrs, dict):
        _fail("'attrs' must be a JSON object", line_no)
    if record["type"] == "span":
        if "span_id" not in record or not isinstance(record["span_id"], int):
            _fail("span missing integer 'span_id'", line_no)
        parent = record.get("parent_id")
        if parent is not None and not isinstance(parent, int):
            _fail("'parent_id' must be an integer or null", line_no)
        dur = record.get("dur_s")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                or dur < 0:
            _fail("span missing non-negative 'dur_s'", line_no)
    return record


def read_log(path: str | Path) -> Iterable[tuple[int, dict]]:
    """Yield ``(line_no, decoded_event)`` pairs; bad JSON raises."""
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(
                    f"line {line_no}: invalid JSON ({exc.msg})") from None
            yield line_no, record


def validate_log(path: str | Path) -> dict:
    """Validate a whole JSONL log; returns counting summary.

    The summary has ``events`` (total), ``spans``, ``points`` and
    ``sources`` (distinct ``src`` values seen) — what the CI checker
    prints on success.
    """
    n = spans = points = 0
    sources: set[str] = set()
    for line_no, record in read_log(path):
        validate_event(record, line_no)
        n += 1
        sources.add(record["src"])
        if record["type"] == "span":
            spans += 1
        else:
            points += 1
    return {"events": n, "spans": spans, "points": points,
            "sources": sorted(sources)}
