"""Lamarckian Genetic Algorithm search (Algorithms 1 and 3).

* :mod:`repro.search.ga` — genetic operators: tournament selection,
  two-point crossover, gaussian mutation, elitism;
* :mod:`repro.search.adadelta` — the ADADELTA local search whose gradient
  kernel contains the seven reductions the paper offloads to Tensor Cores;
* :mod:`repro.search.solis_wets` — the derivative-free Solis-Wets local
  search AutoDock-GPU also ships (extension feature; no reductions of
  interest);
* :mod:`repro.search.lga` — the LGA driver: population initialisation,
  GA + LS alternation, eval/generation budgets, best-pose tracking.
"""

from repro.search.adadelta import AdadeltaConfig, AdadeltaLocalSearch
from repro.search.autostop import AutoStop, heuristic_max_evals
from repro.search.ga import GAConfig, GeneticAlgorithm
from repro.search.lga import LGAConfig, LGAResult, LGARun
from repro.search.parallel import ParallelLGA
from repro.search.solis_wets import SolisWetsConfig, SolisWetsLocalSearch

__all__ = [
    "AdadeltaConfig",
    "AdadeltaLocalSearch",
    "AutoStop",
    "heuristic_max_evals",
    "GAConfig",
    "GeneticAlgorithm",
    "LGAConfig",
    "LGAResult",
    "LGARun",
    "ParallelLGA",
    "SolisWetsConfig",
    "SolisWetsLocalSearch",
]
