"""Solis-Wets local search — AutoDock-GPU's derivative-free alternative.

Included as the extension feature the paper mentions among AutoDock-GPU's
"alternative LS methods": random-walk minimisation with adaptive step
variance (Solis & Wets, 1981).  It performs no gradient reductions, so its
behaviour is independent of the reduction back-end — the ablation benchmark
uses it to confirm that the Tensor Core accuracy effects enter exclusively
through ADADELTA's gradient kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.scoring import ScoringFunction

__all__ = ["SolisWetsConfig", "SolisWetsLocalSearch"]


@dataclass(frozen=True)
class SolisWetsConfig:
    """Solis-Wets hyper-parameters (AutoDock-GPU defaults)."""

    max_iters: int = 300
    rho_init: float = 1.0        # initial step scale
    rho_lower: float = 0.01      # termination scale
    expansion: float = 2.0
    contraction: float = 0.5
    success_limit: int = 4
    failure_limit: int = 4


class SolisWetsLocalSearch:
    """Derivative-free local search over a batch of genotypes."""

    def __init__(self, scoring: ScoringFunction,
                 config: SolisWetsConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.scoring = scoring
        self.config = config or SolisWetsConfig()
        self.rng = rng or np.random.default_rng()

    def minimize(self, genotypes: np.ndarray, max_iters: int | None = None
                 ) -> tuple[np.ndarray, np.ndarray, int]:
        """Run Solis-Wets on ``(batch, glen)`` genotypes.

        Returns ``(best_genotypes, best_energies, n_evals)``.
        """
        cfg = self.config
        iters = cfg.max_iters if max_iters is None else max_iters
        x = np.array(genotypes, dtype=np.float64, copy=True)
        batch, glen = x.shape

        e = self.scoring.score(x)
        evals = batch
        rho = np.full(batch, cfg.rho_init)
        bias = np.zeros((batch, glen))
        successes = np.zeros(batch, dtype=np.int64)
        failures = np.zeros(batch, dtype=np.int64)

        for _ in range(iters):
            active = rho > cfg.rho_lower
            if not np.any(active):
                break
            step = self.rng.normal(size=(batch, glen)) * rho[:, None] + bias
            cand = x + step
            e_cand = self.scoring.score(cand)
            evals += batch

            better = (e_cand < e) & active
            # try the opposite direction where the first probe failed
            retry = (~better) & active
            cand2 = x - step
            e_cand2 = self.scoring.score(cand2)
            evals += batch
            better2 = (e_cand2 < e) & retry

            x[better] = cand[better]
            e[better] = e_cand[better]
            bias[better] = 0.2 * bias[better] + 0.4 * step[better]

            x[better2] = cand2[better2]
            e[better2] = e_cand2[better2]
            bias[better2] = bias[better2] - 0.4 * step[better2]

            succ = better | better2
            fail = active & ~succ
            successes[succ] += 1
            failures[succ] = 0
            failures[fail] += 1
            successes[fail] = 0
            bias[fail] *= 0.5

            expand = successes >= cfg.success_limit
            rho[expand] *= cfg.expansion
            successes[expand] = 0
            contract = failures >= cfg.failure_limit
            rho[contract] *= cfg.contraction
            failures[contract] = 0

        return x, e, evals
