"""Lock-step LGA execution over a packed multi-ligand cohort.

:class:`CohortLGA` generalises :class:`~repro.search.parallel.ParallelLGA`
from one ligand to a cohort: the gene tensor is ``(C, n_runs, pop, G_max)``
(zero-padded on the gene axis) and scoring / GA / local search advance all
ligands together, so the reduce4 backends see ``cohort * runs * pop``-wide
operands.

Bit-identity and isolation contract
-----------------------------------
Ligand ``c`` of a cohort produces *bit-identical* results (genotypes,
scores, eval ledgers, histories) to ``ParallelLGA(scoring_c, ...,
seed=seeds[c]).run(n_runs)``:

* every random draw ligand ``c`` consumes comes from generators spawned
  from ``seeds[c]`` exactly as in the single path (per-run GA/init streams
  ``spawn(n_runs)``; the Solis-Wets stream keyed at ``SW_STREAM_KEY``), so
  dropping or adding cohort members cannot perturb another member's
  trajectory;
* per-ligand termination replicates the single loop via a state machine
  (running -> needs-final-score -> done, plus a quarantined sink state):
  a ligand whose budget is exhausted at the loop top keeps its pre-exit
  score as the final score, one that exits on the generation check gets
  exactly one more scoring pass — the same two exit paths
  ``ParallelLGA.run`` has;
* a lane whose energies go non-finite (or whose guarded reduction trips
  under the ``raise`` policy) is *quarantined*: frozen at its best-so-far
  result and dropped from the lock-step batch.  Because survivors keep
  their own spawned RNG streams and the pack re-trims around them,
  sibling lanes' trajectories stay bit-identical to a cohort that never
  contained the poisoned member (``CohortLGA.quarantines`` names the
  frozen lanes and why).
* eval ledgers are per ligand per run, with the single path's
  base-plus-remainder split of each ligand's own local-search evals.

AutoStop needs per-run termination control and is rejected here, exactly
like :class:`ParallelLGA` (the engine routes such configs per ligand).
"""

from __future__ import annotations

import time

import numpy as np

from repro.docking.cohort import CohortGradientCalculator, CohortScoring
from repro.docking.genotype import random_genotypes
from repro.docking.scoring import ScoringFunction
from repro.obs import get_metrics, get_tracer
from repro.reduction.api import ReductionBackend
from repro.robustness.faults import LaneQuarantine, NumericalFaultError
from repro.search.adadelta import AdadeltaConfig, AdadeltaLocalSearch
from repro.search.ga import GeneticAlgorithm, next_generation_batched
from repro.search.lga import LGAConfig, LGAResult
from repro.search.parallel import SW_STREAM_KEY, as_seed_sequence
from repro.search.solis_wets import SolisWetsConfig

__all__ = ["CohortLGA", "CohortSolisWets"]

_RUNNING, _FINAL, _DONE, _QUARANTINED = 0, 1, 2, 3


class CohortSolisWets:
    """Solis-Wets over a cohort batch with per-ligand sampler streams.

    Each ligand draws its steps from its own generator (the same stream
    the single-ligand :class:`SolisWetsLocalSearch` would use), and the
    adaptive loop's early exit is tracked per ligand: a ligand whose lanes
    all fell below ``rho_lower`` stops consuming draws and evals, exactly
    as its single-ligand loop would have broken.
    """

    def __init__(self, cohort: CohortScoring, config: SolisWetsConfig,
                 rngs: list[np.random.Generator]) -> None:
        self.cohort = cohort
        self.config = config
        self.rngs = rngs          # indexed by *global* ligand index

    def minimize_cohort(self, genotypes: np.ndarray, lig
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run Solis-Wets on ``(W, B, G)`` genotypes of ligands ``lig``.

        Returns ``(best_genotypes, best_energies, per-ligand n_evals)``.
        """
        cfg = self.config
        lig = np.asarray(lig, dtype=np.int64)
        x = np.array(genotypes, dtype=np.float64, copy=True)
        W, B, G = x.shape
        glens = self.cohort.pack.glens[lig]

        e = self.cohort.score(x, lig)
        evals = np.full(W, B, dtype=np.int64)
        rho = np.full((W, B), cfg.rho_init)
        bias = np.zeros((W, B, G))
        successes = np.zeros((W, B), dtype=np.int64)
        failures = np.zeros((W, B), dtype=np.int64)
        step = np.zeros((W, B, G))

        for _ in range(cfg.max_iters):
            lane_active = rho > cfg.rho_lower
            lig_live = lane_active.any(axis=1)
            if not lig_live.any():
                break
            # per-ligand draws, only for ligands still iterating (a dead
            # ligand's single loop would have broken: no draws, no evals)
            for w in np.nonzero(lig_live)[0]:
                gl = int(glens[w])
                step[w, :, :gl] = (self.rngs[int(lig[w])].normal(
                    size=(B, gl)) * rho[w][:, None] + bias[w, :, :gl])
            cand = x + step
            e_cand = self.cohort.score(cand, lig)
            evals[lig_live] += B

            better = (e_cand < e) & lane_active
            retry = (~better) & lane_active
            cand2 = x - step
            e_cand2 = self.cohort.score(cand2, lig)
            evals[lig_live] += B
            better2 = (e_cand2 < e) & retry

            x[better] = cand[better]
            e[better] = e_cand[better]
            bias[better] = 0.2 * bias[better] + 0.4 * step[better]

            x[better2] = cand2[better2]
            e[better2] = e_cand2[better2]
            bias[better2] = bias[better2] - 0.4 * step[better2]

            succ = better | better2
            fail = lane_active & ~succ
            successes[succ] += 1
            failures[succ] = 0
            failures[fail] += 1
            successes[fail] = 0
            bias[fail] *= 0.5

            # inactive lanes can never reach the limits: their counters
            # were reset below the limit in the iteration they last moved
            expand = successes >= cfg.success_limit
            rho[expand] *= cfg.expansion
            successes[expand] = 0
            contract = failures >= cfg.failure_limit
            rho[contract] *= cfg.contraction
            failures[contract] = 0

        return x, e, evals


class CohortLGA:
    """Run ``n_runs`` LGA searches for each of ``C`` ligands in lock step.

    Parameters
    ----------
    scorings:
        One scoring function per cohort member.
    backend:
        Reduction back-end for the ADADELTA gradient kernel.
    config:
        Budgets/operators, shared by all ligands and runs.
    seeds:
        Per-ligand master seeds (one int/SeedSequence, broadcast, or a
        sequence of length ``C``); ligand ``c``'s streams are spawned from
        ``seeds[c]`` exactly as :class:`ParallelLGA` spawns from ``seed``.
    """

    def __init__(self, scorings: list[ScoringFunction],
                 backend: str | ReductionBackend = "baseline",
                 config: LGAConfig | None = None,
                 seeds=0) -> None:
        self.cohort = CohortScoring(scorings)
        self.config = config or LGAConfig()
        if self.config.autostop:
            raise ValueError("AutoStop requires per-run termination; "
                             "cohorts cannot run it (dock_cohort falls "
                             "back to per-ligand docking)")
        C = self.cohort.pack.C
        if isinstance(seeds, (int, np.integer, np.random.SeedSequence)):
            seeds = [seeds] * C
        self.seeds = list(seeds)
        if len(self.seeds) != C:
            raise ValueError(f"{len(self.seeds)} seeds for {C} ligands")
        #: lanes frozen out of the lock-step search, keyed by cohort
        #: position (filled during :meth:`run`)
        self.quarantines: dict[int, LaneQuarantine] = {}
        self.gradient = None
        if self.config.ls_method == "ad":
            self.gradient = CohortGradientCalculator(self.cohort, backend)
            ad_cfg = self.config.adadelta or AdadeltaConfig(
                max_iters=self.config.ls_iters)
            self.local_search = AdadeltaLocalSearch(self.gradient, ad_cfg)
        else:
            sw_cfg = self.config.solis_wets or SolisWetsConfig(
                max_iters=self.config.ls_iters)
            sw_rngs = []
            for s in self.seeds:
                base = as_seed_sequence(s)
                sw_seq = np.random.SeedSequence(
                    entropy=base.entropy,
                    spawn_key=(*base.spawn_key, SW_STREAM_KEY))
                sw_rngs.append(
                    np.random.Generator(np.random.PCG64(sw_seq)))
            self.local_search = CohortSolisWets(self.cohort, sw_cfg, sw_rngs)

    def _quarantine(self, lane: int, generation: int, reason: str,
                    detail: str) -> None:
        name = getattr(self.cohort.pack.ligands[lane], "name", "")
        q = LaneQuarantine(lane=lane, name=name, generation=generation,
                           reason=reason, detail=detail)
        self.quarantines[lane] = q
        get_metrics().counter("cohort.quarantines").inc()
        # "name" would collide with the event's own name parameter
        attrs = {**q.to_dict(), "ligand": q.name}
        attrs.pop("name")
        get_tracer().event("cohort.quarantine", **attrs)

    def _freeze_faulty(self, exc: NumericalFaultError, work, gw, subsets,
                       selected, gens, state):
        """Quarantine the lanes a guard-raise attributed; narrow the
        in-flight generation's arrays to the survivors."""
        bad = {int(a) for a in getattr(exc, "lanes", ())} \
            & {int(a) for a in work}
        if not bad:
            # unattributable fault: no lane can be trusted this generation
            bad = {int(a) for a in work}
        for a in sorted(bad):
            self._quarantine(a, int(gens[a]), "guard-raise", str(exc))
            state[a] = _QUARANTINED
        keep = np.array([i for i, a in enumerate(work) if int(a) not in bad],
                        dtype=np.int64)
        return work[keep], gw[keep], subsets[keep], selected[keep]

    def run(self, n_runs: int, on_generation=None) -> list[list[LGAResult]]:
        """Execute the cohort; returns one result list per ligand.

        ``on_generation(generations, evals)`` is invoked once per
        lock-step generation with the cohort maxima, so a watchdog bounds
        the slowest member.
        """
        cfg = self.config
        pack = self.cohort.pack
        C = pack.C
        pop, R, G = cfg.pop_size, n_runs, pack.G

        rngs = [[np.random.Generator(np.random.PCG64(s))
                 for s in as_seed_sequence(self.seeds[c]).spawn(R)]
                for c in range(C)]
        gas = [[GeneticAlgorithm(cfg.ga, rng) for rng in rngs[c]]
               for c in range(C)]

        genes = np.zeros((C, R, pop, G))
        for c in range(C):
            sf = self.cohort.scorings[c]
            gl = int(pack.glens[c])
            for r in range(R):
                genes[c, r, :, :gl] = random_genotypes(
                    rngs[c][r], pop, sf.ligand,
                    sf.maps.box_lo, sf.maps.box_hi)

        best_score = np.full((C, R), np.inf)
        best_genotype = genes[:, :, 0, :].copy()
        histories: list[list[list[tuple[int, float, np.ndarray]]]] = [
            [[] for _ in range(R)] for _ in range(C)]
        evals_run = np.zeros((C, R), dtype=np.int64)
        gens = np.zeros(C, dtype=np.int64)
        scores = np.empty((C, R, pop))
        state = np.full(
            C,
            _RUNNING if (cfg.max_evals > 0 and cfg.max_gens > 0)
            else _FINAL,
            dtype=np.int8)

        self.quarantines = {}

        def track(c: int, sc: np.ndarray) -> None:
            idx = np.argmin(sc, axis=1)
            vals = sc[np.arange(R), idx]
            # the isfinite guard keeps a poisoned -inf score from
            # hijacking the best-pose bookkeeping (no-op on clean runs)
            improved = (vals < best_score[c]) & np.isfinite(vals)
            gl = int(pack.glens[c])
            for r in np.nonzero(improved)[0]:
                best_score[c, r] = vals[r]
                best_genotype[c, r] = genes[c, r, idx[r]]
                # .copy(): the trailing slice is a view into the mutating
                # gene tensor, and history snapshots must be frozen
                histories[c][r].append(
                    (int(evals_run[c, r]), float(vals[r]),
                     genes[c, r, idx[r], :gl].copy()))

        n_ls = int(round(cfg.ls_rate * pop))
        metrics = get_metrics()
        tracer = get_tracer()
        metrics.histogram("cohort.pad_ratio").observe(pack.pad_ratio)
        span = tracer.span("lga.cohort", cohort=C, n_runs=R, pop_size=pop,
                           ls_method=cfg.ls_method,
                           pad_ratio=pack.pad_ratio)
        with span:
            while (state < _DONE).any():
                live = np.nonzero(state < _DONE)[0]
                t0 = time.perf_counter()
                sc = self.cohort.score(
                    genes[live].reshape(len(live), R * pop, G),
                    live).reshape(len(live), R, pop)
                metrics.histogram("lga.stage.score_s").observe(
                    time.perf_counter() - t0)
                scores[live] = sc
                finite = np.isfinite(sc).reshape(len(live), -1).all(axis=1)
                work = []
                for k, c in enumerate(live):
                    evals_run[c] += pop
                    if not finite[k]:
                        # poisoned energies: freeze the lane at its
                        # best-so-far, keep the siblings in lock step
                        self._quarantine(
                            int(c), int(gens[c]), "nonfinite-score",
                            f"{int(np.count_nonzero(~np.isfinite(sc[k])))} "
                            f"non-finite scores")
                        state[c] = _QUARANTINED
                        continue
                    track(c, scores[c])
                    if state[c] == _FINAL:
                        state[c] = _DONE
                    elif int(evals_run[c].max()) >= cfg.max_evals:
                        # budget exhausted at the loop top: this score IS
                        # the final score (ParallelLGA's scored_final path)
                        state[c] = _DONE
                    else:
                        work.append(int(c))
                if not work:
                    continue
                work = np.array(work, dtype=np.int64)
                W = len(work)

                t0 = time.perf_counter()
                with tracer.span("lga.ga_generation",
                                 generation=int(gens.max()), cohort=W):
                    gas_flat = [gas[c][r] for c in work for r in range(R)]
                    gw = next_generation_batched(
                        gas_flat, genes[work].reshape(W * R, pop, G),
                        scores[work].reshape(W * R, pop),
                        glens=np.repeat(pack.glens[work], R),
                    ).reshape(W, R, pop, G)
                metrics.histogram("lga.stage.ga_s").observe(
                    time.perf_counter() - t0)

                if n_ls > 0:
                    t0 = time.perf_counter()
                    subsets = np.empty((W, R, n_ls), dtype=np.int64)
                    for w, c in enumerate(work):
                        for r in range(R):    # per-run draws: seed contract
                            subsets[w, r] = rngs[c][r].choice(
                                pop, size=n_ls, replace=False)
                    selected = np.take_along_axis(
                        gw, subsets[..., None], axis=2)   # (W, R, n_ls, G)
                    if cfg.ls_method == "ad":
                        refined = None
                        while W > 0:
                            self.gradient.bind(work)
                            try:
                                refined, _, total_ls = \
                                    self.local_search.minimize(
                                        selected.reshape(W * R * n_ls, G))
                            except NumericalFaultError as exc:
                                # quarantine the attributed lanes and
                                # replay this generation's LS for the
                                # survivors: ADADELTA is deterministic, so
                                # their replay is bit-identical to a
                                # cohort that never held the bad member
                                work, gw, subsets, selected = \
                                    self._freeze_faulty(
                                        exc, work, gw, subsets, selected,
                                        gens, state)
                                W = len(work)
                                continue
                            # ADADELTA evals are deterministic
                            # (iters x batch), so each ligand's share is
                            # exactly its single-path iters x R x n_ls
                            ls_evals = np.full(W, total_ls // W,
                                               dtype=np.int64)
                            refined = refined.reshape(W, R, n_ls, G)
                            break
                    else:
                        refined, _, ls_evals = \
                            self.local_search.minimize_cohort(
                                selected.reshape(W, R * n_ls, G), work)
                        refined = refined.reshape(W, R, n_ls, G)
                    if refined is not None:
                        np.put_along_axis(gw, subsets[..., None], refined,
                                          axis=2)
                        for w, c in enumerate(work):
                            base, rem = divmod(int(ls_evals[w]), R)
                            evals_run[c] += base
                            if rem:
                                evals_run[c, :rem] += 1
                    metrics.histogram("lga.stage.ls_s").observe(
                        time.perf_counter() - t0)
                genes[work] = gw

                for c in work:
                    gens[c] += 1
                    metrics.counter("lga.generations").inc()
                    if (int(evals_run[c].max()) >= cfg.max_evals
                            or gens[c] >= cfg.max_gens):
                        state[c] = _FINAL
                if on_generation is not None:
                    on_generation(int(gens.max()), int(evals_run.max()))

            span.set(generations=int(gens.max()),
                     evals_per_run=int(evals_run.max()),
                     quarantined=len(self.quarantines))

        results = []
        for c in range(C):
            gl = int(pack.glens[c])
            results.append([
                LGAResult(
                    best_genotype=best_genotype[c, r, :gl].copy(),
                    best_score=float(best_score[c, r]),
                    evals_used=int(evals_run[c, r]),
                    generations=int(gens[c]),
                    history=histories[c][r])
                for r in range(R)])
        return results
