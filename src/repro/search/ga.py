"""Genetic-algorithm phase of the LGA (crossover, mutation, selection).

Operates on a population gene matrix ``(pop, glen)`` plus its scores.
One :meth:`GeneticAlgorithm.next_generation` call implements the GA step of
Algorithm 1: elitist survival of the best individual, tournament selection
of parents, two-point crossover, and gaussian gene mutation with
gene-class-specific magnitudes (translation in Å, angles in radians).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GAConfig", "GeneticAlgorithm"]


@dataclass(frozen=True)
class GAConfig:
    """Genetic-operator rates (AutoDock-GPU-style defaults).

    ``selection`` chooses the parent-selection operator: ``"tournament"``
    (binary tournament, the default here) or ``"proportional"``
    (fitness-proportional roulette over linearly rescaled scores,
    AutoDock's classic default).
    """

    selection: str = "tournament"
    tournament_size: int = 2
    tournament_p: float = 0.6       # probability the fitter contestant wins
    crossover_rate: float = 0.8
    mutation_rate: float = 0.02     # per-gene mutation probability
    mutation_trans_sigma: float = 1.0   # Å
    mutation_angle_sigma: float = 0.35  # rad (~20 degrees)
    n_elite: int = 1

    def __post_init__(self) -> None:
        if self.selection not in ("tournament", "proportional"):
            raise ValueError("selection must be 'tournament' or "
                             "'proportional'")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.n_elite < 0:
            raise ValueError("n_elite must be >= 0")


class GeneticAlgorithm:
    """Stateless genetic operators bound to a config and RNG."""

    def __init__(self, config: GAConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    # ------------------------------------------------------------------

    def select_parents(self, scores: np.ndarray, n: int) -> np.ndarray:
        """Select ``n`` parent indices with the configured operator."""
        if self.config.selection == "proportional":
            return self._proportional_selection(scores, n)
        return self._tournament_selection(scores, n)

    def _tournament_selection(self, scores: np.ndarray, n: int) -> np.ndarray:
        """Tournament selection (lower score wins with prob. tournament_p)."""
        pop = scores.shape[0]
        k = self.config.tournament_size
        contestants = self.rng.integers(0, pop, size=(n, k))
        contestant_scores = scores[contestants]
        order = np.argsort(contestant_scores, axis=1)
        pick_best = self.rng.random(n) < self.config.tournament_p
        chosen_rank = np.where(pick_best, 0,
                               self.rng.integers(0, k, size=n))
        return contestants[np.arange(n), order[np.arange(n), chosen_rank]]

    def _proportional_selection(self, scores: np.ndarray, n: int
                                ) -> np.ndarray:
        """Fitness-proportional (roulette) selection, AutoDock-style:
        scores are linearly rescaled so the worst individual has zero
        fitness and the best the largest."""
        worst = float(np.max(scores))
        fitness = worst - np.asarray(scores, dtype=np.float64)
        total = fitness.sum()
        if total <= 0.0:   # degenerate population: uniform choice
            return self.rng.integers(0, scores.shape[0], size=n)
        return self.rng.choice(scores.shape[0], size=n, p=fitness / total)

    def crossover(self, parents_a: np.ndarray, parents_b: np.ndarray
                  ) -> np.ndarray:
        """Two-point crossover over gene vectors ``(n, glen)``."""
        n, glen = parents_a.shape
        children = parents_a.copy()
        do = self.rng.random(n) < self.config.crossover_rate
        cut = np.sort(self.rng.integers(0, glen + 1, size=(n, 2)), axis=1)
        cols = np.arange(glen)
        inside = (cols[None, :] >= cut[:, 0:1]) & (cols[None, :] < cut[:, 1:2])
        take_b = inside & do[:, None]
        children[take_b] = parents_b[take_b]
        return children

    def mutate(self, genes: np.ndarray) -> np.ndarray:
        """Gaussian per-gene mutation; magnitude depends on gene class."""
        n, glen = genes.shape
        out = genes.copy()
        hit = self.rng.random((n, glen)) < self.config.mutation_rate
        sigma = np.full(glen, self.config.mutation_angle_sigma)
        sigma[0:3] = self.config.mutation_trans_sigma
        noise = self.rng.normal(scale=sigma, size=(n, glen))
        out[hit] += noise[hit]
        return out

    def next_generation(self, genes: np.ndarray, scores: np.ndarray
                        ) -> np.ndarray:
        """Produce the next population ``(pop, glen)`` from the scored
        current one.  The ``n_elite`` best individuals survive unchanged."""
        pop = genes.shape[0]
        order = np.argsort(scores)
        n_elite = min(self.config.n_elite, pop)
        n_children = pop - n_elite

        pa = self.select_parents(scores, n_children)
        pb = self.select_parents(scores, n_children)
        children = self.crossover(genes[pa], genes[pb])
        children = self.mutate(children)

        out = np.empty_like(genes)
        out[:n_elite] = genes[order[:n_elite]]
        out[n_elite:] = children
        return out
