"""Genetic-algorithm phase of the LGA (crossover, mutation, selection).

Operates on a population gene matrix ``(pop, glen)`` plus its scores.
One :meth:`GeneticAlgorithm.next_generation` call implements the GA step of
Algorithm 1: elitist survival of the best individual, tournament selection
of parents, two-point crossover, and gaussian gene mutation with
gene-class-specific magnitudes (translation in Å, angles in radians).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GAConfig", "GeneticAlgorithm", "next_generation_batched"]


@dataclass(frozen=True)
class GAConfig:
    """Genetic-operator rates (AutoDock-GPU-style defaults).

    ``selection`` chooses the parent-selection operator: ``"tournament"``
    (binary tournament, the default here) or ``"proportional"``
    (fitness-proportional roulette over linearly rescaled scores,
    AutoDock's classic default).
    """

    selection: str = "tournament"
    tournament_size: int = 2
    tournament_p: float = 0.6       # probability the fitter contestant wins
    crossover_rate: float = 0.8
    mutation_rate: float = 0.02     # per-gene mutation probability
    mutation_trans_sigma: float = 1.0   # Å
    mutation_angle_sigma: float = 0.35  # rad (~20 degrees)
    n_elite: int = 1

    def __post_init__(self) -> None:
        if self.selection not in ("tournament", "proportional"):
            raise ValueError("selection must be 'tournament' or "
                             "'proportional'")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.n_elite < 0:
            raise ValueError("n_elite must be >= 0")


class GeneticAlgorithm:
    """Stateless genetic operators bound to a config and RNG."""

    def __init__(self, config: GAConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    # ------------------------------------------------------------------

    def select_parents(self, scores: np.ndarray, n: int) -> np.ndarray:
        """Select ``n`` parent indices with the configured operator."""
        if self.config.selection == "proportional":
            return self._proportional_selection(scores, n)
        return self._tournament_selection(scores, n)

    def _tournament_selection(self, scores: np.ndarray, n: int) -> np.ndarray:
        """Tournament selection (lower score wins with prob. tournament_p)."""
        pop = scores.shape[0]
        k = self.config.tournament_size
        contestants = self.rng.integers(0, pop, size=(n, k))
        contestant_scores = scores[contestants]
        order = np.argsort(contestant_scores, axis=1)
        pick_best = self.rng.random(n) < self.config.tournament_p
        chosen_rank = np.where(pick_best, 0,
                               self.rng.integers(0, k, size=n))
        return contestants[np.arange(n), order[np.arange(n), chosen_rank]]

    def _proportional_selection(self, scores: np.ndarray, n: int
                                ) -> np.ndarray:
        """Fitness-proportional (roulette) selection, AutoDock-style:
        scores are linearly rescaled so the worst individual has zero
        fitness and the best the largest."""
        worst = float(np.max(scores))
        fitness = worst - np.asarray(scores, dtype=np.float64)
        total = fitness.sum()
        if total <= 0.0:   # degenerate population: uniform choice
            return self.rng.integers(0, scores.shape[0], size=n)
        return self.rng.choice(scores.shape[0], size=n, p=fitness / total)

    def crossover(self, parents_a: np.ndarray, parents_b: np.ndarray
                  ) -> np.ndarray:
        """Two-point crossover over gene vectors ``(n, glen)``."""
        n, glen = parents_a.shape
        children = parents_a.copy()
        do = self.rng.random(n) < self.config.crossover_rate
        cut = np.sort(self.rng.integers(0, glen + 1, size=(n, 2)), axis=1)
        cols = np.arange(glen)
        inside = (cols[None, :] >= cut[:, 0:1]) & (cols[None, :] < cut[:, 1:2])
        take_b = inside & do[:, None]
        children[take_b] = parents_b[take_b]
        return children

    def mutate(self, genes: np.ndarray) -> np.ndarray:
        """Gaussian per-gene mutation; magnitude depends on gene class."""
        n, glen = genes.shape
        out = genes.copy()
        hit = self.rng.random((n, glen)) < self.config.mutation_rate
        sigma = np.full(glen, self.config.mutation_angle_sigma)
        sigma[0:3] = self.config.mutation_trans_sigma
        noise = self.rng.normal(scale=sigma, size=(n, glen))
        out[hit] += noise[hit]
        return out

    def next_generation(self, genes: np.ndarray, scores: np.ndarray
                        ) -> np.ndarray:
        """Produce the next population ``(pop, glen)`` from the scored
        current one.  The ``n_elite`` best individuals survive unchanged."""
        pop = genes.shape[0]
        order = np.argsort(scores)
        n_elite = min(self.config.n_elite, pop)
        n_children = pop - n_elite

        pa = self.select_parents(scores, n_children)
        pb = self.select_parents(scores, n_children)
        children = self.crossover(genes[pa], genes[pb])
        children = self.mutate(children)

        out = np.empty_like(genes)
        out[:n_elite] = genes[order[:n_elite]]
        out[n_elite:] = children
        return out


def next_generation_batched(gas: list[GeneticAlgorithm], genes: np.ndarray,
                            scores: np.ndarray,
                            glens: np.ndarray | None = None) -> np.ndarray:
    """Lock-step :meth:`GeneticAlgorithm.next_generation` over ``R`` runs.

    ``genes`` is ``(R, pop, glen)`` and ``scores`` ``(R, pop)``; run ``r``
    advances with operators bound to ``gas[r]``.  The per-run seed-stream
    contract is preserved — every random draw still comes from ``gas[r]``'s
    own generator, with exactly the calls (and call order) of the scalar
    path — but the selection / crossover / mutation *arithmetic* is
    vectorised across runs, replacing the per-generation Python loop of the
    lock-step executor.  Output is bit-identical per run to calling
    ``gas[r].next_generation(genes[r], scores[r])`` in a loop.

    ``glens`` gives each run's true genotype length for cohort batches
    where the gene axis is zero-padded to the widest ligand: per-run draws
    are sized by ``glens[r]`` (preserving each ligand's stream), the cut
    points stay within the real genes, and padded columns can never be hit
    by mutation (their sentinel threshold is 1.0) nor receive noise.

    Proportional (roulette) selection is vectorised too: per run the
    scalar path's ``Generator.choice(pop, size=n, p=...)`` consumes
    exactly one ``random(n)`` draw against the normalised fitness CDF
    (or one ``integers`` draw for a degenerate population), which is
    replicated here with the same draws and the same CDF arithmetic.
    """
    cfg = gas[0].config
    R, pop, glen = genes.shape
    if glens is None:
        glens = np.full(R, glen, dtype=np.int64)
    else:
        glens = np.asarray(glens, dtype=np.int64)

    n_elite = min(cfg.n_elite, pop)
    n = pop - n_elite
    k = cfg.tournament_size
    proportional = cfg.selection == "proportional"

    # ---- draw phase: per-run streams, scalar-path call order
    # (parents-a draws, parents-b draws, crossover draws, mutation draws)
    if proportional:
        sel_u = np.empty((R, 2, n))
        sel_direct = np.zeros((R, 2, n), dtype=np.int64)
        degenerate = np.zeros(R, dtype=bool)
        cdf = np.zeros((R, pop))
    else:
        contestants = np.empty((R, 2, n, k), dtype=np.int64)
        pick_rand = np.empty((R, 2, n))
        rank_rand = np.empty((R, 2, n), dtype=np.int64)
    cross_rand = np.empty((R, n))
    cut_raw = np.empty((R, n, 2), dtype=np.int64)
    # mutation sentinels on padded columns: threshold 1.0 is never < rate
    hit_rand = np.full((R, n, glen), 1.0)
    noise = np.zeros((R, n, glen))
    sigma = np.full(glen, cfg.mutation_angle_sigma)
    sigma[0:3] = cfg.mutation_trans_sigma
    for r, ga in enumerate(gas):
        rng = ga.rng
        gl = int(glens[r])
        if proportional:
            # mirror _proportional_selection + Generator.choice's internal
            # CDF construction (cumsum then renormalise by the last entry)
            worst = float(np.max(scores[r]))
            fitness = worst - np.asarray(scores[r], dtype=np.float64)
            total = fitness.sum()
            if total <= 0.0:
                degenerate[r] = True
                for s in range(2):
                    sel_direct[r, s] = rng.integers(0, pop, size=n)
            else:
                c = (fitness / total).cumsum()
                c /= c[-1]
                cdf[r] = c
                for s in range(2):
                    sel_u[r, s] = rng.random(n)
        else:
            for s in range(2):
                contestants[r, s] = rng.integers(0, pop, size=(n, k))
                pick_rand[r, s] = rng.random(n)
                rank_rand[r, s] = rng.integers(0, k, size=n)
        cross_rand[r] = rng.random(n)
        cut_raw[r] = rng.integers(0, gl + 1, size=(n, 2))
        hit_rand[r, :, :gl] = rng.random((n, gl))
        noise[r, :, :gl] = rng.normal(scale=sigma[:gl], size=(n, gl))

    # ---- parent selection, vectorised over (R, 2 parent slots, n)
    if proportional:
        # searchsorted(cdf, u, side='right') == count of cdf entries <= u
        idx = np.sum(cdf[:, None, None, :] <= sel_u[..., None], axis=-1)
        parents = np.where(degenerate[:, None, None], sel_direct, idx)
    else:
        rows = np.arange(R)[:, None, None, None]
        contestant_scores = scores[rows, contestants]   # (R, 2, n, k)
        order = np.argsort(contestant_scores, axis=-1)
        chosen_rank = np.where(pick_rand < cfg.tournament_p, 0, rank_rand)
        winner_col = np.take_along_axis(
            order, chosen_rank[..., None], axis=-1)
        parents = np.take_along_axis(contestants, winner_col, axis=-1)[..., 0]

    # ---- two-point crossover
    run_rows = np.arange(R)[:, None]
    pa = genes[run_rows, parents[:, 0]]                 # (R, n, glen)
    pb = genes[run_rows, parents[:, 1]]
    children = pa.copy()
    do = cross_rand < cfg.crossover_rate
    cut = np.sort(cut_raw, axis=-1)
    cols = np.arange(glen)
    inside = (cols >= cut[..., 0:1]) & (cols < cut[..., 1:2])
    take_b = inside & do[..., None]
    children[take_b] = pb[take_b]

    # ---- gaussian mutation
    hit = hit_rand < cfg.mutation_rate
    children[hit] += noise[hit]

    # ---- elitist survival
    out = np.empty_like(genes)
    elite = np.argsort(scores, axis=-1)[:, :n_elite]
    out[:, :n_elite] = genes[run_rows, elite]
    out[:, n_elite:] = children
    return out
