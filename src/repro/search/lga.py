"""The Lamarckian Genetic Algorithm driver (Algorithm 1).

One :class:`LGARun` is one independent run: a population of individuals
evolved by the GA phase and refined by the local-search phase (Lamarckian:
refined genotypes are written back into the population), until either the
score-evaluation budget (``N_score-evals^MAX``) or the generation budget
(``N_gens^MAX``) is exhausted.

Every improvement of the run's best score is recorded with the evaluation
count at which it happened — the raw material of the E50 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.docking.genotype import random_genotypes
from repro.docking.gradients import GradientCalculator
from repro.docking.scoring import ScoringFunction
from repro.reduction.api import ReductionBackend
from repro.search.adadelta import AdadeltaConfig, AdadeltaLocalSearch
from repro.search.autostop import AutoStop
from repro.search.ga import GAConfig, GeneticAlgorithm
from repro.search.solis_wets import SolisWetsConfig, SolisWetsLocalSearch

__all__ = ["LGAConfig", "LGAResult", "LGARun"]


@dataclass(frozen=True)
class LGAConfig:
    """LGA budgets and operator settings.

    Paper defaults are ``pop_size=150``, ``max_evals=2_500_000``,
    ``max_gens=27_000``, ``ls_iters=300``; the class defaults here are the
    scaled-down values the Python reproduction uses (DESIGN.md Section 6).
    """

    pop_size: int = 30
    max_evals: int = 10_000
    max_gens: int = 200
    ls_method: str = "ad"          # "ad" (ADADELTA) or "sw" (Solis-Wets)
    ls_iters: int = 30
    ls_rate: float = 0.3           # fraction of population refined per gen
    ga: GAConfig = field(default_factory=GAConfig)
    adadelta: AdadeltaConfig | None = None
    solis_wets: SolisWetsConfig | None = None
    #: enable AutoStop convergence-based early termination (the -A flag)
    autostop: bool = False
    autostop_window: int = 10
    autostop_tolerance: float = 0.15

    def __post_init__(self) -> None:
        if self.pop_size < 2:
            raise ValueError("pop_size must be >= 2")
        if self.ls_method not in ("ad", "sw"):
            raise ValueError("ls_method must be 'ad' or 'sw'")
        if not 0.0 <= self.ls_rate <= 1.0:
            raise ValueError("ls_rate must be in [0, 1]")


@dataclass
class LGAResult:
    """Outcome of one LGA run."""

    best_genotype: np.ndarray
    best_score: float
    evals_used: int
    generations: int
    #: (evals_used, score, genotype-copy) at every best-score improvement
    history: list[tuple[int, float, np.ndarray]]

    def to_dict(self, include_history: bool = True) -> dict:
        """JSON-ready dict (genotypes become plain lists).

        ``include_history=False`` drops the improvement trace — manifests
        of large virtual screens only need the final pose.
        """
        return {
            "best_genotype": [float(x) for x in self.best_genotype],
            "best_score": float(self.best_score),
            "evals_used": int(self.evals_used),
            "generations": int(self.generations),
            "history": [[int(e), float(s), [float(x) for x in g]]
                        for e, s, g in self.history] if include_history
                       else [],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LGAResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            best_genotype=np.asarray(d["best_genotype"], dtype=np.float64),
            best_score=float(d["best_score"]),
            evals_used=int(d["evals_used"]),
            generations=int(d["generations"]),
            history=[(int(e), float(s), np.asarray(g, dtype=np.float64))
                     for e, s, g in d.get("history", [])],
        )


class LGARun:
    """One independent LGA run bound to a scoring function and back-end.

    Parameters
    ----------
    scoring:
        Scoring function for the ligand-receptor pair.
    backend:
        Reduction back-end used by the ADADELTA gradient kernel.
    config:
        Budgets and operator settings.
    rng:
        The run's private random generator (runs differ only by seed).
    """

    def __init__(self, scoring: ScoringFunction,
                 backend: str | ReductionBackend = "baseline",
                 config: LGAConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.scoring = scoring
        self.config = config or LGAConfig()
        self.rng = rng or np.random.default_rng()
        self.ga = GeneticAlgorithm(self.config.ga, self.rng)
        if self.config.ls_method == "ad":
            gradient = GradientCalculator(scoring, backend)
            ad_cfg = self.config.adadelta or AdadeltaConfig(
                max_iters=self.config.ls_iters)
            self.local_search = AdadeltaLocalSearch(gradient, ad_cfg)
        else:
            sw_cfg = self.config.solis_wets or SolisWetsConfig(
                max_iters=self.config.ls_iters)
            self.local_search = SolisWetsLocalSearch(scoring, sw_cfg, self.rng)

    # ------------------------------------------------------------------

    def run(self) -> LGAResult:
        """Execute the LGA until a budget is exhausted."""
        cfg = self.config
        sf = self.scoring
        maps = sf.maps
        genes = random_genotypes(self.rng, cfg.pop_size, sf.ligand,
                                 maps.box_lo, maps.box_hi)

        best_score = np.inf
        best_genotype = genes[0].copy()
        history: list[tuple[int, float, np.ndarray]] = []
        evals = 0
        gens = 0
        autostop = AutoStop(window=cfg.autostop_window,
                            tolerance=cfg.autostop_tolerance) \
            if cfg.autostop else None

        def track(scores: np.ndarray) -> None:
            nonlocal best_score, best_genotype
            i = int(np.argmin(scores))
            if scores[i] < best_score:
                best_score = float(scores[i])
                best_genotype = genes[i].copy()
                history.append((evals, best_score, best_genotype.copy()))

        while evals < cfg.max_evals and gens < cfg.max_gens:
            scores = sf.score(genes)
            evals += cfg.pop_size
            track(scores)
            if evals >= cfg.max_evals:
                break
            if autostop is not None and autostop.observe(float(scores.min())):
                break

            # GA phase
            genes = self.ga.next_generation(genes, scores)

            # LS phase (Lamarckian write-back)
            n_ls = int(round(cfg.ls_rate * cfg.pop_size))
            if n_ls > 0:
                subset = self.rng.choice(cfg.pop_size, size=n_ls,
                                         replace=False)
                refined, _, ls_evals = self.local_search.minimize(
                    genes[subset])
                genes[subset] = refined
                evals += ls_evals
            gens += 1

        # final scoring so the last generation's refinements are counted
        scores = sf.score(genes)
        evals += cfg.pop_size
        track(scores)

        return LGAResult(best_genotype=best_genotype,
                         best_score=best_score,
                         evals_used=evals,
                         generations=gens,
                         history=history)
