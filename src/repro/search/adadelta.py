"""ADADELTA local search (Algorithm 3; Zeiler 2012).

Each iteration runs the gradient kernel (Algorithm 4) — whose seven
block-level reductions go through the configured
:class:`~repro.reduction.api.ReductionBackend` — and takes the adaptive
step

    dx = - sqrt(E[dx^2] + eps) / sqrt(E[g^2] + eps) * g .

As in the AutoDock-GPU CUDA kernel, the energy used to track the best
genotype comes from the *same* fused energy+gradient pass, so a lossy
reduction back-end (FP16 Tensor Cores without error correction) perturbs
both the step direction and the best-pose bookkeeping — the mechanism
behind the paper's Figure 1 accuracy degradation.

The whole population batch is iterated together (one vectorised gradient
call per iteration), numerically identical to per-individual loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.gradients import GradientCalculator
from repro.obs import MetricsRegistry, get_metrics, get_tracer

__all__ = ["AdadeltaConfig", "AdadeltaLocalSearch"]


@dataclass(frozen=True)
class AdadeltaConfig:
    """ADADELTA hyper-parameters (AutoDock-GPU defaults)."""

    max_iters: int = 300
    rho: float = 0.8
    eps: float = 1e-2

    def __post_init__(self) -> None:
        if not 0.0 < self.rho < 1.0:
            raise ValueError("rho must be in (0, 1)")
        if self.eps <= 0:
            raise ValueError("eps must be positive")
        if self.max_iters < 1:
            raise ValueError("max_iters must be >= 1")


class AdadeltaLocalSearch:
    """Gradient-based local search over a batch of genotypes.

    Parameters
    ----------
    gradient:
        The gradient calculator (carries the reduction back-end).
    config:
        ADADELTA hyper-parameters.
    """

    def __init__(self, gradient: GradientCalculator,
                 config: AdadeltaConfig | None = None) -> None:
        self.gradient = gradient
        self.config = config or AdadeltaConfig()

    def minimize(self, genotypes: np.ndarray, max_iters: int | None = None
                 ) -> tuple[np.ndarray, np.ndarray, int]:
        """Run ADADELTA on ``(batch, glen)`` genotypes.

        Returns
        -------
        (best_genotypes, best_energies, n_evals):
            The best genotype/energy seen per individual, and the number of
            score evaluations consumed (``iters`` per individual, fused
            energy+gradient passes).
        """
        cfg = self.config
        iters = cfg.max_iters if max_iters is None else max_iters
        x = np.array(genotypes, dtype=np.float64, copy=True)
        if x.ndim != 2:
            raise ValueError("genotypes must be (batch, glen)")
        batch, glen = x.shape

        eg2 = np.zeros((batch, glen))
        edx2 = np.zeros((batch, glen))
        best_x = x.copy()
        best_e = np.full(batch, np.inf)
        evals = 0
        # audit consumer-level repairs into the run's fault ledger when the
        # reduction back-end is guarded (repro.robustness); duck-typed
        # gradient callables without a back-end simply skip the audit
        ledger = getattr(getattr(self.gradient, "backend", None),
                         "ledger", None)
        backend_name = getattr(getattr(self.gradient, "backend", None),
                               "name", "none")
        tracer = get_tracer()
        before = get_metrics().snapshot() if tracer.enabled else None
        span = tracer.span("adadelta.minimize", batch=batch, iters=iters,
                           backend=backend_name)
        with span:
            best_x, best_e, evals = self._iterate(
                x, eg2, edx2, best_x, best_e, iters, batch, ledger)
            if before is not None:
                d = MetricsRegistry.delta(before, get_metrics().snapshot())
                red = d["histograms"].get(
                    f"reduction.{backend_name}.reduce4_s", {})
                span.set(evals=evals,
                         reduce4_s=red.get("total", 0.0),
                         reduce4_calls=red.get("count", 0))
        get_metrics().histogram("adadelta.evals_per_call").observe(evals)
        return best_x, best_e, evals

    def _iterate(self, x, eg2, edx2, best_x, best_e, iters, batch, ledger):
        """The ADADELTA loop proper (split out so the span wraps it).

        The per-iteration update is written as in-place ufunc calls over
        four preallocated scratch buffers — each step is the same
        elementwise operation on the same operands as the expression form
        ``rho*eg2 + (1-rho)*grad**2`` etc., so results stay bit-identical
        while the loop stops allocating ~8 ``(batch, glen)`` temporaries
        per iteration.
        """
        cfg = self.config
        rho, one_m_rho, eps = cfg.rho, 1.0 - cfg.rho, cfg.eps
        evals = 0
        shape = x.shape
        sq = np.empty(shape)        # grad**2 / dx**2 scratch
        num = np.empty(shape)       # edx2 + eps, then the full step factor
        den = np.empty(shape)       # eg2 + eps
        dx = np.empty(shape)
        for _ in range(iters):
            energy, grad = self.gradient(x)
            evals += batch
            # a lossy reduction back-end can return non-finite values
            # (FP16 accumulator overflow); treat them as "no information":
            # the gradient step is zeroed and the energy cannot win the
            # best-pose comparison, like the guarded CUDA kernel
            bad_grad = ~np.isfinite(grad)
            bad_energy = ~np.isfinite(energy)
            if ledger is not None:
                ledger.record_consumer_zeroed(
                    int(np.count_nonzero(bad_grad))
                    + int(np.count_nonzero(bad_energy)))
            if bad_grad.any():
                grad = np.where(bad_grad, 0.0, grad)
            if bad_energy.any():
                # -inf would hijack the best-pose bookkeeping; NaN merely
                # fails the comparison — neutralise both explicitly
                energy = np.where(bad_energy, np.inf, energy)
            improved = energy < best_e
            best_e = np.where(improved, energy, best_e)
            best_x[improved] = x[improved]

            # eg2 = rho * eg2 + (1 - rho) * grad**2
            np.square(grad, out=sq)
            np.multiply(sq, one_m_rho, out=sq)
            np.multiply(eg2, rho, out=eg2)
            np.add(eg2, sq, out=eg2)
            # dx = -sqrt((edx2 + eps) / (eg2 + eps)) * grad
            np.add(edx2, eps, out=num)
            np.add(eg2, eps, out=den)
            np.divide(num, den, out=num)
            np.sqrt(num, out=num)
            np.negative(num, out=num)
            np.multiply(num, grad, out=dx)
            # edx2 = rho * edx2 + (1 - rho) * dx**2
            np.square(dx, out=sq)
            np.multiply(sq, one_m_rho, out=sq)
            np.multiply(edx2, rho, out=edx2)
            np.add(edx2, sq, out=edx2)
            np.add(x, dx, out=x)

        return best_x, best_e, evals
