"""Lock-step execution of many independent LGA runs.

AutoDock-GPU's coarse-level parallelism maps every individual of every LGA
run to its own thread block, so all runs advance together (Table 1).
:class:`ParallelLGA` reproduces that shape in NumPy: the gene tensor is
``(n_runs, pop, glen)`` and every scoring / gradient call is batched over
``n_runs * pop`` (or ``n_runs * n_ls``) individuals — which is also what
makes multi-run experiments (E50, Table 3) fast in Python.

Results are identical in distribution to running :class:`~repro.search.lga.LGARun`
``n_runs`` times with independent seeds; only the batching differs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.docking.genotype import random_genotypes
from repro.docking.gradients import GradientCalculator
from repro.docking.scoring import ScoringFunction
from repro.obs import get_metrics, get_tracer
from repro.reduction.api import ReductionBackend
from repro.search.adadelta import AdadeltaConfig, AdadeltaLocalSearch
from repro.search.ga import GeneticAlgorithm, next_generation_batched
from repro.search.lga import LGAConfig, LGAResult
from repro.search.solis_wets import SolisWetsConfig, SolisWetsLocalSearch

__all__ = ["ParallelLGA", "SW_STREAM_KEY", "as_seed_sequence"]

#: reserved spawn-key component of the Solis-Wets sampler stream.  Run
#: streams are children ``(0,), (1,), ...`` of the master sequence; keying
#: the SW stream at ``2**31`` keeps it disjoint from any realistic run
#: count, and extending the *given* sequence's spawn_key keeps sibling
#: spawned sequences disjoint from each other (see the seeding contract in
#: :mod:`repro.core.config`).
SW_STREAM_KEY = 2 ** 31


def as_seed_sequence(seed: int | np.random.SeedSequence) \
        -> np.random.SeedSequence:
    """Normalise a plain-int or SeedSequence seed to a *fresh* sequence.

    A fresh (never-spawned-from) copy is returned even for SeedSequence
    inputs, so repeated calls spawn identical children — callers stay
    deterministic without sharing spawn state.
    """
    if isinstance(seed, np.random.SeedSequence):
        return np.random.SeedSequence(entropy=seed.entropy,
                                      spawn_key=seed.spawn_key)
    return np.random.SeedSequence(seed)


class ParallelLGA:
    """Run ``n_runs`` independent LGA searches in lock step (ADADELTA or
    Solis-Wets local search; AutoStop needs per-run control and is routed
    to :class:`~repro.search.lga.LGARun` by the engine).

    Parameters
    ----------
    scoring:
        Scoring function of the ligand-receptor pair.
    backend:
        Reduction back-end for the ADADELTA gradient kernel.
    config:
        Per-run budgets/operators (shared by all runs; only seeds differ).
    seed:
        Master seed; per-run generators are spawned from it.
    """

    def __init__(self, scoring: ScoringFunction,
                 backend: str | ReductionBackend = "baseline",
                 config: LGAConfig | None = None,
                 seed: int | np.random.SeedSequence = 0) -> None:
        self.scoring = scoring
        self.config = config or LGAConfig()
        if self.config.autostop:
            raise ValueError("AutoStop requires per-run termination; use "
                             "LGARun (DockingEngine routes there "
                             "automatically)")
        self.seed = seed
        if self.config.ls_method == "ad":
            gradient = GradientCalculator(scoring, backend)
            ad_cfg = self.config.adadelta or AdadeltaConfig(
                max_iters=self.config.ls_iters)
            self.local_search = AdadeltaLocalSearch(gradient, ad_cfg)
        else:
            sw_cfg = self.config.solis_wets or SolisWetsConfig(
                max_iters=self.config.ls_iters)
            base = as_seed_sequence(seed)
            # reserved stream: disjoint from the run streams (children
            # (i,)) and, because the base spawn_key is extended rather
            # than discarded, from every sibling spawned sequence
            sw_seq = np.random.SeedSequence(
                entropy=base.entropy,
                spawn_key=(*base.spawn_key, SW_STREAM_KEY))
            self.local_search = SolisWetsLocalSearch(
                scoring, sw_cfg,
                np.random.Generator(np.random.PCG64(sw_seq)))

    def run(self, n_runs: int, on_generation=None) -> list[LGAResult]:
        """Execute ``n_runs`` lock-step LGA runs; one result per run.

        ``on_generation(generations, evals)`` is invoked after every
        generation; a watchdog (:class:`repro.robustness.Watchdog`) may
        raise from it to abort a runaway cell cleanly.
        """
        cfg = self.config
        sf = self.scoring
        maps = sf.maps
        sseq = as_seed_sequence(self.seed)
        rngs = [np.random.Generator(np.random.PCG64(s))
                for s in sseq.spawn(n_runs)]
        gas = [GeneticAlgorithm(cfg.ga, rng) for rng in rngs]

        pop, R = cfg.pop_size, n_runs
        genes = np.stack([
            random_genotypes(rngs[r], pop, sf.ligand, maps.box_lo, maps.box_hi)
            for r in range(R)])                          # (R, pop, glen)
        glen = genes.shape[-1]

        best_score = np.full(R, np.inf)
        best_genotype = genes[:, 0, :].copy()
        histories: list[list[tuple[int, float, np.ndarray]]] = [
            [] for _ in range(R)]
        # eval ledger is per run: local-search budgets need not divide
        # evenly across runs (Solis-Wets adaptive termination), and the
        # E50 denominator must not silently drop the remainder
        evals_run = np.zeros(R, dtype=np.int64)
        gens = 0

        def track(scores: np.ndarray) -> None:
            idx = np.argmin(scores, axis=1)
            vals = scores[np.arange(R), idx]
            improved = vals < best_score
            for r in np.nonzero(improved)[0]:
                best_score[r] = vals[r]
                best_genotype[r] = genes[r, idx[r]].copy()
                histories[r].append((int(evals_run[r]), float(vals[r]),
                                     best_genotype[r].copy()))

        n_ls = int(round(cfg.ls_rate * pop))
        subsets = np.empty((R, n_ls), dtype=np.int64)
        run_rows = np.arange(R)[:, None]
        metrics = get_metrics()
        tracer = get_tracer()
        scored_final = False
        span = tracer.span("lga.run", n_runs=R, pop_size=pop,
                           ls_method=cfg.ls_method)
        with span:
            while (int(evals_run.max()) < cfg.max_evals
                   and gens < cfg.max_gens):
                t0 = time.perf_counter()
                scores = sf.score(
                    genes.reshape(R * pop, glen)).reshape(R, pop)
                metrics.histogram("lga.stage.score_s").observe(
                    time.perf_counter() - t0)
                evals_run += pop
                track(scores)
                if int(evals_run.max()) >= cfg.max_evals:
                    # genes are unchanged since this scoring pass, so the
                    # pre-loop-exit score IS the final score: re-scoring
                    # below would waste a population pass and inflate
                    # evals_used by pop
                    scored_final = True
                    break

                t0 = time.perf_counter()
                with tracer.span("lga.ga_generation", generation=gens):
                    genes = next_generation_batched(gas, genes, scores)
                metrics.histogram("lga.stage.ga_s").observe(
                    time.perf_counter() - t0)

                if n_ls > 0:
                    t0 = time.perf_counter()
                    for r in range(R):      # per-run draws: seed contract
                        subsets[r] = rngs[r].choice(pop, size=n_ls,
                                                    replace=False)
                    selected = genes[run_rows, subsets]
                    refined, _, ls_evals = self.local_search.minimize(
                        selected.reshape(R * n_ls, glen))
                    genes[run_rows, subsets] = refined.reshape(
                        R, n_ls, glen)
                    # distribute the LS budget across runs without
                    # truncation: base share everywhere, remainder to the
                    # lowest run indices (deterministic)
                    base, rem = divmod(int(ls_evals), R)
                    evals_run += base
                    if rem:
                        evals_run[:rem] += 1
                    metrics.histogram("lga.stage.ls_s").observe(
                        time.perf_counter() - t0)
                gens += 1
                metrics.counter("lga.generations").inc()
                if on_generation is not None:
                    on_generation(gens, int(evals_run.max()))

            if not scored_final:
                t0 = time.perf_counter()
                scores = sf.score(
                    genes.reshape(R * pop, glen)).reshape(R, pop)
                metrics.histogram("lga.stage.score_s").observe(
                    time.perf_counter() - t0)
                evals_run += pop
                track(scores)
            span.set(generations=gens,
                     evals_per_run=int(evals_run.max()))

        return [LGAResult(best_genotype=best_genotype[r],
                          best_score=float(best_score[r]),
                          evals_used=int(evals_run[r]),
                          generations=gens,
                          history=histories[r])
                for r in range(R)]
