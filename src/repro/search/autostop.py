"""AutoStop and eval-budget heuristics (AutoDock-GPU extension features).

The paper's artifact runs with ``-A 0 -H 0`` (both disabled) for stable
runtime measurements, but AutoDock-GPU ships both and they materially
change production behaviour, so the reproduction implements them:

* **AutoStop** (Solis-Vasquez et al., 2022): terminate an LGA run early
  once the population's score distribution has converged — the rolling
  standard deviation of the population-best trajectory drops below a
  tolerance over a test window.
* **Heuristics** (``-H``): choose the evaluation budget from the ligand's
  torsion count, ``E = min(E_max, a * exp(b * N_rot))`` — harder ligands
  get more evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AutoStop", "heuristic_max_evals"]


@dataclass
class AutoStop:
    """Convergence-based early termination of an LGA run.

    Parameters
    ----------
    window:
        Number of most recent generations tested.
    tolerance:
        Stop once the standard deviation of the window's population-best
        scores falls below this many kcal/mol.
    min_generations:
        Never stop before this many generations.
    """

    window: int = 10
    tolerance: float = 0.15
    min_generations: int = 15

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self._history: list[float] = []

    def observe(self, population_best: float) -> bool:
        """Record one generation's best score; True means 'stop now'."""
        self._history.append(float(population_best))
        if len(self._history) < max(self.window, self.min_generations):
            return False
        recent = np.asarray(self._history[-self.window:])
        return float(recent.std()) < self.tolerance

    def reset(self) -> None:
        self._history.clear()

    @property
    def generations_observed(self) -> int:
        return len(self._history)


#: heuristics constants fitted to AutoDock-GPU's -H behaviour: small rigid
#: ligands need ~1e5 evals, 32-torsion ligands saturate the 2.5M cap
_HEUR_A = 100_000.0
_HEUR_B = 0.10


def heuristic_max_evals(n_rot: int, cap: int = 2_500_000,
                        scale: float = 1.0) -> int:
    """Evaluation budget from the torsion count (the ``-H`` heuristics).

    ``scale`` shrinks the budget proportionally for scaled-down
    reproduction runs while preserving the shape over ``N_rot``.
    """
    if n_rot < 0:
        raise ValueError("n_rot must be non-negative")
    budget = _HEUR_A * float(np.exp(_HEUR_B * n_rot))
    return int(min(cap, budget) * scale)
