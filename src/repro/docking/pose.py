"""Pose calculation: genotype -> atom coordinates (Algorithm 2/4, step 1).

Reproduces AutoDock-GPU's PoseCalculation: torsion rotations are applied in
root-to-leaf tree order on the reference conformation (axis endpoints taken
at their *current* positions, so parent torsions correctly transport child
axes), followed by the rigid-body rotation about the ligand centre and the
translation into the grid frame.

Fully batched over a population: ``genotypes`` is ``(pop, glen)`` and the
result is ``(pop, n_atoms, 3)``.
"""

from __future__ import annotations

import numpy as np

from repro.docking.genotype import N_RIGID_GENES
from repro.docking.ligand import Ligand
from repro.docking.quaternion import quat_from_rotvec, quat_rotate

__all__ = ["calc_coords"]


def calc_coords(ligand: Ligand, genotypes: np.ndarray) -> np.ndarray:
    """Transform genotypes into atomic coordinates.

    Parameters
    ----------
    ligand:
        The ligand whose reference conformation and torsion tree apply.
    genotypes:
        ``(pop, 6 + n_rot)`` gene matrix (or a single ``(6 + n_rot,)``
        vector, which is promoted).

    Returns
    -------
    ``(pop, n_atoms, 3)`` float64 coordinates in the grid frame.
    """
    genotypes = np.asarray(genotypes, dtype=np.float64)
    squeeze = genotypes.ndim == 1
    if squeeze:
        genotypes = genotypes[None, :]
    expected = N_RIGID_GENES + ligand.n_rot
    if genotypes.shape[1] != expected:
        raise ValueError(
            f"genotype length {genotypes.shape[1]} != expected {expected} "
            f"for ligand with {ligand.n_rot} torsions")

    pop = genotypes.shape[0]
    # component-major layout (n_atoms, 3, pop) through the torsion loop:
    # the per-torsion moved-subtree gather/scatter runs on axis 0 (fancy
    # indexing copies contiguous (3, pop) rows) and every component slice
    # ``coords[i, c]`` is a dense row, so the cross/dot arithmetic runs
    # at contiguous-ufunc speed; values are the same elementwise
    # arithmetic as the pose-major layout, just transposed
    coords = np.broadcast_to(ligand.ref_coords[:, :, None],
                             (ligand.n_atoms, 3, pop)).copy()

    # per-ligand cache of the torsion index arrays: converting the Python
    # ``moved`` tuples runs once instead of once per torsion per call
    torsions = ligand.__dict__.get("_pose_torsion_cache")
    if torsions is None:
        torsions = [(t.atom_a, t.atom_b,
                     np.asarray(t.moved, dtype=np.int64))
                    for t in ligand.torsions]
        ligand.__dict__["_pose_torsion_cache"] = torsions

    # 1. torsions, root -> leaf (the rotation arithmetic is the inlined
    #    equivalent of quaternion.axis_angle_rotate, with all torsion
    #    angles' trig evaluated in one call up front; the three-term dot
    #    products keep np.sum's left-to-right order, so the bits match)
    if torsions:
        angles = genotypes[:, N_RIGID_GENES:]
        cos_all = np.cos(angles)
        sin_all = np.sin(angles)
    for k, (atom_a, atom_b, moved) in enumerate(torsions):
        b = coords[atom_b]                   # (3, pop) views
        axis = b - coords[atom_a]
        ax0, ax1, ax2 = axis
        norm = np.sqrt((ax0 * ax0 + ax1 * ax1) + ax2 * ax2)
        axis = axis / np.maximum(norm, 1e-12)
        ax0, ax1, ax2 = axis
        rel = coords[moved] - b              # (n_moved, 3, pop)
        r0, r1, r2 = rel[:, 0], rel[:, 1], rel[:, 2]
        k_cross = np.empty_like(rel)
        np.subtract(ax1 * r2, ax2 * r1, out=k_cross[:, 0])
        np.subtract(ax2 * r0, ax0 * r2, out=k_cross[:, 1])
        np.subtract(ax0 * r1, ax1 * r0, out=k_cross[:, 2])
        k_dot = (ax0 * r0 + ax1 * r1) + ax2 * r2
        cos_t = cos_all[:, k]
        # rel*cos + k_cross*sin + (axis*k_dot)*(1-cos) + b, in place over
        # the rel/k_cross buffers (dead after this point)
        np.multiply(rel, cos_t, out=rel)
        np.multiply(k_cross, sin_all[:, k], out=k_cross)
        np.add(rel, k_cross, out=rel)
        swing = axis * k_dot[:, None, :]
        np.multiply(swing, 1.0 - cos_t, out=swing)
        np.add(rel, swing, out=rel)
        np.add(rel, b, out=rel)
        coords[moved] = rel

    coords = np.ascontiguousarray(coords.transpose(2, 0, 1))

    # 2. rigid-body rotation about the ligand's "about" point — the torsion
    #    tree root (atom 0), which no torsion moves.  Using a torsion-
    #    invariant pivot keeps the gene blocks decoupled, as AutoDock's
    #    fixed about-point does.
    pivot = coords[:, 0:1, :]
    quat = quat_from_rotvec(genotypes[:, 3:6])
    coords = quat_rotate(quat, coords - pivot)

    # 3. translation: the translation genes are the root-atom position
    coords = coords + genotypes[:, None, 0:3]

    return coords[0] if squeeze else coords
