"""Pose calculation: genotype -> atom coordinates (Algorithm 2/4, step 1).

Reproduces AutoDock-GPU's PoseCalculation: torsion rotations are applied in
root-to-leaf tree order on the reference conformation (axis endpoints taken
at their *current* positions, so parent torsions correctly transport child
axes), followed by the rigid-body rotation about the ligand centre and the
translation into the grid frame.

Fully batched over a population: ``genotypes`` is ``(pop, glen)`` and the
result is ``(pop, n_atoms, 3)``.
"""

from __future__ import annotations

import numpy as np

from repro.docking.genotype import N_RIGID_GENES
from repro.docking.ligand import Ligand
from repro.docking.quaternion import axis_angle_rotate, quat_from_rotvec, quat_rotate

__all__ = ["calc_coords"]


def calc_coords(ligand: Ligand, genotypes: np.ndarray) -> np.ndarray:
    """Transform genotypes into atomic coordinates.

    Parameters
    ----------
    ligand:
        The ligand whose reference conformation and torsion tree apply.
    genotypes:
        ``(pop, 6 + n_rot)`` gene matrix (or a single ``(6 + n_rot,)``
        vector, which is promoted).

    Returns
    -------
    ``(pop, n_atoms, 3)`` float64 coordinates in the grid frame.
    """
    genotypes = np.asarray(genotypes, dtype=np.float64)
    squeeze = genotypes.ndim == 1
    if squeeze:
        genotypes = genotypes[None, :]
    expected = N_RIGID_GENES + ligand.n_rot
    if genotypes.shape[1] != expected:
        raise ValueError(
            f"genotype length {genotypes.shape[1]} != expected {expected} "
            f"for ligand with {ligand.n_rot} torsions")

    pop = genotypes.shape[0]
    coords = np.broadcast_to(ligand.ref_coords,
                             (pop,) + ligand.ref_coords.shape).copy()

    # 1. torsions, root -> leaf
    for k, tors in enumerate(ligand.torsions):
        angle = genotypes[:, N_RIGID_GENES + k]
        a = coords[:, tors.atom_a, :]
        b = coords[:, tors.atom_b, :]
        axis = b - a
        norm = np.linalg.norm(axis, axis=-1, keepdims=True)
        axis = axis / np.maximum(norm, 1e-12)
        moved = np.asarray(tors.moved, dtype=np.int64)
        coords[:, moved, :] = axis_angle_rotate(
            coords[:, moved, :], origin=b, axis=axis, angle=angle)

    # 2. rigid-body rotation about the ligand's "about" point — the torsion
    #    tree root (atom 0), which no torsion moves.  Using a torsion-
    #    invariant pivot keeps the gene blocks decoupled, as AutoDock's
    #    fixed about-point does.
    pivot = coords[:, 0:1, :]
    quat = quat_from_rotvec(genotypes[:, 3:6])
    coords = quat_rotate(quat, coords - pivot)

    # 3. translation: the translation genes are the root-atom position
    coords = coords + genotypes[:, None, 0:3]

    return coords[0] if squeeze else coords
