"""AutoDock4 force-field parameters (Morris et al., 1998; AD4.1 tables).

Per-type Lennard-Jones radii/depths, atomic solvation volumes and
parameters, and hydrogen-bonding capability, together with the calibrated
free-energy term weights.  Values are the standard ``AD4.1_bound.dat``
constants for the common organic atom types.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AtomParams", "ATOM_PARAMS", "get_atom_params", "FE_WEIGHTS",
           "HBOND_NONE", "HBOND_DONOR", "HBOND_ACCEPTOR"]

#: hydrogen-bond roles
HBOND_NONE = 0
HBOND_DONOR = 1      # donor hydrogen (HD)
HBOND_ACCEPTOR = 2   # acceptor heavy atom (OA, NA, SA)


@dataclass(frozen=True)
class AtomParams:
    """AD4 per-atom-type parameters.

    ``rii``     sum of vdW radii of two like atoms [Å]
    ``epsii``   vdW well depth [kcal/mol]
    ``vol``     atomic solvation volume [Å^3]
    ``solpar``  atomic solvation parameter
    ``rii_hb``  H-bond radius of the heteroatom in contact with a hydrogen
    ``epsii_hb``  H-bond well depth
    ``hbond``   H-bond role (:data:`HBOND_NONE` / ``DONOR`` / ``ACCEPTOR``)
    """

    type_name: str
    rii: float
    epsii: float
    vol: float
    solpar: float
    rii_hb: float
    epsii_hb: float
    hbond: int


#: AD4.1 parameter table (subset covering the evaluation ligands).
ATOM_PARAMS: dict[str, AtomParams] = {
    p.type_name: p
    for p in (
        AtomParams("C",  4.00, 0.150, 33.5103, -0.00143, 0.0, 0.0, HBOND_NONE),
        AtomParams("A",  4.00, 0.150, 33.5103, -0.00052, 0.0, 0.0, HBOND_NONE),
        AtomParams("N",  3.50, 0.160, 22.4493, -0.00162, 0.0, 0.0, HBOND_NONE),
        AtomParams("NA", 3.50, 0.160, 22.4493, -0.00162, 1.9, 5.0, HBOND_ACCEPTOR),
        AtomParams("OA", 3.20, 0.200, 17.1573, -0.00251, 1.9, 5.0, HBOND_ACCEPTOR),
        AtomParams("SA", 4.00, 0.200, 33.5103, -0.00214, 2.5, 1.0, HBOND_ACCEPTOR),
        AtomParams("S",  4.00, 0.200, 33.5103, -0.00214, 0.0, 0.0, HBOND_NONE),
        AtomParams("H",  2.00, 0.020,  0.0000,  0.00051, 0.0, 0.0, HBOND_NONE),
        AtomParams("HD", 2.00, 0.020,  0.0000,  0.00051, 0.0, 0.0, HBOND_DONOR),
        AtomParams("F",  3.09, 0.080, 15.4480, -0.00110, 0.0, 0.0, HBOND_NONE),
        AtomParams("Cl", 4.09, 0.276, 35.8235, -0.00110, 0.0, 0.0, HBOND_NONE),
        AtomParams("Br", 4.33, 0.389, 42.5661, -0.00110, 0.0, 0.0, HBOND_NONE),
        AtomParams("I",  4.72, 0.550, 55.0585, -0.00110, 0.0, 0.0, HBOND_NONE),
        AtomParams("P",  4.20, 0.200, 38.7924, -0.00110, 0.0, 0.0, HBOND_NONE),
    )
}

#: AD4.1 calibrated free-energy coefficient weights.
FE_WEIGHTS = {
    "vdw": 0.1662,
    "hbond": 0.1209,
    "elec": 0.1406,
    "desolv": 0.1322,
    "tors": 0.2983,   # per-rotatable-bond torsional entropy penalty
}


def get_atom_params(type_name: str) -> AtomParams:
    """Look up AD4 parameters for an atom type (case-sensitive, AD naming)."""
    try:
        return ATOM_PARAMS[type_name]
    except KeyError:
        raise ValueError(
            f"unknown atom type {type_name!r}; known: {sorted(ATOM_PARAMS)}"
        ) from None
