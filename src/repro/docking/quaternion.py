"""Batched quaternion / SO(3) utilities for pose kinematics.

Quaternions are ``(..., 4)`` arrays in ``(w, x, y, z)`` order.  The
orientation genes of a genotype are a rotation vector (axis * angle); the
exponential map and its left Jacobian connect gene space to world torques,
which is how ``Grigidrot`` (Algorithm 4) converts the reduced torque into
orientation-gene gradients.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cross3",
    "quat_from_rotvec",
    "quat_multiply",
    "quat_rotate",
    "rotvec_to_matrix",
    "axis_angle_rotate",
    "so3_left_jacobian",
]

_EPS = 1e-12


def cross3(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cross product over the last axis, hand-rolled.

    ``np.cross`` spends most of its time in axis normalisation for the
    small arrays pose calculation feeds it; writing the three components
    directly is several times faster (hot path — see module profile).
    """
    a1, a2, a3 = a[..., 0], a[..., 1], a[..., 2]
    b1, b2, b3 = b[..., 0], b[..., 1], b[..., 2]
    shape = np.broadcast_shapes(a.shape, b.shape)
    out = np.empty(shape, dtype=np.result_type(a, b))
    out[..., 0] = a2 * b3 - a3 * b2
    out[..., 1] = a3 * b1 - a1 * b3
    out[..., 2] = a1 * b2 - a2 * b1
    return out


def quat_from_rotvec(rotvec: np.ndarray) -> np.ndarray:
    """Exponential map: rotation vector ``(..., 3)`` -> unit quaternion."""
    rotvec = np.asarray(rotvec, dtype=np.float64)
    angle = np.linalg.norm(rotvec, axis=-1, keepdims=True)
    half = 0.5 * angle
    # sin(x)/x, stable at zero
    k = np.where(angle > _EPS, np.sin(half) / np.maximum(angle, _EPS), 0.5)
    q = np.concatenate([np.cos(half), rotvec * k], axis=-1)
    return q


def quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product ``q1 * q2`` over ``(..., 4)`` arrays."""
    q1 = np.asarray(q1, dtype=np.float64)
    q2 = np.asarray(q2, dtype=np.float64)
    w1, x1, y1, z1 = np.moveaxis(q1, -1, 0)
    w2, x2, y2, z2 = np.moveaxis(q2, -1, 0)
    return np.stack([
        w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
        w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
        w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
    ], axis=-1)


def quat_rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate vectors ``v (..., n, 3)`` by quaternions ``q (..., 4)``.

    Uses the expanded rotation formula (no matrix materialisation), with the
    quaternion broadcast over the vector axis.
    """
    q = np.asarray(q, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    w = q[..., None, 0:1]
    u = q[..., None, 1:4]
    # v' = v + 2w (u x v) + 2 u x (u x v)
    uv = cross3(u, v)
    return v + 2.0 * w * uv + 2.0 * cross3(u, uv)


def rotvec_to_matrix(rotvec: np.ndarray) -> np.ndarray:
    """Rodrigues formula: rotation vector ``(..., 3)`` -> matrix ``(..., 3, 3)``."""
    rotvec = np.asarray(rotvec, dtype=np.float64)
    theta = np.linalg.norm(rotvec, axis=-1)[..., None, None]
    k = _hat(rotvec)
    eye = np.broadcast_to(np.eye(3), k.shape)
    safe = np.maximum(theta, _EPS)
    s = np.where(theta > _EPS, np.sin(safe) / safe, 1.0)
    c = np.where(theta > _EPS, (1.0 - np.cos(safe)) / safe ** 2, 0.5)
    return eye + s * k + c * (k @ k)


def axis_angle_rotate(points: np.ndarray, origin: np.ndarray,
                      axis: np.ndarray, angle: np.ndarray) -> np.ndarray:
    """Rotate ``points (..., n, 3)`` by ``angle (...)`` around the line
    through ``origin (..., 3)`` with unit direction ``axis (..., 3)``.

    The torsion-rotation primitive of pose calculation.
    """
    points = np.asarray(points, dtype=np.float64)
    origin = np.asarray(origin, dtype=np.float64)[..., None, :]
    axis = np.asarray(axis, dtype=np.float64)[..., None, :]
    angle = np.asarray(angle, dtype=np.float64)[..., None, None]
    rel = points - origin
    cos_t = np.cos(angle)
    sin_t = np.sin(angle)
    k_cross = cross3(axis, rel)
    k_dot = np.sum(axis * rel, axis=-1, keepdims=True)
    # rel*cos + k_cross*sin + (axis*k_dot)*(1-cos) + origin, written as
    # in-place ufunc calls over the rel/k_cross buffers (both are dead
    # after this point): same operations and grouping, no temporaries
    np.multiply(rel, cos_t, out=rel)
    np.multiply(k_cross, sin_t, out=k_cross)
    np.add(rel, k_cross, out=rel)
    swing = axis * k_dot
    np.multiply(swing, 1.0 - cos_t, out=swing)
    np.add(rel, swing, out=rel)
    np.add(rel, origin, out=rel)
    return rel


def _hat(v: np.ndarray) -> np.ndarray:
    """Skew-symmetric matrix of ``(..., 3)`` vectors."""
    v = np.asarray(v, dtype=np.float64)
    out = np.zeros(v.shape[:-1] + (3, 3), dtype=np.float64)
    out[..., 0, 1] = -v[..., 2]
    out[..., 0, 2] = v[..., 1]
    out[..., 1, 0] = v[..., 2]
    out[..., 1, 2] = -v[..., 0]
    out[..., 2, 0] = -v[..., 1]
    out[..., 2, 1] = v[..., 0]
    return out


def so3_left_jacobian(rotvec: np.ndarray) -> np.ndarray:
    """Left Jacobian ``J_l`` of the SO(3) exponential map, ``(..., 3, 3)``.

    Connects a perturbation of the rotation-vector genes to the resulting
    world-frame infinitesimal rotation: ``delta_world = J_l(w) @ delta_w``.
    The orientation-gene gradient is therefore ``J_l^T @ (dE/d delta_world)``,
    i.e. ``J_l^T`` applied to the reduced torque-like sum.
    """
    rotvec = np.asarray(rotvec, dtype=np.float64)
    theta = np.linalg.norm(rotvec, axis=-1)[..., None, None]
    k = _hat(rotvec)
    eye = np.broadcast_to(np.eye(3), k.shape)
    safe = np.maximum(theta, _EPS)
    a = np.where(theta > _EPS, (1.0 - np.cos(safe)) / safe ** 2, 0.5)
    b = np.where(theta > _EPS, (safe - np.sin(safe)) / safe ** 3, 1.0 / 6.0)
    return eye + a * k + b * (k @ k)
