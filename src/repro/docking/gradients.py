"""Gradient calculation (Algorithm 4) ending in the paper's seven reductions.

Per ADADELTA iteration the kernel computes per-atom gradient contributions
(InterGradient from the grid maps, IntraGradient from the pairwise terms)
and converts them from atomic into genetic space:

* ``Gtrans`` — the translation-gene gradient is the sum of all per-atom
  gradients, and the pose energy is the sum of all per-contribution
  energies: **four block reductions** executed as one ``reduce4`` over
  ``{gx, gy, gz, e}`` vectors;
* ``Grigidrot`` — the orientation-gene gradient needs the torque-like sum
  ``sum (r_i - c) x g_i``: **three more block reductions**, the second
  ``reduce4`` (fourth lane unused);
* ``Grotbond`` — per-rotatable-bond gradients are data-dependent short sums
  and stay on SIMT cores in every configuration, as in the paper.

Those 4 + 3 = seven reductions are exactly what the paper offloads to
Tensor Cores; swapping the :class:`~repro.reduction.api.ReductionBackend`
here is the *entire* numerical difference between the baseline, the
Schieffer-Peng FP16 version, and TCEC.

Implementation note: pair-to-atom scatter and per-torsion sums are
expressed as precomputed incidence-matrix products so the whole population
is processed in a few BLAS calls (see the hpc-parallel guide: vectorise,
avoid ``np.add.at``-style scatter in hot loops).
"""

from __future__ import annotations

import time

import numpy as np

from repro.docking.energy import GRADCLAMP, intra_contributions
from repro.docking.pose import calc_coords
from repro.docking.quaternion import cross3, so3_left_jacobian
from repro.docking.scoring import ScoringFunction
from repro.obs import get_metrics
from repro.reduction.api import ReductionBackend, get_reduction_backend
from repro.reduction.simt_backend import simt_tree_reduce

__all__ = ["GradientCalculator", "GENE_GRADIENT_CLAMP"]

#: per-gene gradient bound applied after the atomic->genetic conversion
#: (the CUDA kernels bound per-gene deltas the same way; without it, clash
#: cliffs poison ADADELTA's RMS memory for dozens of iterations)
GENE_GRADIENT_CLAMP = 100.0


class GradientCalculator:
    """Computes pose energies and genotype-space gradients for a population.

    Parameters
    ----------
    scoring:
        The bound scoring function (supplies ligand, maps, pair tables).
    backend:
        Reduction back-end name or instance (``"baseline"`` / ``"tc-fp16"``
        / ``"tcec-tf32"`` / ``"exact"``).
    """

    def __init__(self, scoring: ScoringFunction,
                 backend: str | ReductionBackend = "baseline") -> None:
        self.scoring = scoring
        self.backend = get_reduction_backend(backend)
        lig = scoring.ligand
        t = scoring.pair_tables
        n, n_pairs = lig.n_atoms, t.n_pairs

        # pair -> atom incidence matrices (dense; ligands are small)
        scat_g = np.zeros((n, n_pairs))
        scat_e = np.zeros((n, n_pairs))
        scat_g[t.i, np.arange(n_pairs)] = 1.0
        scat_g[t.j, np.arange(n_pairs)] -= 1.0
        scat_e[t.i, np.arange(n_pairs)] = 0.5
        scat_e[t.j, np.arange(n_pairs)] += 0.5
        self._scatter_grad = scat_g
        self._scatter_energy = scat_e

        # torsion masks: moved[k, i] = 1 if torsion k moves atom i
        n_rot = lig.n_rot
        moved = np.zeros((n_rot, n))
        for k, tors in enumerate(lig.torsions):
            moved[k, list(tors.moved)] = 1.0
        self._moved_mask = moved
        # sparse (torsion, atom) rotation-list pairs: Grotbond arithmetic
        # only runs on the ~n_rotlist moved entries instead of the dense
        # n_rot * n_atoms grid the mask would zero out anyway
        self._pair_k, self._pair_i = np.nonzero(moved)
        self._axis_a = np.array([tb.atom_a for tb in lig.torsions], dtype=np.int64)
        self._axis_b = np.array([tb.atom_b for tb in lig.torsions], dtype=np.int64)
        # fixed 2-operand contraction path for the pair->atom scatter; the
        # contraction itself is unchanged, only the per-call path search goes
        self._scatter_path = ["einsum_path", (0, 1)]

    # ------------------------------------------------------------------

    def atom_gradients(self, coords: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Per-atom energy and gradient contributions in atomic space.

        Returns ``(e_atoms, g_atoms)`` with shapes ``(pop, n)`` and
        ``(pop, n, 3)``; ``g_atoms[i] = dE/dr_i``.  The reductions over
        these arrays produce the kernel's seven block-level sums.
        """
        sf = self.scoring
        e_inter, g_inter = sf.maps.interatom_energy(
            coords, sf.type_idx, sf.charges, sf.solpar, sf.vol,
            with_gradient=True)

        # reuse the pair geometry computed inside intra_contributions
        # instead of re-gathering the pair coordinates
        e_pairs, de_dr, delta, r_raw = intra_contributions(
            sf.pair_tables, coords, smooth=sf.smooth, with_geometry=True)
        r = np.maximum(r_raw, 1e-9)[..., None]
        pair_grad = de_dr[..., None] * delta / r     # dE/dr_i for atom i

        # scatter pair contributions onto atoms via incidence matmuls
        g_atoms = g_inter + np.einsum(
            "np,bpc->bnc", self._scatter_grad, pair_grad,
            optimize=self._scatter_path)
        e_atoms = e_inter + e_pairs @ self._scatter_energy.T

        # clash clamping mirrors the per-contribution clamp of the CUDA
        # kernels; per-atom values stay within GRADCLAMP but their sums may
        # exceed FP16 range inside the uncorrected Tensor Core reduction
        np.clip(g_atoms, -GRADCLAMP, GRADCLAMP, out=g_atoms)
        return e_atoms, g_atoms

    def __call__(self, genotypes: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Energies and genotype-space gradients.

        Parameters
        ----------
        genotypes:
            ``(pop, 6 + n_rot)`` gene matrix.

        Returns
        -------
        (energy, gradient):
            ``(pop,)`` pose energies (from the reduced ``e`` lane — the
            value ADADELTA uses to track its best pose, hence sensitive to
            the reduction back-end) and ``(pop, 6 + n_rot)`` gradients.
        """
        genotypes = np.atleast_2d(np.asarray(genotypes, dtype=np.float64))
        lig = self.scoring.ligand
        coords = calc_coords(lig, genotypes)
        e_atoms, g_atoms = self.atom_gradients(coords)

        pop = genotypes.shape[0]
        # ---- the two reduce4 issues — {gx, gy, gz, e} (Gtrans + energy)
        # and {tau_x, tau_y, tau_z, 0} (Grigidrot) — are stacked into one
        # batched back-end invocation over (2, pop, n, 4).  Batch slices
        # are reduced independently by every back-end, so each slice is
        # bit-identical to a separate reduce4 call, and the stride-
        # deterministic fault-injection schedule (which flattens blocks in
        # the same order) is unchanged.
        centre = genotypes[:, None, 0:3]             # pose pivot = t genes
        torque_like = cross3(coords - centre, g_atoms)
        vecs = np.empty((2,) + g_atoms.shape[:-1] + (4,), dtype=np.float32)
        vecs[0, ..., 0:3] = g_atoms
        vecs[0, ..., 3] = e_atoms
        vecs[1, ..., 0:3] = torque_like
        vecs[1, ..., 3] = 0.0
        t_red = time.perf_counter()
        red = self.backend.reduce4(vecs)             # (2, pop, 4)
        t_red = time.perf_counter() - t_red
        g_trans = red[0, :, 0:3].astype(np.float64)
        energy = red[0, :, 3].astype(np.float64) + self.scoring.torsional_penalty
        tau = red[1, :, 0:3].astype(np.float64)

        # the fused call still covers the seven reductions of the paper
        # (two logical reduce4 issues); it is timed per backend so real
        # Python span times can be compared against the simt cost model's
        # cycle ratios (see EXPERIMENTS.md)
        m = get_metrics()
        m.histogram(f"reduction.{self.backend.name}.reduce4_s").observe(t_red)
        m.counter(f"reduction.{self.backend.name}.calls").inc(2)
        m.counter("gradient.evals").inc(pop)

        # orientation genes are a rotation vector; map the world-frame
        # rotational derivative through the SO(3) left Jacobian transpose
        jl = so3_left_jacobian(genotypes[:, 3:6])    # (pop, 3, 3)
        g_orient = np.einsum("pij,pi->pj", jl, tau)

        # ---- Grotbond: per-torsion sums, SIMT in all configurations
        n_rot = lig.n_rot
        if n_rot:
            a_pos = coords[:, self._axis_a, :]       # (pop, n_rot, 3)
            b_pos = coords[:, self._axis_b, :]
            axis = b_pos - a_pos
            axis /= np.maximum(np.sqrt(
                np.sum(axis * axis, axis=-1, keepdims=True)), 1e-12)
            # per-(torsion, atom) contributions on the sparse moved pairs
            # only; scattering them into the dense zero matrix feeds the
            # tree reduction the same (pop, n_rot, n_atoms) operand the
            # masked dense product produced
            pk, pi = self._pair_k, self._pair_i
            arm = coords[:, pi, :] - b_pos[:, pk, :]     # (pop, P, 3)
            cr = cross3(axis[:, pk, :], arm)
            np.multiply(cr, g_atoms[:, pi, :], out=cr)
            vals = np.sum(cr, axis=-1)                   # (pop, P)
            contrib = np.zeros((pop, n_rot, lig.n_atoms), dtype=np.float32)
            contrib[:, pk, pi] = vals
            g_tors = simt_tree_reduce(
                contrib, axis=-1).astype(np.float64)
        else:
            g_tors = np.zeros((pop, 0))

        gradient = np.concatenate([g_trans, g_orient, g_tors], axis=1)
        # genotype-space trust region (see GENE_GRADIENT_CLAMP)
        np.clip(gradient, -GENE_GRADIENT_CLAMP, GENE_GRADIENT_CLAMP,
                out=gradient)
        return energy, gradient
