"""Root-mean-square deviation against the native (crystallographic) pose.

The paper's second success criterion: an LGA run succeeds when the predicted
pose lies within 2 Å RMSD of the experimentally determined native pose.
Heavy atoms only, no superposition (docking RMSD is computed in the receptor
frame), with an optional atom-identity mapping hook for symmetric ligands.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmsd", "heavy_atom_mask"]


def heavy_atom_mask(atom_types: list[str]) -> np.ndarray:
    """True for non-hydrogen atoms (AD types other than H / HD)."""
    return np.asarray([not t.startswith("H") for t in atom_types], dtype=bool)


def rmsd(coords: np.ndarray, native: np.ndarray,
         mask: np.ndarray | None = None) -> np.ndarray:
    """In-place (no superposition) RMSD in Å.

    Parameters
    ----------
    coords:
        Pose coordinates, ``(..., n_atoms, 3)`` — batched poses allowed.
    native:
        Native pose, ``(n_atoms, 3)``.
    mask:
        Optional boolean atom selector (e.g. heavy atoms only).

    Returns
    -------
    RMSD per pose, shape ``(...)``.
    """
    coords = np.asarray(coords, dtype=np.float64)
    native = np.asarray(native, dtype=np.float64)
    if native.ndim != 2 or native.shape[-1] != 3:
        raise ValueError(f"native must be (n_atoms, 3), got {native.shape}")
    if coords.shape[-2:] != native.shape:
        raise ValueError(
            f"coords {coords.shape} incompatible with native {native.shape}")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        coords = coords[..., mask, :]
        native = native[mask, :]
    if native.shape[0] == 0:
        raise ValueError("no atoms selected for RMSD")
    sq = np.sum((coords - native) ** 2, axis=(-2, -1)) / native.shape[0]
    return np.sqrt(sq)
