"""Ligand model: atoms, bonds, torsion tree, rotation list, intra pairs.

Mirrors the data AutoDock-GPU derives from a PDBQT ligand:

* a reference conformation (coordinates in the ligand frame, centred on the
  origin),
* the torsion tree — rotatable bonds in root-to-leaf order, each with the
  set of atoms its rotation moves,
* the *rotation list*: the flattened per-atom rotation operations whose
  length ``N_rot-list`` bounds the PoseCalculation loop of Algorithms 2/4,
* the intramolecular contributor pairs (``N_intra-contrib``): atom pairs at
  graph distance >= 3 bonds whose separation can change under some torsion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.docking.params import get_atom_params

__all__ = ["TorsionBond", "Ligand"]


@dataclass(frozen=True)
class TorsionBond:
    """One rotatable bond.

    ``atom_a`` / ``atom_b`` are the axis endpoints (``atom_a`` closer to the
    torsion-tree root); ``moved`` lists the atom indices of the subtree
    beyond ``atom_b`` that the torsion rotates.
    """

    atom_a: int
    atom_b: int
    moved: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.atom_a == self.atom_b:
            raise ValueError("torsion axis endpoints must differ")
        if not self.moved:
            raise ValueError("torsion must move at least one atom")
        if self.atom_a in self.moved or self.atom_b in self.moved:
            raise ValueError("axis atoms cannot be in the moved set")


@dataclass
class Ligand:
    """A docking ligand.

    Parameters
    ----------
    name:
        Identifier (e.g. a PDB code).
    atom_types:
        AD4 atom type per atom (see :mod:`repro.docking.params`).
    ref_coords:
        Reference conformation, shape ``(n_atoms, 3)``; centred on
        construction.
    charges:
        Gasteiger partial charges, shape ``(n_atoms,)``.
    bonds:
        Covalent bonds as ``(i, j)`` index pairs.
    torsions:
        Rotatable bonds in root-to-leaf application order.
    """

    name: str
    atom_types: list[str]
    ref_coords: np.ndarray
    charges: np.ndarray
    bonds: list[tuple[int, int]]
    torsions: list[TorsionBond] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.ref_coords = np.asarray(self.ref_coords, dtype=np.float64)
        self.charges = np.asarray(self.charges, dtype=np.float64)
        n = self.ref_coords.shape[0]
        if self.ref_coords.shape != (n, 3):
            raise ValueError(f"ref_coords must be (n, 3), got {self.ref_coords.shape}")
        if len(self.atom_types) != n or self.charges.shape != (n,):
            raise ValueError("atom_types / charges length mismatch with coords")
        for t in self.atom_types:
            get_atom_params(t)  # validates
        for i, j in self.bonds:
            if not (0 <= i < n and 0 <= j < n) or i == j:
                raise ValueError(f"invalid bond ({i}, {j})")
        for tb in self.torsions:
            if not all(0 <= m < n for m in (tb.atom_a, tb.atom_b, *tb.moved)):
                raise ValueError("torsion references atom out of range")
        # centre the reference conformation on the origin
        self.ref_coords = self.ref_coords - self.ref_coords.mean(axis=0)
        self._intra_pairs: np.ndarray | None = None

    # ------------------------------------------------------------------
    # sizes (the paper's loop bounds)

    @property
    def n_atoms(self) -> int:
        return self.ref_coords.shape[0]

    @property
    def n_rot(self) -> int:
        """Number of rotatable bonds (``N_rot``; AutoDock-GPU caps at 57)."""
        return len(self.torsions)

    @property
    def n_rotlist(self) -> int:
        """Length of the rotation list bounding PoseCalculation: one
        rigid-body op per atom plus one op per (torsion, moved atom)."""
        return self.n_atoms + sum(len(t.moved) for t in self.torsions)

    @property
    def n_intra(self) -> int:
        """Number of intramolecular contributor pairs."""
        return self.intra_pairs().shape[0]

    # ------------------------------------------------------------------
    # derived structure

    def graph_distances(self) -> np.ndarray:
        """All-pairs bond-graph distances (BFS; unreachable -> large)."""
        n = self.n_atoms
        adj: list[list[int]] = [[] for _ in range(n)]
        for i, j in self.bonds:
            adj[i].append(j)
            adj[j].append(i)
        big = n + 10
        dist = np.full((n, n), big, dtype=np.int64)
        for s in range(n):
            dist[s, s] = 0
            frontier = [s]
            d = 0
            while frontier:
                d += 1
                nxt = []
                for u in frontier:
                    for v in adj[u]:
                        if dist[s, v] > d:
                            dist[s, v] = d
                            nxt.append(v)
                frontier = nxt
        return dist

    def torsion_signature(self) -> list[frozenset[int]]:
        """Per atom, the set of torsions that move it; two atoms with the
        same signature are rigidly connected."""
        sigs = [set() for _ in range(self.n_atoms)]
        for k, t in enumerate(self.torsions):
            for m in t.moved:
                sigs[m].add(k)
        return [frozenset(s) for s in sigs]

    def intra_pairs(self) -> np.ndarray:
        """Intramolecular contributor pairs, shape ``(n_intra, 2)``.

        Pairs separated by at least four bonds whose relative position
        changes under some torsion contribute (pairs inside one rigid group
        are constant and skipped; 1-2/1-3/1-4 neighbours are excluded, the
        stricter of AutoDock's weed-bonds conventions).
        """
        if self._intra_pairs is None:
            dist = self.graph_distances()
            sigs = self.torsion_signature()
            pairs = [
                (i, j)
                for i in range(self.n_atoms)
                for j in range(i + 1, self.n_atoms)
                if dist[i, j] >= 4 and sigs[i] != sigs[j]
            ]
            self._intra_pairs = (
                np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
            )
        return self._intra_pairs

    def type_indices(self, type_order: list[str] | None = None
                     ) -> tuple[list[str], np.ndarray]:
        """Distinct atom types (grid-map order) and per-atom type index."""
        if type_order is None:
            type_order = sorted(set(self.atom_types))
        index = {t: k for k, t in enumerate(type_order)}
        return type_order, np.asarray([index[t] for t in self.atom_types],
                                      dtype=np.int64)

    def params_arrays(self) -> dict[str, np.ndarray]:
        """Per-atom AD4 parameter columns as float64 arrays."""
        ps = [get_atom_params(t) for t in self.atom_types]
        return {
            "rii": np.array([p.rii for p in ps]),
            "epsii": np.array([p.epsii for p in ps]),
            "vol": np.array([p.vol for p in ps]),
            "solpar": np.array([p.solpar for p in ps]),
            "rii_hb": np.array([p.rii_hb for p in ps]),
            "epsii_hb": np.array([p.epsii_hb for p in ps]),
            "hbond": np.array([p.hbond for p in ps]),
        }

    def __repr__(self) -> str:
        return (f"Ligand({self.name!r}, n_atoms={self.n_atoms}, "
                f"n_rot={self.n_rot}, n_intra={self.n_intra})")
