"""Genotype layout and initialisation.

A genotype encodes one ligand pose (an *individual* of the LGA population):

====================  =========================================
genes ``[0:3]``       translation of the ligand centre [Å, grid frame]
genes ``[3:6]``       orientation as a rotation vector (axis * angle)
genes ``[6:6+N_rot]`` torsion angles [rad], one per rotatable bond
====================  =========================================

Populations are plain ``(pop_size, genotype_length)`` float64 arrays so the
genetic operators and ADADELTA updates stay fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.ligand import Ligand

__all__ = ["Genotype", "genotype_length", "random_genotypes"]

#: genes before the torsion block
N_RIGID_GENES = 6


def genotype_length(ligand: Ligand) -> int:
    """3 translation + 3 orientation + one gene per rotatable bond."""
    return N_RIGID_GENES + ligand.n_rot


@dataclass(frozen=True)
class Genotype:
    """A single named genotype (convenience wrapper over the gene vector)."""

    genes: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "genes",
                           np.asarray(self.genes, dtype=np.float64))
        if self.genes.ndim != 1 or self.genes.size < N_RIGID_GENES:
            raise ValueError("genotype needs at least 6 genes")

    @property
    def translation(self) -> np.ndarray:
        return self.genes[0:3]

    @property
    def orientation(self) -> np.ndarray:
        return self.genes[3:6]

    @property
    def torsions(self) -> np.ndarray:
        return self.genes[6:]


def random_genotypes(
    rng: np.random.Generator,
    n: int,
    ligand: Ligand,
    box_lo: np.ndarray,
    box_hi: np.ndarray,
    margin: float = 1.0,
) -> np.ndarray:
    """Draw ``n`` uniform random genotypes inside the docking box.

    Translation is uniform in the box shrunk by ``margin`` Å per side;
    orientation is a uniformly random axis with angle in ``[0, pi]``;
    torsions are uniform in ``[-pi, pi]``.
    """
    box_lo = np.asarray(box_lo, dtype=np.float64) + margin
    box_hi = np.asarray(box_hi, dtype=np.float64) - margin
    if np.any(box_hi <= box_lo):
        raise ValueError("docking box too small for the requested margin")
    glen = genotype_length(ligand)
    g = np.empty((n, glen), dtype=np.float64)
    g[:, 0:3] = rng.uniform(box_lo, box_hi, size=(n, 3))
    axis = rng.normal(size=(n, 3))
    axis /= np.linalg.norm(axis, axis=1, keepdims=True)
    angle = rng.uniform(0.0, np.pi, size=(n, 1))
    g[:, 3:6] = axis * angle
    if glen > N_RIGID_GENES:
        g[:, N_RIGID_GENES:] = rng.uniform(-np.pi, np.pi,
                                           size=(n, glen - N_RIGID_GENES))
    return g
