"""The scoring function (Algorithm 2): PoseCalculation + Inter + Intra.

Scores quantify interaction strength in kcal/mol.  The intermolecular part
is one grid-map interpolation per ligand atom; the intramolecular part is
the AD4 pairwise sum over contributor pairs; the constant torsional entropy
penalty (``w_tors * N_rot``) is added for reporting parity with AutoDock.

The final energy sum runs through the FP32 SIMT tree reduction in every
configuration — the paper offloads only the *gradient* kernel's reductions
to Tensor Cores, so the scoring kernel's single reduction stays on SIMT
cores (Section 3).
"""

from __future__ import annotations

import numpy as np

from repro.docking.energy import build_pair_tables, intra_contributions
from repro.docking.grids import GridMaps
from repro.docking.ligand import Ligand
from repro.docking.params import FE_WEIGHTS
from repro.docking.pose import calc_coords
from repro.reduction.simt_backend import simt_tree_reduce

__all__ = ["ScoringFunction"]

_QSOLPAR = 0.01097


class ScoringFunction:
    """Scoring function bound to one ligand-receptor (grid) pair.

    Parameters
    ----------
    ligand:
        The ligand to score.
    maps:
        Grid maps covering all of the ligand's atom types.
    smooth:
        Enable AutoDock's vdW potential smoothing (0.5 Å flat well bottom)
        for the intramolecular terms.
    """

    def __init__(self, ligand: Ligand, maps: GridMaps,
                 smooth: bool = False) -> None:
        self.ligand = ligand
        self.maps = maps
        #: AutoDock potential smoothing for the intramolecular terms
        self.smooth = smooth
        self.type_idx = maps.type_index(ligand.atom_types)
        self.pair_tables = build_pair_tables(ligand)
        cols = ligand.params_arrays()
        self.charges = np.asarray(ligand.charges, dtype=np.float64)
        #: per-atom desolvation weights used against the two receptor maps
        self.solpar = cols["solpar"] + _QSOLPAR * np.abs(self.charges)
        self.vol = cols["vol"]
        #: constant torsional entropy penalty
        self.torsional_penalty = FE_WEIGHTS["tors"] * ligand.n_rot

    # ------------------------------------------------------------------

    def per_contribution_energies(self, coords: np.ndarray
                                  ) -> tuple[np.ndarray, np.ndarray]:
        """Per-atom intermolecular and per-pair intramolecular energies.

        ``coords`` is ``(pop, n_atoms, 3)``; returns ``(pop, n_atoms)`` and
        ``(pop, n_intra)`` float64 arrays (the kernel's contribution lists
        before any reduction).
        """
        e_inter = self.maps.interatom_energy(
            coords, self.type_idx, self.charges, self.solpar, self.vol)
        e_intra, _ = intra_contributions(self.pair_tables, coords,
                                         smooth=self.smooth)
        return e_inter, e_intra

    def score_coords(self, coords: np.ndarray) -> np.ndarray:
        """Score already-computed coordinates, ``(pop, n_atoms, 3) -> (pop,)``.

        Contributions are truncated to FP32 and tree-reduced exactly like
        the CUDA scoring kernel.
        """
        e_inter, e_intra = self.per_contribution_energies(coords)
        # single FP32 contribution buffer (assignment casts like astype;
        # layout matches the concatenate this replaces)
        n_inter = e_inter.shape[-1]
        contribs = np.empty(
            e_inter.shape[:-1] + (n_inter + e_intra.shape[-1],),
            dtype=np.float32)
        contribs[..., :n_inter] = e_inter
        contribs[..., n_inter:] = e_intra
        total = simt_tree_reduce(contribs, axis=-1)
        return total.astype(np.float64) + self.torsional_penalty

    def score(self, genotypes: np.ndarray) -> np.ndarray:
        """Score genotypes: pose calculation + inter + intra, ``(pop,)``."""
        genotypes = np.atleast_2d(np.asarray(genotypes, dtype=np.float64))
        coords = calc_coords(self.ligand, genotypes)
        return self.score_coords(coords)

    def score_components(self, genotype: np.ndarray) -> dict:
        """Detailed breakdown of one genotype's score (for reports/examples)."""
        coords = calc_coords(self.ligand, np.atleast_2d(genotype))
        e_inter, e_intra = self.per_contribution_energies(coords)
        return {
            "inter": float(e_inter.sum()),
            "intra": float(e_intra.sum()),
            "torsional": self.torsional_penalty,
            "total": float(e_inter.sum() + e_intra.sum()
                           + self.torsional_penalty),
        }
