"""AutoDock4 pairwise energy terms and their radial derivatives.

Implements the four AD4 free-energy terms for intramolecular contributor
pairs (and, via :mod:`repro.docking.receptor`, for grid-map construction):

* dispersion/repulsion 12-6 (``C/r^12 - D/r^6``),
* hydrogen bonding 12-10 (``C/r^12 - D/r^10``, donor-H <-> acceptor pairs;
  directionality omitted — see DESIGN.md),
* screened Coulomb electrostatics with the Mehler-Solmajer
  distance-dependent dielectric,
* gaussian desolvation.

Energies are clamped at ``ECLAMP`` and pair distances floored at ``RMIN``
exactly like the CUDA kernels clamp steep clashes; note the clamp value
exceeds FP16's max finite value (65504), so clash gradients saturate in the
FP16 Tensor Core path while surviving in TF32 — one of the mechanisms behind
the paper's Figure 1 accuracy loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.ligand import Ligand
from repro.docking.params import FE_WEIGHTS, HBOND_ACCEPTOR, HBOND_DONOR

__all__ = [
    "ECLAMP",
    "GRADCLAMP",
    "RMIN",
    "PairTables",
    "build_pair_tables",
    "dielectric",
    "dielectric_derivative",
    "intra_contributions",
    "vdw_pair_coefficients",
]

#: energy clamp for clashing pairs [kcal/mol] (AutoDock-GPU's EINTCLAMP)
ECLAMP = 100_000.0

#: per-contribution gradient bound [kcal/mol/Å] — a float-safety cap only.
#: AutoDock-GPU does not clamp per-contribution gradients: steep vdW
#: clashes produce values of 1e6 and beyond, far past FP16's max finite
#: value (65504).  Those contributions overflow at the FP16 *input
#: conversion* of the uncorrected Tensor Core reduction (Schieffer-Peng's
#: Listing 1), while FP32/TF32 handle them — one of the mechanisms behind
#: the paper's Figure 1 accuracy loss.  The genotype-space trust region
#: (GENE_GRADIENT_CLAMP) keeps the optimiser stable for valid back-ends.
GRADCLAMP = 1.0e7

#: pair-distance floor [Å]
RMIN = 0.5

#: Coulomb conversion constant [kcal Å / (mol e^2)]
COULOMB = 332.06363

#: AutoDock's pairwise-potential smoothing half-width [Å]: within
#: ``SMOOTH_HALF_WIDTH`` of the potential minimum the energy is flattened
#: to the minimum value, absorbing small experimental coordinate errors
#: (AutoDock's default smoothing parameter is 0.5 Å total width)
SMOOTH_HALF_WIDTH = 0.25

#: Mehler-Solmajer sigmoidal dielectric constants
_MS_A = -8.5525
_MS_B = 78.4 - _MS_A          # epsilon0 - A
_MS_RK = 7.7839
_MS_LAM = 0.003627

#: desolvation gaussian width [Å] and charge-dependent solvation parameter
_SIGMA = 3.6
_QSOLPAR = 0.01097


def dielectric(r: np.ndarray) -> np.ndarray:
    """Mehler-Solmajer distance-dependent dielectric ``eps(r)``."""
    r = np.asarray(r, dtype=np.float64)
    u = _MS_RK * np.exp(-_MS_LAM * _MS_B * r)
    return _MS_A + _MS_B / (1.0 + u)


def dielectric_derivative(r: np.ndarray) -> np.ndarray:
    """``d eps / d r`` of the Mehler-Solmajer dielectric."""
    r = np.asarray(r, dtype=np.float64)
    u = _MS_RK * np.exp(-_MS_LAM * _MS_B * r)
    return _MS_LAM * _MS_B * _MS_B * u / (1.0 + u) ** 2


def vdw_pair_coefficients(rii: float, epsii: float, rjj: float, epsjj: float,
                          hbond: bool, rij_hb: float = 0.0,
                          epsij_hb: float = 0.0) -> tuple[float, float, int]:
    """AD4 pair coefficients ``(C, D, m)`` for the 12-m potential.

    Lorentz-Berthelot style combination: ``Rij = (Rii + Rjj) / 2``,
    ``epsij = sqrt(epsii * epsjj)``.  Hydrogen-bonding pairs use the 12-10
    form with the acceptor's H-bond radius/depth.
    """
    if hbond:
        rij = rij_hb
        epsij = epsij_hb
        m = 10
        c = 5.0 * epsij * rij ** 12
        d = 6.0 * epsij * rij ** 10
    else:
        rij = 0.5 * (rii + rjj)
        epsij = float(np.sqrt(epsii * epsjj))
        m = 6
        c = epsij * rij ** 12
        d = 2.0 * epsij * rij ** 6
    return c, d, m


@dataclass(frozen=True)
class PairTables:
    """Precomputed per-pair force-field columns for a ligand's intra pairs.

    All arrays have length ``n_intra``; ``i`` / ``j`` index atoms.
    """

    i: np.ndarray
    j: np.ndarray
    c: np.ndarray          # repulsive coefficient (weighted)
    d: np.ndarray          # attractive coefficient (weighted)
    m: np.ndarray          # attractive power (6 or 10)
    qq: np.ndarray         # weighted Coulomb product w_e * 332 * qi * qj
    dsolv: np.ndarray      # weighted desolvation prefactor

    @property
    def n_pairs(self) -> int:
        return self.i.shape[0]


def build_pair_tables(ligand: Ligand) -> PairTables:
    """Assemble the intramolecular pair tables for ``ligand``."""
    pairs = ligand.intra_pairs()
    cols = ligand.params_arrays()
    i = pairs[:, 0]
    j = pairs[:, 1]

    hb_i, hb_j = cols["hbond"][i], cols["hbond"][j]
    donor_acceptor = ((hb_i == HBOND_DONOR) & (hb_j == HBOND_ACCEPTOR)) | \
                     ((hb_i == HBOND_ACCEPTOR) & (hb_j == HBOND_DONOR))

    n = pairs.shape[0]
    c = np.empty(n)
    d = np.empty(n)
    m = np.empty(n, dtype=np.int64)
    w_vdw = FE_WEIGHTS["vdw"]
    w_hb = FE_WEIGHTS["hbond"]
    for k in range(n):
        a, b = i[k], j[k]
        if donor_acceptor[k]:
            # acceptor side carries the H-bond radius/depth
            acc = a if cols["hbond"][a] == HBOND_ACCEPTOR else b
            ck, dk, mk = vdw_pair_coefficients(
                cols["rii"][a], cols["epsii"][a],
                cols["rii"][b], cols["epsii"][b],
                hbond=True, rij_hb=cols["rii_hb"][acc],
                epsij_hb=cols["epsii_hb"][acc])
            c[k], d[k], m[k] = w_hb * ck, w_hb * dk, mk
        else:
            ck, dk, mk = vdw_pair_coefficients(
                cols["rii"][a], cols["epsii"][a],
                cols["rii"][b], cols["epsii"][b], hbond=False)
            c[k], d[k], m[k] = w_vdw * ck, w_vdw * dk, mk

    q = np.asarray(ligand.charges, dtype=np.float64)
    qq = FE_WEIGHTS["elec"] * COULOMB * q[i] * q[j]
    s_i = cols["solpar"][i] + _QSOLPAR * np.abs(q[i])
    s_j = cols["solpar"][j] + _QSOLPAR * np.abs(q[j])
    dsolv = FE_WEIGHTS["desolv"] * (s_i * cols["vol"][j] + s_j * cols["vol"][i])

    return PairTables(i=i, j=j, c=c, d=d, m=m, qq=qq, dsolv=dsolv)


def intra_contributions(tables: PairTables, coords: np.ndarray,
                        smooth: bool = False, with_geometry: bool = False
                        ) -> tuple[np.ndarray, ...]:
    """Per-pair intramolecular energies and radial derivatives.

    Parameters
    ----------
    tables:
        Output of :func:`build_pair_tables`.
    coords:
        ``(pop, n_atoms, 3)`` coordinates.
    smooth:
        Apply AutoDock's potential smoothing: distances within
        ``SMOOTH_HALF_WIDTH`` of the pair's vdW optimum are evaluated at
        the optimum (flat well bottom, zero derivative there).  Off by
        default — the synthetic landscapes are calibrated without it.
    with_geometry:
        Also return the pair displacement vectors and raw distances, so
        gradient callers reuse them instead of re-gathering the pair
        coordinates (two fancy gathers per call on the hot path).

    Returns
    -------
    (energy, dE_dr):
        Both ``(pop, n_pairs)``; the gradient contribution of pair ``k`` on
        atom ``i`` is ``dE_dr[..., k] * (r_i - r_j) / r``.  With
        ``with_geometry`` the tuple extends to
        ``(energy, dE_dr, delta, r_raw)`` where ``delta`` is
        ``(pop, n_pairs, 3)`` and ``r_raw`` the unclamped distances.
    """
    coords = np.asarray(coords, dtype=np.float64)
    delta = coords[..., tables.i, :] - coords[..., tables.j, :]
    # same reduce as np.linalg.norm without its wrapper overhead
    r_raw = np.sqrt(np.sum(delta * delta, axis=-1))
    r = np.maximum(r_raw, RMIN)
    in_well = None
    if smooth:
        # the 12-m potential's minimum: r_opt = (12 c / (m d))^(1/(12-m))
        r_opt = (12.0 * tables.c / (tables.m * tables.d)) \
            ** (1.0 / (12.0 - tables.m))
        hw = SMOOTH_HALF_WIDTH
        in_well = np.abs(r - r_opt) <= hw
        # AutoDock smoothing: shift every distance toward the optimum by
        # up to the half-width; inside the band the well bottom is flat
        r_vdw = np.where(r < r_opt - hw, r + hw,
                         np.where(r > r_opt + hw, r - hw, r_opt))
    else:
        r_vdw = r

    inv_r = 1.0 / r
    # the vdW/H-bond terms use the (optionally smoothed) distance
    inv_rv = 1.0 / r_vdw
    inv_rv2 = inv_rv * inv_rv
    inv_r6 = inv_rv2 ** 3
    inv_rm = np.where(tables.m == 6, inv_r6, inv_rv2 ** 5)
    inv_r12 = inv_r6 ** 2

    e_vdw = tables.c * inv_r12 - tables.d * inv_rm
    de_vdw = (-12.0 * tables.c * inv_r12
              + tables.m * tables.d * inv_rm) * inv_rv
    if in_well is not None:
        de_vdw = np.where(in_well, 0.0, de_vdw)   # flat well bottom

    eps = dielectric(r)
    e_elec = tables.qq * inv_r / eps
    de_elec = -e_elec * (inv_r + dielectric_derivative(r) / eps)

    gauss = np.exp(-0.5 * (r / _SIGMA) ** 2)
    e_solv = tables.dsolv * gauss
    de_solv = e_solv * (-r / _SIGMA ** 2)

    energy = e_vdw + e_elec + e_solv
    de_dr = de_vdw + de_elec + de_solv

    # clash clamping: cap energy and its slope
    np.clip(energy, -ECLAMP, ECLAMP, out=energy)
    np.clip(de_dr, -GRADCLAMP, GRADCLAMP, out=de_dr)
    # below the distance floor the derivative direction is ill-defined;
    # keep the (clamped) slope so the optimiser still pushes apart
    if with_geometry:
        return energy, de_dr, delta, r_raw
    return energy, de_dr
