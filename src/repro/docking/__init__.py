"""AutoDock-style molecular docking substrate.

Everything the LGA search needs, reproducing the structure of AutoDock-GPU's
scoring function (Algorithm 2) and gradient calculation (Algorithm 4):

* :mod:`repro.docking.params` — AutoDock4 force-field parameter tables;
* :mod:`repro.docking.quaternion` — batched quaternion / SO(3) helpers;
* :mod:`repro.docking.ligand` — ligand model with torsion tree, rotation
  list and intramolecular contributor pairs;
* :mod:`repro.docking.genotype` — genotype layout (3 translation + 3
  orientation + ``N_rot`` torsions) and random initialisation;
* :mod:`repro.docking.pose` — genotype -> atom coordinates kinematics;
* :mod:`repro.docking.energy` — AD4 pairwise terms with derivatives;
* :mod:`repro.docking.grids` — receptor affinity grid maps with trilinear
  interpolation and analytic gradients;
* :mod:`repro.docking.receptor` — receptor model and grid-map construction;
* :mod:`repro.docking.scoring` — the scoring function (inter + intra);
* :mod:`repro.docking.gradients` — gradient calculation ending in the seven
  block-level reductions the paper offloads to Tensor Cores;
* :mod:`repro.docking.rmsd` — RMSD against the native pose.
"""

from repro.docking.genotype import Genotype, genotype_length, random_genotypes
from repro.docking.grids import GridMaps
from repro.docking.ligand import Ligand, TorsionBond
from repro.docking.params import ATOM_PARAMS, AtomParams, get_atom_params
from repro.docking.pose import calc_coords
from repro.docking.receptor import Receptor
from repro.docking.rmsd import rmsd
from repro.docking.scoring import ScoringFunction
from repro.docking.gradients import GradientCalculator

__all__ = [
    "Genotype",
    "genotype_length",
    "random_genotypes",
    "GridMaps",
    "Ligand",
    "TorsionBond",
    "ATOM_PARAMS",
    "AtomParams",
    "get_atom_params",
    "calc_coords",
    "Receptor",
    "rmsd",
    "ScoringFunction",
    "GradientCalculator",
]
