"""Packed struct-of-arrays buffers for multi-ligand cohort docking.

The single-ligand hot path batches over ``n_runs * pop`` poses of one
ligand; a virtual screen holds thousands of *ligands*, so the reduction
front the paper's tensor-core backends reward stays narrow.  This module
packs N heterogeneous ligands (varying atom / torsion / pair counts) into
zero-padded struct-of-arrays buffers with a leading cohort axis, so grid
interpolation, intramolecular terms and the ADADELTA gradient kernel run
over the whole cohort in one NumPy pass and the ``reduce4`` backends see a
``(2, cohort * batch, N_max, 4)`` operand.

Bit-identity contract
---------------------
Every per-ligand slice of every cohort result is bit-identical to the
single-ligand path:

* padding is *suffix-only* zeros, and every reduction backend is
  suffix-pad invariant (see :mod:`repro.reduction.api`), so one cohort-wide
  tree reduction equals per-ligand reductions;
* everything elementwise (interpolation blends, AD4 pair terms, out-of-box
  penalties, clamps) vectorises across the cohort axis without changing
  per-element arithmetic;
* the two operations whose summation order is layout-dependent — the
  pair->atom scatter ``einsum`` and the energy incidence matmul — stay
  per-ligand, on contiguous copies with exactly the single-path shapes;
* padded atoms / pairs / torsions carry finite neutral values (pair
  coefficients ``c=d=1, m=6, qq=dsolv=0``) and are excluded by contiguous
  per-ligand contribution packing, never by multiplicative masks, so no
  NaN/Inf can leak across lanes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.docking.energy import (
    ECLAMP,
    GRADCLAMP,
    RMIN,
    SMOOTH_HALF_WIDTH,
    _MS_A,
    _MS_B,
    _MS_LAM,
    _MS_RK,
)
from repro.docking.gradients import GENE_GRADIENT_CLAMP
from repro.docking.grids import OUT_OF_BOX_PENALTY, GridMaps
from repro.docking.pose import calc_coords
from repro.docking.quaternion import cross3, so3_left_jacobian
from repro.docking.scoring import ScoringFunction
from repro.obs import get_metrics, get_tracer
from repro.robustness.faults import NumericalFaultError
from repro.reduction.api import ReductionBackend, get_reduction_backend
from repro.reduction.simt_backend import simt_tree_reduce

__all__ = ["LigandPack", "CohortScoring", "CohortGradientCalculator"]

_N_RIGID = 6

#: fixed 2-operand contraction path for the pair->atom scatter (matches
#: GradientCalculator._scatter_path)
_SCATTER_PATH = ["einsum_path", (0, 1)]


class LigandPack:
    """Padded struct-of-arrays view of a list of scoring functions.

    All padded arrays use suffix padding: ligand ``a`` owns the leading
    ``n_atoms[a]`` / ``n_pairs[a]`` / ``n_rot[a]`` entries of its row and
    the tail is zeros (or neutral finite values for pair coefficients).
    ``subset`` returns a (cached) pack over a subset of ligands with the
    padded dimensions re-trimmed — used when part of a cohort finishes
    early so the survivors stop paying the stragglers' padding.
    """

    def __init__(self, scorings: list[ScoringFunction]) -> None:
        scorings = list(scorings)
        if not scorings:
            raise ValueError("cohort must contain at least one ligand")
        self.scorings = scorings
        self.ligands = [sf.ligand for sf in scorings]
        self.C = len(scorings)
        self.n_atoms = np.array([sf.ligand.n_atoms for sf in scorings],
                                dtype=np.int64)
        self.n_pairs = np.array([sf.pair_tables.n_pairs for sf in scorings],
                                dtype=np.int64)
        self.n_rot = np.array([sf.ligand.n_rot for sf in scorings],
                              dtype=np.int64)
        self.glens = _N_RIGID + self.n_rot
        #: position of each slot in the cohort it was *submitted* with;
        #: subsets carry these through so fault attribution and quarantine
        #: records always name the original lane
        self.global_indices = np.arange(self.C, dtype=np.int64)
        #: optional FaultInjector corrupting the gathered trilinear corner
        #: values (the grid-gather stride site); shared by all subsets
        self.grid_injector = None
        self._init_derived()

        # ---- grid maps: concatenate the deduplicated flat buffers of all
        # receptors so corner lookups stay one `take`; per-ligand offsets
        # address each ligand's own block
        base: dict[int, int] = {}
        chunks = []
        total = 0
        for sf in scorings:
            m = sf.maps
            if id(m) not in base:
                if m._flat_maps is None:
                    m._build_flat()
                base[id(m)] = total
                total += m._flat_maps.shape[0]
                chunks.append(m._flat_maps)
        self.flat_maps = chunks[0] if len(chunks) == 1 \
            else np.concatenate(chunks)

        C, N, P, R = self.C, self.N, self.P, self.R
        offs = np.zeros((4, C, 1, N, 1), dtype=np.int64)
        for a, sf in enumerate(scorings):
            m = sf.maps
            b0 = base[id(m)]
            n_a = int(self.n_atoms[a])
            offs[0, a, 0, :n_a, 0] = b0 + sf.type_idx * m._n_voxels
            offs[0, a, 0, n_a:, 0] = b0         # pad atoms: any in-bounds
            offs[1:, a, 0, :, 0] = b0 + m._chan_base[:, None]
        self.offs = offs
        self.origin = np.stack(
            [sf.maps.origin for sf in scorings])[:, None, None, :]
        self.spacing = np.array(
            [sf.maps.spacing for sf in scorings])[:, None, None, None]
        dims = np.array([sf.maps.shape for sf in scorings], dtype=np.float64)
        self.dims_lim = (dims - 1.0 - 1e-9)[:, None, None, :]
        self.shape_m1 = (np.array([sf.maps.shape for sf in scorings],
                                  dtype=np.int64) - 1)[:, None, None, :]
        self.ny = np.array([sf.maps.shape[1] for sf in scorings],
                           dtype=np.int64)[:, None, None]
        self.nz = np.array([sf.maps.shape[2] for sf in scorings],
                           dtype=np.int64)[:, None, None]

        # ---- per-atom AD4 parameters
        self.charges = np.zeros((C, 1, N))
        self.solpar = np.zeros((C, 1, N))
        self.vol = np.zeros((C, 1, N))
        for a, sf in enumerate(scorings):
            n_a = int(self.n_atoms[a])
            self.charges[a, 0, :n_a] = sf.charges
            self.solpar[a, 0, :n_a] = sf.solpar
            self.vol[a, 0, :n_a] = sf.vol

        # ---- intramolecular pair tables (neutral finite pad values)
        self.pi = np.zeros((C, 1, P, 1), dtype=np.int64)
        self.pj = np.zeros((C, 1, P, 1), dtype=np.int64)
        self.pc = np.ones((C, 1, P))
        self.pd = np.ones((C, 1, P))
        self.pm = np.full((C, 1, P), 6, dtype=np.int64)
        self.pqq = np.zeros((C, 1, P))
        self.pdsolv = np.zeros((C, 1, P))
        for a, sf in enumerate(scorings):
            t = sf.pair_tables
            p_a = t.n_pairs
            self.pi[a, 0, :p_a, 0] = t.i
            self.pj[a, 0, :p_a, 0] = t.j
            self.pc[a, 0, :p_a] = t.c
            self.pd[a, 0, :p_a] = t.d
            self.pm[a, 0, :p_a] = t.m
            self.pqq[a, 0, :p_a] = t.qq
            self.pdsolv[a, 0, :p_a] = t.dsolv

        self._init_pair_index()

        # ---- pair->atom incidence matrices: per-ligand, shared across
        # slots holding the same ligand (their BLAS contractions are the
        # layout-sensitive ops; see module docstring)
        self.scat_g = []
        self.scat_e = []
        for sf in scorings:
            t = sf.pair_tables
            n, p_a = sf.ligand.n_atoms, t.n_pairs
            sg = np.zeros((n, p_a))
            se = np.zeros((n, p_a))
            sg[t.i, np.arange(p_a)] = 1.0
            sg[t.j, np.arange(p_a)] -= 1.0
            se[t.i, np.arange(p_a)] = 0.5
            se[t.j, np.arange(p_a)] += 0.5
            self.scat_g.append(sg)
            self.scat_e.append(se)

        # ---- torsions: padded axis-atom indices plus one global sparse
        # (ligand, torsion, moved-atom) entry list for Grotbond
        self.axa = np.zeros((C, 1, R, 1), dtype=np.int64)
        self.axb = np.zeros((C, 1, R, 1), dtype=np.int64)
        ec, ek, ei = [], [], []
        for a, sf in enumerate(scorings):
            lig = sf.ligand
            for k, tors in enumerate(lig.torsions):
                self.axa[a, 0, k, 0] = tors.atom_a
                self.axb[a, 0, k, 0] = tors.atom_b
            moved = np.zeros((lig.n_rot, lig.n_atoms))
            for k, tors in enumerate(lig.torsions):
                moved[k, list(tors.moved)] = 1.0
            pk, pi_ = np.nonzero(moved)
            ec.append(np.full(pk.shape[0], a, dtype=np.int64))
            ek.append(pk.astype(np.int64))
            ei.append(pi_.astype(np.int64))
        self.ec = np.concatenate(ec) if ec else np.zeros(0, dtype=np.int64)
        self.ek = np.concatenate(ek) if ek else np.zeros(0, dtype=np.int64)
        self.ei = np.concatenate(ei) if ei else np.zeros(0, dtype=np.int64)

        self.tors_pen = np.array(
            [sf.torsional_penalty for sf in scorings])[:, None]
        self.smooth_col = np.array(
            [sf.smooth for sf in scorings], dtype=bool)[:, None, None]
        self.any_smooth = bool(self.smooth_col.any())
        self._init_groups()
        self._subsets: dict[tuple[int, ...], "LigandPack"] = {}

    def _init_groups(self) -> None:
        """Cohort slots sharing one ligand object, for batched pose /
        scatter kernels.

        A virtual screen dedups identical ligands upstream, but a
        homogeneous throughput cohort (and any screen re-docking one
        ligand under several seeds) carries the *same* ligand object in
        many slots.  Those slots share the torsion tree and incidence
        matrices, so ``calc_coords`` and the pair->atom contractions can
        run once over the concatenated batch — both are batch-row
        invariant (elementwise arithmetic plus fixed-length last-axis
        reductions), so each slot's slice stays bit-identical to its own
        per-slot call.
        """
        by_lig: dict[int, list[int]] = {}
        for a, lig in enumerate(self.ligands):
            by_lig.setdefault(id(lig), []).append(a)
        self.groups = [np.array(v, dtype=np.int64)
                       for v in by_lig.values()]
        #: every slot is one ligand under one parameterisation: the
        #: whole cohort folds into a single flat batch (the homogeneous
        #: throughput shape), so the hot kernels can use reshape views
        #: and one representative coefficient row instead of per-slot
        #: fancy-indexed copies and (C, 1, P)-broadcast tables
        self.uniform = (
            len(self.groups) == 1
            and bool((self.smooth_col == self.smooth_col[0]).all())
            and bool((self.tors_pen == self.tors_pen[0]).all())
            and all(bool((arr == arr[:1]).all())
                    for arr in (self.pi, self.pj, self.pc, self.pd,
                                self.pm, self.pqq, self.pdsolv)))
        #: per-slot contribution rows all share one (n_atoms, n_pairs)
        self.shape_uniform = bool(
            (self.n_atoms == self.n_atoms[0]).all()
            and (self.n_pairs == self.n_pairs[0]).all())

    def _init_derived(self) -> None:
        self.N = int(self.n_atoms.max())
        self.P = int(self.n_pairs.max())
        self.R = int(self.n_rot.max())
        self.G = _N_RIGID + self.R
        self.n_contrib = self.n_atoms + self.n_pairs
        self.L = int(self.n_contrib.max())
        #: fraction of atom lanes that is padding waste
        self.pad_ratio = 1.0 - float(self.n_atoms.sum()) / (self.C * self.N)

    def _init_pair_index(self) -> None:
        """Fancy-index form of the pair endpoint gather (bit-equivalent
        to ``take_along_axis`` — gathers copy, they never compute — but
        roughly twice as fast on the hot shapes), plus pose-independent
        pair-table derivations hoisted out of the per-call ``intra``."""
        self._gather_c = np.arange(self.C, dtype=np.int64)[:, None]
        self._pif = self.pi[:, 0, :, 0]
        self._pjf = self.pj[:, 0, :, 0]
        self._pm6 = self.pm == 6
        self._pm_all6 = bool(self._pm6.all())
        # smoothing pivot of the 12-m well; static per pair, same
        # expression (and therefore the same bits) as the inline form
        self.r_opt = (12.0 * self.pc / (self.pm * self.pd)) \
            ** (1.0 / (12.0 - self.pm))

    # ------------------------------------------------------------------

    def subset(self, lig) -> "LigandPack":
        """A pack over ligand indices ``lig``, re-trimmed and cached.

        The full index tuple returns ``self``; the flat map buffer is
        shared (never copied) across subsets.
        """
        key = tuple(int(i) for i in lig)
        if key == tuple(range(self.C)):
            return self
        cached = self._subsets.get(key)
        if cached is None:
            cached = self._make_subset(np.array(key, dtype=np.int64))
            self._subsets[key] = cached
        # the injector may be installed after a subset was cached
        cached.grid_injector = self.grid_injector
        return cached

    def _make_subset(self, idx: np.ndarray) -> "LigandPack":
        sub = object.__new__(LigandPack)
        sub.scorings = [self.scorings[i] for i in idx]
        sub.ligands = [self.ligands[i] for i in idx]
        sub.C = len(idx)
        sub.n_atoms = self.n_atoms[idx]
        sub.n_pairs = self.n_pairs[idx]
        sub.n_rot = self.n_rot[idx]
        sub.glens = self.glens[idx]
        sub.global_indices = self.global_indices[idx]
        sub.grid_injector = self.grid_injector
        sub._init_derived()
        N, P, R = sub.N, sub.P, sub.R
        sub.flat_maps = self.flat_maps
        sub.offs = np.ascontiguousarray(self.offs[:, idx, :, :N])
        sub.origin = self.origin[idx]
        sub.spacing = self.spacing[idx]
        sub.dims_lim = self.dims_lim[idx]
        sub.shape_m1 = self.shape_m1[idx]
        sub.ny = self.ny[idx]
        sub.nz = self.nz[idx]
        sub.charges = np.ascontiguousarray(self.charges[idx][:, :, :N])
        sub.solpar = np.ascontiguousarray(self.solpar[idx][:, :, :N])
        sub.vol = np.ascontiguousarray(self.vol[idx][:, :, :N])
        sub.pi = np.ascontiguousarray(self.pi[idx][:, :, :P])
        sub.pj = np.ascontiguousarray(self.pj[idx][:, :, :P])
        sub.pc = np.ascontiguousarray(self.pc[idx][:, :, :P])
        sub.pd = np.ascontiguousarray(self.pd[idx][:, :, :P])
        sub.pm = np.ascontiguousarray(self.pm[idx][:, :, :P])
        sub.pqq = np.ascontiguousarray(self.pqq[idx][:, :, :P])
        sub.pdsolv = np.ascontiguousarray(self.pdsolv[idx][:, :, :P])
        sub._init_pair_index()
        sub.scat_g = [self.scat_g[i] for i in idx]
        sub.scat_e = [self.scat_e[i] for i in idx]
        sub.axa = np.ascontiguousarray(self.axa[idx][:, :, :R])
        sub.axb = np.ascontiguousarray(self.axb[idx][:, :, :R])
        pos = np.full(self.C, -1, dtype=np.int64)
        pos[idx] = np.arange(len(idx), dtype=np.int64)
        sel = pos[self.ec] >= 0
        sub.ec = pos[self.ec[sel]]
        sub.ek = self.ek[sel]
        sub.ei = self.ei[sel]
        sub.tors_pen = self.tors_pen[idx]
        sub.smooth_col = self.smooth_col[idx]
        sub.any_smooth = bool(sub.smooth_col.any())
        sub._init_groups()
        sub._subsets = {}
        return sub

    # ------------------------------------------------------------------
    # batched physics (per-ligand slices bit-identical to GridMaps /
    # intra_contributions on the unpadded arrays)

    def _record_nonfinite(self, u: np.ndarray) -> None:
        """Emit per-lane observability for non-finite grid coordinates.

        Called only on the slow path (a non-finite value was seen), so the
        corruption is on record — trace event plus metrics counter naming
        the offending lanes — even when the run's fault policy clamps and
        continues (``ignore``).
        """
        bad = ~np.isfinite(u).reshape(self.C, -1).all(axis=1)
        lanes = [int(g) for g in self.global_indices[bad]]
        names = [getattr(self.ligands[int(a)], "name", "")
                 for a in np.nonzero(bad)[0]]
        get_metrics().counter("cohort.nonfinite_lanes").inc(len(lanes))
        get_tracer().event("cohort.nonfinite", site="grid-interp",
                           lanes=lanes, ligands=names,
                           n_values=int(np.count_nonzero(~np.isfinite(u))))

    def inter_energy(self, coords: np.ndarray, with_gradient: bool = False):
        """Grid-map interpolation over ``(C, B, N, 3)`` coordinates."""
        u = (coords - self.origin) / self.spacing
        # non-finite coordinates used to be masked silently; keep the
        # clamp (the trajectory still needs finite lookups) but record
        # which lanes were hit first.  The finite fast path skips the
        # nan_to_num copy entirely — bit-identical, since it only
        # rewrites NaN/Inf.
        if not np.isfinite(u).all():
            self._record_nonfinite(u)
            u = np.nan_to_num(u, nan=1e4, posinf=1e4, neginf=-1e4)
        uc = np.clip(u, 0.0, self.dims_lim)
        out = u - uc
        i0 = np.floor(uc).astype(np.int64)
        i1 = np.minimum(i0 + 1, self.shape_m1)
        f = uc - i0
        x0, y0, z0 = i0[..., 0], i0[..., 1], i0[..., 2]
        x1, y1, z1 = i1[..., 0], i1[..., 1], i1[..., 2]
        bx0 = x0 * self.ny
        bx1 = x1 * self.ny
        r00 = (bx0 + y0) * self.nz
        r10 = (bx1 + y0) * self.nz
        r01 = (bx0 + y1) * self.nz
        r11 = (bx1 + y1) * self.nz
        flat = np.empty(i0.shape[:-1] + (8,), dtype=np.int64)
        flat[..., 0] = r00 + z0
        flat[..., 1] = r10 + z0
        flat[..., 2] = r01 + z0
        flat[..., 3] = r11 + z0
        flat[..., 4] = r00 + z1
        flat[..., 5] = r10 + z1
        flat[..., 6] = r01 + z1
        flat[..., 7] = r11 + z1
        c = self.flat_maps.take(flat[None] + self.offs)    # (4, C, B, N, 8)
        if self.grid_injector is not None:
            # grid-gather stride site: corrupt the fetched corner values
            # (modelling corrupt device memory under the trilinear blend)
            c, inj = self.grid_injector.corrupt_values(c)
            if inj.any():
                per_lane = inj.sum(axis=(0, 2, 3, 4))
                get_metrics().counter("cohort.grid_injected").inc(
                    int(inj.sum()))
                get_tracer().event(
                    "cohort.grid_inject",
                    lanes=[int(g) for g in
                           self.global_indices[per_lane > 0]],
                    n_values=int(inj.sum()))
        e = GridMaps._interp(c, f)
        energy = (e[0] + self.charges * e[1]
                  + self.solpar * e[2] + self.vol * e[3])
        d_out = out * self.spacing
        energy = energy + OUT_OF_BOX_PENALTY * np.sum(d_out ** 2, axis=-1)
        if not with_gradient:
            return energy
        g = GridMaps._interp_grad_raw(c, f) / self.spacing
        grad = (g[0] + self.charges[..., None] * g[1]
                + self.solpar[..., None] * g[2] + self.vol[..., None] * g[3])
        grad = grad + 2.0 * OUT_OF_BOX_PENALTY * d_out
        return energy, grad

    def intra(self, coords: np.ndarray, with_geometry: bool = False):
        """AD4 pairwise terms over ``(C, B, N, 3)`` coordinates; padded
        pairs evaluate at the neutral coefficients and are dropped by the
        contiguous contribution packing downstream.

        A uniform pack folds the cohort axis into the batch: reshape
        views plus one representative ``(P,)`` coefficient row compute
        exactly the same per-element arithmetic as the broadcast
        ``(C, 1, P)`` tables, without the per-slot gather/copy overhead.
        """
        if self.uniform:
            C, B = coords.shape[:2]
            flat = coords.reshape(C * B, self.N, 3)
            delta = flat[:, self._pif[0]] - flat[:, self._pjf[0]]
            pc, pd, pm = self.pc[0, 0], self.pd[0, 0], self.pm[0, 0]
            pqq, pdsolv = self.pqq[0, 0], self.pdsolv[0, 0]
            pm6, r_opt = self._pm6[0, 0], self.r_opt[0, 0]
            smooth = self.smooth_col[0, 0, 0]
            lead = (C, B)
        else:
            # fancy indexing lands pair-major (C, P, B, 3); one
            # contiguous transpose back keeps every downstream
            # elementwise op on dense batch-major memory
            ci = coords[self._gather_c, :, self._pif]      # (C, P, B, 3)
            cj = coords[self._gather_c, :, self._pjf]
            delta = np.ascontiguousarray(np.moveaxis(ci - cj, 1, 2))
            pc, pd, pm = self.pc, self.pd, self.pm
            pqq, pdsolv = self.pqq, self.pdsolv
            pm6, r_opt = self._pm6, self.r_opt
            smooth = self.smooth_col
            lead = None
        r_raw = np.sqrt(np.sum(delta * delta, axis=-1))
        r = np.maximum(r_raw, RMIN)
        in_well = None
        if self.any_smooth:
            hw = SMOOTH_HALF_WIDTH
            in_well = (np.abs(r - r_opt) <= hw) & smooth
            r_vdw = np.where(smooth,
                             np.where(r < r_opt - hw, r + hw,
                                      np.where(r > r_opt + hw, r - hw,
                                               r_opt)),
                             r)
        else:
            r_vdw = r

        # the tail runs in place over a handful of full-size buffers: each
        # step keeps the single path's operand grouping (left-assoc
        # products, ``(a + b) + c`` sums, ``(-a) * b`` sign placement), so
        # every element carries exactly the single-path bits while the
        # temporary count drops from ~18 allocations to 6
        inv_r = 1.0 / r
        # no smoothing means r_vdw aliases r, so one divide serves both
        inv_rv = inv_r if r_vdw is r else 1.0 / r_vdw
        inv_rv2 = inv_rv * inv_rv
        inv_r6 = inv_rv2 ** 3
        # all-6 packs alias the 12-6 column; bitwise equal to the where()
        inv_rm = inv_r6 if self._pm_all6 \
            else np.where(pm6, inv_r6, inv_rv2 ** 5)
        inv_r12 = inv_r6 ** 2

        e_vdw = pc * inv_r12
        t = pd * inv_rm
        np.subtract(e_vdw, t, out=e_vdw)
        de_vdw = -12.0 * pc * inv_r12
        np.multiply(pm * pd, inv_rm, out=t)
        np.add(de_vdw, t, out=de_vdw)
        np.multiply(de_vdw, inv_rv, out=de_vdw)
        if in_well is not None:
            de_vdw = np.where(in_well, 0.0, de_vdw)

        # Mehler-Solmajer dielectric and its derivative share the same
        # ``exp`` term; evaluating it once is the single biggest saving
        # (dielectric() / dielectric_derivative() recompute it, with
        # identical expressions, so the bits match)
        u = _MS_RK * np.exp(-_MS_LAM * _MS_B * r)
        one_u = 1.0 + u
        eps = _MS_A + _MS_B / one_u
        e_elec = pqq * inv_r
        np.divide(e_elec, eps, out=e_elec)
        np.multiply(u, _MS_LAM * _MS_B * _MS_B, out=u)
        np.multiply(one_u, one_u, out=one_u)      # (1 + u) ** 2
        np.divide(u, one_u, out=u)
        np.divide(u, eps, out=u)
        np.add(u, inv_r, out=u)
        np.multiply(u, e_elec, out=u)
        de_elec = np.negative(u, out=u)

        g = r / 3.6
        np.multiply(g, g, out=g)                  # (r / 3.6) ** 2
        np.multiply(g, -0.5, out=g)
        np.exp(g, out=g)                          # gauss
        e_solv = pdsolv * g
        np.divide(r, -(3.6 ** 2), out=g)          # -r / 3.6 ** 2
        de_solv = np.multiply(g, e_solv, out=g)

        energy = e_vdw
        np.add(energy, e_elec, out=energy)
        np.add(energy, e_solv, out=energy)
        de_dr = de_vdw
        np.add(de_dr, de_elec, out=de_dr)
        np.add(de_dr, de_solv, out=de_dr)
        np.clip(energy, -ECLAMP, ECLAMP, out=energy)
        np.clip(de_dr, -GRADCLAMP, GRADCLAMP, out=de_dr)
        if lead is not None:
            energy = energy.reshape(lead + (-1,))
            de_dr = de_dr.reshape(lead + (-1,))
            if with_geometry:
                r_raw = r_raw.reshape(lead + (-1,))
                delta = delta.reshape(lead + (-1, 3))
        if with_geometry:
            return energy, de_dr, delta, r_raw
        return energy, de_dr


class CohortScoring:
    """Cohort-batched scoring: pose calculation + inter + intra + one
    SIMT tree reduction over per-ligand contiguously packed contributions.
    """

    def __init__(self, scorings: list[ScoringFunction]) -> None:
        self.pack = LigandPack(scorings)
        self.scorings = self.pack.scorings

    def coords(self, genes: np.ndarray,
               pack: LigandPack | None = None) -> np.ndarray:
        """Pose calculation, ``(A, B, G) -> (A, B, N, 3)`` (zero-padded).

        Runs per ligand-identity *group*: the torsion-chain loop is
        data-dependent per ligand, but slots sharing one ligand object
        share the tree, so their batches concatenate into a single
        ``calc_coords`` call.  The pose kernel is elementwise over batch
        rows (fixed-length last-axis reductions only), so each slot's
        slice is bit-identical to its own per-slot call.
        """
        pack = pack if pack is not None else self.pack
        A, B = genes.shape[0], genes.shape[1]
        if len(pack.groups) == 1:
            # one ligand in every slot: no padding, no scatter — a flat
            # batch through the pose kernel and a reshape view back
            return calc_coords(
                pack.ligands[0],
                genes.reshape(A * B, -1)).reshape(A, B, pack.N, 3)
        out = np.zeros((A, B, pack.N, 3))
        for idx in pack.groups:
            a = int(idx[0])
            glen_a = int(pack.glens[a])
            n_a = int(pack.n_atoms[a])
            if len(idx) == 1:
                g = np.ascontiguousarray(genes[a, :, :glen_a])
                out[a, :, :n_a] = calc_coords(pack.ligands[a], g)
            else:
                g = np.ascontiguousarray(
                    genes[idx][:, :, :glen_a]).reshape(-1, glen_a)
                out[idx, :, :n_a] = calc_coords(
                    pack.ligands[a], g).reshape(len(idx), B, n_a, 3)
        return out

    def score_coords(self, coords: np.ndarray,
                     pack: LigandPack | None = None) -> np.ndarray:
        pack = pack if pack is not None else self.pack
        e_inter = pack.inter_energy(coords)
        e_intra, _ = pack.intra(coords)
        A, B = e_inter.shape[:2]
        # contiguous per-ligand packing [inter | intra | 0-pad]: the tree
        # reduction sees only suffix zeros, which every backend ignores
        contribs = np.zeros((A, B, pack.L), dtype=np.float32)
        if pack.shape_uniform:
            n0 = int(pack.n_atoms[0])
            p0 = int(pack.n_pairs[0])
            contribs[:, :, :n0] = e_inter[:, :, :n0]
            contribs[:, :, n0:n0 + p0] = e_intra[:, :, :p0]
        else:
            for a in range(A):
                n_a = int(pack.n_atoms[a])
                p_a = int(pack.n_pairs[a])
                contribs[a, :, :n_a] = e_inter[a, :, :n_a]
                contribs[a, :, n_a:n_a + p_a] = e_intra[a, :, :p_a]
        total = simt_tree_reduce(contribs, axis=-1)
        return total.astype(np.float64) + pack.tors_pen

    def score(self, genes: np.ndarray, lig=None) -> np.ndarray:
        """Score ``(A, batch, G)`` genotypes -> ``(A, batch)`` energies.

        ``lig`` selects a ligand subset (global indices into the pack);
        ``genes`` rows must align with it.
        """
        pack = self.pack if lig is None else self.pack.subset(lig)
        genes = np.asarray(genes, dtype=np.float64)
        coords = self.coords(genes, pack)
        return self.score_coords(coords, pack)


class CohortGradientCalculator:
    """Cohort-batched drop-in for :class:`GradientCalculator`.

    Presents the same 2-D ``(batch, glen) -> (energy, gradient)`` callable
    interface :class:`~repro.search.adadelta.AdadeltaLocalSearch` expects;
    rows are ligand-major (``batch = A * B`` with ligand ``a`` owning rows
    ``a*B .. (a+1)*B``).  ``bind`` narrows the calculator to a ligand
    subset between generations (cohort members that finish early drop out
    of the reduce4 operand entirely).
    """

    def __init__(self, cohort: CohortScoring,
                 backend: str | ReductionBackend = "baseline") -> None:
        self.cohort = cohort
        self.backend = get_reduction_backend(backend)
        self._pack = cohort.pack

    def bind(self, lig=None) -> None:
        self._pack = self.cohort.pack if lig is None \
            else self.cohort.pack.subset(lig)

    def atom_gradients(self, coords: np.ndarray, pack: LigandPack
                       ) -> tuple[np.ndarray, np.ndarray]:
        e_inter, g_inter = pack.inter_energy(coords, with_gradient=True)
        e_pairs, de_dr, delta, r_raw = pack.intra(coords, with_geometry=True)
        r = np.maximum(r_raw, 1e-9)[..., None]
        pair_grad = de_dr[..., None] * delta / r
        A, B, N = e_inter.shape
        if pack.uniform:
            # flat single-contraction path: every operand is a reshape
            # view of an already-contiguous buffer, and with no padded
            # lanes the results need no zeroed landing buffers
            # explicit row count: -1 is ambiguous when P == 0 (a
            # torsion-free ligand has no intra pairs)
            pg = pair_grad.reshape(A * B, pack.P, 3)
            ep = e_pairs.reshape(A * B, pack.P)
            g_atoms = (g_inter.reshape(-1, N, 3) + np.einsum(
                "np,bpc->bnc", pack.scat_g[0], pg,
                optimize=_SCATTER_PATH)).reshape(A, B, N, 3)
            e_atoms = (e_inter.reshape(-1, N)
                       + ep @ pack.scat_e[0].T).reshape(A, B, N)
            np.clip(g_atoms, -GRADCLAMP, GRADCLAMP, out=g_atoms)
            return e_atoms, g_atoms
        g_atoms = np.zeros((A, B, N, 3))
        e_atoms = np.zeros((A, B, N))
        # per-ligand incidence contractions on contiguous operands (BLAS
        # summation order is layout-dependent; batch-row concatenation is
        # not — verified bit-identical — so slots sharing one ligand run
        # as a single contraction); results land in zeroed buffers so the
        # padded tail stays exactly +0.0
        for idx in pack.groups:
            a = int(idx[0])
            n_a = int(pack.n_atoms[a])
            p_a = int(pack.n_pairs[a])
            if len(idx) == 1:
                pg = np.ascontiguousarray(pair_grad[a, :, :p_a, :])
                ep = np.ascontiguousarray(e_pairs[a, :, :p_a])
                g_atoms[a, :, :n_a] = g_inter[a, :, :n_a] + np.einsum(
                    "np,bpc->bnc", pack.scat_g[a], pg,
                    optimize=_SCATTER_PATH)
                e_atoms[a, :, :n_a] = (e_inter[a, :, :n_a]
                                       + ep @ pack.scat_e[a].T)
            else:
                k = len(idx)
                pg = np.ascontiguousarray(
                    pair_grad[idx][:, :, :p_a, :]).reshape(-1, p_a, 3)
                ep = np.ascontiguousarray(
                    e_pairs[idx][:, :, :p_a]).reshape(-1, p_a)
                g_atoms[idx, :, :n_a] = g_inter[idx][:, :, :n_a] \
                    + np.einsum("np,bpc->bnc", pack.scat_g[a], pg,
                                optimize=_SCATTER_PATH).reshape(k, B, n_a, 3)
                e_atoms[idx, :, :n_a] = e_inter[idx][:, :, :n_a] \
                    + (ep @ pack.scat_e[a].T).reshape(k, B, n_a)
        np.clip(g_atoms, -GRADCLAMP, GRADCLAMP, out=g_atoms)
        return e_atoms, g_atoms

    def _attribute_lane_faults(self, B: int) -> dict[int, int]:
        """Map the guard's per-block fault mask back to global lanes.

        The reduce4 operand is ligand-major (``batch = A * B``), so block
        column ``b`` belongs to lane ``global_indices[b // B]``.  Faulty
        block counts are folded into the shared ledger's ``by_lane`` and
        surfaced through obs; a no-guard backend (no ``last_fault_mask``)
        costs one ``getattr``.
        """
        mask = getattr(self.backend, "last_fault_mask", None)
        if mask is None or not mask.any():
            return {}
        cols = np.nonzero(mask)[-1]
        lanes, counts = np.unique(
            self._pack.global_indices[cols // B], return_counts=True)
        lane_counts = {int(a): int(n) for a, n in zip(lanes, counts)}
        ledger = getattr(self.backend, "ledger", None)
        if ledger is not None:
            ledger.record_lane_faults(lane_counts)
        get_metrics().counter("cohort.lane_faults").inc(
            int(np.count_nonzero(mask)))
        get_tracer().event("cohort.lane_faults", site="reduce4",
                           lanes={str(k): v for k, v in lane_counts.items()})
        return lane_counts

    def __call__(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pack = self._pack
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        A = pack.C
        batch, G = x.shape
        if batch % A:
            raise ValueError(f"batch {batch} not divisible by cohort {A}")
        B = batch // A
        genes = x.reshape(A, B, G)
        coords = self.cohort.coords(genes, pack)
        e_atoms, g_atoms = self.atom_gradients(coords, pack)

        # one reduce4 issue pair for the whole cohort: (2, A*B, N_max, 4).
        # Batch slices reduce independently and suffix-zero padding is
        # backend-invariant, so each ligand's slice is bit-identical to its
        # single-ligand (2, B, n_a, 4) call
        centre = genes[..., None, 0:3]
        torque_like = cross3(coords - centre, g_atoms)
        vecs = np.empty((2, A, B, pack.N, 4), dtype=np.float32)
        vecs[0, ..., 0:3] = g_atoms
        vecs[0, ..., 3] = e_atoms
        vecs[1, ..., 0:3] = torque_like
        vecs[1, ..., 3] = 0.0
        t_red = time.perf_counter()
        try:
            red = self.backend.reduce4(vecs.reshape(2, batch, pack.N, 4))
        except NumericalFaultError as exc:
            # raise policy: name the lanes before the exception unwinds so
            # the lock-step driver can quarantine them (and only them)
            exc.lanes = tuple(sorted(self._attribute_lane_faults(B)))
            raise
        t_red = time.perf_counter() - t_red
        self._attribute_lane_faults(B)
        g_trans = red[0, :, 0:3].astype(np.float64)
        energy = (red[0, :, 3].astype(np.float64).reshape(A, B)
                  + pack.tors_pen).reshape(batch)
        tau = red[1, :, 0:3].astype(np.float64)

        m = get_metrics()
        m.histogram(f"reduction.{self.backend.name}.reduce4_s").observe(t_red)
        m.counter(f"reduction.{self.backend.name}.calls").inc(2)
        m.counter("gradient.evals").inc(batch)

        jl = so3_left_jacobian(x[:, 3:6])
        g_orient = np.einsum("pij,pi->pj", jl, tau)

        gradient = np.zeros((batch, G))
        gradient[:, 0:3] = g_trans
        gradient[:, 3:6] = g_orient
        if pack.R:
            a_pos = np.take_along_axis(coords, pack.axa, axis=2)
            b_pos = np.take_along_axis(coords, pack.axb, axis=2)
            axis = b_pos - a_pos
            axis /= np.maximum(np.sqrt(
                np.sum(axis * axis, axis=-1, keepdims=True)), 1e-12)
            ec, ek, ei = pack.ec, pack.ek, pack.ei
            arm = coords[ec, :, ei, :] - b_pos[ec, :, ek, :]   # (E, B, 3)
            cr = cross3(axis[ec, :, ek, :], arm)
            np.multiply(cr, g_atoms[ec, :, ei, :], out=cr)
            vals = np.sum(cr, axis=-1)                         # (E, B)
            contrib = np.zeros((A, B, pack.R, pack.N), dtype=np.float32)
            contrib[ec, :, ek, ei] = vals
            g_tors = simt_tree_reduce(contrib, axis=-1).astype(np.float64)
            # padded torsion rows reduce to exactly +0.0, preserving the
            # zero-gradient invariant on padded gene columns
            gradient[:, 6:6 + pack.R] = g_tors.reshape(batch, pack.R)
        np.clip(gradient, -GENE_GRADIENT_CLAMP, GENE_GRADIENT_CLAMP,
                out=gradient)
        return energy, gradient
