"""Receptor model and AutoGrid-style map construction.

A receptor is a rigid set of atoms (the binding pocket).  ``make_maps``
plays the role of AutoGrid: for every requested ligand atom type it
evaluates the AD4 pairwise potential between a probe atom at each grid node
and all receptor atoms, producing the affinity / electrostatic /
desolvation maps that :class:`repro.docking.grids.GridMaps` interpolates at
dock time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.energy import (
    COULOMB,
    ECLAMP,
    RMIN,
    dielectric,
    vdw_pair_coefficients,
)
from repro.docking.grids import GridMaps
from repro.docking.params import (
    FE_WEIGHTS,
    HBOND_ACCEPTOR,
    HBOND_DONOR,
    get_atom_params,
)

__all__ = ["Receptor"]

_SIGMA = 3.6
_QSOLPAR = 0.01097


@dataclass
class Receptor:
    """A rigid receptor (binding-pocket atoms).

    Parameters
    ----------
    name:
        Identifier.
    atom_types:
        AD4 atom type per receptor atom.
    coords:
        ``(m, 3)`` Cartesian coordinates [Å].
    charges:
        Partial charges, ``(m,)``.
    """

    name: str
    atom_types: list[str]
    coords: np.ndarray
    charges: np.ndarray

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.float64)
        self.charges = np.asarray(self.charges, dtype=np.float64)
        m = self.coords.shape[0]
        if self.coords.shape != (m, 3) or self.charges.shape != (m,):
            raise ValueError("receptor coords/charges shape mismatch")
        if len(self.atom_types) != m:
            raise ValueError("receptor atom_types length mismatch")
        for t in self.atom_types:
            get_atom_params(t)

    @property
    def n_atoms(self) -> int:
        return self.coords.shape[0]

    # ------------------------------------------------------------------

    def make_maps(self, probe_types: list[str], origin: np.ndarray,
                  shape: tuple[int, int, int], spacing: float) -> GridMaps:
        """Build grid maps for the given probe (ligand) atom types.

        The affinity maps carry the AD4 vdW/H-bond FE weights; the
        electrostatic map carries ``w_elec * 332 * q_j / (r eps(r))``; the
        two desolvation maps carry the receptor-side volume and solvation
        sums with the gaussian kernel and ``w_desolv`` baked in.
        """
        origin = np.asarray(origin, dtype=np.float64)
        axes = [origin[k] + spacing * np.arange(n)
                for k, n in enumerate(shape)]
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        points = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
        n_points = points.shape[0]

        rec_params = [get_atom_params(t) for t in self.atom_types]
        rec_vol = np.array([p.vol for p in rec_params])
        rec_sol = np.array([p.solpar for p in rec_params]) \
            + _QSOLPAR * np.abs(self.charges)

        # per-(probe, receptor-atom) pair coefficients, assembled once
        w_vdw, w_hb = FE_WEIGHTS["vdw"], FE_WEIGHTS["hbond"]
        n_probes = len(probe_types)
        m_atoms = self.n_atoms
        pc = np.empty((n_probes, m_atoms))
        pd = np.empty((n_probes, m_atoms))
        pm = np.empty((n_probes, m_atoms), dtype=np.int64)
        for t_idx, t in enumerate(probe_types):
            probe = get_atom_params(t)
            for a_idx, rp in enumerate(rec_params):
                is_hb = (
                    (probe.hbond == HBOND_DONOR and rp.hbond == HBOND_ACCEPTOR)
                    or (probe.hbond == HBOND_ACCEPTOR and rp.hbond == HBOND_DONOR)
                )
                if is_hb:
                    acc = rp if rp.hbond == HBOND_ACCEPTOR else probe
                    c, d, m = vdw_pair_coefficients(
                        probe.rii, probe.epsii, rp.rii, rp.epsii,
                        hbond=True, rij_hb=acc.rii_hb,
                        epsij_hb=acc.epsii_hb)
                    w = w_hb
                else:
                    c, d, m = vdw_pair_coefficients(
                        probe.rii, probe.epsii, rp.rii, rp.epsii, hbond=False)
                    w = w_vdw
                pc[t_idx, a_idx] = w * c
                pd[t_idx, a_idx] = w * d
                pm[t_idx, a_idx] = m

        aff = np.zeros((n_probes, n_points))
        elec = np.zeros(n_points)
        desolv_v = np.zeros(n_points)
        desolv_s = np.zeros(n_points)

        # chunk grid points to bound the (points x atoms) working set
        chunk = max(1, 2_000_000 // max(1, m_atoms))
        for lo in range(0, n_points, chunk):
            hi = min(lo + chunk, n_points)
            delta = points[lo:hi, None, :] - self.coords[None, :, :]
            r = np.maximum(np.linalg.norm(delta, axis=-1), RMIN)
            inv_r2 = 1.0 / (r * r)
            inv_r12 = (inv_r2 ** 3) ** 2
            for t_idx in range(n_probes):
                inv_rm = np.where(pm[t_idx] == 6, inv_r2 ** 3, inv_r2 ** 5)
                aff[t_idx, lo:hi] = (pc[t_idx] * inv_r12
                                     - pd[t_idx] * inv_rm).sum(axis=1)
            eps = dielectric(r)
            elec[lo:hi] = (FE_WEIGHTS["elec"] * COULOMB
                           * (self.charges[None, :] / (r * eps)).sum(axis=1))
            gauss = np.exp(-0.5 * (r / _SIGMA) ** 2)
            desolv_v[lo:hi] = FE_WEIGHTS["desolv"] * (gauss * rec_vol).sum(axis=1)
            desolv_s[lo:hi] = FE_WEIGHTS["desolv"] * (gauss * rec_sol).sum(axis=1)

        np.clip(aff, -ECLAMP, ECLAMP, out=aff)
        np.clip(elec, -ECLAMP, ECLAMP, out=elec)

        return GridMaps(
            origin=origin,
            spacing=spacing,
            type_names=list(probe_types),
            affinity=aff.reshape((n_probes,) + tuple(shape)),
            elec=elec.reshape(shape),
            desolv_v=desolv_v.reshape(shape),
            desolv_s=desolv_s.reshape(shape),
        )
