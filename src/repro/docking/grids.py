"""Receptor affinity grid maps with trilinear interpolation and gradients.

AutoDock precomputes, per ligand atom type, a 3-D grid of interaction
energies with the rigid receptor; docking then evaluates the intermolecular
score as one trilinear interpolation per atom (InterScore, Algorithm 2) and
its gradient analytically from the same eight corners (InterGradient,
Algorithm 4).  This module reproduces that machinery:

* one affinity map per ligand atom type (vdW + H-bond, weights baked in),
* an electrostatics map (multiplied by the atom charge at lookup),
* two desolvation maps (volume- and solvation-weighted receptor sums,
  combined with the atom's own parameters at lookup),
* a quadratic out-of-box penalty that pushes strays back inside, as the
  CUDA kernels do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GridMaps", "OUT_OF_BOX_PENALTY"]

#: quadratic penalty slope for atoms outside the box [kcal/mol/Å^2]
OUT_OF_BOX_PENALTY = 50.0


@dataclass
class GridMaps:
    """A set of docking grid maps.

    Attributes
    ----------
    origin:
        Cartesian position of grid node ``(0, 0, 0)`` [Å].
    spacing:
        Grid spacing [Å] (AutoDock default 0.375).
    type_names:
        Atom-type order of the ``affinity`` stack.
    affinity:
        ``(n_types, nx, ny, nz)`` vdW+H-bond maps (FE weights baked in).
    elec:
        ``(nx, ny, nz)`` electrostatic potential map (weighted; multiply by
        the atom charge).
    desolv_v / desolv_s:
        ``(nx, ny, nz)`` receptor desolvation sums (volume-weighted and
        solvation-weighted); combined at lookup with per-atom parameters.
    """

    origin: np.ndarray
    spacing: float
    type_names: list[str]
    affinity: np.ndarray
    elec: np.ndarray
    desolv_v: np.ndarray
    desolv_s: np.ndarray

    def __post_init__(self) -> None:
        self.origin = np.asarray(self.origin, dtype=np.float64)
        self.affinity = np.asarray(self.affinity, dtype=np.float64)
        if self.affinity.ndim != 4 or self.affinity.shape[0] != len(self.type_names):
            raise ValueError("affinity must be (n_types, nx, ny, nz)")
        shape = self.affinity.shape[1:]
        for name in ("elec", "desolv_v", "desolv_s"):
            arr = np.asarray(getattr(self, name), dtype=np.float64)
            if arr.shape != shape:
                raise ValueError(f"{name} map shape {arr.shape} != {shape}")
            setattr(self, name, arr)
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")
        # type -> affinity-map index LUT, built once (type_index sits on the
        # dock-setup path of every screening job)
        self._type_lut = {t: k for k, t in enumerate(self.type_names)}
        self._n_voxels = int(np.prod(shape))
        # fused lookup buffer, built lazily on first interpolation: builders
        # (e.g. the synthetic-case generator) may still write into the map
        # arrays after construction, so the snapshot is deferred until the
        # maps are actually used.  Maps must not change afterwards; use
        # dataclasses.replace (re-runs this hook) to derive modified maps.
        self._flat_maps = None
        self._chan_base = None
        self._offs_cache = None

    def _build_flat(self) -> None:
        """Flatten all maps into one contiguous buffer so the trilinear
        corner lookups become single ``take`` calls: affinity stack first
        (one voxel block per type), then elec / desolv_v / desolv_s."""
        n_types = len(self.type_names)
        self._flat_maps = np.concatenate([
            self.affinity.reshape(-1), self.elec.reshape(-1),
            self.desolv_v.reshape(-1), self.desolv_s.reshape(-1)])
        #: voxel-block offsets of the 3 shared channels behind the stack
        self._chan_base = self._n_voxels * np.arange(
            n_types, n_types + 3, dtype=np.int64)

    @classmethod
    def from_flat(cls, flat: np.ndarray, *, origin, spacing: float,
                  type_names: list[str],
                  shape: tuple[int, int, int]) -> "GridMaps":
        """Rebuild a map set from its fused flat buffer (zero-copy).

        ``flat`` is the layout :meth:`_build_flat` produces — the affinity
        stack followed by the elec / desolv_v / desolv_s blocks — e.g. a
        read-only ``np.load(..., mmap_mode="r")`` view of a stored blob.
        The four map attributes become *views into that buffer*, and the
        fused lookup buffer is installed directly, so neither text parsing
        nor the concatenation in :meth:`_build_flat` runs.
        """
        flat = np.asarray(flat)
        if flat.dtype != np.float64:
            flat = flat.astype(np.float64)
        n_types = len(type_names)
        nx, ny, nz = (int(d) for d in shape)
        nvox = nx * ny * nz
        expected = (n_types + 3) * nvox
        if flat.shape != (expected,):
            raise ValueError(
                f"flat buffer has shape {flat.shape}, expected ({expected},) "
                f"for {n_types} types and grid {shape}")
        blocks = [flat[k * nvox:(k + 1) * nvox]
                  for k in range(n_types, n_types + 3)]
        maps = cls(origin=origin, spacing=float(spacing),
                   type_names=list(type_names),
                   affinity=flat[:n_types * nvox].reshape(n_types, nx, ny, nz),
                   elec=blocks[0].reshape(nx, ny, nz),
                   desolv_v=blocks[1].reshape(nx, ny, nz),
                   desolv_s=blocks[2].reshape(nx, ny, nz))
        maps._flat_maps = flat
        maps._chan_base = nvox * np.arange(n_types, n_types + 3,
                                           dtype=np.int64)
        return maps

    @property
    def flat_maps(self) -> np.ndarray:
        """The fused lookup buffer, building it on first access.

        This is what the disk cache tier stores: one contiguous array
        whose layout :meth:`from_flat` inverts.
        """
        if self._flat_maps is None:
            self._build_flat()
        return self._flat_maps

    @property
    def nbytes(self) -> int:
        """Resident-byte cost including the lazily-built fused buffer.

        The fused buffer duplicates all four map stacks, so a map set is
        charged for it *up front* — whether or not :meth:`_build_flat` has
        run yet — keeping cache accounting an upper bound on what the
        entry can ever grow to.  Instances built by :meth:`from_flat` hold
        views into one buffer and are charged for that buffer once.
        """
        component = (self.affinity.nbytes + self.elec.nbytes
                     + self.desolv_v.nbytes + self.desolv_s.nbytes)
        flat = self._flat_maps
        if flat is not None and np.shares_memory(flat, self.affinity):
            total = flat.nbytes          # from_flat: maps are views
        else:
            total = 2 * component        # built, or will be built lazily
        # _build_flat always creates the 3-element channel-base table;
        # charge it up front so the lazy build never grows the entry
        total += 3 * np.dtype(np.int64).itemsize
        cached = self._offs_cache
        if cached is not None:
            total += cached[2].nbytes
        return total

    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.affinity.shape[1:]

    @property
    def box_lo(self) -> np.ndarray:
        return self.origin

    @property
    def box_hi(self) -> np.ndarray:
        return self.origin + (np.array(self.shape) - 1) * self.spacing

    def type_index(self, atom_types: list[str]) -> np.ndarray:
        """Map atom type names to affinity-map indices."""
        try:
            return np.asarray([self._type_lut[t] for t in atom_types],
                              dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"no grid map for atom type {exc.args[0]!r}") from None

    # ------------------------------------------------------------------
    # interpolation core

    def _locate(self, coords: np.ndarray):
        """Grid-relative coordinates, corner indices, fractions, and the
        out-of-box displacement of every atom."""
        u = (np.asarray(coords, dtype=np.float64) - self.origin) / self.spacing
        dims = np.asarray(self.shape, dtype=np.float64)
        # non-finite coordinates (degenerate poses) land far outside the
        # box: clamped inside with a very large out-of-box penalty
        u = np.nan_to_num(u, nan=1e4, posinf=1e4, neginf=-1e4)
        uc = np.clip(u, 0.0, dims - 1.0 - 1e-9)
        out = u - uc                     # signed out-of-box displacement
        i0 = np.floor(uc).astype(np.int64)
        i1 = np.minimum(i0 + 1, (np.asarray(self.shape) - 1))
        f = uc - i0
        return uc, i0, i1, f, out

    def _corner_flat(self, i0: np.ndarray, i1: np.ndarray) -> np.ndarray:
        """Raveled indices ``(..., 8)`` of the eight interpolation corners.

        Computed once per lookup and shared by all four map channels — the
        multi-dimensional fancy indexing this replaces re-derived the same
        flat offsets once per corner per channel (32 times).  Corner order
        matches :meth:`_interp`: ``c000, c100, c010, c110, c001, ..., c111``.
        """
        _, ny, nz = self.shape
        x0, y0, z0 = i0[..., 0], i0[..., 1], i0[..., 2]
        x1, y1, z1 = i1[..., 0], i1[..., 1], i1[..., 2]
        bx0 = x0 * ny
        bx1 = x1 * ny
        r00 = (bx0 + y0) * nz
        r10 = (bx1 + y0) * nz
        r01 = (bx0 + y1) * nz
        r11 = (bx1 + y1) * nz
        flat = np.empty(i0.shape[:-1] + (8,), dtype=np.int64)
        flat[..., 0] = r00 + z0
        flat[..., 1] = r10 + z0
        flat[..., 2] = r01 + z0
        flat[..., 3] = r11 + z0
        flat[..., 4] = r00 + z1
        flat[..., 5] = r10 + z1
        flat[..., 6] = r01 + z1
        flat[..., 7] = r11 + z1
        return flat

    def _gather_corners(self, type_idx: np.ndarray, i0: np.ndarray,
                        i1: np.ndarray) -> np.ndarray:
        """Corner values of all four channels in one ``take``.

        Returns ``(4, ..., n_atoms, 8)``: channel 0 is the per-atom-type
        affinity map, channels 1-3 the shared elec / desolv_v / desolv_s
        maps.  Per-atom type offsets plus the flat corner indices address
        the stacked buffer built in ``__post_init__``.
        """
        if self._flat_maps is None:
            self._build_flat()
        flat = self._corner_flat(i0, i1)               # (..., n, 8)
        n = type_idx.shape[0]
        # channel 0: per-atom voxel-block offset; channels 1-3: fixed
        # blocks.  The offset tensor depends only on the caller's type_idx
        # array (one per bound scoring function) and the batch rank, so it
        # is cached across lookups (the cache holds the type_idx reference,
        # making the identity check safe against id reuse).
        cached = self._offs_cache
        if (cached is not None and cached[0] is type_idx
                and cached[1] == flat.ndim):
            offs = cached[2]
        else:
            offs = np.empty((4, n), dtype=np.int64)
            np.multiply(type_idx, self._n_voxels, out=offs[0])
            offs[1:] = self._chan_base[:, None]
            # right-align the per-atom axis against flat's (..., n, 8)
            offs = offs.reshape((4,) + (1,) * (flat.ndim - 2) + (n, 1))
            self._offs_cache = (type_idx, flat.ndim, offs)
        return self._flat_maps.take(flat[None] + offs)

    @staticmethod
    def _corners(maps: np.ndarray, sel, i0, i1):
        """Gather the eight corner values (single-channel legacy path).

        ``maps`` is ``(T, nx, ny, nz)`` with ``sel`` per-atom map indices, or
        ``(nx, ny, nz)`` with ``sel is None``.
        """
        x0, y0, z0 = i0[..., 0], i0[..., 1], i0[..., 2]
        x1, y1, z1 = i1[..., 0], i1[..., 1], i1[..., 2]
        if sel is None:
            g = lambda ix, iy, iz: maps[ix, iy, iz]
        else:
            g = lambda ix, iy, iz: maps[sel, ix, iy, iz]
        return np.stack(
            [g(x0, y0, z0), g(x1, y0, z0), g(x0, y1, z0), g(x1, y1, z0),
             g(x0, y0, z1), g(x1, y0, z1), g(x0, y1, z1), g(x1, y1, z1)],
            axis=-1)

    @staticmethod
    def _interp(c, f):
        """Trilinear blend of the eight corner values ``c (..., 8)`` at
        fractions ``f (..., 3)``; extra leading axes of ``c`` (the channel
        axis of the fused gather) broadcast against ``f``."""
        fx, fy, fz = f[..., 0], f[..., 1], f[..., 2]
        gx, gy, gz = 1 - fx, 1 - fy, 1 - fz
        c00 = c[..., 0] * gx + c[..., 1] * fx
        c10 = c[..., 2] * gx + c[..., 3] * fx
        c01 = c[..., 4] * gx + c[..., 5] * fx
        c11 = c[..., 6] * gx + c[..., 7] * fx
        c0 = c00 * gy + c10 * fy
        c1 = c01 * gy + c11 * fy
        return c0 * gz + c1 * fz

    @staticmethod
    def _interp_grad_raw(c, f):
        """Analytic gradient of the trilinear interpolant in *grid units*
        (not yet divided by the spacing — cohort packs divide by a
        per-ligand spacing tensor instead of this map's scalar)."""
        fx, fy, fz = f[..., 0], f[..., 1], f[..., 2]
        ox, oy, oz = 1 - fx, 1 - fy, 1 - fz
        c000, c100, c010, c110 = c[..., 0], c[..., 1], c[..., 2], c[..., 3]
        c001, c101, c011, c111 = c[..., 4], c[..., 5], c[..., 6], c[..., 7]
        gx = ((c100 - c000) * oy * oz
              + (c110 - c010) * fy * oz
              + (c101 - c001) * oy * fz
              + (c111 - c011) * fy * fz)
        gy = ((c010 - c000) * ox * oz
              + (c110 - c100) * fx * oz
              + (c011 - c001) * ox * fz
              + (c111 - c101) * fx * fz)
        gz = ((c001 - c000) * ox * oy
              + (c101 - c100) * fx * oy
              + (c011 - c010) * ox * fy
              + (c111 - c110) * fx * fy)
        return np.stack([gx, gy, gz], axis=-1)

    def _interp_grad(self, c, f):
        """Analytic gradient of the trilinear interpolant [per Å]."""
        return self._interp_grad_raw(c, f) / self.spacing

    # ------------------------------------------------------------------
    # public lookups

    def interatom_energy(self, coords: np.ndarray, type_idx: np.ndarray,
                         charges: np.ndarray, solpar: np.ndarray,
                         vol: np.ndarray,
                         with_gradient: bool = False):
        """Per-atom intermolecular energies (and optionally gradients).

        Parameters
        ----------
        coords:
            ``(pop, n_atoms, 3)`` (or unbatched ``(n_atoms, 3)``).
        type_idx / charges / solpar / vol:
            Per-atom grid-map index and AD4 parameters, each ``(n_atoms,)``.

        Returns
        -------
        ``(pop, n_atoms)`` energies, plus ``(pop, n_atoms, 3)`` gradients
        when ``with_gradient`` is set.
        """
        _, i0, i1, f, out = self._locate(coords)
        charges = np.asarray(charges, dtype=np.float64)
        solpar = np.asarray(solpar, dtype=np.float64)
        vol = np.asarray(vol, dtype=np.float64)

        # fused corner gather + channel-stacked blends: one take for all
        # four map channels, then one (vectorised over the channel axis)
        # trilinear blend — per-channel values are bit-identical to four
        # separate single-channel interpolations
        c = self._gather_corners(type_idx, i0, i1)     # (4, ..., n, 8)
        e = self._interp(c, f)                         # (4, ..., n)
        energy = e[0] + charges * e[1] + solpar * e[2] + vol * e[3]

        # out-of-box quadratic penalty (grid-space displacement -> Å)
        d_out = out * self.spacing
        energy = energy + OUT_OF_BOX_PENALTY * np.sum(d_out ** 2, axis=-1)

        if not with_gradient:
            return energy

        g = self._interp_grad(c, f)                    # (4, ..., n, 3)
        grad = (g[0] + charges[..., None] * g[1]
                + solpar[..., None] * g[2] + vol[..., None] * g[3])
        grad = grad + 2.0 * OUT_OF_BOX_PENALTY * d_out
        return energy, grad
