"""Receptor affinity grid maps with trilinear interpolation and gradients.

AutoDock precomputes, per ligand atom type, a 3-D grid of interaction
energies with the rigid receptor; docking then evaluates the intermolecular
score as one trilinear interpolation per atom (InterScore, Algorithm 2) and
its gradient analytically from the same eight corners (InterGradient,
Algorithm 4).  This module reproduces that machinery:

* one affinity map per ligand atom type (vdW + H-bond, weights baked in),
* an electrostatics map (multiplied by the atom charge at lookup),
* two desolvation maps (volume- and solvation-weighted receptor sums,
  combined with the atom's own parameters at lookup),
* a quadratic out-of-box penalty that pushes strays back inside, as the
  CUDA kernels do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GridMaps", "OUT_OF_BOX_PENALTY"]

#: quadratic penalty slope for atoms outside the box [kcal/mol/Å^2]
OUT_OF_BOX_PENALTY = 50.0


@dataclass
class GridMaps:
    """A set of docking grid maps.

    Attributes
    ----------
    origin:
        Cartesian position of grid node ``(0, 0, 0)`` [Å].
    spacing:
        Grid spacing [Å] (AutoDock default 0.375).
    type_names:
        Atom-type order of the ``affinity`` stack.
    affinity:
        ``(n_types, nx, ny, nz)`` vdW+H-bond maps (FE weights baked in).
    elec:
        ``(nx, ny, nz)`` electrostatic potential map (weighted; multiply by
        the atom charge).
    desolv_v / desolv_s:
        ``(nx, ny, nz)`` receptor desolvation sums (volume-weighted and
        solvation-weighted); combined at lookup with per-atom parameters.
    """

    origin: np.ndarray
    spacing: float
    type_names: list[str]
    affinity: np.ndarray
    elec: np.ndarray
    desolv_v: np.ndarray
    desolv_s: np.ndarray

    def __post_init__(self) -> None:
        self.origin = np.asarray(self.origin, dtype=np.float64)
        self.affinity = np.asarray(self.affinity, dtype=np.float64)
        if self.affinity.ndim != 4 or self.affinity.shape[0] != len(self.type_names):
            raise ValueError("affinity must be (n_types, nx, ny, nz)")
        shape = self.affinity.shape[1:]
        for name in ("elec", "desolv_v", "desolv_s"):
            arr = np.asarray(getattr(self, name), dtype=np.float64)
            if arr.shape != shape:
                raise ValueError(f"{name} map shape {arr.shape} != {shape}")
            setattr(self, name, arr)
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")

    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.affinity.shape[1:]

    @property
    def box_lo(self) -> np.ndarray:
        return self.origin

    @property
    def box_hi(self) -> np.ndarray:
        return self.origin + (np.array(self.shape) - 1) * self.spacing

    def type_index(self, atom_types: list[str]) -> np.ndarray:
        """Map atom type names to affinity-map indices."""
        lut = {t: k for k, t in enumerate(self.type_names)}
        try:
            return np.asarray([lut[t] for t in atom_types], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"no grid map for atom type {exc.args[0]!r}") from None

    # ------------------------------------------------------------------
    # interpolation core

    def _locate(self, coords: np.ndarray):
        """Grid-relative coordinates, corner indices, fractions, and the
        out-of-box displacement of every atom."""
        u = (np.asarray(coords, dtype=np.float64) - self.origin) / self.spacing
        dims = np.asarray(self.shape, dtype=np.float64)
        # non-finite coordinates (degenerate poses) land far outside the
        # box: clamped inside with a very large out-of-box penalty
        u = np.nan_to_num(u, nan=1e4, posinf=1e4, neginf=-1e4)
        uc = np.clip(u, 0.0, dims - 1.0 - 1e-9)
        out = u - uc                     # signed out-of-box displacement
        i0 = np.floor(uc).astype(np.int64)
        i1 = np.minimum(i0 + 1, (np.asarray(self.shape) - 1))
        f = uc - i0
        return uc, i0, i1, f, out

    @staticmethod
    def _corners(maps: np.ndarray, sel, i0, i1):
        """Gather the eight corner values.

        ``maps`` is ``(T, nx, ny, nz)`` with ``sel`` per-atom map indices, or
        ``(nx, ny, nz)`` with ``sel is None``.
        """
        x0, y0, z0 = i0[..., 0], i0[..., 1], i0[..., 2]
        x1, y1, z1 = i1[..., 0], i1[..., 1], i1[..., 2]
        if sel is None:
            g = lambda ix, iy, iz: maps[ix, iy, iz]
        else:
            g = lambda ix, iy, iz: maps[sel, ix, iy, iz]
        return (g(x0, y0, z0), g(x1, y0, z0), g(x0, y1, z0), g(x1, y1, z0),
                g(x0, y0, z1), g(x1, y0, z1), g(x0, y1, z1), g(x1, y1, z1))

    @staticmethod
    def _interp(c, f):
        """Trilinear blend of the eight corner values ``c`` at fractions ``f``."""
        fx, fy, fz = f[..., 0], f[..., 1], f[..., 2]
        c000, c100, c010, c110, c001, c101, c011, c111 = c
        c00 = c000 * (1 - fx) + c100 * fx
        c10 = c010 * (1 - fx) + c110 * fx
        c01 = c001 * (1 - fx) + c101 * fx
        c11 = c011 * (1 - fx) + c111 * fx
        c0 = c00 * (1 - fy) + c10 * fy
        c1 = c01 * (1 - fy) + c11 * fy
        return c0 * (1 - fz) + c1 * fz

    def _interp_grad(self, c, f):
        """Analytic gradient of the trilinear interpolant [per Å]."""
        fx, fy, fz = f[..., 0], f[..., 1], f[..., 2]
        c000, c100, c010, c110, c001, c101, c011, c111 = c
        gx = ((c100 - c000) * (1 - fy) * (1 - fz)
              + (c110 - c010) * fy * (1 - fz)
              + (c101 - c001) * (1 - fy) * fz
              + (c111 - c011) * fy * fz)
        gy = ((c010 - c000) * (1 - fx) * (1 - fz)
              + (c110 - c100) * fx * (1 - fz)
              + (c011 - c001) * (1 - fx) * fz
              + (c111 - c101) * fx * fz)
        gz = ((c001 - c000) * (1 - fx) * (1 - fy)
              + (c101 - c100) * fx * (1 - fy)
              + (c011 - c010) * (1 - fx) * fy
              + (c111 - c110) * fx * fy)
        return np.stack([gx, gy, gz], axis=-1) / self.spacing

    # ------------------------------------------------------------------
    # public lookups

    def interatom_energy(self, coords: np.ndarray, type_idx: np.ndarray,
                         charges: np.ndarray, solpar: np.ndarray,
                         vol: np.ndarray,
                         with_gradient: bool = False):
        """Per-atom intermolecular energies (and optionally gradients).

        Parameters
        ----------
        coords:
            ``(pop, n_atoms, 3)`` (or unbatched ``(n_atoms, 3)``).
        type_idx / charges / solpar / vol:
            Per-atom grid-map index and AD4 parameters, each ``(n_atoms,)``.

        Returns
        -------
        ``(pop, n_atoms)`` energies, plus ``(pop, n_atoms, 3)`` gradients
        when ``with_gradient`` is set.
        """
        _, i0, i1, f, out = self._locate(coords)
        charges = np.asarray(charges, dtype=np.float64)
        solpar = np.asarray(solpar, dtype=np.float64)
        vol = np.asarray(vol, dtype=np.float64)

        caff = self._corners(self.affinity, type_idx, i0, i1)
        cel = self._corners(self.elec, None, i0, i1)
        cdv = self._corners(self.desolv_v, None, i0, i1)
        cds = self._corners(self.desolv_s, None, i0, i1)

        energy = (self._interp(caff, f)
                  + charges * self._interp(cel, f)
                  + solpar * self._interp(cdv, f)
                  + vol * self._interp(cds, f))

        # out-of-box quadratic penalty (grid-space displacement -> Å)
        d_out = out * self.spacing
        energy = energy + OUT_OF_BOX_PENALTY * np.sum(d_out ** 2, axis=-1)

        if not with_gradient:
            return energy

        grad = (self._interp_grad(caff, f)
                + charges[..., None] * self._interp_grad(cel, f)
                + solpar[..., None] * self._interp_grad(cdv, f)
                + vol[..., None] * self._interp_grad(cds, f))
        grad = grad + 2.0 * OUT_OF_BOX_PENALTY * d_out
        return energy, grad
