"""Guarded reduction: fault checks and per-block exact fallback.

:class:`GuardedReduction` wraps any reduction back-end and inspects every
``reduce4`` output block.  The mirror in a real deployment is a guarded
CUDA kernel: after the Tensor Core epilogue each block tests its four
totals, and a block whose totals are non-finite (or pinned at the FP16
saturation limit) re-runs its reduction on the FP32 SIMT tree — the
baseline path that is resident in the binary anyway — before the gradient
conversion consumes them.

Policies
--------
``raise``
    Turn the first detected fault into a
    :class:`~repro.robustness.faults.NumericalFaultError` (fail-stop; for
    campaigns whose retry layer re-runs the cell).
``degrade``
    Re-reduce only the offending blocks with the exact FP32 SIMT backend
    and continue — graceful degradation, the production default.
``ignore``
    Audit only: count faults in the ledger but return the raw output.
"""

from __future__ import annotations

import numpy as np

from repro.reduction.api import ReductionBackend, SimtReduction
from repro.robustness.faults import (
    FP16_MAX,
    FaultLedger,
    NumericalFaultError,
    fault_mask,
)

__all__ = ["POLICIES", "GuardedReduction"]

POLICIES = ("raise", "degrade", "ignore")


class GuardedReduction(ReductionBackend):
    """Fault-checking wrapper around a reduction back-end.

    Parameters
    ----------
    inner:
        The wrapped back-end whose outputs are checked.
    policy:
        ``"raise"`` / ``"degrade"`` / ``"ignore"`` (see module docstring).
    ledger:
        Shared :class:`FaultLedger`; a private one is created if omitted.
    fallback:
        Exact back-end used to re-reduce faulty blocks under ``degrade``
        (default: the FP32 SIMT baseline, mirroring the hardware fallback).
    check_overflow:
        Treat ``|x| >= 65504`` as a fault.  Defaults to automatic: enabled
        when the wrapped back-end carries an FP16 accumulator (whose sums
        saturate there), disabled otherwise.
    """

    def __init__(self, inner: ReductionBackend,
                 policy: str = "degrade",
                 ledger: FaultLedger | None = None,
                 fallback: ReductionBackend | None = None,
                 check_overflow: bool | None = None) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown fault policy {policy!r}; expected one of {POLICIES}")
        self.inner = inner
        self.policy = policy
        self.ledger = ledger if ledger is not None else FaultLedger()
        self.fallback = fallback if fallback is not None else SimtReduction()
        if check_overflow is None:
            check_overflow = (
                getattr(inner, "accumulator_format", None) == "fp16")
        self.check_overflow = check_overflow
        #: per-block fault mask of the most recent ``reduce4`` call
        #: (set before any policy action, so callers can attribute faults
        #: to cohort lanes even when the ``raise`` policy fires)
        self.last_fault_mask: np.ndarray | None = None
        # the guard adds epilogue compares, not reduction work: priced and
        # named after the wrapped back-end
        self.cost_key = inner.cost_key
        self.name = f"guarded({inner.name})"

    def __repr__(self) -> str:
        return (f"GuardedReduction({self.inner!r}, policy={self.policy!r}, "
                f"check_overflow={self.check_overflow})")

    # ------------------------------------------------------------------

    def reduce4(self, vectors: np.ndarray) -> np.ndarray:
        out = self.inner.reduce4(vectors)
        mask = fault_mask(out, check_overflow=self.check_overflow,
                          overflow_limit=FP16_MAX)
        self.last_fault_mask = mask
        n_blocks = int(np.prod(mask.shape)) if mask.shape else 1
        self.ledger.record_checked(n_blocks)
        n_faulty = int(np.count_nonzero(mask))
        if n_faulty == 0:
            return out
        # attribute detections to the injection harness where ground truth
        # is available, so tests can demand exact injected-fault accounting
        injected = getattr(self.inner, "last_injected_mask", None)
        if injected is not None and injected.shape == mask.shape:
            n_injected = int(np.count_nonzero(mask & injected))
            self.ledger.record_faults(n_injected, site="injected")
            self.ledger.record_faults(n_faulty - n_injected)
        else:
            self.ledger.record_faults(n_faulty)

        if self.policy == "raise":
            raise NumericalFaultError(
                f"{n_faulty} of {n_blocks} reduction blocks returned "
                f"non-finite or FP16-overflowed totals "
                f"(backend {self.inner.name})",
                n_blocks=n_faulty)
        if self.policy == "ignore":
            return out

        # degrade: re-reduce only the offending blocks exactly
        out = np.array(out, copy=True)
        if mask.shape:
            repaired = self.fallback.reduce4(
                np.asarray(vectors)[mask])
            out[mask] = repaired
        else:                                   # single unbatched block
            repaired = self.fallback.reduce4(vectors)
            out = repaired
        still_bad = fault_mask(repaired, check_overflow=False)
        n_unrecoverable = int(np.count_nonzero(still_bad))
        self.ledger.record_recovered(n_faulty - n_unrecoverable)
        # inputs themselves were corrupt (e.g. NaN grid lookups): no
        # reduction order can repair that; the consumer-side guards take over
        self.ledger.record_unrecoverable(n_unrecoverable)
        return out
