"""Deterministic fault injection for the reduction pipeline.

Reproduces the failure modes the detectors must catch — NaN poisoning,
FP16-range overflow, and radiation-style single bit-flips — at three sites:

* **reduce4 outputs** (:class:`InjectingReduction`): per-block corruption of
  the four reduced totals, the granularity the guarded kernel inspects;
* **MMA accumulator tiles** (:meth:`FaultInjector.tile_hook` installed via
  :func:`repro.tensorcore.mma.fault_hook`): corruption inside the Tensor
  Core epilogue, before the ``W`` extraction;
* **grid lookups** (:func:`corrupt_grid_maps`): NaN cells in the affinity
  maps, modelling corrupt device memory feeding InterScore/InterGradient.

Injection is *stride-deterministic*: a rate of ``r`` corrupts exactly every
``round(1/r)``-th block (or tile) the injector sees, so a run injects an
exactly reproducible — and exactly countable — fault set, independent of
timing.  Lane/element/bit choices come from a seeded generator.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.reduction.api import ReductionBackend

__all__ = ["FaultInjector", "InjectingReduction", "corrupt_grid_maps",
           "build_injected_backend", "run_injection_study"]

#: the "overflow" mode writes this value: finite, but past the FP16 range,
#: and negative so a poisoned energy lane hijacks best-pose bookkeeping —
#: the silent-corruption mechanism behind the paper's Figure 1
OVERFLOW_VALUE = -98304.0

_MODES = ("nan", "inf", "overflow", "bitflip")


class FaultInjector:
    """Stride-deterministic corruption source shared by all injection sites.

    Parameters
    ----------
    rate:
        Target fault rate per block; realised as one injection every
        ``round(1/rate)`` blocks (``0`` disables injection).
    mode:
        ``"nan"`` | ``"inf"`` | ``"overflow"`` | ``"bitflip"``.
    seed:
        Seeds the lane/element/bit choices (the stride itself is exact).
    lanes:
        ``"one"`` corrupts a single randomly chosen lane of a scheduled
        block; ``"all"`` corrupts all four (a dead accumulator fragment).
    """

    def __init__(self, rate: float, mode: str = "nan", seed: int = 0,
                 lanes: str = "one") -> None:
        if rate < 0 or rate > 1:
            raise ValueError("rate must be in [0, 1]")
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {_MODES}")
        if lanes not in ("one", "all"):
            raise ValueError("lanes must be 'one' or 'all'")
        self.rate = rate
        self.mode = mode
        self.seed = seed
        self.lanes = lanes
        self.period = int(round(1.0 / rate)) if rate > 0 else 0
        self.rng = np.random.default_rng(seed)
        #: blocks/tiles inspected so far
        self.n_seen = 0
        #: faults actually written
        self.n_injected = 0

    def reset(self) -> None:
        """Restart the deterministic schedule (same seed, same faults)."""
        self.rng = np.random.default_rng(self.seed)
        self.n_seen = 0
        self.n_injected = 0

    # ------------------------------------------------------------------

    def _value(self, current: np.float32) -> np.float32:
        if self.mode == "nan":
            return np.float32(np.nan)
        if self.mode == "inf":
            return np.float32(-np.inf if self.rng.integers(2) else np.inf)
        if self.mode == "overflow":
            return np.float32(OVERFLOW_VALUE)
        # bitflip: flip one uniformly chosen bit of the IEEE-754 encoding
        bit = int(self.rng.integers(32))
        word = np.float32(current).view(np.uint32)
        return (word ^ np.uint32(1 << bit)).view(np.float32)

    def _due(self, n_new: int) -> np.ndarray:
        """Indices (into the new batch) scheduled for corruption."""
        if self.period == 0:
            self.n_seen += n_new
            return np.empty(0, dtype=np.intp)
        start = self.n_seen
        first = (-start - 1) % self.period           # next k with (start+k+1)%p==0
        idx = np.arange(first, n_new, self.period, dtype=np.intp)
        self.n_seen += n_new
        return idx

    def corrupt_blocks(self, out: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Corrupt scheduled blocks of a ``(..., 4)`` reduce4 output.

        Returns ``(corrupted, mask)`` where ``mask`` flags the corrupted
        blocks over the leading dimensions — the ground truth the guarded
        wrapper uses to attribute detections to the injector.
        """
        flat = out.reshape(-1, 4)
        mask = np.zeros(flat.shape[0], dtype=bool)
        idx = self._due(flat.shape[0])
        if idx.size == 0:
            return out, mask.reshape(out.shape[:-1])
        flat = flat.copy()
        for i in idx:
            if self.lanes == "all":
                for lane in range(4):
                    flat[i, lane] = self._value(flat[i, lane])
            else:
                lane = int(self.rng.integers(4))
                flat[i, lane] = self._value(flat[i, lane])
        mask[idx] = True
        self.n_injected += int(idx.size)
        return flat.reshape(out.shape), mask.reshape(out.shape[:-1])

    def corrupt_values(self, values: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Corrupt scheduled scalar elements of an arbitrary array.

        The generic stride site for paths that are not block-shaped —
        notably the cohort grid-gather (the eight trilinear corner values
        fetched per atom).  Returns ``(corrupted, mask)`` with ``mask``
        flagging corrupted elements at ``values.shape``; when nothing is
        due this call, ``values`` is returned unchanged (no copy).
        """
        flat = values.reshape(-1)
        mask = np.zeros(flat.shape[0], dtype=bool)
        idx = self._due(flat.shape[0])
        if idx.size == 0:
            return values, mask.reshape(values.shape)
        flat = flat.copy()
        for i in idx:
            flat[i] = self._value(np.float32(flat[i]))
        mask[idx] = True
        self.n_injected += int(idx.size)
        return flat.reshape(values.shape), mask.reshape(values.shape)

    def corrupt_tiles(self, tiles: np.ndarray, *,
                      element: tuple[int, int] | None = None) -> np.ndarray:
        """Corrupt scheduled ``(..., 16, 16)`` accumulator tiles.

        ``element`` pins the corrupted (row, col); by default both are drawn
        from the seeded generator — corruption outside column 0 models the
        (realistic) case where a flipped accumulator element never reaches
        the extracted ``W`` column.
        """
        t = tiles.reshape(-1, tiles.shape[-2], tiles.shape[-1])
        idx = self._due(t.shape[0])
        if idx.size == 0:
            return tiles
        t = t.copy()
        for i in idx:
            if element is None:
                r = int(self.rng.integers(t.shape[-2]))
                c = int(self.rng.integers(t.shape[-1]))
            else:
                r, c = element
            t[i, r, c] = self._value(t[i, r, c])
        self.n_injected += int(idx.size)
        return t.reshape(tiles.shape)

    def tile_hook(self, *, element: tuple[int, int] | None = None,
                  sites: tuple[str, ...] | None = None):
        """Hook for :func:`repro.tensorcore.mma.fault_hook`.

        ``sites`` restricts injection to specific hook sites (e.g. only
        ``"mma-accumulator"``, leaving ``"tcec-simt-acc"`` clean).
        """
        def hook(tile: np.ndarray, site: str) -> np.ndarray:
            if sites is not None and site not in sites:
                return tile
            return self.corrupt_tiles(tile, element=element)
        return hook


class InjectingReduction(ReductionBackend):
    """Back-end wrapper that corrupts ``reduce4`` outputs on schedule.

    Sits *inside* a :class:`~repro.robustness.guarded.GuardedReduction`, so
    the guard sees (and must catch) every injected fault.
    """

    def __init__(self, inner: ReductionBackend,
                 injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self.cost_key = inner.cost_key
        self.name = f"inject({inner.name})"
        # let the guard's overflow auto-detection see through the wrapper
        acc = getattr(inner, "accumulator_format", None)
        if acc is not None:
            self.accumulator_format = acc

    def __repr__(self) -> str:
        return (f"InjectingReduction({self.inner!r}, rate="
                f"{self.injector.rate}, mode={self.injector.mode!r})")

    def reduce4(self, vectors: np.ndarray) -> np.ndarray:
        out, mask = self.injector.corrupt_blocks(self.inner.reduce4(vectors))
        #: ground-truth corruption mask of the most recent call; the guard
        #: reads it to split detections into "injected" vs natural faults
        self.last_injected_mask = mask
        return out


def corrupt_grid_maps(maps, injector: FaultInjector):
    """Return a copy of ``maps`` with faults injected into affinity cells.

    Models corrupt rows of device memory under the trilinear lookup: every
    scheduled cell (stride over the flattened affinity stack) is overwritten
    with the injector's fault value.  NaN cells propagate through
    InterScore/InterGradient into the reduction inputs — faults no
    re-reduction can repair (the ledger's ``unrecoverable`` path).
    """
    affinity = maps.affinity.copy()
    flat = affinity.reshape(-1)
    idx = injector._due(flat.shape[0])
    for i in idx:
        flat[i] = injector._value(np.float32(flat[i]))
    injector.n_injected += int(idx.size)
    return replace(maps, affinity=affinity)


# ----------------------------------------------------------------------
# end-to-end study harness (CLI `inject` subcommand and the recovery tests)

def build_injected_backend(base: str = "tc-fp16", policy: str = "degrade",
                           rate: float = 1e-3, mode: str = "nan",
                           seed: int = 0, lanes: str = "one", ledger=None):
    """Assemble guard(inject(base)) and return ``(backend, injector)``."""
    from repro.reduction.api import get_reduction_backend
    from repro.robustness.guarded import GuardedReduction

    injector = FaultInjector(rate, mode=mode, seed=seed, lanes=lanes)
    injecting = InjectingReduction(get_reduction_backend(base), injector)
    return GuardedReduction(injecting, policy=policy, ledger=ledger), injector


def run_injection_study(case_name: str, *, base: str = "tc-fp16",
                        rate: float = 1e-3, mode: str = "overflow",
                        lanes: str = "all", n_runs: int = 4, seed: int = 0,
                        lga=None) -> dict:
    """Fault-injection recovery study on one test case.

    Runs the same seeded LGA ensemble under (a) the clean FP32 baseline,
    (b) the injected ``base`` back-end with ``policy="ignore"`` and (c) with
    ``policy="degrade"``, and reports best scores plus ledger summaries —
    the end-to-end evidence that detection + per-block fallback recovers
    reference accuracy (EXPERIMENTS.md, fault-injection study).
    """
    from repro.analysis.campaign import E50Campaign  # noqa: F401  (API kin)
    from repro.robustness.faults import FaultLedger
    from repro.search.lga import LGAConfig
    from repro.search.parallel import ParallelLGA
    from repro.testcases import get_test_case

    case = get_test_case(case_name)
    lga = lga or LGAConfig(pop_size=16, max_evals=4_000, max_gens=60,
                           ls_iters=20, ls_rate=0.25)

    def run_scores(backend) -> list[float]:
        runner = ParallelLGA(case.scoring(), backend, lga, seed=seed)
        return [r.best_score for r in runner.run(n_runs)]

    out: dict = {"case": case_name, "base": base, "rate": rate, "mode": mode,
                 "policies": {}}
    base_scores = run_scores("baseline")
    out["baseline_best"] = min(base_scores)
    out["baseline_mean"] = sum(base_scores) / len(base_scores)
    for policy in ("ignore", "degrade"):
        ledger = FaultLedger()
        backend, injector = build_injected_backend(
            base=base, policy=policy, rate=rate, mode=mode, seed=seed,
            lanes=lanes, ledger=ledger)
        scores = run_scores(backend)
        out["policies"][policy] = {
            "best_score": min(scores),
            "mean_score": sum(scores) / len(scores),
            "injected": injector.n_injected,
            "detected_injected": ledger.by_site.get("injected", 0),
            "ledger": ledger.summary(),
        }
    return out
