"""Numerical fault tolerance for the Tensor Core reduction pipeline.

The paper's central hazard is *silent* numerical failure: an FP16 Tensor
Core reduction does not crash when its accumulator overflows at 65504 or a
clash pose drives a contribution to ``inf`` — it quietly corrupts the
gradient and the best-pose bookkeeping (Figure 1).  This package adds the
machinery a production deployment of the kernels needs to detect, contain,
and recover from such faults:

* :class:`GuardedReduction` — wraps any
  :class:`~repro.reduction.api.ReductionBackend` and checks every
  ``reduce4`` output block for NaN / Inf / FP16-range overflow.  Faults are
  counted in a :class:`FaultLedger`; the ``degrade`` policy re-reduces the
  offending blocks with the exact FP32 SIMT backend (a per-block hardware
  fallback), ``raise`` turns silent corruption into a
  :class:`NumericalFaultError`, and ``ignore`` merely audits.
* :mod:`repro.robustness.inject` — a deterministic fault-injection harness
  (bit-flips, NaN, FP16 overflow) that corrupts MMA accumulator tiles,
  reduction outputs, or grid-map lookups, used to prove end to end that the
  detectors fire and that degraded runs recover reference accuracy.
* :class:`Watchdog` / :class:`CellFailure` — per-cell wall-clock and
  evaluation watchdogs plus the structured failure records that make long
  :class:`~repro.analysis.campaign.E50Campaign` sweeps resumable instead of
  fragile.
"""

from repro.robustness.faults import (
    FP16_MAX,
    FaultLedger,
    LaneQuarantine,
    NumericalFaultError,
    fault_mask,
)
from repro.robustness.guarded import POLICIES, GuardedReduction
from repro.robustness.inject import (
    FaultInjector,
    InjectingReduction,
    corrupt_grid_maps,
)
from repro.robustness.watchdog import CellFailure, Watchdog, WatchdogTimeout

__all__ = [
    "FP16_MAX",
    "FaultLedger",
    "LaneQuarantine",
    "NumericalFaultError",
    "fault_mask",
    "POLICIES",
    "GuardedReduction",
    "FaultInjector",
    "InjectingReduction",
    "corrupt_grid_maps",
    "CellFailure",
    "Watchdog",
    "WatchdogTimeout",
]
