"""Per-cell watchdogs and structured failure records for long sweeps.

A multi-hour E50 sweep must not die because one (case, back-end) cell
hangs or raises: the campaign wraps each cell in a :class:`Watchdog`
(wall-clock and evaluation budget) and converts terminal errors into
:class:`CellFailure` records instead of propagating them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Watchdog", "WatchdogTimeout", "CellFailure"]


class WatchdogTimeout(RuntimeError):
    """A cell exceeded its wall-clock or evaluation watchdog limit."""

    def __init__(self, message: str, *, elapsed: float = 0.0,
                 evals: int = 0) -> None:
        super().__init__(message)
        self.elapsed = elapsed
        self.evals = evals


class Watchdog:
    """Abort a cell that runs past its wall-clock or evaluation budget.

    The search loop calls :meth:`check` once per generation (see
    :meth:`repro.search.parallel.ParallelLGA.run`'s ``on_generation``);
    exceeding a limit raises :class:`WatchdogTimeout`, which the campaign
    records as a :class:`CellFailure` and moves on.

    Parameters
    ----------
    wall_seconds:
        Wall-clock limit (``None`` disables).
    max_evals:
        Evaluation-count limit across the cell (``None`` disables); a
        backstop against mis-configured or runaway budgets.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(self, wall_seconds: float | None = None,
                 max_evals: int | None = None,
                 clock=time.monotonic) -> None:
        self.wall_seconds = wall_seconds
        self.max_evals = max_evals
        self._clock = clock
        self._start = clock()

    def check(self, generations: int, evals: int) -> None:
        """Raise :class:`WatchdogTimeout` when a limit is exceeded."""
        elapsed = self._clock() - self._start
        if self.wall_seconds is not None and elapsed > self.wall_seconds:
            raise WatchdogTimeout(
                f"cell exceeded wall-clock watchdog "
                f"({elapsed:.1f}s > {self.wall_seconds:.1f}s at generation "
                f"{generations})", elapsed=elapsed, evals=evals)
        if self.max_evals is not None and evals > self.max_evals:
            raise WatchdogTimeout(
                f"cell exceeded evaluation watchdog ({evals} > "
                f"{self.max_evals} evals at generation {generations})",
                elapsed=elapsed, evals=evals)


@dataclass(frozen=True)
class CellFailure:
    """Structured record of a campaign cell that could not complete."""

    case: str
    backend: str
    error_type: str
    message: str
    #: attempts consumed (1 = failed on first try with no retries left)
    attempts: int
    #: watchdog aborts are not retried; transient errors are
    retryable: bool = True
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        d = dict(self.__dict__)
        d["extra"] = dict(self.extra)
        return d
