"""Fault detection primitives and the per-run fault ledger.

A "fault" is any reduction output the docking kernels cannot safely
consume: NaN, ±Inf, or a magnitude beyond the FP16 representable range
(values an FP16 accumulator fragment would have saturated).  Detection
operates on ``reduce4`` output blocks — one ``(4,)`` lane group per thread
block — because that is the granularity at which the CUDA kernels could
re-issue work to a fallback path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FP16_MAX", "NumericalFaultError", "fault_mask", "FaultLedger"]

#: Largest finite FP16 magnitude; beyond it an FP16 accumulator saturates.
FP16_MAX = 65504.0


class NumericalFaultError(ArithmeticError):
    """A guarded reduction produced non-finite or out-of-range values.

    Raised by :class:`~repro.robustness.guarded.GuardedReduction` under the
    ``raise`` policy.  Carries the number of faulty blocks and the site
    label so campaign-level retry logic can classify the failure.
    """

    def __init__(self, message: str, *, n_blocks: int = 0,
                 site: str = "reduce4") -> None:
        super().__init__(message)
        self.n_blocks = n_blocks
        self.site = site


def fault_mask(values: np.ndarray, *, check_overflow: bool = False,
               overflow_limit: float = FP16_MAX) -> np.ndarray:
    """Boolean per-block fault mask for ``(..., 4)`` reduction outputs.

    A block is faulty when any of its four lanes is NaN/Inf or — with
    ``check_overflow`` — reaches ``overflow_limit`` in magnitude (saturated
    FP16 sums sit exactly at the limit, hence ``>=``).
    """
    v = np.asarray(values)
    bad = ~np.isfinite(v)
    if check_overflow:
        with np.errstate(invalid="ignore"):
            bad |= np.abs(v) >= overflow_limit
    return np.any(bad, axis=-1)


@dataclass
class FaultLedger:
    """Running account of detected faults and the actions taken.

    One ledger is attached per run (engine, campaign cell, or test); all
    guarded reductions sharing it accumulate into the same counters, so the
    totals reflect the whole docking experiment.
    """

    #: reduce4 blocks inspected
    blocks_checked: int = 0
    #: blocks that failed the fault check
    blocks_faulty: int = 0
    #: faulty blocks repaired by the exact fallback (``degrade`` policy)
    blocks_recovered: int = 0
    #: faulty blocks the fallback could not repair (corrupt *inputs*)
    blocks_unrecoverable: int = 0
    #: non-finite gene-space gradient entries zeroed by the consumer
    #: (ADADELTA's last-line guard; counted only when a ledger is attached)
    consumer_zeroed: int = 0
    #: detections broken down by site label ("reduce4", "grid", ...)
    by_site: dict[str, int] = field(default_factory=dict)

    def record_checked(self, n_blocks: int) -> None:
        self.blocks_checked += int(n_blocks)

    def record_faults(self, n_blocks: int, site: str = "reduce4") -> None:
        if n_blocks:
            self.blocks_faulty += int(n_blocks)
            self.by_site[site] = self.by_site.get(site, 0) + int(n_blocks)

    def record_recovered(self, n_blocks: int) -> None:
        self.blocks_recovered += int(n_blocks)

    def record_unrecoverable(self, n_blocks: int) -> None:
        self.blocks_unrecoverable += int(n_blocks)

    def record_consumer_zeroed(self, n_values: int) -> None:
        self.consumer_zeroed += int(n_values)

    # ------------------------------------------------------------------

    @property
    def fault_rate(self) -> float:
        """Faulty fraction of inspected blocks (nan before any check)."""
        if self.blocks_checked == 0:
            return float("nan")
        return self.blocks_faulty / self.blocks_checked

    def merge(self, other: "FaultLedger") -> None:
        """Fold another ledger's counters into this one."""
        self.blocks_checked += other.blocks_checked
        self.blocks_faulty += other.blocks_faulty
        self.blocks_recovered += other.blocks_recovered
        self.blocks_unrecoverable += other.blocks_unrecoverable
        self.consumer_zeroed += other.consumer_zeroed
        for site, n in other.by_site.items():
            self.by_site[site] = self.by_site.get(site, 0) + n

    def summary(self) -> dict:
        """JSON-ready counter snapshot (surfaced in DockingResult)."""
        return {
            "blocks_checked": self.blocks_checked,
            "blocks_faulty": self.blocks_faulty,
            "blocks_recovered": self.blocks_recovered,
            "blocks_unrecoverable": self.blocks_unrecoverable,
            "consumer_zeroed": self.consumer_zeroed,
            "fault_rate": self.fault_rate,
            "by_site": dict(self.by_site),
        }

    def __str__(self) -> str:
        return (f"FaultLedger({self.blocks_faulty}/{self.blocks_checked} "
                f"blocks faulty, {self.blocks_recovered} recovered, "
                f"{self.blocks_unrecoverable} unrecoverable)")
