"""Fault detection primitives and the per-run fault ledger.

A "fault" is any reduction output the docking kernels cannot safely
consume: NaN, ±Inf, or a magnitude beyond the FP16 representable range
(values an FP16 accumulator fragment would have saturated).  Detection
operates on ``reduce4`` output blocks — one ``(4,)`` lane group per thread
block — because that is the granularity at which the CUDA kernels could
re-issue work to a fallback path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FP16_MAX", "NumericalFaultError", "fault_mask", "FaultLedger",
           "LaneQuarantine"]

#: Largest finite FP16 magnitude; beyond it an FP16 accumulator saturates.
FP16_MAX = 65504.0


class NumericalFaultError(ArithmeticError):
    """A guarded reduction produced non-finite or out-of-range values.

    Raised by :class:`~repro.robustness.guarded.GuardedReduction` under the
    ``raise`` policy.  Carries the number of faulty blocks and the site
    label so campaign-level retry logic can classify the failure.
    """

    def __init__(self, message: str, *, n_blocks: int = 0,
                 site: str = "reduce4",
                 lanes: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.n_blocks = n_blocks
        self.site = site
        #: cohort lanes the faulty blocks belong to, when the caller could
        #: attribute them (empty for single-ligand reductions)
        self.lanes = tuple(int(x) for x in lanes)


def fault_mask(values: np.ndarray, *, check_overflow: bool = False,
               overflow_limit: float = FP16_MAX) -> np.ndarray:
    """Boolean per-block fault mask for ``(..., 4)`` reduction outputs.

    A block is faulty when any of its four lanes is NaN/Inf or — with
    ``check_overflow`` — reaches ``overflow_limit`` in magnitude (saturated
    FP16 sums sit exactly at the limit, hence ``>=``).
    """
    v = np.asarray(values)
    bad = ~np.isfinite(v)
    if check_overflow:
        with np.errstate(invalid="ignore"):
            bad |= np.abs(v) >= overflow_limit
    return np.any(bad, axis=-1)


@dataclass
class FaultLedger:
    """Running account of detected faults and the actions taken.

    One ledger is attached per run (engine, campaign cell, or test); all
    guarded reductions sharing it accumulate into the same counters, so the
    totals reflect the whole docking experiment.
    """

    #: reduce4 blocks inspected
    blocks_checked: int = 0
    #: blocks that failed the fault check
    blocks_faulty: int = 0
    #: faulty blocks repaired by the exact fallback (``degrade`` policy)
    blocks_recovered: int = 0
    #: faulty blocks the fallback could not repair (corrupt *inputs*)
    blocks_unrecoverable: int = 0
    #: non-finite gene-space gradient entries zeroed by the consumer
    #: (ADADELTA's last-line guard; counted only when a ledger is attached)
    consumer_zeroed: int = 0
    #: detections broken down by site label ("reduce4", "grid", ...)
    by_site: dict[str, int] = field(default_factory=dict)
    #: detections broken down by cohort lane (global ligand index);
    #: empty for single-ligand runs where attribution is trivial
    by_lane: dict[int, int] = field(default_factory=dict)

    def record_checked(self, n_blocks: int) -> None:
        self.blocks_checked += int(n_blocks)

    def record_faults(self, n_blocks: int, site: str = "reduce4") -> None:
        if n_blocks:
            self.blocks_faulty += int(n_blocks)
            self.by_site[site] = self.by_site.get(site, 0) + int(n_blocks)

    def record_recovered(self, n_blocks: int) -> None:
        self.blocks_recovered += int(n_blocks)

    def record_unrecoverable(self, n_blocks: int) -> None:
        self.blocks_unrecoverable += int(n_blocks)

    def record_consumer_zeroed(self, n_values: int) -> None:
        self.consumer_zeroed += int(n_values)

    def record_lane_faults(self, lane_counts: dict[int, int]) -> None:
        """Attribute faulty blocks to cohort lanes (global ligand index)."""
        for lane, n in lane_counts.items():
            if n:
                self.by_lane[int(lane)] = \
                    self.by_lane.get(int(lane), 0) + int(n)

    # ------------------------------------------------------------------

    @property
    def fault_rate(self) -> float:
        """Faulty fraction of inspected blocks (nan before any check)."""
        if self.blocks_checked == 0:
            return float("nan")
        return self.blocks_faulty / self.blocks_checked

    def merge(self, other: "FaultLedger") -> None:
        """Fold another ledger's counters into this one."""
        self.blocks_checked += other.blocks_checked
        self.blocks_faulty += other.blocks_faulty
        self.blocks_recovered += other.blocks_recovered
        self.blocks_unrecoverable += other.blocks_unrecoverable
        self.consumer_zeroed += other.consumer_zeroed
        for site, n in other.by_site.items():
            self.by_site[site] = self.by_site.get(site, 0) + n
        for lane, n in other.by_lane.items():
            self.by_lane[lane] = self.by_lane.get(lane, 0) + n

    def summary(self) -> dict:
        """JSON-ready counter snapshot (surfaced in DockingResult)."""
        return {
            "blocks_checked": self.blocks_checked,
            "blocks_faulty": self.blocks_faulty,
            "blocks_recovered": self.blocks_recovered,
            "blocks_unrecoverable": self.blocks_unrecoverable,
            "consumer_zeroed": self.consumer_zeroed,
            "fault_rate": self.fault_rate,
            "by_site": dict(self.by_site),
            "by_lane": {str(k): v for k, v in self.by_lane.items()},
        }

    def __str__(self) -> str:
        return (f"FaultLedger({self.blocks_faulty}/{self.blocks_checked} "
                f"blocks faulty, {self.blocks_recovered} recovered, "
                f"{self.blocks_unrecoverable} unrecoverable)")


@dataclass(frozen=True)
class LaneQuarantine:
    """Why one cohort lane was frozen out of the lock-step search.

    Recorded by :class:`~repro.search.cohort.CohortLGA` the moment a
    ligand's energies or gradients go non-finite (or its guarded
    reduction trips under the ``raise`` policy).  The lane keeps its
    best-so-far result; the siblings continue untouched.
    """

    #: position of the ligand in the cohort it was submitted with
    lane: int
    #: ligand/case name when known (``""`` otherwise)
    name: str
    #: generation index at which the lane was frozen
    generation: int
    #: ``"nonfinite-score"`` or ``"guard-raise"``
    reason: str
    #: human-readable specifics (fault counts, exception text, ...)
    detail: str = ""

    def to_dict(self) -> dict:
        return {"lane": self.lane, "name": self.name,
                "generation": self.generation, "reason": self.reason,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, d: dict) -> "LaneQuarantine":
        return cls(lane=int(d["lane"]), name=d.get("name", ""),
                   generation=int(d["generation"]), reason=d["reason"],
                   detail=d.get("detail", ""))
