"""Serving gateway: async HTTP front-end + sharded, SLO-scheduled pools.

The production-facing layer over :mod:`repro.serve`:

* :mod:`repro.gateway.protocol` — stdlib HTTP/NDJSON wire layer and the
  job-submission codec;
* :mod:`repro.gateway.scheduler` — the :class:`SLOScheduler`: cost-model
  wall-time prediction (:mod:`repro.simt.predictor`) driving admission
  control, shard routing, weighted-deficit-round-robin tenant fairness
  and backlog-based autoscaling;
* :mod:`repro.gateway.server` — the :class:`Gateway`: asyncio front-end,
  one worker-pool thread per content-hash shard, atomic ranked manifest;
* :mod:`repro.gateway.client` — :class:`GatewayClient` for the CLI's
  ``gateway submit``/``watch`` subcommands and the tests.
"""

from repro.gateway.client import (GatewayClient, GatewayError,
                                  GatewayRejected)
from repro.gateway.protocol import job_from_request
from repro.gateway.scheduler import (AdmissionError, ScheduledJob,
                                     SLOScheduler)
from repro.gateway.server import Gateway, GatewayConfig

__all__ = [
    "AdmissionError",
    "Gateway",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayRejected",
    "ScheduledJob",
    "SLOScheduler",
    "job_from_request",
]
