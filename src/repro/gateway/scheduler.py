"""SLO-driven, cost-model-aware scheduling for the serving gateway.

The scheduler sits between HTTP admission and the per-shard worker
pools.  Every decision it makes is driven by *predicted* wall time from
the calibrated :class:`~repro.simt.predictor.RuntimePredictor` — the
paper's cost model closed into a serving control loop:

* **admission control** — a job whose predicted completion time
  (current shard backlog drained at the shard's worker count, plus the
  job itself) exceeds the service SLO or the caller's deadline is
  rejected up front with a structured :class:`AdmissionError` (the
  429 payload the gateway returns), instead of being accepted and
  missing its deadline quietly;
* **shard routing** — ``route="hash"`` uses the content-hash partition
  (:func:`repro.serve.queue.shard_for`: stateless, coordination-free,
  dedup-preserving); ``route="packed"`` bin-packs *new* job ids onto the
  least-loaded shard by predicted backlog while keeping a sticky
  ``job_id -> shard`` map so a resubmitted id still lands on the shard
  that owns it (idempotent completion survives either mode);
* **fairness** — per-shard weighted deficit round-robin across tenants:
  each round credits every backlogged tenant ``quantum × weight``
  seconds of predicted runtime and serves jobs while the tenant's
  deficit covers them, so a tenant flooding the queue with heavy jobs
  cannot starve light interactive traffic;
* **autoscaling** — :meth:`desired_workers` sizes each shard's pool to
  drain its predicted backlog within ``drain_target_s`` (clamped to
  ``[min_workers, max_workers]``); the gateway applies it between
  batches.

All state is guarded by one lock: the asyncio front-end and the shard
runner threads call in concurrently.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs import get_metrics, get_tracer
from repro.serve.queue import DockingJob, shard_for

__all__ = ["AdmissionError", "ScheduledJob", "SLOScheduler"]


class AdmissionError(RuntimeError):
    """Structured 429-style rejection: predicted completion breaks SLO.

    ``payload`` is the JSON body the gateway returns; ``retry_after_s``
    estimates when resubmission would be admitted (backlog drained down
    to where the job fits).
    """

    def __init__(self, job_id: str, shard: int, reason: str,
                 predicted_s: float, backlog_s: float, limit_s: float,
                 retry_after_s: float) -> None:
        super().__init__(
            f"job {job_id[:12]} rejected ({reason}): predicted "
            f"{backlog_s:.2f}s backlog + {predicted_s:.2f}s job "
            f"> {limit_s:.2f}s limit")
        self.payload = {
            "error": "admission_rejected",
            "reason": reason,
            "job_id": job_id,
            "shard": shard,
            "predicted_seconds": predicted_s,
            "backlog_seconds": backlog_s,
            "limit_seconds": limit_s,
            "retry_after_s": retry_after_s,
        }


@dataclass
class ScheduledJob:
    """A job admitted into a shard's tenant queue."""

    job: DockingJob
    tenant: str
    predicted_s: float
    admitted_at: float = field(default_factory=time.monotonic)


class _ShardState:
    """Per-shard scheduler state: tenant queues + WDRR bookkeeping."""

    def __init__(self) -> None:
        self.queues: dict[str, deque[ScheduledJob]] = {}
        self.deficits: dict[str, float] = {}
        self.rotation: deque[str] = deque()   # tenant service order
        self.backlog_s = 0.0                  # predicted queued + running
        self.queued = 0

    def enqueue(self, item: ScheduledJob) -> None:
        q = self.queues.get(item.tenant)
        if q is None:
            q = self.queues[item.tenant] = deque()
            self.deficits.setdefault(item.tenant, 0.0)
            self.rotation.append(item.tenant)
        q.append(item)
        self.queued += 1
        self.backlog_s += item.predicted_s


class SLOScheduler:
    """Admission + fairness + routing over ``n_shards`` shard queues.

    Parameters
    ----------
    n_shards:
        Shard count of the gateway's pool fleet.
    predictor:
        :class:`~repro.simt.predictor.RuntimePredictor` used for every
        admission and packing decision.
    slo_seconds:
        Service-level objective on submit→result latency.  ``None``
        disables the global SLO (deadlines still apply).
    route:
        ``"hash"`` (content-hash partition, default) or ``"packed"``
        (least-predicted-backlog for new ids, sticky thereafter).
    quantum_s:
        WDRR quantum: predicted seconds credited per round to a
        weight-1.0 tenant.
    tenant_weights:
        ``tenant -> weight`` fairness shares (default 1.0 each).
    workers:
        Initial worker count per shard (``0`` counts as 1 for drain-rate
        math: inline execution still executes).
    min_workers / max_workers:
        Autoscale clamp for :meth:`desired_workers`.
    drain_target_s:
        Autoscale target: size each pool to drain its predicted backlog
        within this many seconds.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(self, n_shards: int, predictor,
                 slo_seconds: float | None = None,
                 route: str = "hash",
                 quantum_s: float = 1.0,
                 tenant_weights: dict[str, float] | None = None,
                 workers: int = 1,
                 min_workers: int = 1,
                 max_workers: int = 8,
                 drain_target_s: float = 30.0,
                 clock=time.monotonic) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if route not in ("hash", "packed"):
            raise ValueError(f"unknown route {route!r}; "
                             f"expected 'hash' or 'packed'")
        if quantum_s <= 0:
            raise ValueError("quantum_s must be > 0")
        if not 1 <= min_workers <= max_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        self.n_shards = n_shards
        self.predictor = predictor
        self.slo_seconds = slo_seconds
        self.route = route
        self.quantum_s = quantum_s
        self.tenant_weights = dict(tenant_weights or {})
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.drain_target_s = drain_target_s
        self._clock = clock
        self._lock = threading.Lock()
        self._shards = [_ShardState() for _ in range(n_shards)]
        #: effective drain parallelism per shard (autoscale updates it)
        self.workers = [max(1, workers)] * n_shards
        #: sticky routing map — an id keeps its shard across resubmits
        self._assigned: dict[str, int] = {}
        self.admitted = 0
        self.rejected = 0
        self.completed = 0

    # ------------------------------------------------------------------
    # prediction

    def predict_seconds(self, job: DockingJob) -> float:
        """Predicted wall seconds of one job on this machine."""
        shape = self.predictor.shape_for_spec(job.spec)
        budget = max(1, job.n_runs) * job.config.lga.max_evals
        return self.predictor.predict_seconds(
            shape, budget, backend=job.config.cost_backend,
            device=job.config.device, block_size=job.config.block_size)

    # ------------------------------------------------------------------
    # routing

    def shard_of(self, job_id: str) -> int:
        """The shard that owns ``job_id`` under the configured route."""
        with self._lock:
            return self._shard_of_locked(job_id)

    def _shard_of_locked(self, job_id: str) -> int:
        hit = self._assigned.get(job_id)
        if hit is not None:
            return hit
        if self.route == "hash":
            return shard_for(job_id, self.n_shards)
        return min(range(self.n_shards),
                   key=lambda i: (self._shards[i].backlog_s, i))

    # ------------------------------------------------------------------
    # admission

    def admit(self, job: DockingJob, tenant: str = "default",
              deadline_s: float | None = None) -> tuple[int, float]:
        """Admit or reject one job; returns ``(shard, predicted_s)``.

        Raises :class:`AdmissionError` when the predicted completion
        time (shard backlog at current parallelism + the job itself)
        exceeds the tighter of the service SLO and the caller deadline.
        """
        predicted = self.predict_seconds(job)
        job_id = job.job_id
        with self._lock:
            shard = self._shard_of_locked(job_id)
            state = self._shards[shard]
            wait = state.backlog_s / max(1, self.workers[shard])
            total = wait + predicted
            limits = [("slo", self.slo_seconds),
                      ("deadline", deadline_s)]
            for reason, limit in limits:
                if limit is not None and total > limit:
                    self.rejected += 1
                    retry_after = max(0.0, total - limit)
                    get_metrics().counter("gateway.rejected").inc()
                    get_tracer().event(
                        "gateway.reject", job_id=job_id, shard=shard,
                        tenant=tenant, reason=reason,
                        predicted_s=predicted, backlog_s=wait,
                        limit_s=limit)
                    raise AdmissionError(
                        job_id, shard, reason, predicted, wait, limit,
                        retry_after)
            self._assigned[job_id] = shard
            state.enqueue(ScheduledJob(job=job, tenant=tenant,
                                       predicted_s=predicted,
                                       admitted_at=self._clock()))
            self.admitted += 1
            m = get_metrics()
            m.counter("gateway.admitted").inc()
            m.gauge(f"gateway.shard.depth.{shard}").set(state.queued)
            m.gauge(f"gateway.shard.predicted_backlog.{shard}").set(
                state.backlog_s)
            get_tracer().event("gateway.admit", job_id=job_id,
                               shard=shard, tenant=tenant,
                               predicted_s=predicted, backlog_s=wait)
            return shard, predicted

    # ------------------------------------------------------------------
    # service order (weighted deficit round-robin)

    def next_batch(self, shard: int, max_jobs: int | None = None
                   ) -> list[ScheduledJob]:
        """Pop the next fair batch of jobs for ``shard`` (may be empty).

        One WDRR round: every backlogged tenant's deficit grows by
        ``quantum_s × weight`` and jobs are served head-first while the
        deficit covers their predicted runtime (always at least one job
        per non-empty round, so an over-quantum job cannot wedge its
        tenant).  Predicted backlog stays charged until :meth:`job_done`
        — an in-flight job still occupies its shard for admission math.
        """
        out: list[ScheduledJob] = []
        with self._lock:
            state = self._shards[shard]
            if not state.queued:
                return out
            for _ in range(len(state.rotation)):
                tenant = state.rotation[0]
                state.rotation.rotate(-1)
                q = state.queues.get(tenant)
                if not q:
                    continue
                weight = float(self.tenant_weights.get(tenant, 1.0))
                state.deficits[tenant] += self.quantum_s * weight
                served_any = False
                while q and (state.deficits[tenant] >= q[0].predicted_s
                             or not served_any):
                    item = q.popleft()
                    state.deficits[tenant] = max(
                        0.0, state.deficits[tenant] - item.predicted_s)
                    state.queued -= 1
                    served_any = True
                    out.append(item)
                    if max_jobs is not None and len(out) >= max_jobs:
                        break
                if not q:
                    state.deficits[tenant] = 0.0   # idle tenants reset
                if max_jobs is not None and len(out) >= max_jobs:
                    break
            get_metrics().gauge(f"gateway.shard.depth.{shard}").set(
                state.queued)
        return out

    def job_done(self, shard: int, predicted_s: float) -> None:
        """Release a completed job's predicted backlog charge."""
        with self._lock:
            state = self._shards[shard]
            state.backlog_s = max(0.0, state.backlog_s - predicted_s)
            self.completed += 1
            get_metrics().gauge(
                f"gateway.shard.predicted_backlog.{shard}").set(
                state.backlog_s)

    # ------------------------------------------------------------------
    # autoscaling

    def desired_workers(self, shard: int) -> int:
        """Pool size that drains the shard within ``drain_target_s``."""
        with self._lock:
            backlog = self._shards[shard].backlog_s
        want = math.ceil(backlog / max(self.drain_target_s, 1e-9))
        return max(self.min_workers, min(self.max_workers, max(1, want)))

    def apply_autoscale(self, shard: int) -> int:
        """Set and return the shard's worker count from predicted load."""
        want = self.desired_workers(shard)
        with self._lock:
            have = self.workers[shard]
            if want != have:
                self.workers[shard] = want
                get_metrics().counter("gateway.autoscale_events").inc()
                get_tracer().event("gateway.autoscale", shard=shard,
                                   workers_from=have, workers_to=want)
        return want

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Scheduler state for ``/v1/stats`` and the trace log."""
        with self._lock:
            shards = []
            for i, s in enumerate(self._shards):
                shards.append({
                    "shard": i,
                    "queued": s.queued,
                    "predicted_backlog_s": s.backlog_s,
                    "workers": self.workers[i],
                    "tenants": {t: len(q)
                                for t, q in s.queues.items() if q},
                })
            return {"n_shards": self.n_shards,
                    "route": self.route,
                    "slo_seconds": self.slo_seconds,
                    "admitted": self.admitted,
                    "rejected": self.rejected,
                    "completed": self.completed,
                    "shards": shards}
