"""Minimal HTTP/1.1 + NDJSON wire layer for the gateway (stdlib only).

The gateway speaks a deliberately small dialect — JSON request bodies,
JSON or NDJSON responses, ``Connection: close`` on every exchange — so a
handcoded parser over ``asyncio`` streams suffices and the service takes
no dependency beyond the standard library.  Request size is bounded
(:data:`MAX_BODY_BYTES`) so a misbehaving client cannot balloon the
front-end.

Also home to the job-request codec: :func:`job_from_request` turns a
submission document into a content-addressed
:class:`~repro.serve.queue.DockingJob` plus its serving envelope
(tenant, relative deadline) — the fields that steer scheduling but must
*not* enter the job's identity hash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.core.config import DockingConfig
from repro.search.lga import LGAConfig
from repro.serve.queue import DockingJob, spawn_seed

__all__ = ["HttpRequest", "ProtocolError", "MAX_BODY_BYTES",
           "read_request", "http_response", "json_response",
           "ndjson_line", "job_from_request"]

#: request body cap — submissions are small JSON documents
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error"}


class ProtocolError(ValueError):
    """Malformed request; carries the HTTP status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        if not self.body:
            raise ProtocolError(400, "empty request body")
        try:
            doc = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc.msg}") \
                from None
        if not isinstance(doc, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return doc


async def read_request(reader) -> HttpRequest:
    """Parse one HTTP/1.1 request from an asyncio stream reader."""
    line = await reader.readline()
    if not line:
        raise ProtocolError(400, "empty request")
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise ProtocolError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if b":" not in line:
            raise ProtocolError(400, "malformed header line")
        key, value = line.decode("latin-1").split(":", 1)
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    return HttpRequest(method=method.upper(), path=split.path,
                       query=dict(parse_qsl(split.query)),
                       headers=headers, body=body)


def http_response(status: int, body: bytes,
                  content_type: str = "application/json",
                  extra_headers: dict[str, str] | None = None) -> bytes:
    """Serialise one complete ``Connection: close`` response."""
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    for key, value in (extra_headers or {}).items():
        head.append(f"{key}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, doc: dict,
                  extra_headers: dict[str, str] | None = None) -> bytes:
    return http_response(status, (json.dumps(doc) + "\n").encode(),
                         extra_headers=extra_headers)


def ndjson_line(doc: dict) -> bytes:
    return (json.dumps(doc) + "\n").encode()


def _config_from_doc(doc: dict) -> DockingConfig:
    """Engine config from a submission document.

    Either a full ``config`` dict (the :meth:`DockingConfig.to_dict`
    round-trip) or the CLI-flavoured shorthand fields; both produce the
    same content hash as local construction would.
    """
    if "config" in doc:
        if not isinstance(doc["config"], dict):
            raise ProtocolError(400, "'config' must be an object")
        try:
            return DockingConfig.from_dict(doc["config"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(400, f"bad config: {exc}") from None
    evals = int(doc.get("evals", 4_000))
    pop = int(doc.get("pop", 16))
    try:
        return DockingConfig(
            backend=doc.get("backend", "tcec-tf32"),
            device=doc.get("device", "A100"),
            block_size=int(doc.get("block_size", 64)),
            lga=LGAConfig(pop_size=pop, max_evals=evals,
                          max_gens=max(1, evals // pop),
                          ls_iters=int(doc.get("ls_iters", 20)),
                          ls_rate=0.25))
    except ValueError as exc:
        raise ProtocolError(400, f"bad config: {exc}") from None


def job_from_request(doc: dict) -> tuple[DockingJob, str, float | None]:
    """Decode one job submission: ``(job, tenant, deadline_s)``.

    Recognised fields: ``case`` (library case name) or ``spec`` (a raw
    :func:`repro.serve.cache.load_case` spec), ``config`` or the
    shorthand knobs, ``n_runs``, ``seed`` (int, or ``{entropy,
    spawn_key}``, or ``{"entropy": e, "index": i}`` shorthand for the
    spawned stream), ``priority``, ``label``, ``tenant`` and
    ``deadline_s`` (relative seconds; serving metadata, not hashed).
    """
    if "spec" in doc:
        spec = doc["spec"]
        if not isinstance(spec, dict):
            raise ProtocolError(400, "'spec' must be an object")
    elif "case" in doc:
        spec = {"kind": "case", "case": str(doc["case"])}
    else:
        raise ProtocolError(400, "submission needs 'case' or 'spec'")
    seed = doc.get("seed", 0)
    if isinstance(seed, dict) and "index" in seed:
        seed = spawn_seed(int(seed.get("entropy", 0)),
                          int(seed["index"]))
    elif not isinstance(seed, (int, dict)):
        raise ProtocolError(400, "'seed' must be an int or an object")
    deadline_s = doc.get("deadline_s")
    if deadline_s is not None:
        deadline_s = float(deadline_s)
        if deadline_s <= 0:
            raise ProtocolError(400, "'deadline_s' must be > 0")
    job = DockingJob(
        spec=spec,
        config=_config_from_doc(doc),
        n_runs=int(doc.get("n_runs", 4)),
        seed=seed,
        priority=int(doc.get("priority", 0)),
        label=str(doc.get("label", "") or spec.get("case", "")),
    )
    return job, str(doc.get("tenant", "default")), deadline_s
