"""Stdlib HTTP client for the gateway (CLI ``submit``/``watch``, tests).

Thin `http.client` wrapper over the JSON/NDJSON dialect of
:mod:`repro.gateway.server`; every call is one short-lived
``Connection: close`` exchange, matching the server.  A 429 admission
answer raises :class:`GatewayRejected` carrying the structured payload,
so callers can distinguish "the service is protecting its SLO" from
transport failures.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Callable, Iterator
from urllib.parse import urlsplit

__all__ = ["GatewayClient", "GatewayError", "GatewayRejected"]


class GatewayError(RuntimeError):
    """Non-2xx answer from the gateway."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"gateway answered {status}: "
                         f"{payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class GatewayRejected(GatewayError):
    """429: admission control predicted an SLO/deadline miss."""


class GatewayClient:
    """Client for one gateway base URL (``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        split = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {split.scheme!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = (json.dumps(body).encode()
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} \
                if payload is not None else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            doc = json.loads(resp.read().decode() or "{}")
            if resp.status == 429:
                raise GatewayRejected(resp.status, doc)
            if resp.status >= 400:
                raise GatewayError(resp.status, doc)
            return doc
        finally:
            conn.close()

    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, job: dict) -> dict:
        """Submit one job document; raises :class:`GatewayRejected` on
        admission rejection (the payload carries ``retry_after_s``)."""
        return self._request("POST", "/v1/jobs", body=job)

    def submit_batch(self, jobs: list[dict]) -> dict:
        """Submit a batch; returns ``{"accepted": [...],
        "rejected": [...]}`` without raising on per-job rejections."""
        return self._request("POST", "/v1/jobs", body={"jobs": jobs})

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def manifest(self) -> dict:
        return self._request("GET", "/v1/manifest")

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")

    # ------------------------------------------------------------------

    def stream(self, once: bool = False,
               timeout: float | None = None) -> Iterator[dict]:
        """Yield terminal job records from ``/v1/stream`` (NDJSON).

        Blocks until the gateway closes the stream (all known jobs
        terminal) unless ``once`` dumps the current terminal set.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        try:
            conn.request("GET", "/v1/stream" + ("?once=1" if once
                                                else ""))
            resp = conn.getresponse()
            if resp.status != 200:
                raise GatewayError(resp.status,
                                   {"error": resp.read().decode()})
            for raw in resp:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def wait_all(self, timeout: float = 120.0,
                 on_result: Callable[[dict], None] | None = None
                 ) -> list[dict]:
        """Stream until every known job is terminal; returns the records.

        ``timeout`` bounds the whole wait (transport-level); a stalled
        gateway raises instead of hanging the caller forever.
        """
        deadline = time.monotonic() + timeout
        records = []
        for rec in self.stream(timeout=timeout):
            records.append(rec)
            if on_result is not None:
                on_result(rec)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"gateway stream exceeded {timeout}s "
                    f"({len(records)} records so far)")
        return records
