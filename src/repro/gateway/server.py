"""Asyncio HTTP front-end over sharded worker pools.

The long-running serving shape the ROADMAP's north star asks for: an
``asyncio`` event loop owns the sockets (stdlib only — see
:mod:`repro.gateway.protocol`), one OS thread per shard owns a
:class:`~repro.serve.WorkerPool`, and the
:class:`~repro.gateway.scheduler.SLOScheduler` in between decides what
is admitted, where it runs and in what order.  The front-end never
blocks on docking work: handlers read shared state under a plain lock
and poll with short sleeps, so status and streaming stay responsive
while shards grind.

Endpoints (JSON in, JSON/NDJSON out, ``Connection: close``):

========================  ==================================================
``POST /v1/jobs``         submit one job or ``{"jobs": [...]}``; per-job
                          accept/reject with predicted seconds (a single
                          rejected job answers 429 with the structured
                          admission payload)
``GET /v1/jobs/<id>``     one job record (``queued``/``running``/terminal)
``GET /v1/stream``        NDJSON: terminal records as they complete, until
                          every known job is terminal (``?once=1`` dumps
                          and closes)
``GET /v1/stats``         scheduler snapshot + gateway counters
``GET /v1/manifest``      ranked manifest of completed jobs
``GET /healthz``          liveness
``POST /v1/shutdown``     graceful stop
========================  ==================================================

Completion stays idempotent end to end: job identity is the content
hash, duplicate submissions return the existing record, and each shard's
pool inherits the dedup/retry/dead-letter semantics of
:mod:`repro.serve`.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.gateway.protocol import (HttpRequest, ProtocolError,
                                    job_from_request, json_response,
                                    ndjson_line, read_request)
from repro.gateway.scheduler import AdmissionError, SLOScheduler
from repro.obs import get_metrics, get_tracer
from repro.serve.pool import (DEFAULT_HEARTBEAT_SECONDS, JobResult,
                              WorkerPool)

__all__ = ["Gateway", "GatewayConfig"]

MANIFEST_VERSION = 1


@dataclass
class GatewayConfig:
    """Serving knobs of one gateway instance.

    ``workers`` is the *process* count per shard pool; ``0`` executes
    inline in the shard thread (deterministic, no multiprocessing — the
    right choice for tests and small hosts).  Autoscaling requires
    process pools (``workers > 0``); it resizes within
    ``[min_workers, max_workers]`` from predicted backlog.
    """

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral (tests, CI)
    n_shards: int = 2
    workers: int = 0
    slo_seconds: float | None = None
    route: str = "hash"
    quantum_s: float = 1.0
    tenant_weights: dict = field(default_factory=dict)
    autoscale: bool = False
    min_workers: int = 1
    max_workers: int = 4
    drain_target_s: float = 30.0
    retries: int = 1
    job_wall_seconds: float | None = None
    heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS
    include_history: bool = False
    manifest: str | None = None
    #: > 0 writes the manifest as per-shard NDJSON append logs
    #: (:class:`repro.serve.manifest.ShardedManifest`) instead of
    #: rewriting one JSON document per completion; ``/v1/manifest``
    #: still serves the merged in-memory view
    manifest_shards: int = 0
    #: shared disk cache tier root (:class:`repro.serve.store.BlobStore`)
    #: fronted by every shard's worker caches
    store: str | None = None
    trace: str | None = None
    bench_path: str | None = None       # None = committed default
    poll_s: float = 0.05


class Gateway:
    """A running (or runnable) gateway instance.

    ``predictor`` defaults to the committed calibration
    (:meth:`repro.simt.predictor.RuntimePredictor.from_bench`); tests
    inject their own.  Use :meth:`start` / :meth:`stop` for in-process
    serving (CLI, tests) or :meth:`run` to block until shutdown.
    """

    def __init__(self, config: GatewayConfig | None = None,
                 predictor=None) -> None:
        self.config = config or GatewayConfig()
        if predictor is None:
            from repro.simt.predictor import (DEFAULT_BENCH_PATH,
                                              RuntimePredictor)
            predictor = RuntimePredictor.from_bench(
                self.config.bench_path or DEFAULT_BENCH_PATH)
        self.predictor = predictor
        self.scheduler = SLOScheduler(
            n_shards=self.config.n_shards, predictor=predictor,
            slo_seconds=self.config.slo_seconds, route=self.config.route,
            quantum_s=self.config.quantum_s,
            tenant_weights=self.config.tenant_weights,
            workers=max(1, self.config.workers),
            min_workers=self.config.min_workers,
            max_workers=self.config.max_workers,
            drain_target_s=self.config.drain_target_s)
        if self.config.trace:
            from repro.obs import configure
            configure(self.config.trace, source="gateway")
        self._lock = threading.Lock()
        self._manifest_lock = threading.Lock()
        self._sharded = None
        if self.config.manifest and self.config.manifest_shards > 0:
            from repro.serve.manifest import ShardedManifest
            self._sharded = ShardedManifest(
                self.config.manifest, n_shards=self.config.manifest_shards)
        #: job_id -> record dict (see ``_record``); insertion-ordered
        self.jobs: dict[str, dict] = {}
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._threads: list[threading.Thread] = []
        self._loop_thread: threading.Thread | None = None
        self.port: int | None = None
        self.requests = 0

    # ------------------------------------------------------------------
    # records

    @staticmethod
    def _record(job, tenant: str, shard: int, predicted_s: float) -> dict:
        return {"job_id": job.job_id, "label": job.label,
                "tenant": tenant, "shard": shard,
                "predicted_s": predicted_s, "status": "queued",
                "submitted_at": time.time(), "attempts": 0,
                "wall_seconds": None, "best_score": None,
                "result": None, "error": None}

    def _public(self, rec: dict, with_result: bool = False) -> dict:
        out = {k: v for k, v in rec.items() if k != "result"}
        if with_result:
            out["result"] = rec["result"]
        return out

    # ------------------------------------------------------------------
    # shard runners

    def _apply_result(self, rec: dict, result: JobResult) -> None:
        rec["status"] = result.status
        rec["attempts"] = result.attempts
        rec["wall_seconds"] = result.wall_seconds
        rec["best_score"] = result.best_score
        rec["error"] = result.error
        rec["result"] = result.to_dict()
        rec["completed_at"] = time.time()

    def _shard_runner(self, shard: int) -> None:
        """One shard's service loop: fair batch → pool → records."""
        cfg = self.config
        tracer = get_tracer()
        while not self._stop.is_set():
            batch = self.scheduler.next_batch(shard)
            if not batch:
                time.sleep(cfg.poll_s)
                continue
            workers = cfg.workers
            if cfg.autoscale and cfg.workers > 0:
                workers = self.scheduler.apply_autoscale(shard)
            predicted = {sj.job.job_id: sj.predicted_s for sj in batch}
            with self._lock:
                for sj in batch:
                    rec = self.jobs.get(sj.job.job_id)
                    if rec is not None:
                        rec["status"] = "running"
            tracer.event("gateway.dispatch", shard=shard,
                         jobs=len(batch), workers=workers)
            pool = WorkerPool(
                workers=workers, retries=cfg.retries,
                job_wall_seconds=cfg.job_wall_seconds,
                include_history=cfg.include_history,
                heartbeat_seconds=cfg.heartbeat_seconds,
                store_root=cfg.store,
                trace_path=cfg.trace)
            try:
                for result in pool.map([sj.job for sj in batch]):
                    self.scheduler.job_done(
                        shard, predicted.get(result.job_id, 0.0))
                    with self._lock:
                        rec = self.jobs.get(result.job_id)
                        staged = dict(rec) if rec is not None else None
                    if staged is not None:
                        self._apply_result(staged, result)
                        # write-ahead: persist the terminal record
                        # BEFORE it becomes visible to /v1/stream — a
                        # client acting on a streamed result must find
                        # it in the on-disk manifest.  Persist and
                        # publish under one manifest-lock hold, else a
                        # sibling shard snapshots between our write and
                        # our publish and its (later) write drops this
                        # record from the on-disk ranking.
                        with self._manifest_lock:
                            if self._sharded is not None:
                                # O(record) append, not O(jobs) rewrite
                                self._sharded.append(staged)
                            elif cfg.manifest:
                                self._write_manifest_locked(staged)
                            with self._lock:
                                live = self.jobs.get(result.job_id)
                                if live is not None:
                                    live.update(staged)
                    tracer.event("gateway.done", job_id=result.job_id,
                                 shard=shard, status=result.status,
                                 wall_seconds=result.wall_seconds,
                                 predicted_s=predicted.get(
                                     result.job_id))
            except Exception as exc:          # pool-level failure: the
                # whole batch dead-letters so callers are never wedged
                for sj in batch:
                    self.scheduler.job_done(
                        shard, predicted.get(sj.job.job_id, 0.0))
                    with self._lock:
                        rec = self.jobs.get(sj.job.job_id)
                        if rec is not None and rec["status"] in (
                                "queued", "running"):
                            rec["status"] = "dead"
                            rec["error"] = {
                                "error_type": type(exc).__name__,
                                "message": str(exc)}
                            rec["completed_at"] = time.time()
                tracer.event("gateway.shard_error", shard=shard,
                             error_type=type(exc).__name__,
                             message=str(exc))

    # ------------------------------------------------------------------
    # manifest

    @staticmethod
    def _ranking(records) -> list[dict]:
        done = [r for r in records
                if r["status"] == "ok" and r["best_score"] is not None]
        done.sort(key=lambda r: r["best_score"])
        return [{"rank": k + 1, "label": r["label"],
                 "job_id": r["job_id"], "best_score": r["best_score"],
                 "status": r["status"], "shard": r["shard"]}
                for k, r in enumerate(done)]

    def _manifest_doc(self, override: dict | None = None) -> dict:
        """Snapshot of all job records; ``override`` swaps in a staged
        terminal record not yet published to ``self.jobs`` (the
        write-ahead path in the shard runner)."""
        with self._lock:
            jobs = {jid: dict(rec) for jid, rec in self.jobs.items()}
        if override is not None:
            jobs[override["job_id"]] = dict(override)
        ranking = self._ranking(jobs.values())
        return {"version": MANIFEST_VERSION,
                "gateway": {"n_shards": self.config.n_shards,
                            "route": self.config.route,
                            "slo_seconds": self.config.slo_seconds,
                            "written_at": time.time()},
                "jobs": jobs,
                "ranking": ranking,
                "scheduler": self.scheduler.snapshot()}

    def _write_manifest(self, override: dict | None = None) -> None:
        """Durable atomic manifest write (fsync + unique tmp +
        ``os.replace`` — see :func:`repro.serve.manifest
        .atomic_write_json`).

        Snapshot and write happen under the manifest lock: without it,
        two shard threads snapshot concurrently and the slower *writer*
        can publish the older snapshot, dropping the other shard's
        just-completed job from the on-disk ranking.
        """
        with self._manifest_lock:
            self._write_manifest_locked(override)

    def _write_manifest_locked(self, override: dict | None = None) -> None:
        from repro.serve.manifest import atomic_write_json
        atomic_write_json(Path(self.config.manifest),
                          self._manifest_doc(override))

    # ------------------------------------------------------------------
    # HTTP handlers

    async def _handle(self, reader, writer) -> None:
        status = 500
        req: HttpRequest | None = None
        try:
            req = await read_request(reader)
            status, payload = await self._route(req, writer)
            if payload is not None:       # streaming routes wrote already
                writer.write(payload)
        except ProtocolError as exc:
            status = exc.status
            writer.write(json_response(exc.status, {"error": str(exc)}))
        except (ConnectionError, asyncio.IncompleteReadError):
            status = 499
        except Exception as exc:
            writer.write(json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"}))
        finally:
            self.requests += 1
            get_metrics().counter("gateway.requests").inc()
            if req is not None:
                get_tracer().event("gateway.request", method=req.method,
                                   path=req.path, status=status)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(self, req: HttpRequest, writer
                     ) -> tuple[int, bytes | None]:
        path, method = req.path, req.method
        if path == "/healthz":
            return 200, json_response(200, {"ok": True})
        if path == "/v1/jobs" and method == "POST":
            return self._submit(req)
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._status(path.removeprefix("/v1/jobs/"))
        if path == "/v1/stream" and method == "GET":
            await self._stream(req, writer)
            return 200, None
        if path == "/v1/stats" and method == "GET":
            return 200, json_response(200, self.stats())
        if path == "/v1/manifest" and method == "GET":
            return 200, json_response(200, self._manifest_doc())
        if path == "/v1/shutdown" and method == "POST":
            self._stop.set()
            return 200, json_response(200, {"stopping": True})
        raise ProtocolError(404 if method in ("GET", "POST") else 405,
                            f"no route for {method} {path}")

    def _submit(self, req: HttpRequest) -> tuple[int, bytes]:
        doc = req.json()
        batch = "jobs" in doc
        docs = doc["jobs"] if batch else [doc]
        if not isinstance(docs, list) or not docs:
            raise ProtocolError(400, "'jobs' must be a non-empty list")
        accepted, rejected = [], []
        for jdoc in docs:
            if not isinstance(jdoc, dict):
                raise ProtocolError(400, "each job must be an object")
            job, tenant, deadline_s = job_from_request(jdoc)
            with self._lock:
                existing = self.jobs.get(job.job_id)
                if existing is not None:
                    dup = self._public(existing)
                    dup["duplicate"] = True
                    accepted.append(dup)
                    continue
            try:
                shard, predicted = self.scheduler.admit(
                    job, tenant=tenant, deadline_s=deadline_s)
            except AdmissionError as exc:
                rejected.append(exc.payload)
                continue
            rec = self._record(job, tenant, shard, predicted)
            with self._lock:
                self.jobs[job.job_id] = rec
            accepted.append(self._public(rec))
        body = {"accepted": accepted, "rejected": rejected}
        # a bare (non-batch) submission surfaces its rejection as HTTP
        # backpressure; batches always 200 with both lists, so one
        # rejected job cannot hide its siblings' admissions
        if not batch and rejected:
            return 429, json_response(
                429, rejected[0],
                extra_headers={"Retry-After": str(max(
                    1, int(rejected[0]["retry_after_s"])))})
        return 200, json_response(200, body)

    def _status(self, job_id: str) -> tuple[int, bytes]:
        with self._lock:
            rec = self.jobs.get(job_id)
            if rec is None:
                return 404, json_response(
                    404, {"error": f"unknown job {job_id!r}"})
            return 200, json_response(
                200, self._public(rec, with_result=True))

    async def _stream(self, req: HttpRequest, writer) -> None:
        """NDJSON stream of terminal records (submission order kept).

        Runs until every known job is terminal; ``?once=1`` writes what
        is terminal now and closes (manifest-style polling).
        """
        once = req.query.get("once") in ("1", "true", "yes")
        writer.write((b"HTTP/1.1 200 OK\r\n"
                      b"Content-Type: application/x-ndjson\r\n"
                      b"Connection: close\r\n\r\n"))
        await writer.drain()
        get_tracer().event("gateway.stream", once=once)
        sent: set[str] = set()
        terminal = ("ok", "failed", "dead", "rejected")
        while True:
            fresh, all_done, total = [], True, 0
            with self._lock:
                for jid, rec in self.jobs.items():
                    total += 1
                    if rec["status"] in terminal:
                        if jid not in sent:
                            fresh.append(self._public(rec))
                    else:
                        all_done = False
            for rec in fresh:
                sent.add(rec["job_id"])
                writer.write(ndjson_line(rec))
            if fresh:
                await writer.drain()
            if once or (total > 0 and all_done) or self._stop.is_set():
                return
            await asyncio.sleep(self.config.poll_s)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            by_status: dict[str, int] = {}
            for rec in self.jobs.values():
                by_status[rec["status"]] = \
                    by_status.get(rec["status"], 0) + 1
        return {"requests": self.requests,
                "jobs": by_status,
                "workers_per_shard": self.config.workers,
                "heartbeat_seconds": self.config.heartbeat_seconds,
                "predictor": {"machine_factor":
                              self.predictor.machine_factor,
                              "coeff_a": self.predictor.coeff_a,
                              "coeff_b": self.predictor.coeff_b},
                "scheduler": self.scheduler.snapshot()}

    # ------------------------------------------------------------------
    # lifecycle

    async def _serve_async(self) -> None:
        server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            while not self._stop.is_set():
                await asyncio.sleep(self.config.poll_s)

    def start(self, timeout: float = 10.0) -> "Gateway":
        """Start shard threads + the HTTP loop; returns when bound."""
        for shard in range(self.config.n_shards):
            t = threading.Thread(target=self._shard_runner,
                                 args=(shard,), daemon=True,
                                 name=f"gateway-shard-{shard}")
            t.start()
            self._threads.append(t)
        self._loop_thread = threading.Thread(
            target=lambda: asyncio.run(self._serve_async()),
            daemon=True, name="gateway-http")
        self._loop_thread.start()
        if not self._ready.wait(timeout):
            self._stop.set()
            raise RuntimeError("gateway failed to bind within timeout")
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for t in self._threads:
            t.join(timeout)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout)
        if self._sharded is not None:
            with self._manifest_lock:
                doc = self._manifest_doc()
                self._sharded.write_meta(
                    screen=doc["gateway"],
                    stats={"scheduler": doc["scheduler"]})
                self._sharded.compact()
                self._sharded.close()
        elif self.config.manifest:
            self._write_manifest()
        get_tracer().flush()

    def run(self) -> int:
        """Blocking serve (the CLI path): start, wait for shutdown."""
        self.start()
        print(f"gateway listening on http://{self.config.host}:"
              f"{self.port} ({self.config.n_shards} shards, "
              f"route={self.config.route}, "
              f"workers/shard={self.config.workers})")
        try:
            while not self._stop.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        self.stop()
        return 0
