"""repro — Tensor Core-based reductions for irregular molecular docking.

A complete Python reproduction of "Architecting Tensor Core-Based
Reductions for Irregular Molecular Docking Kernels" (IA3 / SC'25):
an AutoDock-GPU-style docking engine whose ADADELTA gradient kernel can
route its seven block-level sum reductions through

* an FP32 SIMT tree (the baseline),
* Schieffer & Peng's FP16 Tensor Core matrix reduction, or
* the paper's error-corrected TF32 variant (TCEC),

over a numerically faithful software Tensor Core and an analytic
A100/H100/B200 performance model.

Quick start::

    from repro import DockingEngine, DockingConfig, get_test_case

    result = DockingEngine(get_test_case("7cpa"),
                           DockingConfig(backend="tcec-tf32")).dock(n_runs=10)
    print(result.best_score, result.us_per_eval)
"""

from repro.core import DockingConfig, DockingEngine, DockingResult
from repro.serve import VirtualScreen
from repro.testcases import get_test_case, set_of_42

__version__ = "1.0.0"

__all__ = [
    "DockingConfig",
    "DockingEngine",
    "DockingResult",
    "VirtualScreen",
    "get_test_case",
    "set_of_42",
    "__version__",
]
