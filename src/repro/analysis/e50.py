"""The E50 metric: evaluations to a 50% probability of search success.

E50 (Santos-Martins et al., 2021; Section 4 of the paper) is the number of
score evaluations at which an LGA run reaches a 50% probability of finding
the global minimum.  Success-by-budget is well modelled by the saturating
exponential ``p(n) = 1 - exp(-lambda n)`` (independent restarts hit a
geometric discovery process); runs that never succeed within their budget
are right-censored observations.  The censored maximum-likelihood estimate
has the closed form

    lambda_hat = (#successes) / (sum of observed success times
                                 + sum of censoring budgets)
    E50 = ln(2) / lambda_hat

which degrades gracefully to ``inf`` when nothing succeeded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["E50Estimate", "estimate_e50", "bootstrap_e50_ci"]


@dataclass(frozen=True)
class E50Estimate:
    """E50 with its supporting statistics."""

    e50: float                 # evaluations; inf when no run succeeded
    n_runs: int
    n_success: int
    success_rate: float
    mean_success_evals: float  # mean of the observed success times (nan if 0)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        e = "inf" if math.isinf(self.e50) else f"{self.e50:.3g}"
        return (f"E50={e} evals ({self.n_success}/{self.n_runs} runs "
                f"succeeded)")


def estimate_e50(first_success_evals: list[int | None],
                 budgets: list[int] | int) -> E50Estimate:
    """Estimate E50 from per-run first-success evaluation counts.

    Parameters
    ----------
    first_success_evals:
        One entry per run: the evaluation count at first success, or
        ``None`` for a run that never succeeded.
    budgets:
        Per-run evaluation budgets (censoring points), or a single shared
        budget.
    """
    n = len(first_success_evals)
    if n == 0:
        raise ValueError("need at least one run")
    if isinstance(budgets, int):
        budgets = [budgets] * n
    if len(budgets) != n:
        raise ValueError("budgets length must match runs")

    exposure = 0.0
    successes = 0
    total_success_time = 0.0
    for t, b in zip(first_success_evals, budgets):
        if t is not None:
            if t > b:
                raise ValueError(f"success time {t} exceeds budget {b}")
            exposure += t
            successes += 1
            total_success_time += t
        else:
            exposure += b

    if successes == 0 or exposure <= 0:
        e50 = math.inf
    else:
        lam = successes / exposure
        e50 = math.log(2.0) / lam
    return E50Estimate(
        e50=e50,
        n_runs=n,
        n_success=successes,
        success_rate=successes / n,
        mean_success_evals=(total_success_time / successes
                            if successes else math.nan),
    )


def bootstrap_e50_ci(first_success_evals: list[int | None],
                     budgets: list[int] | int,
                     confidence: float = 0.9,
                     n_boot: int = 2000,
                     seed: int = 0) -> tuple[float, float]:
    """Bootstrap confidence interval for E50.

    Resamples runs with replacement; censored runs resample as censored.
    Returns the (lo, hi) percentile interval; ``inf`` endpoints appear when
    resamples contain no successes.  Useful because scaled-down budgets
    leave E50 with substantial run-level variance (see EXPERIMENTS.md).
    """
    import numpy as np

    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(first_success_evals)
    if n == 0:
        raise ValueError("need at least one run")
    if isinstance(budgets, int):
        budgets = [budgets] * n

    rng = np.random.default_rng(seed)
    estimates = []
    for _ in range(n_boot):
        idx = rng.integers(0, n, size=n)
        est = estimate_e50([first_success_evals[i] for i in idx],
                           [budgets[i] for i in idx])
        estimates.append(est.e50)
    alpha = (1.0 - confidence) / 2.0
    arr = np.asarray(estimates)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return math.inf, math.inf
    # infinite resamples (no successes) sit above every finite quantile
    lo = float(np.quantile(finite, min(1.0, alpha * arr.size / finite.size)))
    hi_q = 1.0 - alpha
    if hi_q * arr.size >= finite.size:
        hi = math.inf
    else:
        hi = float(np.quantile(finite, hi_q * arr.size / finite.size))
    return lo, hi
