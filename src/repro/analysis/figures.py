"""Plain-text figure rendering (no plotting dependencies).

The benchmark harness prints each figure's data as a table *and* as an
ASCII chart close to the paper's visual: a log-log scatter with the
identity diagonal for the E50 comparisons (Figures 1/3) and grouped bars
for the speedup chart (Figure 4).
"""

from __future__ import annotations

import math

__all__ = ["ascii_scatter_loglog", "ascii_bars"]


def ascii_scatter_loglog(points: list[tuple[str, float, float]],
                         width: int = 48, height: int = 20,
                         xlabel: str = "x", ylabel: str = "y",
                         title: str | None = None) -> str:
    """Log-log scatter with the identity diagonal (`.`), one letter per
    case (first character of its label; `*` on collisions)."""
    finite = [(l, x, y) for l, x, y in points
              if x > 0 and y > 0 and math.isfinite(x) and math.isfinite(y)]
    if not finite:
        return f"{title or ''}\n(no finite points)"
    los = min(min(x for _, x, _ in finite), min(y for _, _, y in finite))
    his = max(max(x for _, x, _ in finite), max(y for _, _, y in finite))
    lo, hi = math.log10(los) - 0.1, math.log10(his) + 0.1
    span = hi - lo

    def col(v: float) -> int:
        return min(width - 1, max(0, int((math.log10(v) - lo) / span
                                         * (width - 1))))

    def row(v: float) -> int:
        return min(height - 1, max(0, int((math.log10(v) - lo) / span
                                          * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    # identity diagonal
    for c in range(width):
        r = int(c * (height - 1) / (width - 1))
        grid[height - 1 - r][c] = "."
    # points
    for label, x, y in finite:
        r, c = height - 1 - row(y), col(x)
        grid[r][c] = "*" if grid[r][c] not in (" ", ".") else label[0]

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} (log)")
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width + f"> {xlabel} (log)")
    lines.append("legend: " + ", ".join(
        f"{l[0]}={l}" for l, _, _ in finite))
    lines.append("points above the diagonal need more evaluations")
    return "\n".join(lines)


def ascii_bars(rows: list[tuple[str, float]], width: int = 40,
               title: str | None = None, unit: str = "") -> str:
    """Horizontal bar chart for labelled values (Figure 4 style)."""
    if not rows:
        return f"{title or ''}\n(empty)"
    vmax = max(v for _, v in rows)
    if vmax <= 0:
        raise ValueError("bar values must be positive")
    label_w = max(len(l) for l, _ in rows)
    lines = [title] if title else []
    for label, v in rows:
        bar = "#" * max(1, int(round(v / vmax * width)))
        lines.append(f"{label.rjust(label_w)} |{bar} {v:.2f}{unit}")
    return "\n".join(lines)
