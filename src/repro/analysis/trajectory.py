"""Success-probability curves p(n): the methodology under E50.

E50 summarises a whole curve: the probability that an LGA run has
succeeded by ``n`` score evaluations.  The paper's prior work (Santos-
Martins et al., 2021) plots these saturating curves and reads E50 off the
50% crossing; this module reconstructs them from run outcomes:

* :func:`success_curve` — the empirical Kaplan-Meier-style step curve from
  first-success times (censored runs leave the tail flat);
* :func:`fitted_curve` — the exponential model
  ``p(n) = 1 - exp(-ln 2 * n / E50)`` through a censored-MLE E50;
* :func:`format_curves` — ASCII overlay of several back-ends' curves.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.e50 import estimate_e50

__all__ = ["success_curve", "fitted_curve", "format_curves"]


def success_curve(first_success_evals: list[int | None],
                  budgets: list[int] | int,
                  grid: np.ndarray | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Empirical success probability over an evaluation grid.

    Returns ``(grid, p)`` where ``p[k]`` is the fraction of runs whose
    first success happened at or before ``grid[k]``.
    """
    n = len(first_success_evals)
    if n == 0:
        raise ValueError("need at least one run")
    if isinstance(budgets, int):
        budgets = [budgets] * n
    if grid is None:
        top = max(budgets)
        grid = np.linspace(0, top, 61)
    grid = np.asarray(grid, dtype=np.float64)
    times = np.array([math.inf if t is None else t
                      for t in first_success_evals])
    p = (times[None, :] <= grid[:, None]).mean(axis=1)
    return grid, p


def fitted_curve(first_success_evals: list[int | None],
                 budgets: list[int] | int,
                 grid: np.ndarray | None = None
                 ) -> tuple[np.ndarray, np.ndarray, float]:
    """The exponential-model curve through the censored-MLE E50.

    Returns ``(grid, p_fit, e50)``; for an all-censored input the curve is
    identically zero and ``e50`` is ``inf``.
    """
    est = estimate_e50(first_success_evals, budgets)
    if grid is None:
        top = max(budgets) if not isinstance(budgets, int) else budgets
        grid = np.linspace(0, top, 61)
    grid = np.asarray(grid, dtype=np.float64)
    if math.isinf(est.e50):
        return grid, np.zeros_like(grid), est.e50
    p = 1.0 - np.exp(-math.log(2.0) * grid / est.e50)
    return grid, p, est.e50


def format_curves(curves: dict[str, tuple[np.ndarray, np.ndarray]],
                  width: int = 60, height: int = 16,
                  title: str | None = None) -> str:
    """ASCII overlay of named success curves (one letter per curve)."""
    if not curves:
        return f"{title or ''}\n(no curves)"
    xmax = max(float(g[-1]) for g, _ in curves.values())
    rows = [[" "] * width for _ in range(height)]
    for name, (grid, p) in curves.items():
        mark = name[0]
        for x, y in zip(grid, p):
            c = min(width - 1, int(x / xmax * (width - 1)))
            r = height - 1 - min(height - 1, int(y * (height - 1)))
            if rows[r][c] == " ":
                rows[r][c] = mark
            elif rows[r][c] != mark:
                rows[r][c] = "*"
    half = height - 1 - (height - 1) // 2
    lines = []
    if title:
        lines.append(title)
    lines.append("p(success)")
    for k, row in enumerate(rows):
        marker = "+" if k == half else "|"
        lines.append(marker + "".join(row))
    lines.append("+" + "-" * width + f"> evals (0..{xmax:.0f})")
    lines.append("the '+' row marks p = 0.5; its crossing is E50")
    lines.append("legend: " + ", ".join(f"{n[0]}={n}" for n in curves))
    return "\n".join(lines)
