"""Evaluation machinery: success criteria, E50, Amdahl model, runtimes.

* :mod:`repro.analysis.success` — the paper's two success criteria (score
  within 1.0 kcal/mol of the global minimum; RMSD within 2 Å of the native
  pose) applied to LGA run histories;
* :mod:`repro.analysis.e50` — the E50 metric: score evaluations needed for
  a 50% probability of finding the global minimum (Section 4);
* :mod:`repro.analysis.amdahl` — Equation (6) and the predicted-speedup
  tables (Tables 4 and 5);
* :mod:`repro.analysis.runtime` — docking-runtime synthesis from eval
  counts and the kernel cost model (the µs/eval primary metric);
* :mod:`repro.analysis.speedup` — absolute/relative speedup aggregation
  across the test set (Figure 4);
* :mod:`repro.analysis.tables` — plain-text table/figure rendering.
"""

from repro.analysis.amdahl import predicted_speedup, speedup_table
from repro.analysis.campaign import CampaignResult, E50Campaign
from repro.analysis.clustering import PoseCluster, cluster_poses, cluster_result
from repro.analysis.e50 import E50Estimate, bootstrap_e50_ci, estimate_e50
from repro.analysis.runtime import RuntimeModel
from repro.analysis.speedup import aggregate_speedups
from repro.analysis.success import RunOutcome, SuccessCriteria, evaluate_run
from repro.analysis.trajectory import fitted_curve, format_curves, success_curve

__all__ = [
    "predicted_speedup",
    "CampaignResult",
    "E50Campaign",
    "PoseCluster",
    "cluster_poses",
    "cluster_result",
    "speedup_table",
    "E50Estimate",
    "bootstrap_e50_ci",
    "estimate_e50",
    "RuntimeModel",
    "aggregate_speedups",
    "RunOutcome",
    "SuccessCriteria",
    "evaluate_run",
    "fitted_curve",
    "format_curves",
    "success_curve",
]
