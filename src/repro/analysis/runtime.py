"""Docking-runtime synthesis: eval counts x kernel cost model -> seconds.

The paper's primary performance indicator is docking runtime normalised by
the actual number of score evaluations (µs/eval), because the stochastic
search makes raw wall-clock unstable.  This module converts an LGA
execution's evaluation counts into a simulated program-level runtime:

* local-search evaluations cost one ADADELTA kernel iteration each (the
  fused energy+gradient pass with the back-end-dependent reductions);
* genetic-algorithm evaluations cost one scoring-only kernel iteration;
* a per-generation host<->device transfer/launch overhead is added on top,
  with a seeded jitter term reproducing the run-to-run variability the
  paper reports (Table 3's min/max/avg/stddev over 100 samples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simt.costmodel import KernelCostModel, KernelWorkload
from repro.simt.devices import DeviceSpec

__all__ = ["RuntimeModel", "RuntimeSample"]

#: host-side launch + transfer overhead per generation [s]
_LAUNCH_OVERHEAD_S = 1.2e-4

#: fixed program setup/teardown overhead [s]
_SETUP_OVERHEAD_S = 0.05

#: relative sigma of the run-to-run runtime jitter
_JITTER_SIGMA = 0.012

#: Straggler utilisation of the ADADELTA kernel: individuals converge after
#: a variable number of iterations while the launch runs until its slowest
#: block finishes, so a launch retires far fewer evaluations than dense
#: iteration would (the "variable execution performance" of the paper's
#: keywords).  Calibrated so the A100 baseline lands at the paper's
#: ~0.91 µs/eval; it divides out of every speedup ratio.
LS_UTILIZATION = 0.105


@dataclass(frozen=True)
class RuntimeSample:
    """One simulated docking runtime."""

    seconds: float
    n_evals: int

    @property
    def us_per_eval(self) -> float:
        """The paper's primary metric [µs/eval].

        ``nan`` when the sample covers no evaluations (a zero-budget dry
        run) — mirroring :attr:`repro.core.engine.DockingResult.us_per_eval`
        rather than raising ``ZeroDivisionError``.
        """
        if self.n_evals <= 0:
            return float("nan")
        return self.seconds * 1e6 / self.n_evals


class RuntimeModel:
    """Simulated program-level docking runtime for one configuration.

    Parameters
    ----------
    device / block_size / backend:
        Kernel configuration (see :class:`~repro.simt.costmodel.KernelCostModel`).
    workload:
        The docking problem's kernel shape (per-case loop bounds and grid
        size, from :meth:`repro.testcases.generator.TestCase.workload`).
    """

    def __init__(self, device: DeviceSpec | str, block_size: int,
                 backend: str, workload: KernelWorkload) -> None:
        self.model = KernelCostModel(device, block_size, backend)
        self.workload = workload
        # per-grid-iteration wall times; each iteration advances every
        # *active* block by one evaluation, and straggler blocks keep the
        # launch alive (LS_UTILIZATION)
        self._t_ls_iter = (self.model.iteration_cost(workload).seconds
                           / LS_UTILIZATION)
        self._t_ga_iter = self.model.score_only_seconds(workload)

    def runtime_seconds(self, ls_evals: int, ga_evals: int,
                        generations: int) -> float:
        """Deterministic runtime for the given evaluation counts."""
        n_blocks = self.workload.n_blocks
        ls_iters = ls_evals / n_blocks
        ga_iters = ga_evals / n_blocks
        return (_SETUP_OVERHEAD_S
                + ls_iters * self._t_ls_iter
                + ga_iters * self._t_ga_iter
                + generations * _LAUNCH_OVERHEAD_S)

    def sample(self, ls_evals: int, ga_evals: int, generations: int,
               rng: np.random.Generator) -> RuntimeSample:
        """Runtime with seeded run-to-run jitter (clock/DVFS variability)."""
        base = self.runtime_seconds(ls_evals, ga_evals, generations)
        jitter = float(np.exp(rng.normal(0.0, _JITTER_SIGMA)))
        return RuntimeSample(seconds=base * jitter,
                             n_evals=ls_evals + ga_evals)

    def us_per_eval(self, ls_evals: int, ga_evals: int,
                    generations: int) -> float:
        """Deterministic µs/eval for the given evaluation mix."""
        total = ls_evals + ga_evals
        if total <= 0:
            raise ValueError("need a positive evaluation count")
        return self.runtime_seconds(ls_evals, ga_evals, generations) \
            * 1e6 / total
