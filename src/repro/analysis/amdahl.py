"""The Amdahl's-law performance model of Section 5.1.1 (Equation 6).

Predicted speedup of offloading the fraction ``f`` of kernel work to
Tensor Cores whose throughput is ``S`` times the FP32 SIMT peak:

    speedup = 1 / (f / S + (1 - f))

``S`` per device is the Table 2 throughput ratio (A100 8.0x, H100 7.4x,
B200 15.0x); the *effective* fraction is ``f_eff = 0.9 f`` because the
ADADELTA kernel accounts for ~90% of the docking runtime.
"""

from __future__ import annotations

from repro.simt.devices import DeviceSpec, get_device, list_devices

__all__ = ["predicted_speedup", "effective_fraction", "speedup_table",
           "ADADELTA_RUNTIME_SHARE"]

#: share of total docking runtime spent in the ADADELTA kernel (Section 2.1)
ADADELTA_RUNTIME_SHARE = 0.9


def predicted_speedup(f: float, s: float) -> float:
    """Equation (6): Amdahl speedup for TC fraction ``f`` and ratio ``s``."""
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"f must be in [0, 1], got {f}")
    if s <= 0:
        raise ValueError(f"S must be positive, got {s}")
    return 1.0 / (f / s + (1.0 - f))


def effective_fraction(f_kernel: float,
                       kernel_share: float = ADADELTA_RUNTIME_SHARE) -> float:
    """``f_eff = kernel_share * f`` — the program-level accelerated fraction
    for a kernel-level Tensor Core fraction ``f_kernel``."""
    return kernel_share * f_kernel


def speedup_table(f_values: tuple[float, ...] = (0.0, 0.2, 0.9, 1.0),
                  devices: list[DeviceSpec | str] | None = None
                  ) -> list[dict]:
    """Rows of the paper's Table 4: predicted speedups over an ``f`` grid."""
    devs = [get_device(d) for d in (devices or list_devices())]
    rows = []
    for f in f_values:
        row: dict = {"f": f}
        for dev in devs:
            row[dev.name] = predicted_speedup(f, dev.tensor_speedup)
        rows.append(row)
    return rows
