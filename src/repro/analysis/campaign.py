"""Experiment campaigns: the (cases x back-ends) sweeps behind the figures.

A campaign runs the same LGA configuration for every (test case, reduction
back-end) pair and distils the success statistics the paper's evaluation
reports.  Results serialise to plain dicts (JSON-ready) so long sweeps can
be checkpointed and re-analysed.

Used by the benchmark harness (Figures 1/3) and available as public API
for custom studies::

    from repro.analysis.campaign import E50Campaign

    campaign = E50Campaign(cases=["5kao", "7cpa"],
                           backends=["baseline", "tcec-tf32"],
                           n_runs=24, max_evals=15_000)
    results = campaign.run()
    print(campaign.to_rows(results))
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.e50 import bootstrap_e50_ci, estimate_e50
from repro.analysis.success import SuccessCriteria, evaluate_run
from repro.search.lga import LGAConfig
from repro.search.parallel import ParallelLGA
from repro.testcases import get_test_case

__all__ = ["E50Campaign", "CampaignResult"]


@dataclass(frozen=True)
class CampaignResult:
    """Success statistics of one (case, back-end) cell."""

    case: str
    backend: str
    n_runs: int
    budget: int
    score_successes: int
    rmsd_successes: int
    e50_score: float
    e50_rmsd: float
    e50_score_ci: tuple[float, float]
    best_score: float

    def as_dict(self) -> dict:
        d = dict(self.__dict__)
        d["e50_score_ci"] = list(self.e50_score_ci)
        return d


@dataclass
class E50Campaign:
    """A (cases x back-ends) E50 sweep with shared LGA settings.

    Parameters mirror the scaled-down reproduction defaults; pass a full
    :class:`~repro.search.lga.LGAConfig` via ``lga`` to override
    everything.
    """

    cases: list[str]
    backends: list[str]
    n_runs: int = 24
    max_evals: int = 15_000
    seed: int = 2025
    lga: LGAConfig | None = None
    criteria: SuccessCriteria = field(default_factory=SuccessCriteria)

    def _config(self) -> LGAConfig:
        return self.lga or LGAConfig(
            pop_size=30, max_evals=self.max_evals, max_gens=300,
            ls_iters=100, ls_rate=0.15)

    def run_cell(self, case_name: str, backend: str) -> CampaignResult:
        """Run one (case, back-end) cell."""
        case = get_test_case(case_name)
        runner = ParallelLGA(case.scoring(), backend, self._config(),
                             seed=self.seed)
        results = runner.run(self.n_runs)
        outcomes = [evaluate_run(r, case, self.criteria) for r in results]
        budgets = [r.evals_used for r in results]
        t_score = [o.first_success_score for o in outcomes]
        t_rmsd = [o.first_success_rmsd for o in outcomes]
        est_s = estimate_e50(t_score, budgets)
        est_r = estimate_e50(t_rmsd, budgets)
        ci = bootstrap_e50_ci(t_score, budgets, n_boot=500, seed=self.seed)
        return CampaignResult(
            case=case_name, backend=backend, n_runs=self.n_runs,
            budget=budgets[0],
            score_successes=est_s.n_success,
            rmsd_successes=est_r.n_success,
            e50_score=est_s.e50, e50_rmsd=est_r.e50,
            e50_score_ci=ci,
            best_score=min(r.best_score for r in results),
        )

    def run(self, progress=None) -> list[CampaignResult]:
        """Run every cell; ``progress(case, backend)`` is called per cell."""
        out = []
        for case in self.cases:
            for backend in self.backends:
                if progress is not None:
                    progress(case, backend)
                out.append(self.run_cell(case, backend))
        return out

    @staticmethod
    def to_rows(results: list[CampaignResult]) -> list[dict]:
        """Flat dict rows for table rendering."""
        return [r.as_dict() for r in results]

    @staticmethod
    def save(results: list[CampaignResult], path: str | Path) -> None:
        """Checkpoint results as JSON."""
        Path(path).write_text(json.dumps(
            [r.as_dict() for r in results], indent=2))

    @staticmethod
    def load(path: str | Path) -> list[CampaignResult]:
        """Load a checkpoint written by :meth:`save`."""
        rows = json.loads(Path(path).read_text())
        return [CampaignResult(**{**r, "e50_score_ci":
                                  tuple(r["e50_score_ci"])})
                for r in rows]
