"""Experiment campaigns: the (cases x back-ends) sweeps behind the figures.

A campaign runs the same LGA configuration for every (test case, reduction
back-end) pair and distils the success statistics the paper's evaluation
reports.  Results serialise to plain dicts (JSON-ready) and long sweeps are
*resumable*: with a ``checkpoint`` path every completed cell is persisted
atomically, ``resume=True`` skips cells already on disk, transient cell
errors are retried with exponential backoff, and a per-cell watchdog
converts runaway cells into structured :class:`CellFailure` records instead
of killing the sweep.

Used by the benchmark harness (Figures 1/3) and available as public API
for custom studies::

    from repro.analysis.campaign import E50Campaign

    campaign = E50Campaign(cases=["5kao", "7cpa"],
                           backends=["baseline", "tcec-tf32"],
                           n_runs=24, max_evals=15_000)
    results = campaign.run(checkpoint="sweep.json", resume=True)
    print(campaign.to_rows(results))
    for f in campaign.failures:          # cells that never completed
        print(f.case, f.backend, f.error_type, f.message)
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.e50 import bootstrap_e50_ci, estimate_e50
from repro.analysis.success import SuccessCriteria, evaluate_run
from repro.robustness.watchdog import CellFailure, Watchdog, WatchdogTimeout
from repro.search.lga import LGAConfig
from repro.search.parallel import ParallelLGA
from repro.testcases import get_test_case

__all__ = ["E50Campaign", "CampaignResult", "CellFailure"]


@dataclass(frozen=True)
class CampaignResult:
    """Success statistics of one (case, back-end) cell."""

    case: str
    backend: str
    n_runs: int
    #: largest per-run evaluation budget actually consumed (runs may
    #: terminate heterogeneously, e.g. under AutoStop or a watchdog)
    budget: int
    score_successes: int
    rmsd_successes: int
    e50_score: float
    e50_rmsd: float
    e50_score_ci: tuple[float, float]
    best_score: float
    #: mean evaluations actually consumed per run
    budget_mean: float = 0.0

    def as_dict(self) -> dict:
        d = dict(self.__dict__)
        d["e50_score_ci"] = list(self.e50_score_ci)
        return d


@dataclass
class E50Campaign:
    """A (cases x back-ends) E50 sweep with shared LGA settings.

    Parameters mirror the scaled-down reproduction defaults; pass a full
    :class:`~repro.search.lga.LGAConfig` via ``lga`` to override
    everything.

    Robustness knobs
    ----------------
    retries:
        Re-run attempts for a cell that raises a transient error (watchdog
        aborts are terminal and never retried).
    backoff:
        Base delay of the exponential backoff between attempts [s]; attempt
        ``k`` sleeps ``backoff * 2**k``.
    cell_wall_seconds / cell_max_evals:
        Per-cell watchdog limits (``None`` disables); exceeded limits
        record a :class:`CellFailure` and the sweep continues.
    """

    cases: list[str]
    backends: list[str]
    n_runs: int = 24
    max_evals: int = 15_000
    seed: int = 2025
    lga: LGAConfig | None = None
    criteria: SuccessCriteria = field(default_factory=SuccessCriteria)
    retries: int = 2
    backoff: float = 1.0
    cell_wall_seconds: float | None = None
    cell_max_evals: int | None = None
    #: structured records of cells that never completed (reset by run())
    failures: list[CellFailure] = field(default_factory=list, repr=False)

    def _config(self) -> LGAConfig:
        return self.lga or LGAConfig(
            pop_size=30, max_evals=self.max_evals, max_gens=300,
            ls_iters=100, ls_rate=0.15)

    def _watchdog(self) -> Watchdog | None:
        if self.cell_wall_seconds is None and self.cell_max_evals is None:
            return None
        return Watchdog(wall_seconds=self.cell_wall_seconds,
                        max_evals=self.cell_max_evals)

    def run_cell(self, case_name: str, backend: str) -> CampaignResult:
        """Run one (case, back-end) cell."""
        case = get_test_case(case_name)
        runner = ParallelLGA(case.scoring(), backend, self._config(),
                             seed=self.seed)
        watchdog = self._watchdog()
        results = runner.run(
            self.n_runs,
            on_generation=watchdog.check if watchdog is not None else None)
        outcomes = [evaluate_run(r, case, self.criteria) for r in results]
        budgets = [r.evals_used for r in results]
        t_score = [o.first_success_score for o in outcomes]
        t_rmsd = [o.first_success_rmsd for o in outcomes]
        est_s = estimate_e50(t_score, budgets)
        est_r = estimate_e50(t_rmsd, budgets)
        ci = bootstrap_e50_ci(t_score, budgets, n_boot=500, seed=self.seed)
        return CampaignResult(
            case=case_name, backend=backend, n_runs=self.n_runs,
            budget=max(budgets),
            budget_mean=sum(budgets) / len(budgets),
            score_successes=est_s.n_success,
            rmsd_successes=est_r.n_success,
            e50_score=est_s.e50, e50_rmsd=est_r.e50,
            e50_score_ci=ci,
            best_score=min(r.best_score for r in results),
        )

    # ------------------------------------------------------------------

    def _attempt_cell(self, case: str, backend: str,
                      sleep) -> CampaignResult | None:
        """Run one cell with bounded retry; record a failure on defeat."""
        for attempt in range(self.retries + 1):
            try:
                return self.run_cell(case, backend)
            except WatchdogTimeout as exc:
                # a watchdog abort is deterministic — retrying would burn
                # the same budget again; record and move on
                self.failures.append(CellFailure(
                    case=case, backend=backend,
                    error_type=type(exc).__name__, message=str(exc),
                    attempts=attempt + 1, retryable=False,
                    extra={"elapsed": exc.elapsed, "evals": exc.evals}))
                return None
            except Exception as exc:
                if attempt < self.retries:
                    sleep(self.backoff * 2 ** attempt)
                    continue
                self.failures.append(CellFailure(
                    case=case, backend=backend,
                    error_type=type(exc).__name__, message=str(exc),
                    attempts=attempt + 1, retryable=True))
                return None
        return None  # pragma: no cover - loop always returns

    def run(self, progress=None, checkpoint: str | Path | None = None,
            resume: bool = False, sleep=time.sleep) -> list[CampaignResult]:
        """Run every cell; ``progress(case, backend)`` is called per cell.

        Parameters
        ----------
        checkpoint:
            JSON path updated atomically after every completed cell, so a
            killed sweep loses at most the cell in flight.
        resume:
            Load ``checkpoint`` (if it exists) and skip cells already
            completed — only incomplete cells re-run.
        sleep:
            Injectable backoff sleep (tests pass a recorder).
        """
        self.failures = []
        out: list[CampaignResult] = []
        done: dict[tuple[str, str], CampaignResult] = {}
        if resume:
            if checkpoint is None:
                raise ValueError("resume=True requires a checkpoint path")
            if Path(checkpoint).exists():
                done = {(r.case, r.backend): r for r in self.load(checkpoint)}

        for case in self.cases:
            for backend in self.backends:
                cached = done.get((case, backend))
                if cached is not None:
                    out.append(cached)
                    continue
                if progress is not None:
                    progress(case, backend)
                result = self._attempt_cell(case, backend, sleep)
                if result is None:
                    continue
                out.append(result)
                if checkpoint is not None:
                    self.save(out, checkpoint)
        return out

    @staticmethod
    def to_rows(results: list[CampaignResult]) -> list[dict]:
        """Flat dict rows for table rendering."""
        return [r.as_dict() for r in results]

    @staticmethod
    def save(results: list[CampaignResult], path: str | Path) -> None:
        """Checkpoint results as JSON, atomically.

        The payload is written to a sibling temp file and moved into place
        with :func:`os.replace`, so a sweep killed mid-write can never
        leave a truncated or corrupt checkpoint behind.
        """
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps([r.as_dict() for r in results], indent=2))
        os.replace(tmp, path)

    @staticmethod
    def load(path: str | Path) -> list[CampaignResult]:
        """Load a checkpoint written by :meth:`save`."""
        rows = json.loads(Path(path).read_text())
        return [CampaignResult(**{**r, "e50_score_ci":
                                  tuple(r["e50_score_ci"])})
                for r in rows]
