"""Plain-text rendering of the reproduced tables and figure series.

The benchmark harness prints every table/figure in the same row structure
the paper uses, so paper-vs-measured comparison is a visual diff.  Only
stdlib string formatting — no plotting dependencies.
"""

from __future__ import annotations

__all__ = ["format_table", "format_scatter"]


def format_table(rows: list[dict], columns: list[str] | None = None,
                 title: str | None = None, floatfmt: str = "{:.2f}") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = columns or list(rows[0].keys())

    def cell(v) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    table = [[cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[k]) for row in table))
              for k, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in table:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_scatter(points: list[tuple[str, float, float]],
                   xlabel: str, ylabel: str, title: str | None = None
                   ) -> str:
    """Render (label, x, y) scatter data as rows with an x/y ratio column.

    Used for the Figure 1/3 E50 scatters: points on the diagonal have
    ratio ~1 (algorithmic equivalence); ratios > 1 mean the y-axis
    implementation needs more evaluations.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'case':8s}  {xlabel:>14s}  {ylabel:>14s}  {'y/x':>8s}")
    lines.append("-" * 52)
    for label, x, y in points:
        ratio = y / x if x > 0 else float("inf")
        lines.append(f"{label:8s}  {x:14.4g}  {y:14.4g}  {ratio:8.2f}")
    return "\n".join(lines)
