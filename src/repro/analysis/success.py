"""The paper's two search-success criteria applied to LGA runs.

Score criterion: an LGA run is successful once its best pose scores within
1.0 kcal/mol of the global minimum.  RMSD criterion: successful once the
best pose lies within 2 Å of the native pose (Section 4).  For the E50
analysis we need the *evaluation count at which each criterion is first
met*, extracted from the run's best-improvement history.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.docking.pose import calc_coords
from repro.docking.rmsd import rmsd
from repro.search.lga import LGAResult
from repro.testcases.generator import TestCase

__all__ = ["SuccessCriteria", "RunOutcome", "evaluate_run"]


@dataclass(frozen=True)
class SuccessCriteria:
    """Success thresholds (paper defaults)."""

    score_tolerance: float = 1.0   # kcal/mol above the global minimum
    rmsd_threshold: float = 2.0    # Å from the native pose


@dataclass(frozen=True)
class RunOutcome:
    """Per-run success summary.

    ``first_success_*`` give the evaluation count at which the criterion
    was first met, or ``None`` if never (censored at the run's budget).
    """

    best_score: float
    best_rmsd: float
    evals_used: int
    first_success_score: int | None
    first_success_rmsd: int | None

    def to_dict(self) -> dict:
        """JSON-ready dict (``inf`` RMSDs survive as the string "inf")."""
        rmsd_ = float(self.best_rmsd)
        return {
            "best_score": float(self.best_score),
            "best_rmsd": "inf" if np.isinf(rmsd_) else rmsd_,
            "evals_used": int(self.evals_used),
            "first_success_score": self.first_success_score,
            "first_success_rmsd": self.first_success_rmsd,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunOutcome":
        """Inverse of :meth:`to_dict`."""
        first_s = d["first_success_score"]
        first_r = d["first_success_rmsd"]
        return cls(
            best_score=float(d["best_score"]),
            best_rmsd=float(d["best_rmsd"]),
            evals_used=int(d["evals_used"]),
            first_success_score=None if first_s is None else int(first_s),
            first_success_rmsd=None if first_r is None else int(first_r),
        )


def evaluate_run(result: LGAResult, case: TestCase,
                 criteria: SuccessCriteria | None = None) -> RunOutcome:
    """Walk a run's improvement history and locate the first successes."""
    criteria = criteria or SuccessCriteria()
    threshold = case.global_min_score + criteria.score_tolerance

    first_score: int | None = None
    first_rmsd: int | None = None
    best_rmsd = np.inf

    if result.history:
        genos = np.stack([g for _, _, g in result.history])
        coords = calc_coords(case.ligand, genos)
        rmsds = rmsd(coords, case.native_coords)
    else:
        rmsds = np.empty(0)

    for k, (evals, score, _) in enumerate(result.history):
        r = float(rmsds[k])
        best_rmsd = min(best_rmsd, r)
        if first_score is None and score <= threshold:
            first_score = evals
        if first_rmsd is None and r < criteria.rmsd_threshold:
            first_rmsd = evals

    return RunOutcome(
        best_score=result.best_score,
        best_rmsd=float(best_rmsd),
        evals_used=result.evals_used,
        first_success_score=first_score,
        first_success_rmsd=first_rmsd,
    )
