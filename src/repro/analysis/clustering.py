"""RMSD-based pose clustering — AutoDock's conformational analysis.

AutoDock groups the final poses of a multi-run docking into clusters: the
poses are sorted by score; each pose joins the first existing cluster whose
seed (lowest-energy member) lies within the RMSD tolerance, or founds a new
cluster.  The ``.dlg`` reports the familiar ``CLUSTERING HISTOGRAM``.  The
same procedure applied to a :class:`~repro.core.engine.DockingResult`
summarises how reproducibly the search finds each basin — and, with the
native pose as reference, which cluster is the native one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.docking.pose import calc_coords
from repro.docking.rmsd import rmsd

__all__ = ["PoseCluster", "cluster_poses", "cluster_result",
           "format_clustering_histogram"]


@dataclass
class PoseCluster:
    """One conformational cluster."""

    seed_index: int            # index of the lowest-energy member
    member_indices: list[int] = field(default_factory=list)
    best_score: float = float("inf")
    mean_score: float = float("nan")
    seed_rmsd_to_native: float = float("nan")

    @property
    def size(self) -> int:
        return len(self.member_indices)


def cluster_poses(coords: np.ndarray, scores: np.ndarray,
                  tolerance: float = 2.0,
                  native: np.ndarray | None = None) -> list[PoseCluster]:
    """Cluster poses by RMSD with AutoDock's greedy seed procedure.

    Parameters
    ----------
    coords:
        ``(n_poses, n_atoms, 3)`` pose coordinates.
    scores:
        ``(n_poses,)`` scores (lower is better).
    tolerance:
        Cluster RMSD tolerance [Å] (AutoDock default 2.0).
    native:
        Optional native pose for per-cluster native-RMSD annotation.

    Returns
    -------
    Clusters ordered by their seed's score (best first).
    """
    coords = np.asarray(coords, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if coords.ndim != 3 or coords.shape[0] != scores.shape[0]:
        raise ValueError("coords must be (n_poses, n_atoms, 3) matching scores")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")

    order = np.argsort(scores)
    clusters: list[PoseCluster] = []
    for idx in order:
        for cl in clusters:
            if rmsd(coords[idx], coords[cl.seed_index]) <= tolerance:
                cl.member_indices.append(int(idx))
                break
        else:
            clusters.append(PoseCluster(seed_index=int(idx),
                                        member_indices=[int(idx)]))

    for cl in clusters:
        member_scores = scores[cl.member_indices]
        cl.best_score = float(member_scores.min())
        cl.mean_score = float(member_scores.mean())
        if native is not None:
            cl.seed_rmsd_to_native = float(
                rmsd(coords[cl.seed_index], native))
    return clusters


def cluster_result(result, case, tolerance: float = 2.0
                   ) -> list[PoseCluster]:
    """Cluster a :class:`~repro.core.engine.DockingResult`'s per-run best
    poses against its :class:`~repro.testcases.generator.TestCase`."""
    genos = np.stack([r.best_genotype for r in result.runs])
    coords = calc_coords(case.ligand, genos)
    scores = np.array([r.best_score for r in result.runs])
    return cluster_poses(coords, scores, tolerance=tolerance,
                         native=case.native_coords)


def format_clustering_histogram(clusters: list[PoseCluster]) -> str:
    """AutoDock-style clustering histogram text block."""
    lines = [
        "CLUSTERING HISTOGRAM",
        f"{'clu':>4s} {'best kcal/mol':>14s} {'mean':>8s} {'runs':>5s} "
        f"{'rmsd_native':>12s}  histogram",
        "-" * 64,
    ]
    for k, cl in enumerate(clusters, 1):
        native = ("" if np.isnan(cl.seed_rmsd_to_native)
                  else f"{cl.seed_rmsd_to_native:12.2f}")
        lines.append(
            f"{k:4d} {cl.best_score:14.2f} {cl.mean_score:8.2f} "
            f"{cl.size:5d} {native:>12s}  " + "#" * cl.size)
    return "\n".join(lines)
