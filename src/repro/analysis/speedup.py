"""Speedup aggregation across the evaluation set (Figure 4).

The paper reports two speedup families over the 42-case set:

* **absolute** — each (GPU, block size, implementation) configuration's
  aggregated µs/eval relative to the A100 SM-only baseline;
* **relative** — TCEC's aggregated µs/eval relative to its own baseline on
  the same GPU and block size.

Aggregation over cases uses the geometric mean of per-case performance
ratios, the standard way to aggregate relative performance without letting
a single large case dominate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfigKey", "aggregate_speedups", "geometric_mean"]


@dataclass(frozen=True, order=True)
class ConfigKey:
    """One measured configuration."""

    device: str
    block_size: int
    backend: str


def geometric_mean(values) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty input")
    if np.any(arr <= 0):
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(arr))))


def aggregate_speedups(
    us_per_eval: dict[ConfigKey, dict[str, float]],
    reference: ConfigKey,
    tc_backend: str = "tcec-tf32",
    base_backend: str = "baseline",
) -> list[dict]:
    """Build the Figure 4 rows from per-case µs/eval measurements.

    Parameters
    ----------
    us_per_eval:
        ``{config: {case_name: us_per_eval}}``.
    reference:
        The absolute-speedup reference configuration (paper: A100 baseline
        at the same block size; pass one per block-size family).
    tc_backend / base_backend:
        Back-end names forming the relative-speedup pairs.

    Returns
    -------
    One row per configuration: ``device``, ``block``, ``backend``,
    ``absolute_speedup`` (vs the reference config) and, on tc rows,
    ``relative_speedup`` (vs the same device/block baseline).
    """
    if reference not in us_per_eval:
        raise ValueError(f"reference config {reference} not measured")
    ref = us_per_eval[reference]

    def ratio(cfg_a: ConfigKey, cfg_b: ConfigKey) -> float:
        """Geomean over cases of (cfg_b time / cfg_a time) = speedup of a."""
        a, b = us_per_eval[cfg_a], us_per_eval[cfg_b]
        common = sorted(set(a) & set(b))
        if not common:
            raise ValueError(f"no common cases between {cfg_a} and {cfg_b}")
        return geometric_mean(b[c] / a[c] for c in common)

    rows = []
    for cfg in sorted(us_per_eval):
        row = {
            "device": cfg.device,
            "block": cfg.block_size,
            "backend": cfg.backend,
            "absolute_speedup": ratio(cfg, reference),
        }
        if cfg.backend == tc_backend:
            base = ConfigKey(cfg.device, cfg.block_size, base_backend)
            if base in us_per_eval:
                row["relative_speedup"] = ratio(cfg, base)
        rows.append(row)
    return rows
