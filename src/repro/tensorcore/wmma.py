"""A ``nvcuda::wmma``-style fragment API over the simulated Tensor Core.

Mirrors the CUDA Warp Matrix Multiply-and-Accumulate interface the paper's
Listing 1 uses, so the reduction kernels read like their CUDA counterparts:

.. code-block:: python

    frag_a = wmma.fragment(wmma.matrix_a, fmt="fp16")
    frag_p = wmma.fragment(wmma.matrix_b, fmt="fp16")
    frag_v = wmma.fragment(wmma.accumulator)
    wmma.load_matrix_sync(frag_a, buf, ldm=16, layout=wmma.col_major)
    wmma.fill_fragment(frag_p, 1.0)
    wmma.fill_fragment(frag_v, 0.0)
    wmma.mma_sync(frag_v, frag_a, frag_p, frag_v)
    wmma.store_matrix_sync(out, frag_v, ldm=16, layout=wmma.mem_col_major)

Buffers are flat float32 NumPy arrays indexed with a leading dimension, as
shared memory would be.  ``*_sync`` names are kept although the simulation is
single-threaded; the warp-synchronous semantics are what the cost model
charges for.
"""

from __future__ import annotations

import numpy as np

from repro.fpemu.formats import FloatFormat, get_format, quantize
from repro.tensorcore.mma import MMA_K, MMA_M, MMA_N, mma

__all__ = [
    "matrix_a",
    "matrix_b",
    "accumulator",
    "row_major",
    "col_major",
    "mem_row_major",
    "mem_col_major",
    "fragment",
    "load_matrix_sync",
    "store_matrix_sync",
    "fill_fragment",
    "mma_sync",
]

# fragment roles
matrix_a = "matrix_a"
matrix_b = "matrix_b"
accumulator = "accumulator"

# layouts
row_major = "row_major"
col_major = "col_major"
mem_row_major = row_major
mem_col_major = col_major

_ROLE_SHAPES = {
    matrix_a: (MMA_M, MMA_K),
    matrix_b: (MMA_K, MMA_N),
    accumulator: (MMA_M, MMA_N),
}


class fragment:
    """A 16x16 tile distributed (conceptually) across a warp.

    Parameters
    ----------
    role:
        One of :data:`matrix_a`, :data:`matrix_b`, :data:`accumulator`.
    fmt:
        Operand format for A/B fragments (``"fp16"``, ``"tf32"``, ``"bf16"``).
        Accumulator fragments are FP32 by default; passing ``"fp16"``
        reproduces the half-precision ``frag_V`` of the paper's Listing 1
        (bottom) — results quantise to FP16 after every issue.
    accumulate:
        Accumulator rounding behaviour when this fragment is the MMA output
        (``"rz"`` = hardware, ``"rn"`` = ablation).
    """

    __slots__ = ("role", "fmt", "accumulate", "data")

    def __init__(self, role: str, fmt: str | FloatFormat = "fp32",
                 accumulate: str = "rz") -> None:
        if role not in _ROLE_SHAPES:
            raise ValueError(f"unknown fragment role {role!r}")
        self.role = role
        if role == accumulator:
            fmt = get_format(fmt if fmt != "fp32" else "fp32")
            if fmt.name not in ("fp32", "fp16"):
                raise ValueError(
                    "accumulator fragments support fp32 or fp16 only")
            self.fmt = fmt
        else:
            self.fmt = get_format(fmt)
        self.accumulate = accumulate
        self.data = np.zeros(_ROLE_SHAPES[role], dtype=np.float32)

    @property
    def shape(self) -> tuple[int, int]:
        return _ROLE_SHAPES[self.role]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"fragment({self.role}, fmt={self.fmt.name})"


def _tile_view(buf: np.ndarray, ldm: int, shape: tuple[int, int],
               layout: str) -> np.ndarray:
    """View a (rows, cols) tile out of a flat leading-dimension buffer."""
    rows, cols = shape
    flat = np.asarray(buf).reshape(-1)
    if layout == col_major:
        need = ldm * (cols - 1) + rows
        if flat.size < need:
            raise ValueError(f"buffer too small: need {need}, have {flat.size}")
        return flat[: ldm * cols].reshape(cols, ldm)[:, :rows].T
    if layout == row_major:
        need = ldm * (rows - 1) + cols
        if flat.size < need:
            raise ValueError(f"buffer too small: need {need}, have {flat.size}")
        return flat[: ldm * rows].reshape(rows, ldm)[:, :cols]
    raise ValueError(f"unknown layout {layout!r}")


def load_matrix_sync(frag: fragment, buf: np.ndarray, ldm: int,
                     layout: str = col_major) -> None:
    """Load a tile from (simulated shared) memory into a fragment.

    A/B fragments are quantised to their operand format at load time, exactly
    as ``wmma::load_matrix_sync`` converts FP32 shared-memory data that was
    pre-converted by the kernel (the quantisation point of the baseline).
    """
    tile = np.array(_tile_view(buf, ldm, frag.shape, layout), dtype=np.float32)
    if frag.role != accumulator and frag.fmt.name != "fp32":
        tile = quantize(tile, frag.fmt)
    frag.data = tile


def store_matrix_sync(buf: np.ndarray, frag: fragment, ldm: int,
                      layout: str = col_major) -> None:
    """Store an accumulator fragment back to (simulated shared) memory."""
    if frag.role != accumulator:
        raise ValueError("only accumulator fragments can be stored")
    view = _tile_view(buf, ldm, frag.shape, layout)
    view[...] = frag.data


def fill_fragment(frag: fragment, value: float) -> None:
    """Set every element of the fragment to ``value`` (format-quantised)."""
    tile = np.full(frag.shape, np.float32(value), dtype=np.float32)
    if frag.role != accumulator and frag.fmt.name != "fp32":
        tile = quantize(tile, frag.fmt)
    frag.data = tile


def mma_sync(d: fragment, a: fragment, b: fragment, c: fragment) -> None:
    """``D = A x B + C`` on the simulated Tensor Core (RZ accumulation;
    FP16 quantisation when ``d`` is a half accumulator fragment)."""
    if a.role != matrix_a or b.role != matrix_b:
        raise ValueError("mma_sync operands must be (matrix_a, matrix_b)")
    if d.role != accumulator or c.role != accumulator:
        raise ValueError("mma_sync C/D must be accumulator fragments")
    if a.fmt.name != b.fmt.name:
        raise ValueError(f"operand format mismatch: {a.fmt.name} vs {b.fmt.name}")
    d.data = mma(a.data, b.data, c.data, in_format=a.fmt,
                 accumulate=d.accumulate, quantize_inputs=False,
                 accumulator_format=d.fmt.name)
