"""Error-corrected Tensor Core GEMM (Ootomo & Yokota / WMMA-Extension).

The scheme the paper adopts ("TCEC") recovers FP32-grade accuracy from
reduced-precision Tensor Core GEMMs via three mechanisms:

1. **Operand splitting** — each FP32 operand is split into a format-precision
   head and an up-scaled residual (``repro.fpemu.split``), and the product is
   expanded into correction terms::

       A x B ~= Ah x Bh + (Ah x Bl + Al x Bh) / S        (Al x Bl dropped)

2. **External accumulation** — every Tensor Core issue uses ``C = 0`` so the
   hardware's round-toward-zero accumulator touches only one partial
   product; the running sum (including the caller's accumulator) is carried
   on FP32 SIMT cores with round-to-nearest.

3. **Underflow avoidance / term elimination** — residuals are pre-scaled by
   ``2**(mantissa+1)``, and the mixed terms can be skipped when provably
   negligible against the head term (the performance enhancement).

:func:`tcec_mma` is the drop-in counterpart of :func:`repro.tensorcore.mma.mma`
with identical tile/batching semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpemu.formats import FloatFormat, get_format
from repro.fpemu.rounding import round_f64_to_f32_rn
from repro.fpemu.split import split_operand
from repro.tensorcore.mma import apply_fault_hook, tc_product

__all__ = ["TcecConfig", "tcec_mma", "count_tc_issues"]


@dataclass(frozen=True)
class TcecConfig:
    """Configuration of the error-correction scheme.

    Attributes
    ----------
    in_format:
        Tensor Core operand format; the paper uses ``"tf32"`` (Listing 1),
        the FP16 variant is exercised by the format ablation.
    scale_residual:
        Apply the Ootomo–Yokota residual up-scaling (underflow avoidance).
    correction_terms:
        ``2`` keeps both mixed terms (WMMA-Extension default), ``1`` keeps
        only ``Ah x Bl`` and ``0`` degenerates to an uncorrected product —
        the term-elimination ablation sweeps this.
    drop_negligible:
        Skip correction terms whose maximum possible magnitude is below one
        FP32 ULP of the head term (WMMA-Extension's performance shortcut).
    """

    in_format: str = "tf32"
    scale_residual: bool = True
    correction_terms: int = 2
    drop_negligible: bool = False

    def __post_init__(self) -> None:
        if self.correction_terms not in (0, 1, 2):
            raise ValueError("correction_terms must be 0, 1 or 2")

    @property
    def fmt(self) -> FloatFormat:
        return get_format(self.in_format)


def count_tc_issues(config: TcecConfig) -> int:
    """Number of Tensor Core issues one tcec tile-MMA costs (for the timing
    model): the head product plus one per retained correction term."""
    return 1 + config.correction_terms


def _negligible(head: np.ndarray, corr_scale: float, fmt: FloatFormat) -> bool:
    """Heuristic negligibility test used when ``drop_negligible`` is set.

    The correction terms are bounded by ``|A| |B| eps * K``; comparing the
    head magnitude against the FP32 unit roundoff decides whether applying
    them can change the FP32 result at all.
    """
    h = float(np.max(np.abs(head))) if head.size else 0.0
    if h == 0.0:
        return False
    # correction contribution is about eps_fmt * head; negligible once it
    # falls below half an FP32 ULP of the head.
    return fmt.machine_epsilon / corr_scale < 2.0 ** -25


def tcec_mma(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    config: TcecConfig | None = None,
) -> np.ndarray:
    """Error-corrected ``D = A x B + C`` over 16x16x16 tiles.

    Tile and batching semantics match :func:`repro.tensorcore.mma.mma`; the
    accumulator ``c`` is combined outside the Tensor Core in FP32/RN, which
    is the behavioural difference Figure 2 of the paper illustrates.
    """
    config = config or TcecConfig()
    fmt = config.fmt
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    c = np.asarray(c, dtype=np.float32)

    a_hi, a_lo, s_a = split_operand(a, fmt, scale_residual=config.scale_residual)
    b_hi, b_lo, s_b = split_operand(b, fmt, scale_residual=config.scale_residual)

    def rn_add(x32: np.ndarray, y32: np.ndarray) -> np.ndarray:
        # one FP32 round-to-nearest add on the SIMT cores
        return round_f64_to_f32_rn(x32.astype(np.float64) + y32.astype(np.float64))

    acc = tc_product(a_hi, b_hi, in_format=fmt, quantize_inputs=False)
    head = acc

    n_terms = config.correction_terms
    if n_terms >= 1 and not (
        config.drop_negligible and _negligible(head, s_b, fmt)
    ):
        t = tc_product(a_hi, b_lo, in_format=fmt, quantize_inputs=False)
        # the 1/S scale is a power of two -> exact FP32 multiply
        acc = rn_add(acc, (t / np.float32(s_b)).astype(np.float32))
    if n_terms >= 2 and not (
        config.drop_negligible and _negligible(head, s_a, fmt)
    ):
        t = tc_product(a_lo, b_hi, in_format=fmt, quantize_inputs=False)
        acc = rn_add(acc, (t / np.float32(s_a)).astype(np.float32))

    # the external FP32/RN accumulator lives in SIMT registers — a distinct
    # fault-injection site from the Tensor Core accumulator fragments
    return apply_fault_hook(rn_add(acc, c), "tcec-simt-acc")
