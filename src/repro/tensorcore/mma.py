"""The simulated 16x16x16 matrix multiply-accumulate unit.

Hardware model (Ootomo & Yokota, 2022, Sec. 3): inside one ``mma`` the K=16
products are formed exactly (each product of two <=11-bit-mantissa operands
fits FP32, and the 16-term sum is carried in wide internal adders), and the
rounding happens when the sum is added to the FP32 accumulator ``C`` — with
**round-toward-zero**.  We therefore compute

    D = round_rz( C_64 + sum_k A'[m,k] * B'[k,n] )      (per element)

with the exact inner sum taken in float64 (16 products of 22-bit-significand
values are exact in float64) and a single directed rounding into float32.

All entry points accept leading batch dimensions so a population of thread
blocks can issue their MMAs in one vectorised call; numerics are identical
to issuing them one by one.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.fpemu.formats import FloatFormat, get_format, quantize
from repro.fpemu.rounding import round_f64_to_f32_rn, round_f64_to_f32_rz

__all__ = ["MMA_M", "MMA_N", "MMA_K", "mma", "tc_product", "fault_hook",
           "set_fault_hook", "apply_fault_hook"]

#: Fragment shape of the WMMA 16x16x16 tile the paper's kernels use.
MMA_M = 16
MMA_N = 16
MMA_K = 16

_ROUNDERS = {
    "rz": round_f64_to_f32_rz,
    "rn": round_f64_to_f32_rn,
}

# ----------------------------------------------------------------------
# fault-injection hook (repro.robustness.inject)
#
# When set, the hook sees every accumulator tile the simulated Tensor Core
# produces — ``hook(tile, site) -> tile`` — and may return a corrupted
# copy.  ``None`` (the default) costs one pointer check per mma issue.

_FAULT_HOOK = None


def set_fault_hook(hook) -> object:
    """Install a tile fault hook; returns the previous one (for restore)."""
    global _FAULT_HOOK
    prev = _FAULT_HOOK
    _FAULT_HOOK = hook
    return prev


@contextmanager
def fault_hook(hook):
    """Scoped installation of a tile fault hook (always restored)."""
    prev = set_fault_hook(hook)
    try:
        yield hook
    finally:
        set_fault_hook(prev)


def apply_fault_hook(tile: np.ndarray, site: str) -> np.ndarray:
    """Run the installed hook (if any) over an accumulator tile."""
    if _FAULT_HOOK is None:
        return tile
    return _FAULT_HOOK(tile, site)


def _check_tile(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    if a.shape[-2:] != (MMA_M, MMA_K):
        raise ValueError(f"A tile must be (...,{MMA_M},{MMA_K}), got {a.shape}")
    if b.shape[-2:] != (MMA_K, MMA_N):
        raise ValueError(f"B tile must be (...,{MMA_K},{MMA_N}), got {b.shape}")
    if c.shape[-2:] != (MMA_M, MMA_N):
        raise ValueError(f"C tile must be (...,{MMA_M},{MMA_N}), got {c.shape}")


def mma(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    *,
    in_format: str | FloatFormat = "fp16",
    accumulate: str = "rz",
    quantize_inputs: bool = True,
    accumulator_format: str = "fp32",
) -> np.ndarray:
    """One Tensor Core ``D = A x B + C`` over 16x16x16 tiles.

    Parameters
    ----------
    a, b, c:
        Tiles of shape ``(..., 16, 16)``; leading dimensions are batched.
    in_format:
        Operand format the hardware would load (``"fp16"``, ``"tf32"``,
        ``"bf16"``).  The FP32 accumulator ``c`` is never quantised.
    accumulate:
        ``"rz"`` reproduces hardware round-toward-zero accumulation;
        ``"rn"`` models the hypothetical round-to-nearest accumulator used
        by the rounding ablation.
    quantize_inputs:
        Set False when the caller guarantees ``a``/``b`` already lie on the
        format lattice (avoids double conversion in the EC path).
    accumulator_format:
        ``"fp32"`` (default) or ``"fp16"``.  Schieffer & Peng's kernel
        declares ``frag_V`` as ``half`` (the paper's Listing 1, bottom), so
        their reduction accumulates in FP16 — overflowing at 65504 and
        losing absolute precision as the running sum grows.  ``"fp16"``
        reproduces that: the accumulator is quantised to the FP16 lattice
        after every issue.

    Returns
    -------
    float32 array of shape broadcast(``a``, ``b``, ``c``) x (16, 16).
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    c = np.asarray(c, dtype=np.float32)
    _check_tile(a, b, c)
    if quantize_inputs:
        a = quantize(a, in_format)
        b = quantize(b, in_format)
    try:
        rounder = _ROUNDERS[accumulate]
    except KeyError:
        raise ValueError(
            f"unknown accumulate mode {accumulate!r}; expected 'rz' or 'rn'"
        ) from None
    if accumulator_format not in ("fp32", "fp16"):
        raise ValueError(f"unknown accumulator format {accumulator_format!r}")
    # exact inner product in float64, single directed rounding into FP32;
    # inf operands (FP16 overflow) legitimately produce inf/NaN like hardware
    with np.errstate(invalid="ignore"):
        prod = np.matmul(a.astype(np.float64), b.astype(np.float64))
        out = rounder(prod + c.astype(np.float64))
        if accumulator_format == "fp16":
            out = quantize(out, "fp16", mode="rz")
        return apply_fault_hook(out, "mma-accumulator")


def tc_product(
    a: np.ndarray,
    b: np.ndarray,
    *,
    in_format: str | FloatFormat = "fp16",
    accumulate: str = "rz",
    quantize_inputs: bool = True,
) -> np.ndarray:
    """Tensor Core product with a zero accumulator (``D = A x B``).

    The building block of the error-correction scheme, where every partial
    product is computed with ``C = 0`` on the Tensor Core and all running
    accumulation happens outside in FP32/RN.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    zero_shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) + (MMA_M, MMA_N)
    c = np.zeros(zero_shape, dtype=np.float32)
    return mma(a, b, c, in_format=in_format, accumulate=accumulate,
               quantize_inputs=quantize_inputs)


def format_of(fmt: str | FloatFormat) -> FloatFormat:
    """Convenience re-export used by the WMMA layer."""
    return get_format(fmt)
