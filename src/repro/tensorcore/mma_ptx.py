"""Low-level PTX-style MMA shapes (``mma.sync.aligned.m16n8kK``).

WMMA-Extension (the library the paper uses, Listing 1) encapsulates GEMMs
"implemented using either NVIDIA's high-level WMMA API or the newer,
low-level MMA interface".  This module models that second path: the PTX
``mma.sync`` instruction shapes — ``m16n8k8`` for TF32 operands and
``m16n8k16`` for FP16 — plus a tiler that composes the 16x16x16 WMMA tile
out of them, reproducing how the library lowers a fragment MMA onto the
hardware instructions.

Numerics are identical to :func:`repro.tensorcore.mma.mma` *per
instruction*: exact inner products with one directed rounding per issue.
Because the 16x16x16 tile decomposes into 2 (N) x K-chunks issues with the
accumulator carried between them, the low-level path performs **more
accumulator roundings** than the single WMMA issue — a real difference
between the two lowering strategies that the composition test quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.fpemu.formats import FloatFormat, get_format, quantize
from repro.fpemu.rounding import round_f64_to_f32_rn, round_f64_to_f32_rz

__all__ = ["mma_m16n8k8", "mma_m16n8k16", "wmma_via_ptx", "PTX_SHAPES"]

#: instruction shapes by operand format: format -> (M, N, K)
PTX_SHAPES = {"tf32": (16, 8, 8), "fp16": (16, 8, 16), "bf16": (16, 8, 8)}

_ROUNDERS = {"rz": round_f64_to_f32_rz, "rn": round_f64_to_f32_rn}


def _ptx_mma(a: np.ndarray, b: np.ndarray, c: np.ndarray,
             shape: tuple[int, int, int], in_format: str | FloatFormat,
             accumulate: str) -> np.ndarray:
    m, n, k = shape
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    c = np.asarray(c, dtype=np.float32)
    if a.shape[-2:] != (m, k):
        raise ValueError(f"A tile must be (..., {m}, {k}), got {a.shape}")
    if b.shape[-2:] != (k, n):
        raise ValueError(f"B tile must be (..., {k}, {n}), got {b.shape}")
    if c.shape[-2:] != (m, n):
        raise ValueError(f"C tile must be (..., {m}, {n}), got {c.shape}")
    a = quantize(a, in_format)
    b = quantize(b, in_format)
    try:
        rounder = _ROUNDERS[accumulate]
    except KeyError:
        raise ValueError(f"unknown accumulate mode {accumulate!r}") from None
    with np.errstate(invalid="ignore"):
        prod = np.matmul(a.astype(np.float64), b.astype(np.float64))
        return rounder(prod + c.astype(np.float64))


def mma_m16n8k8(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                in_format: str = "tf32", accumulate: str = "rz"
                ) -> np.ndarray:
    """``mma.sync.aligned.m16n8k8`` — the TF32 instruction shape."""
    return _ptx_mma(a, b, c, (16, 8, 8), in_format, accumulate)


def mma_m16n8k16(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                 in_format: str = "fp16", accumulate: str = "rz"
                 ) -> np.ndarray:
    """``mma.sync.aligned.m16n8k16`` — the FP16 instruction shape."""
    return _ptx_mma(a, b, c, (16, 8, 16), in_format, accumulate)


def wmma_via_ptx(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                 in_format: str = "tf32", accumulate: str = "rz"
                 ) -> np.ndarray:
    """A 16x16x16 tile MMA lowered onto PTX instruction shapes.

    Splits N into two 8-wide halves and K into instruction-sized chunks,
    chaining the accumulator through the K chunks exactly as the hardware
    sequence would (one directed rounding per issue).
    """
    fmt = get_format(in_format)
    try:
        m, n, k = PTX_SHAPES[fmt.name]
    except KeyError:
        raise ValueError(f"no PTX mma shape for format {fmt.name!r}") from None
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    c = np.asarray(c, dtype=np.float32)
    if a.shape[-2:] != (16, 16) or b.shape[-2:] != (16, 16) \
            or c.shape[-2:] != (16, 16):
        raise ValueError("wmma_via_ptx operates on (..., 16, 16) tiles")

    out = np.array(c, copy=True)
    for n0 in range(0, 16, n):
        acc = c[..., :, n0:n0 + n]
        for k0 in range(0, 16, k):
            acc = _ptx_mma(a[..., :, k0:k0 + k], b[..., k0:k0 + k, n0:n0 + n],
                           acc, (m, n, k), fmt, accumulate)
        out[..., :, n0:n0 + n] = acc
    return out
