"""Software Tensor Core: numerically faithful MMA, WMMA API, and TCEC GEMM.

The simulator reproduces the two behaviours that drive the paper's accuracy
results:

1. operand truncation — FP32 inputs are quantised to FP16 / TF32 before the
   multiply (``repro.fpemu``);
2. round-toward-zero accumulation — the product-sum is added to the FP32
   accumulator with RZ instead of RN (Ootomo & Yokota's observation).

Three layers are exposed:

* :mod:`repro.tensorcore.mma` — the raw (optionally batched) 16x16x16 MMA.
* :mod:`repro.tensorcore.wmma` — a ``nvcuda::wmma``-style fragment API
  (``load_matrix_sync`` / ``fill_fragment`` / ``mma_sync`` / ...).
* :mod:`repro.tensorcore.tcec` — the Ootomo–Yokota error-corrected GEMM as
  packaged by the WMMA-Extension library the paper uses.
"""

from repro.tensorcore.mma import MMA_K, MMA_M, MMA_N, mma, tc_product
from repro.tensorcore.tcec import TcecConfig, tcec_mma
from repro.tensorcore import wmma

__all__ = [
    "MMA_M",
    "MMA_N",
    "MMA_K",
    "mma",
    "tc_product",
    "TcecConfig",
    "tcec_mma",
    "wmma",
]
