"""Gateway bench: predictor calibration traces + submit→result latency.

Produces ``BENCH_gateway.json`` (schema ``bench-gateway/v1``), the file
the serving stack's runtime predictor is calibrated against and the CI
gateway job validates with ``tools/check_bench.py``:

* ``shapes`` — the cost-model shape table of the library cases used for
  prediction (committed so admission control can price a named case
  without building it);
* ``calibration.entries`` — measured host wall time of real docking
  runs across the N_rot range (atoms × torsions × eval budget →
  seconds), the regression targets of
  :class:`repro.simt.predictor.RuntimePredictor`;
* ``calibration.accuracy`` — the fitted predictor's p50/p90 relative
  error against those same traces (the acceptance gate is p50 ≤ 30%);
* ``latency`` — end-to-end p50/p99 submit→result latency through a
  live in-process gateway (HTTP submission, 2 inline shards, NDJSON
  stream), the number the "Serving at scale" docs quote.

Machine speed is normalised the same way as ``bench_hot_path.py``: the
file records ``numpy_ref_s`` and consumers rescale by the local/committed
ratio.

Usage::

    PYTHONPATH=src python benchmarks/bench_gateway_latency.py --out BENCH_gateway.json
    PYTHONPATH=src python benchmarks/bench_gateway_latency.py --smoke --out fresh.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_hot_path import calibrate  # noqa: E402  (shared machine proxy)

SCHEMA = "bench-gateway/v1"

#: calibration cases spanning the library's rotatable-bond range — the
#: predictor's per-eval cost is regressed on their cost-model shapes
CALIBRATION_CASES = ("1u4d", "1yv3", "1t46", "1kzk", "7cpa", "1gpk",
                     "2brb")
SMOKE_CASES = ("1u4d", "1t46", "7cpa")

#: docking work per calibration entry (small but real: the regression
#: target is per-eval cost, which is budget-independent)
CAL = {"n_runs": 2, "evals": 2000, "pop": 16, "ls_iters": 10, "seed": 7}
CAL_SMOKE = {"n_runs": 1, "evals": 800, "pop": 10, "ls_iters": 5,
             "seed": 7}

#: extra backend entries so the fit sees more than one cost-model column
EXTRA_BACKENDS = (("7cpa", "tcec-tf32"), ("1kzk", "tc-fp16"))


def _config(backend: str, spec: dict):
    from repro.core.config import DockingConfig
    from repro.search.lga import LGAConfig

    return DockingConfig(
        backend=backend, device="A100", block_size=64,
        lga=LGAConfig(pop_size=spec["pop"], max_evals=spec["evals"],
                      max_gens=max(1, spec["evals"] // spec["pop"]),
                      ls_iters=spec["ls_iters"], ls_rate=0.25))


def measure_case(name: str, backend: str, spec: dict,
                 repeats: int) -> dict:
    """One calibration entry: best-of-``repeats`` wall time of a real
    dock (best-of sheds scheduler noise; per-eval cost is what the
    predictor regresses, so the cleanest pass is the right target)."""
    from repro.core.engine import DockingEngine
    from repro.testcases import get_test_case

    case = get_test_case(name)
    cfg = _config(backend, spec)
    best = None
    for _ in range(repeats):
        engine = DockingEngine(case, cfg)
        t0 = time.perf_counter()
        result = engine.dock(n_runs=spec["n_runs"], seed=spec["seed"])
        wall = time.perf_counter() - t0
        if best is None or wall < best["wall_s"]:
            best = {"case": name, "backend": backend, "device": "A100",
                    "block_size": 64, "n_runs": spec["n_runs"],
                    "total_evals": int(result.total_evals),
                    "wall_s": round(wall, 4)}
    return best


def build_shapes(names: tuple[str, ...]) -> dict:
    from repro.simt.predictor import shape_from_case
    from repro.testcases import get_test_case

    return {name: shape_from_case(get_test_case(name)).to_dict()
            for name in names}


def measure_latency(doc: dict, n_jobs: int, evals: int) -> dict:
    """p50/p99 submit→result latency through a live in-process gateway.

    Two inline shards (workers=0: deterministic, no spawn overhead —
    this measures the *gateway* path, not multiprocessing startup), HTTP
    submission per job, NDJSON stream for completion times.
    """
    from repro.gateway import Gateway, GatewayClient, GatewayConfig
    from repro.simt.predictor import RuntimePredictor, JobShape

    predictor = RuntimePredictor(
        shapes={n: JobShape.from_dict(d)
                for n, d in doc["shapes"].items()},
        entries=doc["calibration"]["entries"],
        ref_s=doc["machine"]["numpy_ref_s"])
    gw = Gateway(GatewayConfig(port=0, n_shards=2, workers=0,
                               poll_s=0.02),
                 predictor=predictor).start()
    try:
        client = GatewayClient(f"http://127.0.0.1:{gw.port}")
        cases = [CALIBRATION_CASES[i % 3] for i in range(n_jobs)]
        submitted: dict[str, float] = {}
        for i, name in enumerate(cases):
            out = client.submit({"case": name, "n_runs": 1,
                                 "evals": evals, "pop": 10,
                                 "ls_iters": 5,
                                 "seed": {"entropy": 99, "index": i}})
            rec = out["accepted"][0]
            submitted[rec["job_id"]] = time.perf_counter()
        latencies: list[float] = []
        shards_used = set()
        for rec in client.stream():
            done = time.perf_counter()
            if rec["job_id"] in submitted:
                latencies.append(done - submitted[rec["job_id"]])
                shards_used.add(rec["shard"])
    finally:
        gw.stop()
    lat = np.array(sorted(latencies))
    q = lambda p: round(float(np.quantile(lat, p)), 4)  # noqa: E731
    return {"n_jobs": n_jobs, "n_shards": 2, "workers": 0,
            "evals_per_job": evals,
            "shards_used": sorted(shards_used),
            "submit_to_result_s": {"p50": q(0.50), "p90": q(0.90),
                                   "p99": q(0.99),
                                   "mean": round(float(lat.mean()), 4),
                                   "max": round(float(lat.max()), 4)}}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_gateway.json")
    ap.add_argument("--smoke", action="store_true",
                    help="fewer cases, smaller budgets (CI)")
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--latency-jobs", type=int, default=8)
    args = ap.parse_args(argv)

    from repro.simt.predictor import RuntimePredictor, JobShape

    cases = SMOKE_CASES if args.smoke else CALIBRATION_CASES
    spec = CAL_SMOKE if args.smoke else CAL

    doc = {
        "schema": SCHEMA,
        "machine": {
            "numpy_ref_s": round(calibrate(), 4),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "shapes": build_shapes(CALIBRATION_CASES),
        "calibration": {"spec": dict(spec), "entries": []},
        "latency": None,
    }

    print("calibration traces:")
    entries = doc["calibration"]["entries"]
    for name in cases:
        entry = measure_case(name, "baseline", spec, args.repeats)
        entries.append(entry)
        us = entry["wall_s"] / entry["total_evals"] * 1e6
        print(f"  {name:6s} baseline   {entry['wall_s']:7.3f}s "
              f"/ {entry['total_evals']:6d} evals  ({us:6.1f} us/eval)")
    for name, backend in (EXTRA_BACKENDS if not args.smoke else ()):
        entry = measure_case(name, backend, spec, args.repeats)
        entries.append(entry)
        us = entry["wall_s"] / entry["total_evals"] * 1e6
        print(f"  {name:6s} {backend:10s} {entry['wall_s']:7.3f}s "
              f"/ {entry['total_evals']:6d} evals  ({us:6.1f} us/eval)")

    predictor = RuntimePredictor(
        shapes={n: JobShape.from_dict(d)
                for n, d in doc["shapes"].items()},
        entries=entries, ref_s=doc["machine"]["numpy_ref_s"])
    acc = predictor.accuracy()
    doc["calibration"]["fit"] = {"coeff_a": acc["coeff_a"],
                                 "coeff_b": acc["coeff_b"]}
    doc["calibration"]["accuracy"] = {
        "n": acc["n"],
        "p50_rel_err": round(acc["p50_rel_err"], 4),
        "p90_rel_err": round(acc["p90_rel_err"], 4),
        "entries": [{k: (round(v, 4) if isinstance(v, float) else v)
                     for k, v in r.items()} for r in acc["entries"]],
    }
    print(f"predictor fit: a={acc['coeff_a']:.3e} b={acc['coeff_b']:.3e}"
          f"  p50 rel err {acc['p50_rel_err']:.1%}, "
          f"p90 {acc['p90_rel_err']:.1%}")

    print("gateway latency:")
    doc["latency"] = measure_latency(
        doc, n_jobs=args.latency_jobs,
        evals=400 if not args.smoke else 200)
    s = doc["latency"]["submit_to_result_s"]
    print(f"  {doc['latency']['n_jobs']} jobs over "
          f"{len(doc['latency']['shards_used'])} shards: "
          f"p50 {s['p50']:.3f}s, p99 {s['p99']:.3f}s, "
          f"max {s['max']:.3f}s")

    Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
