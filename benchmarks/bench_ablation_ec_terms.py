"""Ablation: error-correction ingredients (terms, scaling, ext. accumulate).

Decomposes TCEC's accuracy recovery into its three mechanisms
(Section 4 / Ootomo & Yokota):

* number of correction terms (0 / 1 / 2 Tensor Core issues extra),
* residual up-scaling (underflow avoidance) on and off,
* external FP32/RN accumulation vs in-TC RZ accumulation.

Expected shape: each ingredient contributes; the full configuration
(2 terms + scaling + external accumulation) reaches near-FP32 accuracy and
every removal degrades it.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.reduction.tc_backend import tc_reduce_xyze, tcec_reduce_xyze
from repro.tensorcore.tcec import TcecConfig


def _measure(config_rows):
    rng = np.random.default_rng(11)
    vecs = (rng.normal(size=(2048, 4)) * 50).astype(np.float32)
    exact = vecs.astype(np.float64).sum(axis=0)
    norm = np.abs(vecs).astype(np.float64).sum(axis=0)
    rows = []
    for label, cfg in config_rows:
        got = tcec_reduce_xyze(vecs, cfg)
        err = float(np.max(np.abs(got - exact) / norm))
        rows.append({"config": label, "max_norm_err": err})
    # no-EC reference: in-TC RZ accumulation, TF32 operands
    plain = tc_reduce_xyze(vecs, in_format="tf32", accumulate="rz",
                           accumulator_format="fp32")
    rows.append({"config": "no EC (in-TC RZ accumulate)",
                 "max_norm_err": float(
                     np.max(np.abs(plain - exact) / norm))})
    return rows


CONFIGS = [
    ("full TCEC (2 terms, scaled)", TcecConfig(correction_terms=2)),
    ("1 correction term", TcecConfig(correction_terms=1)),
    ("0 correction terms", TcecConfig(correction_terms=0)),
    ("2 terms, no residual scaling",
     TcecConfig(correction_terms=2, scale_residual=False)),
    ("2 terms, drop negligible",
     TcecConfig(correction_terms=2, drop_negligible=True)),
]


@pytest.mark.benchmark(group="ablation-ec")
def test_ablation_ec_ingredients(benchmark):
    rows = benchmark(_measure, CONFIGS)
    print()
    print(format_table(rows, floatfmt="{:.3g}",
                       title="Ablation: error-correction ingredients "
                             "(2048 TF32 vectors, values ~N(0, 50))"))
    err = {r["config"]: r["max_norm_err"] for r in rows}
    full = err["full TCEC (2 terms, scaled)"]
    # the full scheme reaches near-FP32 accuracy
    assert full < 2.0 ** -20
    # fewer terms -> monotonically worse
    assert err["1 correction term"] >= full
    assert err["0 correction terms"] > err["1 correction term"]
    # external accumulation alone (0 terms) already beats the in-TC version
    assert err["0 correction terms"] <= \
        err["no EC (in-TC RZ accumulate)"] * 1.5
    # dropping negligible terms must not hurt at this scale
    assert err["2 terms, drop negligible"] == pytest.approx(full, rel=1.0)
