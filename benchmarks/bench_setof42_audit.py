"""Audit of the full set of 42 (the paper's evaluation library).

Builds every complex of the synthetic set-of-42, runs the quality gates of
:mod:`repro.testcases.validation` on each, and prints the library table
(N_rot spread 0-32 as in Section 5, sizes, ground-truth minima).  This is
the end-to-end integration check of the test-case substrate: ligand
growth, pocket construction, AutoGrid-style map building and the
exact-arithmetic global-minimum refinement for all 42 inputs.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.testcases import SET_OF_42, set_of_42, validate_case


@pytest.mark.benchmark(group="setof42")
def test_set_of_42_audit(benchmark):
    cases = benchmark.pedantic(set_of_42, rounds=1, iterations=1)

    rows = []
    reports = []
    for case in cases:
        report = validate_case(case, n_probes=30)
        reports.append(report)
        rows.append({
            "case": case.name,
            "N_rot": case.n_rot,
            "atoms": case.ligand.n_atoms,
            "intra": case.ligand.n_intra,
            "rotlist": case.ligand.n_rotlist,
            "rec": case.receptor.n_atoms,
            "gmin": case.global_min_score,
            "gates": "OK" if report.ok else ";".join(report.failures),
        })
    print()
    print(format_table(
        rows, ["case", "N_rot", "atoms", "intra", "rotlist", "rec",
               "gmin", "gates"],
        title="The synthetic set of 42 (quality-gate audit)"))

    # library shape matches the paper's description
    assert len(cases) == 42
    nrots = [c.n_rot for c in cases]
    assert min(nrots) == 0 and max(nrots) == 32
    assert dict(SET_OF_42)["7cpa"] == 15

    # every case passes its quality gates
    bad = [r.name for r in reports if not r.ok]
    assert not bad, f"cases failing quality gates: {bad}"

    # problem sizes grow with flexibility (the irregularity the paper's
    # loop bounds reflect)
    small = np.mean([c.ligand.n_atoms for c in cases if c.n_rot <= 5])
    large = np.mean([c.ligand.n_atoms for c in cases if c.n_rot >= 25])
    assert large > small
