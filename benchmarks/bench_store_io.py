"""Store/I-O benchmark: the disk tier, the ``.rlig`` pack, the manifests.

Measures the serving layer's storage path — the pieces a million-ligand
screen leans on once docking itself is no longer the bottleneck:

* ``pack``     — ``.rlig`` encode and streamed decode throughput over a
  synthetic ligand library (``>= 10^4`` ligands in a full run);
* ``manifest`` — steady-state per-job cost of the sharded NDJSON append
  log vs rewriting a single-file JSON manifest of the same size on every
  completion (the O(n) rewrite the shards exist to kill);
* ``store``    — grid-map load latency cold (text ``.map`` parse + flat
  build) vs warm (mmap'd ``.npy`` blob from the :class:`BlobStore`);
* ``screen``   — a small end-to-end :class:`VirtualScreen` from an
  ``.rlig`` pack, cold store vs warm store, with per-span counts from
  the trace log: a warm worker must show **zero** ``parse.ligand`` /
  ``parse.maps`` / ``grid.build`` spans, and the warm sharded-manifest
  ranking must merge to exactly the cold single-file ranking.

The result is written as ``BENCH_store_io.json``; the committed copy at
the repository root is the baseline CI's store-smoke job gates against
(``tools/check_bench.py`` dispatches on the ``schema`` field).  As with
the other bench files, ``machine.numpy_ref_s`` records a fixed NumPy
calibration workload so two machines' files compare in normalised units.

Usage::

    PYTHONPATH=src python benchmarks/bench_store_io.py --out BENCH_store_io.json
    PYTHONPATH=src python benchmarks/bench_store_io.py --smoke --out fresh.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

SCHEMA = "bench-store-io/v1"

#: span names that must not fire on a warm worker
_COLD_SPANS = ("parse.ligand", "parse.maps", "grid.build")

FULL = {"pack_n": 10_000, "manifest_jobs": 10_000, "manifest_shards": 8,
        "single_rewrites": 64, "screen_n": 24}
SMOKE = {"pack_n": 512, "manifest_jobs": 1_000, "manifest_shards": 4,
         "single_rewrites": 16, "screen_n": 6}


def calibrate() -> float:
    """Wall seconds of the fixed NumPy workload shared by every bench
    file (see ``bench_hot_path.calibrate``): GEMM + gather + exp +
    reduction, seeded, best-of-3."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((192, 192))
    b = rng.standard_normal((192, 192))
    idx = rng.integers(0, a.size, size=200_000)
    best = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        acc = a.copy()
        for _ in range(30):
            acc = acc @ b
            acc /= np.maximum(np.abs(acc).max(), 1.0)
            g = np.take(a.reshape(-1), idx)
            acc[0, 0] += float(np.sum(np.exp(-0.5 * g * g)))
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------- pack

def _synth_ligand(rng: np.random.Generator, i: int):
    """A random chain molecule: 6-14 atoms, 1-2 torsions."""
    from repro.docking import Ligand, TorsionBond
    n = int(rng.integers(6, 15))
    types = list(rng.choice(["C", "A", "OA", "N", "HD"], size=n))
    coords = np.cumsum(rng.normal(0.0, 1.0, size=(n, 3)), axis=0)
    charges = rng.normal(0.0, 0.15, size=n)
    bonds = [(j, j + 1) for j in range(n - 1)]
    torsions = [TorsionBond(atom_a=1, atom_b=2,
                            moved=tuple(range(3, n)))]
    mid = n // 2
    if mid >= 4 and mid + 1 < n:
        torsions.append(TorsionBond(atom_a=mid - 1, atom_b=mid,
                                    moved=tuple(range(mid + 1, n))))
    return Ligand(name=f"synth-{i:06d}", atom_types=types,
                  ref_coords=coords, charges=charges,
                  bonds=bonds, torsions=torsions)


def bench_pack(n: int, workdir: Path) -> dict:
    from repro.io import RligReader, pack_rlig
    rng = np.random.default_rng(2024)
    ligands = [_synth_ligand(rng, i) for i in range(n)]

    pack_path = workdir / "library.rlig"
    t0 = time.perf_counter()
    pack_rlig(pack_path, ligands)
    pack_s = time.perf_counter() - t0

    with RligReader(pack_path) as reader:
        t0 = time.perf_counter()
        for i in range(n):
            reader.read(i)
        read_s = time.perf_counter() - t0

    pack_bytes = pack_path.stat().st_size
    return {
        "n_ligands": n,
        "pack_s": pack_s,
        "pack_ligands_per_s": n / pack_s,
        "read_s": read_s,
        "read_ligands_per_s": n / read_s,
        "pack_bytes": pack_bytes,
        "bytes_per_ligand": pack_bytes / n,
    }


# ------------------------------------------------------------- manifest

def _synth_record(i: int, rng: np.random.Generator) -> dict:
    return {"job_id": f"{i:016x}", "label": f"lig{i:06d}", "status": "ok",
            "attempts": 1, "worker_id": i % 4, "wall_seconds": 0.01,
            "result": {"runs": [{"best_score": float(rng.normal())}],
                       "total_evals": 300},
            "cache": None, "error": None, "extra": {}}


def bench_manifest(n_jobs: int, n_shards: int, single_rewrites: int,
                   workdir: Path) -> dict:
    """Steady-state per-completion cost, append log vs full rewrite."""
    from repro.serve import ShardedManifest, atomic_write_json

    rng = np.random.default_rng(7)
    records = [_synth_record(i, rng) for i in range(n_jobs)]

    sharded = ShardedManifest(workdir / "sharded", n_shards=n_shards)
    t0 = time.perf_counter()
    for rec in records:
        sharded.append(rec)
    sharded.close()
    append_s = time.perf_counter() - t0

    # the single-file path rewrites the whole document per completion;
    # measure the rewrite at final size (the steady state of a screen
    # that has already completed n_jobs results)
    jobs = {rec["job_id"]: rec for rec in records}
    payload = {"version": 1, "jobs": jobs}
    single_path = workdir / "manifest.json"
    t0 = time.perf_counter()
    for _ in range(single_rewrites):
        atomic_write_json(single_path, payload)
    single_s = time.perf_counter() - t0

    per_job_sharded = append_s / n_jobs
    per_job_single = single_s / single_rewrites
    return {
        "n_jobs": n_jobs,
        "n_shards": n_shards,
        "sharded_append_s": append_s,
        "sharded_s_per_job": per_job_sharded,
        "sharded_jobs_per_s": n_jobs / append_s,
        "single_rewrites_timed": single_rewrites,
        "single_s_per_job": per_job_single,
        "append_vs_rewrite_speedup": per_job_single / per_job_sharded,
    }


# ---------------------------------------------------------------- store

def bench_store(workdir: Path) -> dict:
    """Grid-map load: cold text parse vs warm mmap'd blob."""
    from repro.io import write_maps
    from repro.serve import BlobStore, ContentCache
    from repro.serve.cache import load_maps
    from repro.testcases import get_test_case

    case = get_test_case("1u4d")
    fld = write_maps(case.maps, workdir, stem="receptor")
    store = BlobStore(workdir / "store")

    cold_cache = ContentCache(1 << 28, store=store)
    t0 = time.perf_counter()
    cold = load_maps(fld, cold_cache)
    cold_s = time.perf_counter() - t0

    warm_cache = ContentCache(1 << 28, store=store)
    t0 = time.perf_counter()
    warm = load_maps(fld, warm_cache)
    warm_s = time.perf_counter() - t0

    if not np.array_equal(np.asarray(cold.affinity),
                          np.asarray(warm.affinity)):
        raise SystemExit("store round-trip is not bit-identical")
    return {
        "case": "1u4d",
        "grid_bytes": int(cold.nbytes),
        "cold_load_s": cold_s,
        "warm_load_s": warm_s,
        "speedup": cold_s / warm_s,
        "cold_cache": {k: cold_cache.stats()[k]
                       for k in ("disk_hits", "disk_misses", "disk_writes")},
        "warm_cache": {k: warm_cache.stats()[k]
                       for k in ("disk_hits", "disk_misses", "disk_writes")},
    }


# --------------------------------------------------------------- screen

def _count_spans(trace_path: Path) -> dict[str, int]:
    counts = {name: 0 for name in _COLD_SPANS}
    counts["pack.read"] = 0
    for line in trace_path.read_text().splitlines():
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if rec.get("type") == "span" and rec.get("name") in counts:
            counts[rec["name"]] += 1
    return counts


def bench_screen(n_ligands: int, workdir: Path) -> dict:
    """End-to-end mini screen from an ``.rlig`` pack, cold vs warm store."""
    from repro.core import DockingConfig
    from repro.io import pack_rlig, write_maps
    from repro.search.lga import LGAConfig
    from repro.serve import VirtualScreen
    from repro.testcases import get_test_case

    config = DockingConfig(backend="baseline",
                           lga=LGAConfig(pop_size=8, max_evals=300,
                                         max_gens=6, ls_iters=5,
                                         ls_rate=0.25))
    case = get_test_case("1u4d")
    fld = write_maps(case.maps, workdir, stem="receptor")
    rng = np.random.default_rng(5)
    ligands = []
    for i in range(n_ligands):
        jitter = rng.normal(0, 0.05, size=case.ligand.ref_coords.shape)
        ligands.append(replace(case.ligand, name=f"lig{i:03d}",
                               ref_coords=case.ligand.ref_coords + jitter))
    pack = workdir / "screen.rlig"
    pack_rlig(pack, ligands)
    store = workdir / "store"

    def _run(tag: str, manifest_shards: int | None) -> tuple[dict, object]:
        trace = workdir / f"trace-{tag}.jsonl"
        screen = VirtualScreen(fld=fld, rlig=pack, config=config,
                               n_runs=1, seed=17)
        t0 = time.perf_counter()
        report = screen.run(workers=2, store=store,
                            manifest=workdir / f"manifest-{tag}",
                            manifest_shards=manifest_shards, trace=trace)
        wall = time.perf_counter() - t0
        from repro.obs import disable
        disable()                       # release the JSONL handle
        section = {
            "wall_s": wall,
            "jobs_per_s": report.stats["jobs_per_second"],
            "spans": _count_spans(trace),
            "cache": {k: report.stats["cache"][k]
                      for k in ("hits", "misses", "disk_hits",
                                "disk_misses", "disk_writes")},
        }
        return section, report

    cold, cold_report = _run("cold", manifest_shards=0)   # single file
    warm, warm_report = _run("warm", manifest_shards=2)   # sharded

    # the sharded warm manifest must merge to the cold single-file
    # ranking (same seed, same library => same jobs, same scores)
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from tools.merge_manifests import merge
    merged = merge([workdir / "manifest-warm"])

    def _strip(ranking):
        return [(r["job_id"], r["label"], r["best_score"])
                for r in ranking]

    identical = (_strip(merged["ranking"]) == _strip(cold_report.ranking)
                 == _strip(warm_report.ranking))
    return {
        "case": "1u4d",
        "n_ligands": n_ligands,
        "cold": cold,
        "warm": warm,
        "rankings_identical": bool(identical),
    }


# ----------------------------------------------------------------- main

def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small fast run for CI (fewer ligands and jobs)")
    ap.add_argument("--out", default="BENCH_store_io.json",
                    help="output JSON path (default BENCH_store_io.json)")
    args = ap.parse_args(argv)
    params = SMOKE if args.smoke else FULL

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    print("calibrating machine ...", flush=True)
    ref_s = calibrate()
    doc = {
        "schema": SCHEMA,
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "numpy_ref_s": ref_s,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }

    with tempfile.TemporaryDirectory(prefix="bench_store_io_") as tmp:
        # every section gets its own directory — the store sections must
        # not warm each other's blob stores (both use the same case)
        def _subdir(name: str) -> Path:
            path = Path(tmp) / name
            path.mkdir()
            return path

        print(f"pack: {params['pack_n']} synthetic ligands ...", flush=True)
        doc["pack"] = bench_pack(params["pack_n"], _subdir("pack"))
        print(f"  {doc['pack']['pack_ligands_per_s']:.0f} lig/s pack, "
              f"{doc['pack']['read_ligands_per_s']:.0f} lig/s read, "
              f"{doc['pack']['bytes_per_ligand']:.0f} B/ligand")

        print(f"manifest: {params['manifest_jobs']} jobs x "
              f"{params['manifest_shards']} shards ...", flush=True)
        doc["manifest"] = bench_manifest(
            params["manifest_jobs"], params["manifest_shards"],
            params["single_rewrites"], _subdir("manifest"))
        print(f"  sharded {doc['manifest']['sharded_jobs_per_s']:.0f} "
              f"appends/s; append-vs-rewrite speedup "
              f"{doc['manifest']['append_vs_rewrite_speedup']:.1f}x")

        print("store: cold parse vs warm mmap ...", flush=True)
        doc["store"] = bench_store(_subdir("store"))
        print(f"  cold {doc['store']['cold_load_s'] * 1e3:.1f} ms, "
              f"warm {doc['store']['warm_load_s'] * 1e3:.1f} ms "
              f"({doc['store']['speedup']:.1f}x)")

        print(f"screen: {params['screen_n']} ligands, cold vs warm store "
              f"...", flush=True)
        doc["screen"] = bench_screen(params["screen_n"],
                                     _subdir("screen"))
        warm_spans = doc["screen"]["warm"]["spans"]
        print(f"  cold spans {doc['screen']['cold']['spans']}")
        print(f"  warm spans {warm_spans}")
        print(f"  rankings identical: "
              f"{doc['screen']['rankings_identical']}")

    Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True)
                              + "\n")
    print(f"wrote {args.out}")
    if any(warm_spans[name] for name in _COLD_SPANS):
        print("FAIL: warm screen re-parsed inputs", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
