"""Shared infrastructure for the paper-reproduction benchmarks.

Scaling: the paper's experiments use 42 cases x 20-100 LGA runs x 2.5M
evaluations — hours of GPU time.  The Python benchmarks default to a
scaled-down grid that preserves the *relative* comparisons (who wins, by
roughly what factor); set ``REPRO_BENCH_SCALE=full`` for the larger grid.

The E50 experiments are cached per (case, backend) within a pytest session
so Figure 1 and Figure 3 share their reference measurements.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis import estimate_e50, evaluate_run
from repro.search.lga import LGAConfig
from repro.search.parallel import ParallelLGA
from repro.testcases import SET_OF_42, get_test_case


@dataclass(frozen=True)
class BenchScale:
    """Experiment sizes for the current scale."""

    name: str
    e50_cases: tuple[str, ...]
    e50_runs: int
    e50_max_evals: int
    table3_runs: int
    speedup_cases: tuple[str, ...]


_QUICK = BenchScale(
    name="quick",
    e50_cases=("1yv3", "2bm2", "3ce3", "5kao", "1jyq", "7cpa"),
    e50_runs=12,
    e50_max_evals=12_000,
    table3_runs=8,
    speedup_cases=("1u4d", "1yv3", "1ywr", "2bm2", "3ce3", "1kzk",
                   "5kao", "1jyq", "1ig3", "1n1m", "1r8o", "1y6b",
                   "7cpa", "1w9u", "1gpk", "2brb", "1nja", "1yvf",
                   "2j47", "3er5", "1z95"),
)

_FULL = BenchScale(
    name="full",
    e50_cases=("1u4d", "1xoz", "1yv3", "1owe", "1ywr", "2bm2", "1r55",
               "3ce3", "1hfs", "1ig3", "1l7f", "7cpa"),
    e50_runs=24,
    e50_max_evals=20_000,
    table3_runs=20,
    speedup_cases=tuple(n for n, _ in SET_OF_42),
)


def bench_scale() -> BenchScale:
    return _FULL if os.environ.get("REPRO_BENCH_SCALE") == "full" else _QUICK


#: LGA configuration for the E50 experiments (scaled-down paper defaults)
def e50_lga_config(max_evals: int) -> LGAConfig:
    return LGAConfig(pop_size=30, max_evals=max_evals, max_gens=300,
                     ls_iters=100, ls_rate=0.15)


_E50_CACHE: dict[tuple[str, str], dict] = {}


def run_e50_experiment(case_name: str, backend: str, n_runs: int,
                       max_evals: int, seed: int = 2025) -> dict:
    """E50 (score and RMSD criteria) for one case under one back-end."""
    key = (case_name, backend)
    if key in _E50_CACHE:
        return _E50_CACHE[key]
    case = get_test_case(case_name)
    runner = ParallelLGA(case.scoring(), backend,
                         e50_lga_config(max_evals), seed=seed)
    results = runner.run(n_runs)
    outcomes = [evaluate_run(r, case) for r in results]
    budgets = [r.evals_used for r in results]
    score = estimate_e50([o.first_success_score for o in outcomes], budgets)
    rmsd = estimate_e50([o.first_success_rmsd for o in outcomes], budgets)
    out = {"case": case_name, "backend": backend,
           "e50_score": score, "e50_rmsd": rmsd}
    _E50_CACHE[key] = out
    return out


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(7)


# ---------------------------------------------------------------------------
# local-search quality experiment (matched starts; the low-variance probe of
# the mechanism behind Figures 1/3)

_LS_CACHE: dict[tuple[str, str], dict] = {}

#: cases used by the LS-quality panels (flexible ligands, where clash
#: phases during descent exercise the reductions hardest)
LS_QUALITY_CASES = ("5kao", "1jyq", "1ig3", "7cpa")


def run_ls_quality(case_name: str, backend: str, n_starts: int = 192,
                   perturbation: float = 1.0, iters: int = 150,
                   seed: int = 77) -> dict:
    """Matched-start ADADELTA descents: success / catastrophic-failure
    counts for one case and back-end.

    Every back-end gets the *same* starting genotypes (native pose
    perturbed by N(0, perturbation) per gene), so differences reflect
    local-search quality, not sampling luck.  Final poses are re-scored
    with the FP32 scoring function (ground truth).
    """
    key = (case_name, backend)
    if key in _LS_CACHE:
        return _LS_CACHE[key]
    from repro.docking.gradients import GradientCalculator
    from repro.search.adadelta import AdadeltaConfig, AdadeltaLocalSearch

    case = get_test_case(case_name)
    sf = case.scoring()
    rng = np.random.default_rng(seed)
    glen = case.native_genotype.size
    starts = case.native_genotype[None, :] \
        + rng.normal(0.0, perturbation, (n_starts, glen))
    ls = AdadeltaLocalSearch(GradientCalculator(sf, backend),
                             AdadeltaConfig(max_iters=iters))
    best_x, _, _ = ls.minimize(starts)
    true_scores = sf.score(best_x)
    out = {
        "case": case_name,
        "backend": backend,
        "n_starts": n_starts,
        "converged": int(np.sum(true_scores
                                <= case.global_min_score + 1.0)),
        "failed": int(np.sum(true_scores > 0.0)),
        "median_final": float(np.median(true_scores)),
    }
    _LS_CACHE[key] = out
    return out
