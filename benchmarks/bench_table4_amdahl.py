"""Table 4: predicted speedups from the Amdahl model (Equation 6).

Pure-model table: predicted speedup for selected Tensor Core fractions
``f`` with each device's ``S`` (the Table 2 TC/SIMT throughput ratio).

Note: the paper's printed Table 4 cells for f = 0.9 do not satisfy its own
Equation (6) — e.g. 1/(0.9/8 + 0.1) = 4.71, not the printed 3.55 — so this
reproduction reports the equation's values (see EXPERIMENTS.md).
"""

import pytest

from repro.analysis import predicted_speedup, speedup_table
from repro.analysis.tables import format_table
from repro.simt import list_devices


@pytest.mark.benchmark(group="table4")
def test_table4_predicted_speedups(benchmark):
    rows = benchmark(speedup_table, (0.0, 0.2, 0.9, 1.0))
    print()
    print(format_table(rows, title="Table 4: predicted speedup vs f "
                                   "(Equation 6)"))

    devices = {d.name: d for d in list_devices()}
    # S values from Table 2 / Section 5.1.1
    assert devices["A100"].tensor_speedup == pytest.approx(8.0, abs=0.01)
    assert devices["H100"].tensor_speedup == pytest.approx(7.4, abs=0.03)
    assert devices["B200"].tensor_speedup == pytest.approx(15.0, abs=0.01)

    # f = 0 row is 1.0 everywhere; f = 1 row equals S
    assert rows[0]["A100"] == 1.0
    assert rows[3]["A100"] == pytest.approx(8.0)
    assert rows[3]["H100"] == pytest.approx(7.4, abs=0.03)
    assert rows[3]["B200"] == pytest.approx(15.0)
    # f = 0.2 row matches the paper's printed cells
    assert rows[1]["A100"] == pytest.approx(1.21, abs=0.01)
    assert rows[1]["H100"] == pytest.approx(1.20, abs=0.01)
    assert rows[1]["B200"] == pytest.approx(1.25, abs=0.03)
    # high utilisation is needed for large gains (the paper's point)
    assert predicted_speedup(0.5, 8.0) < 2.0
