"""Observability overhead + the reduction span-vs-cost-model cross-check.

Two questions, both about `repro.obs`:

1. What does instrumentation cost?  The tracer is off by default (a
   null object), so the hot-path price must be a method call, not I/O;
   with JSONL tracing on, the price is one serialised line per span.
2. Do the traced reduction timings line up with the simt cost model?
   `GradientCalculator` times each `reduce4` pair into a per-backend
   histogram; the cost model prices the same region in device cycles.
   The *Python* ratios invert the model's (software-emulated Tensor
   Cores are slower than `np.sum`, while modelled TC hardware is
   cheaper than the SIMT tree) — the cross-check table in EXPERIMENTS.md
   documents that split, and this benchmark regenerates it
   (`SPAN-VS-MODEL` lines).
"""

import numpy as np
import pytest

from repro.docking.gradients import GradientCalculator
from repro.obs import Tracer, disable, get_tracer
from repro.obs.metrics import get_metrics, reset_metrics
from repro.search.adadelta import AdadeltaConfig, AdadeltaLocalSearch
from repro.simt.costmodel import REDUCTION_BACKENDS, KernelCostModel
from repro.testcases import get_test_case


@pytest.fixture(autouse=True)
def _tracer_off():
    yield
    disable()


@pytest.mark.benchmark(group="obs-span")
def test_null_span_overhead(benchmark):
    """The price every instrumented hot path pays when tracing is off."""
    disable()
    tracer = get_tracer()

    def bracket():
        with tracer.span("hot.region", batch=64):
            pass

    benchmark(bracket)


@pytest.mark.benchmark(group="obs-span")
def test_ring_span_overhead(benchmark):
    """Tracing to the in-memory ring only (no file sink)."""
    tracer = Tracer()

    def bracket():
        with tracer.span("hot.region", batch=64):
            pass

    benchmark(bracket)


@pytest.mark.benchmark(group="obs-span")
def test_jsonl_span_overhead(benchmark, tmp_path):
    """Full tracing: ring + one serialised JSONL line per span."""
    tracer = Tracer(tmp_path / "t.jsonl")

    def bracket():
        with tracer.span("hot.region", batch=64):
            pass

    benchmark(bracket)
    tracer.close()


@pytest.mark.benchmark(group="obs-metrics")
def test_counter_and_histogram_overhead(benchmark):
    """The always-on registry's hot-path cost (one timed reduce4)."""
    reset_metrics()
    m = get_metrics()

    def record():
        m.histogram("reduction.baseline.reduce4_s").observe(1e-4)
        m.counter("gradient.evals").inc(64)

    benchmark(record)


def test_traced_dock_overhead_is_bounded(tmp_path):
    """End to end: a fully traced dock must cost < 30% over untraced.

    (The instrumented regions are coarse — generations, LS batches —
    so the span count is small relative to the numerical work.)
    """
    import time

    from repro.core import DockingConfig, DockingEngine
    from repro.search.lga import LGAConfig

    cfg = DockingConfig(backend="baseline",
                        lga=LGAConfig(pop_size=16, max_evals=3_000,
                                      max_gens=40, ls_iters=10,
                                      ls_rate=0.25))
    engine = DockingEngine(get_test_case("7cpa"), cfg)
    engine.dock(n_runs=2, seed=0)          # warm caches

    disable()
    t0 = time.perf_counter()
    engine.dock(n_runs=2, seed=0)
    untraced = time.perf_counter() - t0

    from repro.obs import configure
    configure(tmp_path / "dock.jsonl", source="main")
    t0 = time.perf_counter()
    engine.dock(n_runs=2, seed=0)
    traced = time.perf_counter() - t0
    disable()

    print(f"\nOBS-OVERHEAD untraced {untraced:.3f}s traced {traced:.3f}s "
          f"(+{(traced / untraced - 1) * 100:.1f}%)")
    assert traced < untraced * 1.3


def test_span_times_vs_cost_model_cycles():
    """The EXPERIMENTS.md cross-check: per-backend reduce4 wall time
    (traced histograms) against the cost model's reduction cycles.

    Asserted shape: the model prices both TC back-ends *below* the SIMT
    baseline (that is the paper's claim), while emulated Python wall
    time goes the other way (fpemu + software MMA are slower than
    ``np.sum``) — the two orderings must disagree, which is exactly why
    runtimes come from the cost model and not from wall clock.
    """
    case = get_test_case("7cpa")
    sf = case.scoring()
    wl = case.workload(n_blocks=64)

    rows = {}
    for backend in REDUCTION_BACKENDS:
        reset_metrics()
        ls = AdadeltaLocalSearch(GradientCalculator(sf, backend),
                                 AdadeltaConfig(max_iters=30))
        rng = np.random.default_rng(3)
        genes = rng.normal(0, 0.5, size=(64, 6 + case.ligand.n_rot))
        genes[:, 0:3] += (case.maps.box_lo + case.maps.box_hi) / 2
        ls.minimize(genes)
        h = get_metrics().snapshot()[
            "histograms"][f"reduction.{backend}.reduce4_s"]
        model = KernelCostModel("A100", 64, backend)
        rows[backend] = {
            "mean_us": h["total"] / h["count"] * 1e6,
            "model_cycles": model.iteration_cost(wl).clock.cycles(
                "reduction"),
            "f": model.tensor_fraction(wl),
        }

    base = rows["baseline"]
    print()
    for name, r in rows.items():
        print(f"SPAN-VS-MODEL backend={name} "
              f"py_us_per_iter={r['mean_us']:.1f} "
              f"py_ratio={r['mean_us'] / base['mean_us']:.2f} "
              f"model_cycles={r['model_cycles']:.0f} "
              f"model_ratio={r['model_cycles'] / base['model_cycles']:.2f} "
              f"f={r['f']:.3f}")

    for name in ("tc-fp16", "tcec-tf32"):
        assert rows[name]["model_cycles"] < base["model_cycles"]
        assert rows[name]["mean_us"] > base["mean_us"]
    # the clock64-style fraction f lands in the paper's Table 5 band
    assert 0.10 < base["f"] < 0.19
