"""Hot-path benchmark: evals/s of the batched docking pipeline.

Measures the end-to-end LGA throughput (score evaluations per second,
the denominator of the paper's µs/eval metric) of :class:`ParallelLGA`
on the reference ADADELTA dock config, once per reduction back-end, and
breaks the wall time into stages using the :mod:`repro.obs` metrics and
tracer spans:

* ``score``   — GA-phase population scoring (``lga.stage.score_s``),
* ``ga``      — selection / crossover / mutation (``lga.stage.ga_s``),
* ``ls``      — ADADELTA local search (``lga.stage.ls_s``),
* ``reduce4`` — the seven per-iteration reductions inside ``ls``
  (``reduction.<backend>.reduce4_s``).

A full run also records the multi-ligand cohort sweeps and a ``screen``
section — the single-ligand throughput at the screening configuration
(few runs per ligand) that the cohort engine's speedup gate compares
against within the same file.

The result is written as ``BENCH_hot_path.json``; the committed copy at
the repository root is the performance baseline the CI bench-smoke job
gates against (see ``tools/check_bench.py``).  Because absolute evals/s
is machine-dependent, every file also records ``numpy_ref_s`` — the wall
time of a fixed NumPy calibration workload — so two files can be
compared in machine-normalised units (evals per calibration-unit).

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_path.py --out BENCH_hot_path.json
    PYTHONPATH=src python benchmarks/bench_hot_path.py --smoke --out fresh.json
    # record a pre-optimisation reference measured with an older checkout:
    PYTHONPATH=src python benchmarks/bench_hot_path.py --pre-file pre.json ...
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

SCHEMA = "bench-hot-path/v2"

#: back-ends benchmarked by the full reference run (the paper's three
#: configurations plus the exact float64 reference and the warp-shuffle
#: SIMT variant)
REFERENCE_BACKENDS = ("baseline", "warp-shuffle", "tc-fp16", "tcec-tf32",
                      "exact")
#: quick subset for the CI smoke job
SMOKE_BACKENDS = ("baseline", "tc-fp16")
#: cohort widths of the multi-ligand sweep (homogeneous 7cpa copies, so
#: evals/s across sizes is apples-to-apples) and of the mixed sweep
#: (set-of-42 prefix, so pad_ratio reflects real heterogeneity)
COHORT_SIZES = (1, 4, 8, 16, 32)
COHORT_MIXED_SIZES = (4, 8, 16, 32)
COHORT_SMOKE_SIZES = (1, 4)

REFERENCE = {
    "case": "7cpa",
    "n_runs": 8,
    "seed": 11,
    "lga": {"pop_size": 30, "max_evals": 6000, "max_gens": 100,
            "ls_iters": 10, "ls_rate": 0.3},
}
SMOKE = {
    "case": "1u4d",
    "n_runs": 4,
    "seed": 11,
    "lga": {"pop_size": 10, "max_evals": 1000, "max_gens": 20,
            "ls_iters": 5, "ls_rate": 0.3},
}
#: per-ligand workload of a triage virtual screen: few runs per ligand,
#: so the run-batched single-ligand path works on narrow fronts
#: (gradient batches of ``n_runs * ceil(ls_rate * pop)`` = 18 rows).
#: This is the configuration the cohort engine exists for — the cohort
#: sweeps run it, and the ``screen`` section records the single-ligand
#: ParallelLGA throughput at the *same* config so the cohort speedup
#: gate compares like with like within one file.  (At the ``reference``
#: config's n_runs=8 the single path already amortises over wide
#: 72-row batches, which is a batch-size study, not a screening one.)
SCREEN = {
    "case": "7cpa",
    "n_runs": 2,
    "seed": 11,
    "lga": {"pop_size": 30, "max_evals": 3000, "max_gens": 100,
            "ls_iters": 10, "ls_rate": 0.3},
}


def calibrate() -> float:
    """Wall seconds of a fixed NumPy workload (machine-speed proxy).

    Mixes the primitives the docking hot path leans on — GEMM, gathers,
    elementwise transcendentals, reductions — so the ratio of two
    machines' ``numpy_ref_s`` approximates the ratio of their hot-path
    speeds.  Deterministic by construction (seeded, fixed iteration
    count); best-of-3 to shed scheduler noise.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((192, 192))
    b = rng.standard_normal((192, 192))
    idx = rng.integers(0, a.size, size=200_000)
    best = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        acc = a.copy()
        for _ in range(30):
            acc = acc @ b
            acc /= np.maximum(np.abs(acc).max(), 1.0)
            g = np.take(a.reshape(-1), idx)
            acc[0, 0] += float(np.sum(np.exp(-0.5 * g * g)))
        best = min(best, time.perf_counter() - t0)
    return best


def _build(config: dict):
    from repro.search.lga import LGAConfig
    from repro.testcases import get_test_case

    case = get_test_case(config["case"])
    return case.scoring(), LGAConfig(**config["lga"])


def _stage_breakdown(records: list[dict], metrics_delta: dict,
                     backend: str) -> dict:
    """Fold tracer spans + metric deltas into per-stage seconds."""
    hist = metrics_delta.get("histograms", {})

    def hist_total(name: str) -> float | None:
        h = hist.get(name)
        return float(h["total"]) if h else None

    spans: dict[str, float] = {}
    for rec in records:
        if rec.get("type") == "span":
            spans[rec["name"]] = spans.get(rec["name"], 0.0) + rec["dur_s"]

    # stage histograms are emitted by ParallelLGA; older checkouts (the
    # committed "pre" measurement) only have the spans, so fall back
    return {
        "score_s": hist_total("lga.stage.score_s"),
        "ga_s": hist_total("lga.stage.ga_s")
        if "lga.stage.ga_s" in hist else spans.get("lga.ga_generation"),
        "ls_s": hist_total("lga.stage.ls_s")
        if "lga.stage.ls_s" in hist else spans.get("adadelta.minimize"),
        "reduce4_s": hist_total(f"reduction.{backend}.reduce4_s"),
    }


def measure(config: dict, backend: str, repeats: int) -> dict:
    """Best-of-``repeats`` throughput plus one traced stage breakdown."""
    from repro.obs import configure, disable, get_metrics, reset_metrics
    from repro.search.parallel import ParallelLGA

    scoring, lga = _build(config)
    n_runs, seed = config["n_runs"], config["seed"]

    # untraced timing passes (the tracer's per-span bookkeeping and the
    # adadelta snapshot/delta hook must not pollute the evals/s number)
    best = None
    for _ in range(repeats):
        reset_metrics()
        t0 = time.perf_counter()
        results = ParallelLGA(scoring, backend, lga, seed=seed).run(n_runs)
        wall = time.perf_counter() - t0
        total_evals = int(sum(r.evals_used for r in results))
        if best is None or total_evals / wall > best["evals_per_s"]:
            best = {
                "wall_s": round(wall, 4),
                "total_evals": total_evals,
                "evals_per_s": round(total_evals / wall, 1),
                "best_score": round(min(r.best_score for r in results), 6),
            }

    # one traced pass for the stage breakdown (overhead excluded above)
    reset_metrics()
    tracer = configure(None, source="bench-hot-path")
    before = get_metrics().snapshot()
    ParallelLGA(scoring, backend, lga, seed=seed).run(n_runs)
    from repro.obs import MetricsRegistry
    delta = MetricsRegistry.delta(before, get_metrics().snapshot())
    best["stages"] = _stage_breakdown(tracer.records(), delta, backend)
    disable()
    reset_metrics()
    return best


def measure_cohort(case_names: list[str], config: dict, backend: str,
                   repeats: int) -> dict:
    """Best-of-``repeats`` lock-step cohort throughput for ``case_names``.

    Construction (ligand packing) is inside the timed region, matching
    :func:`measure` which times ``ParallelLGA`` construction too.
    """
    from repro.obs import reset_metrics
    from repro.search.cohort import CohortLGA
    from repro.search.lga import LGAConfig
    from repro.testcases import get_test_case

    cases = [get_test_case(n) for n in case_names]
    lga = LGAConfig(**config["lga"])
    seeds = [np.random.SeedSequence(entropy=config["seed"], spawn_key=(i,))
             for i in range(len(cases))]
    best = None
    for _ in range(repeats):
        reset_metrics()
        t0 = time.perf_counter()
        runner = CohortLGA([c.scoring() for c in cases], backend, lga,
                           seeds=seeds)
        results = runner.run(config["n_runs"])
        wall = time.perf_counter() - t0
        total = int(sum(r.evals_used for per_lig in results
                        for r in per_lig))
        if best is None or total / wall > best["evals_per_s"]:
            best = {
                "cohort": len(cases),
                "wall_s": round(wall, 4),
                "total_evals": total,
                "evals_per_s": round(total / wall, 1),
                "pad_ratio": round(float(runner.cohort.pack.pad_ratio), 4),
            }
    reset_metrics()
    return best


def run_cohort_section(config: dict, backend: str, sizes: tuple[int, ...],
                       repeats: int, mixed: bool = False) -> dict:
    from repro.testcases.library import SET_OF_42

    section = {"case": "set-of-42-prefix" if mixed else config["case"],
               "n_runs": config["n_runs"], "seed": config["seed"],
               "lga": dict(config["lga"]), "backend": backend,
               "sizes": {}}
    for size in sizes:
        if mixed:
            names = [n for n, _ in SET_OF_42[:size]]
        else:
            names = [config["case"]] * size
        print(f"  cohort {size:3d}   ", end="", flush=True)
        rec = measure_cohort(names, config, backend, repeats)
        section["sizes"][str(size)] = rec
        print(f"{rec['evals_per_s']:10.0f} evals/s   "
              f"(wall {rec['wall_s']:.2f}s, {rec['total_evals']} evals, "
              f"pad {rec['pad_ratio']:.1%})")
    one = section["sizes"].get("1")
    if one is not None:
        for rec in section["sizes"].values():
            rec["speedup_vs_1"] = round(
                rec["evals_per_s"] / one["evals_per_s"], 3)
    return section


def run_section(config: dict, backends: tuple[str, ...],
                repeats: int) -> dict:
    section = {"case": config["case"], "n_runs": config["n_runs"],
               "seed": config["seed"], "lga": dict(config["lga"]),
               "backends": {}}
    for backend in backends:
        print(f"  {backend:14s}", end="", flush=True)
        rec = measure(config, backend, repeats)
        section["backends"][backend] = rec
        print(f"{rec['evals_per_s']:10.0f} evals/s   "
              f"(wall {rec['wall_s']:.2f}s, {rec['total_evals']} evals)")
    return section


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_hot_path.json",
                    help="output JSON path")
    ap.add_argument("--smoke", action="store_true",
                    help="small case only (CI bench-smoke job)")
    ap.add_argument("--repeats", type=int, default=2,
                    help="timing passes per backend (best-of)")
    ap.add_argument("--pre-file", default=None,
                    help="JSON from a pre-optimisation checkout whose "
                         "reference section becomes this file's 'pre'")
    ap.add_argument("--cohort", type=int, default=None, metavar="N",
                    help="quick mode: measure the single-ligand reference "
                         "baseline and one homogeneous cohort of N, print "
                         "the speedup, and exit (no file written)")
    args = ap.parse_args(argv)

    if args.cohort is not None:
        print("single-ligand screen config (baseline backend):")
        single = measure(SCREEN, "baseline", args.repeats)
        print(f"  single        {single['evals_per_s']:10.0f} evals/s")
        print(f"cohort {args.cohort} (homogeneous {SCREEN['case']}):")
        rec = measure_cohort([SCREEN["case"]] * args.cohort,
                             SCREEN, "baseline", args.repeats)
        ratio = rec["evals_per_s"] / single["evals_per_s"]
        print(f"  cohort {args.cohort:3d}    {rec['evals_per_s']:10.0f} "
              f"evals/s   ({ratio:.2f}x single, "
              f"pad {rec['pad_ratio']:.1%})")
        return 0

    doc = {
        "schema": SCHEMA,
        "machine": {
            "numpy_ref_s": round(calibrate(), 4),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "smoke": None,
        "reference": None,
        "screen": None,
        "cohort_smoke": None,
        "cohort": None,
        "cohort_mixed": None,
        "pre": None,
        "speedup": None,
    }

    print("smoke case:")
    doc["smoke"] = run_section(SMOKE, SMOKE_BACKENDS, args.repeats)
    print("cohort smoke sweep:")
    doc["cohort_smoke"] = run_cohort_section(
        SMOKE, "baseline", COHORT_SMOKE_SIZES, args.repeats)

    if not args.smoke:
        print("reference case:")
        doc["reference"] = run_section(REFERENCE, REFERENCE_BACKENDS,
                                       args.repeats)
        print("screen config, single-ligand:")
        doc["screen"] = run_section(SCREEN, ("baseline",), args.repeats)
        print("cohort sweep (homogeneous, screen config):")
        doc["cohort"] = run_cohort_section(
            SCREEN, "baseline", COHORT_SIZES, args.repeats)
        print("cohort sweep (mixed set-of-42 prefix, screen config):")
        doc["cohort_mixed"] = run_cohort_section(
            SCREEN, "baseline", COHORT_MIXED_SIZES, max(1, args.repeats - 1),
            mixed=True)

    if args.pre_file:
        pre_doc = json.loads(Path(args.pre_file).read_text())
        doc["pre"] = {
            "machine": pre_doc["machine"],
            "reference": pre_doc["reference"],
            "smoke": pre_doc.get("smoke"),
        }
        if doc["reference"] is not None and pre_doc.get("reference"):
            doc["speedup"] = {
                b: round(doc["reference"]["backends"][b]["evals_per_s"]
                         / pre_doc["reference"]["backends"][b]["evals_per_s"],
                         3)
                for b in doc["reference"]["backends"]
                if b in pre_doc["reference"]["backends"]
            }
            print("speedup vs pre:", doc["speedup"])

    Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
