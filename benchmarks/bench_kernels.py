"""Micro-benchmarks of the reproduction's hot kernels.

Wall-clock timing (pytest-benchmark's bread and butter) for the simulated
numerical kernels: the three reduction back-ends, the MMA unit, pose
calculation and the fused gradient kernel.  These guard against
performance regressions of the *simulator itself* — the paper-shape
results live in the other bench files.
"""

import numpy as np
import pytest

from repro.docking.gradients import GradientCalculator
from repro.docking.pose import calc_coords
from repro.reduction import get_reduction_backend
from repro.tensorcore import mma, tcec_mma
from repro.testcases import get_test_case


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(0)
    return rng.normal(size=(64, 256, 4)).astype(np.float32)


@pytest.mark.benchmark(group="kernel-reduction")
@pytest.mark.parametrize("backend", ["baseline", "tc-fp16", "tcec-tf32",
                                     "exact"])
def test_reduce4_backends(benchmark, vectors, backend):
    b = get_reduction_backend(backend)
    out = benchmark(b.reduce4, vectors)
    assert out.shape == (64, 4)


@pytest.mark.benchmark(group="kernel-mma")
def test_mma_batched(benchmark):
    rng = np.random.default_rng(1)
    a = rng.normal(size=(32, 16, 16)).astype(np.float32)
    b = rng.normal(size=(32, 16, 16)).astype(np.float32)
    c = np.zeros((32, 16, 16), dtype=np.float32)
    out = benchmark(mma, a, b, c, in_format="tf32")
    assert out.shape == (32, 16, 16)


@pytest.mark.benchmark(group="kernel-mma")
def test_tcec_mma_batched(benchmark):
    rng = np.random.default_rng(2)
    a = rng.normal(size=(32, 16, 16)).astype(np.float32)
    b = rng.normal(size=(32, 16, 16)).astype(np.float32)
    c = np.zeros((32, 16, 16), dtype=np.float32)
    out = benchmark(tcec_mma, a, b, c)
    assert out.shape == (32, 16, 16)


@pytest.mark.benchmark(group="kernel-docking")
def test_pose_calculation(benchmark):
    case = get_test_case("7cpa")
    rng = np.random.default_rng(3)
    genotypes = case.native_genotype[None, :] + rng.normal(0, 0.3, (128, 21))
    coords = benchmark(calc_coords, case.ligand, genotypes)
    assert coords.shape == (128, case.ligand.n_atoms, 3)


@pytest.mark.benchmark(group="kernel-docking")
@pytest.mark.parametrize("backend", ["baseline", "tcec-tf32"])
def test_gradient_kernel(benchmark, backend):
    case = get_test_case("7cpa")
    gc = GradientCalculator(case.scoring(), backend)
    rng = np.random.default_rng(4)
    genotypes = case.native_genotype[None, :] + rng.normal(0, 0.3, (64, 21))
    e, g = benchmark(gc, genotypes)
    assert e.shape == (64,) and g.shape == (64, 21)
