"""Virtual-screening service throughput: jobs/s and cache hit rate.

Screens a small ligand library that shares one receptor through
:class:`repro.serve.VirtualScreen` at several worker counts, and emits
one JSON record per configuration::

    SCREEN-THROUGHPUT {"workers": 2, "jobs_per_second": ..., \
"cache_hit_rate": ..., ...}

The shared receptor is the interesting part: every job after a worker's
first should hit the content-addressed grid cache, so the hit rate is a
direct measure of how much redundant parsing the service removes.  Run
with ``pytest benchmarks/bench_screen_throughput.py -s``.
"""

import json

import numpy as np
import pytest

from repro.core import DockingConfig
from repro.io import write_maps, write_pdbqt
from repro.search.lga import LGAConfig
from repro.serve import VirtualScreen
from repro.testcases import get_test_case

#: small budgets: the benchmark measures service overhead + cache reuse,
#: not LGA convergence
BENCH_CONFIG = DockingConfig(
    backend="baseline",
    lga=LGAConfig(pop_size=8, max_evals=400, max_gens=8,
                  ls_iters=5, ls_rate=0.25))
N_LIGANDS = 6
N_RUNS = 2
WORKER_COUNTS = (0, 1, 2)


@pytest.fixture(scope="module")
def library(tmp_path_factory):
    """One receptor map set + N jittered ligand poses sharing it."""
    root = tmp_path_factory.mktemp("screen-bench")
    case = get_test_case("1u4d")
    fld = write_maps(case.maps, root, stem="receptor")
    rng = np.random.default_rng(0)
    ligands = []
    for i in range(N_LIGANDS):
        path = root / f"lig{i}.pdbqt"
        jitter = rng.normal(0, 0.05, size=case.ligand.ref_coords.shape)
        write_pdbqt(case.ligand, path,
                    coords=case.ligand.ref_coords + jitter)
        ligands.append(str(path))
    return fld, ligands


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_screen_throughput(library, workers, capsys):
    fld, ligands = library
    screen = VirtualScreen(fld=fld, ligands=ligands,
                           config=BENCH_CONFIG, n_runs=N_RUNS, seed=11)
    report = screen.run(workers=workers)

    s = report.stats
    record = {
        "workers": workers,
        "ligands": N_LIGANDS,
        "runs_per_ligand": N_RUNS,
        "jobs_completed": s["jobs_completed"],
        "jobs_failed": s["jobs_failed"],
        "wall_seconds": round(s["wall_seconds"], 3),
        "jobs_per_second": round(s["jobs_per_second"], 3),
        "cache_hits": s["cache"]["hits"],
        "cache_misses": s["cache"]["misses"],
        "cache_hit_rate": round(s["cache"]["hit_rate"], 3),
    }
    with capsys.disabled():
        print(f"\nSCREEN-THROUGHPUT {json.dumps(record)}")

    assert s["jobs_completed"] == N_LIGANDS
    assert s["jobs_failed"] == 0
    assert s["jobs_per_second"] > 0
    # ligands share one receptor: the grid cache must be doing work
    assert record["cache_hit_rate"] > 0
