"""Figure 4: absolute and relative speedups over GPUs and block sizes.

Reproduces the paper's headline performance figure: for three block sizes
(64/128/256) and three GPUs (A100/H100/B200),

* **absolute speedups** of every configuration relative to the A100
  SM-only baseline at the same block size (bars in the paper), and
* **relative speedups** of TCEC over its own same-GPU baseline (red
  arrows).

µs/eval per test case comes from the runtime model fed with the paper's
nominal evaluation mix (LS-dominated, Section 2.1); aggregation is the
geometric mean over the case set.

Expected shape (paper): all relative speedups > 1; they grow with block
size; H100 at 256 threads has the global maximum (1.63x in the paper);
newer GPUs give higher absolute speedups.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.analysis import RuntimeModel, aggregate_speedups
from repro.analysis.figures import ascii_bars
from repro.analysis.speedup import ConfigKey
from repro.analysis.tables import format_table
from repro.testcases import get_test_case

SCALE = bench_scale()
DEVICES = ("A100", "H100", "B200")
BLOCKS = (64, 128, 256)
BACKENDS = ("baseline", "tcec-tf32")

#: nominal per-case evaluation mix (the paper's defaults: 20 runs of up to
#: 2.5M evals, >90% in the local search)
N_RUNS, POP = 20, 150
LS_EVALS, GA_EVALS, GENERATIONS = 2_250_000, 250_000, 28


def _measure_all() -> dict:
    us = {}
    for device in DEVICES:
        for block in BLOCKS:
            for backend in BACKENDS:
                cfg = ConfigKey(device, block, backend)
                per_case = {}
                for name in SCALE.speedup_cases:
                    case = get_test_case(name)
                    model = RuntimeModel(device, block, backend,
                                         case.workload(N_RUNS * POP))
                    per_case[name] = model.us_per_eval(
                        LS_EVALS, GA_EVALS, GENERATIONS)
                us[cfg] = per_case
    return us


@pytest.mark.benchmark(group="fig4")
def test_fig4_speedups(benchmark):
    us = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    print()
    print(f"Figure 4: speedups over {len(SCALE.speedup_cases)} cases "
          f"(geometric mean of per-case us/eval ratios)")
    rel = {}
    for block in BLOCKS:
        reference = ConfigKey("A100", block, "baseline")
        rows = aggregate_speedups(us, reference)
        rows = [r for r in rows if r["block"] == block]
        print()
        print(format_table(
            rows, ["device", "block", "backend", "absolute_speedup",
                   "relative_speedup"],
            title=f"--- block size {block} "
                  f"(reference: A100 baseline @{block}) ---"))
        for r in rows:
            if "relative_speedup" in r:
                rel[(r["device"], block)] = r["relative_speedup"]

    print()
    print(ascii_bars(
        [(f"{d}/{b}", rel[(d, b)]) for d in DEVICES for b in BLOCKS],
        title="relative speedup: TCEC vs same-GPU baseline "
              "(the paper's red arrows)", unit="x"))

    # paper shapes
    for key, v in rel.items():
        assert v > 1.0, f"TCEC must beat its baseline at {key}, got {v:.2f}"
    assert max(rel, key=rel.get) == ("H100", 256), (
        f"H100@256 should have the peak relative speedup, got {rel}")
    for device in DEVICES:
        assert rel[(device, 128)] >= rel[(device, 64)] - 0.02, (
            f"relative speedup should grow 64->128 on {device}")
    assert rel[("H100", 256)] > 1.4
