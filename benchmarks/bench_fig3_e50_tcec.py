"""Figure 3: error correction (TCEC) restores the reference accuracy.

Mirrors `bench_fig1_e50_fp16.py` with the TCEC back-end:

1. **Local-search quality (asserted)** — on matched starts, TCEC's
   catastrophic-failure rate stays at the FP32 baseline level and clearly
   below FP16's: the TF32 dynamic range absorbs the clash contributions
   that overflow FP16, and the external FP32/RN accumulation removes the
   RZ bias.  At the kernel level TCEC's gradients match the FP32 baseline
   to ~1e-7 (asserted in tests/test_docking_gradients.py).
2. **E50 scatter (reported)** — the paper's figure, printed for shape
   inspection (noise discussion in EXPERIMENTS.md).
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    LS_QUALITY_CASES,
    bench_scale,
    run_e50_experiment,
    run_ls_quality,
)
from repro.analysis.figures import ascii_scatter_loglog
from repro.analysis.tables import format_scatter, format_table

SCALE = bench_scale()


@pytest.mark.benchmark(group="fig3")
def test_fig3_ls_quality_tcec(benchmark):
    """Panel 1: matched-start local-search quality, TCEC vs reference."""

    def run():
        return {(c, b): run_ls_quality(c, b)
                for c in LS_QUALITY_CASES
                for b in ("baseline", "tc-fp16", "tcec-tf32")}

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [out[(c, b)] for c in LS_QUALITY_CASES
            for b in ("baseline", "tc-fp16", "tcec-tf32")]
    print()
    print(format_table(
        rows, ["case", "backend", "n_starts", "converged", "failed",
               "median_final"],
        title="Figure 3 / panel 1: matched-start ADADELTA quality"))

    pooled = {
        b: sum(out[(c, b)]["failed"] for c in LS_QUALITY_CASES)
        for b in ("baseline", "tc-fp16", "tcec-tf32")
    }
    conv = {
        b: sum(out[(c, b)]["converged"] for c in LS_QUALITY_CASES)
        for b in ("baseline", "tc-fp16", "tcec-tf32")
    }
    n = sum(out[(c, "baseline")]["n_starts"] for c in LS_QUALITY_CASES)
    print(f"\npooled failures: {pooled}   pooled converged: {conv} "
          f"(of {n} starts each)")

    # error correction removes FP16's excess failures ...
    assert pooled["tcec-tf32"] < pooled["tc-fp16"], pooled
    # ... and lands at the baseline's level (within counting noise)
    sigma = np.sqrt(pooled["baseline"] + 1.0)
    assert abs(pooled["tcec-tf32"] - pooled["baseline"]) <= 3 * sigma + 3, \
        pooled
    # convergence counts comparable to the baseline
    assert conv["tcec-tf32"] >= 0.8 * conv["baseline"], conv


@pytest.mark.benchmark(group="fig3")
def test_fig3_e50_scatter_tcec(benchmark):
    """Panel 2: the E50 scatter (reported; see module docstring)."""

    def run():
        return {(c, b): run_e50_experiment(c, b, SCALE.e50_runs,
                                           SCALE.e50_max_evals)
                for c in SCALE.e50_cases
                for b in ("baseline", "tcec-tf32")}

    res = benchmark.pedantic(run, rounds=1, iterations=1)

    cap = 10 * SCALE.e50_max_evals
    for criterion in ("score", "rmsd"):
        pts = []
        for c in SCALE.e50_cases:
            x = min(res[(c, "baseline")][f"e50_{criterion}"].e50, cap)
            y = min(res[(c, "tcec-tf32")][f"e50_{criterion}"].e50, cap)
            pts.append((c, x, y))
        print()
        print(format_scatter(
            pts, "E50(reference)", "E50(tcec)",
            title=f"Figure 3 / panel 2 ({criterion} criterion) [evals]"))
        if criterion == "score":
            print()
            print(ascii_scatter_loglog(
                pts, xlabel="E50 reference", ylabel="E50 variant",
                title="(log-log; diagonal = algorithmic equivalence)"))
        ratios = [y / max(x, 1e-9) for _, x, y in pts]
        gm = float(np.exp(np.mean(np.log(np.maximum(ratios, 1e-9)))))
        print(f"geometric-mean E50 ratio (tcec/reference): {gm:.2f}")

    assert all(res[(c, b)]["e50_score"].e50 > 0
               for c in SCALE.e50_cases for b in ("baseline", "tcec-tf32"))
