"""Table 3: full metrics for the 7cpa test case on the A100.

Runs real docking (baseline and TCEC back-ends), collecting the paper's
Table 3 columns: actual score evaluations, best score @ RMSD, best RMSD @
score, and docking-runtime statistics over 100 samples.

Expected shapes: both back-ends consume a similar number of evaluations
(the budgets dominate), TCEC's runtime and µs/eval are lower, and runtime
variability is ~1% (Table 3 reports std.dev 0.02 s on 2.3 s).
"""

import pytest

from benchmarks.conftest import bench_scale, e50_lga_config
from repro.analysis.tables import format_table
from repro.core import DockingConfig, DockingEngine
from repro.testcases import get_test_case

SCALE = bench_scale()


def _dock(backend: str):
    case = get_test_case("7cpa")
    cfg = DockingConfig(backend=backend, device="A100", block_size=64,
                        lga=e50_lga_config(SCALE.e50_max_evals))
    engine = DockingEngine(case, cfg)
    result = engine.dock(n_runs=SCALE.table3_runs, seed=31)
    stats = engine.runtime_statistics(result, n_samples=100, seed=1)
    return result, stats


@pytest.mark.benchmark(group="table3")
def test_table3_7cpa_metrics(benchmark):
    def run():
        return {b: _dock(b) for b in ("baseline", "tcec-tf32")}

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for backend, (res, stats) in out.items():
        rows.append({
            "impl": backend,
            "N_evals": res.total_evals,
            "best_score": res.best_score,
            "@RMSD": res.rmsd_of_best,
            "best_RMSD": res.best_rmsd,
            "@score": res.score_of_best_rmsd,
            "runtime_s": res.runtime_seconds,
            "min": stats["min"], "max": stats["max"],
            "avg": stats["avg"], "std": stats["std"],
            "us/eval": res.us_per_eval,
        })
    print()
    print(format_table(
        rows, ["impl", "N_evals", "best_score", "@RMSD", "best_RMSD",
               "@score", "runtime_s", "min", "max", "avg", "std",
               "us/eval"],
        title=f"Table 3: 7cpa on A100/64 ({SCALE.table3_runs} LGA runs, "
              f"100 runtime samples)"))

    base, tcec = out["baseline"][0], out["tcec-tf32"][0]
    # TCEC needs less time per evaluation (paper: 0.911 -> 0.791 µs/eval)
    assert tcec.us_per_eval < base.us_per_eval
    ratio = base.us_per_eval / tcec.us_per_eval
    assert 1.05 < ratio < 1.35
    # runtime variability ~1%
    for backend, (res, stats) in out.items():
        assert stats["std"] / stats["avg"] < 0.03
        assert stats["min"] <= stats["avg"] <= stats["max"]
    # both implementations produce deep, near-native best poses
    case = get_test_case("7cpa")
    assert base.best_score < case.global_min_score + 3.0
    assert tcec.best_score < case.global_min_score + 3.0
