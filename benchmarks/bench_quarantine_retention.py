"""Throughput retained when one cohort lane is poisoned.

Docks a 4-ligand lock-step cohort three ways and emits one JSON record::

    QUARANTINE-RETENTION {"clean_evals_s": ..., \
"quarantine_evals_s": ..., "split_evals_s": ..., ...}

* **clean** — all four lanes healthy, one batched ``dock_cohort`` call:
  the throughput ceiling.
* **quarantine** — lane 1's affinity maps are all-NaN.  The lane is
  quarantined at its first non-finite score; the three survivors finish
  inside the same batched call.  Useful throughput = survivor evals over
  the whole wall.
* **full-split** — the pre-quarantine serving policy, simulated: the
  poisoned batched attempt is discarded entirely and every member
  re-runs solo through ``DockingEngine`` (wasted batched wall + four
  sequential solo walls, poisoned member burning its full budget on
  garbage).

Only finite-scoring survivor evals count as useful work in the poisoned
scenarios, so the retention ratios compare like with like.  Run with
``pytest benchmarks/bench_quarantine_retention.py -s``.
"""

import json
import time
from dataclasses import replace

import numpy as np

from repro.core import DockingConfig, DockingEngine
from repro.core.engine import dock_cohort
from repro.search.lga import LGAConfig
from repro.testcases import get_test_case

BENCH_CONFIG = DockingConfig(
    backend="baseline",
    lga=LGAConfig(pop_size=16, max_evals=2000, max_gens=24,
                  ls_iters=5, ls_rate=0.3))
CASES = ("1u4d", "1xoz", "1yv3", "7cpa")
POISONED_LANE = 1
N_RUNS = 4


def _seeds(n, entropy=17):
    return [np.random.SeedSequence(entropy=entropy, spawn_key=(i,))
            for i in range(n)]


def _poison(case):
    return replace(case, maps=replace(
        case.maps, affinity=np.full_like(case.maps.affinity, np.nan)))


def _survivor_evals(results):
    return sum(r.total_evals for r in results if r.quarantine is None)


def test_quarantine_retention(capsys):
    cases = [get_test_case(n) for n in CASES]
    poisoned = list(cases)
    poisoned[POISONED_LANE] = _poison(cases[POISONED_LANE])

    # warm caches (grid construction, first-call numpy dispatch)
    dock_cohort(cases, BENCH_CONFIG, n_runs=1, seeds=_seeds(4))

    t0 = time.perf_counter()
    clean = dock_cohort(cases, BENCH_CONFIG, n_runs=N_RUNS,
                        seeds=_seeds(4))
    clean_wall = time.perf_counter() - t0
    assert all(r.quarantine is None for r in clean)
    clean_rate = _survivor_evals(clean) / clean_wall

    t0 = time.perf_counter()
    quar = dock_cohort(poisoned, BENCH_CONFIG, n_runs=N_RUNS,
                       seeds=_seeds(4))
    quar_wall = time.perf_counter() - t0
    assert quar[POISONED_LANE].quarantine is not None
    quar_rate = _survivor_evals(quar) / quar_wall

    # old policy: the batched attempt above is all wasted wall, then
    # every member re-runs solo (sequentially — one fallback worker)
    split_wall = quar_wall
    split_evals = 0
    for i, case in enumerate(poisoned):
        t0 = time.perf_counter()
        res = DockingEngine(case, BENCH_CONFIG).dock(
            n_runs=N_RUNS, seed=_seeds(4)[i])
        split_wall += time.perf_counter() - t0
        if i != POISONED_LANE and np.isfinite(res.best_score):
            split_evals += res.total_evals
    split_rate = split_evals / split_wall

    record = {
        "cases": list(CASES),
        "poisoned_lane": POISONED_LANE,
        "n_runs": N_RUNS,
        "clean_evals_s": round(clean_rate, 1),
        "quarantine_evals_s": round(quar_rate, 1),
        "split_evals_s": round(split_rate, 1),
        "quarantine_retained": round(quar_rate / clean_rate, 3),
        "split_retained": round(split_rate / clean_rate, 3),
    }
    with capsys.disabled():
        print(f"\nQUARANTINE-RETENTION {json.dumps(record)}")
    # the whole point of quarantine: losing one lane must not cost the
    # cohort more throughput than the lane itself carried
    assert quar_rate > split_rate
