"""Figure 1: accuracy degradation of the FP16 Tensor Core reduction.

The paper's Figure 1 scatters, per test case, the E50 (score evaluations
to 50% success probability) of the *uncorrected* FP16 Tensor Core
implementation (y-axis) against the FP32 reference (x-axis), for both
success criteria; markers above the diagonal mean the TC version needs
more evaluations.

Two panels are produced:

1. **Local-search quality (asserted)** — matched-start ADADELTA descents,
   every back-end fed identical starting poses.  This isolates the
   gradient-kernel corruption from genetic-algorithm sampling noise; the
   FP16 failure signature is a raised catastrophic-failure rate (descents
   that end in clash scores because FP16 input conversion overflows /
   the half accumulator saturates on steep contributions).
2. **E50 scatter (reported)** — the paper's actual figure, from full LGA
   runs.  At the reproduction's ~1000x-scaled budgets the per-case E50
   carries large run-level variance (chaotic trajectory divergence), so
   this panel is printed for shape inspection and only sanity-checked
   (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    LS_QUALITY_CASES,
    bench_scale,
    run_e50_experiment,
    run_ls_quality,
)
from repro.analysis.figures import ascii_scatter_loglog
from repro.analysis.tables import format_scatter, format_table

SCALE = bench_scale()


@pytest.mark.benchmark(group="fig1")
def test_fig1_ls_quality_fp16(benchmark):
    """Panel 1: matched-start local-search quality, FP16 vs reference."""

    def run():
        return {(c, b): run_ls_quality(c, b)
                for c in LS_QUALITY_CASES
                for b in ("baseline", "tc-fp16")}

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [out[(c, b)] for c in LS_QUALITY_CASES
            for b in ("baseline", "tc-fp16")]
    print()
    print(format_table(
        rows, ["case", "backend", "n_starts", "converged", "failed",
               "median_final"],
        title="Figure 1 / panel 1: matched-start ADADELTA quality "
              "(identical starts per back-end)"))

    fail_base = sum(out[(c, "baseline")]["failed"] for c in LS_QUALITY_CASES)
    fail_fp16 = sum(out[(c, "tc-fp16")]["failed"] for c in LS_QUALITY_CASES)
    n = sum(out[(c, "baseline")]["n_starts"] for c in LS_QUALITY_CASES)
    print(f"\npooled catastrophic-failure rate: "
          f"baseline {fail_base}/{n}, tc-fp16 {fail_fp16}/{n}")

    # the paper-shape assertion: FP16 reductions corrupt descents
    assert fail_fp16 > fail_base, (
        f"expected FP16 to raise the LS failure rate "
        f"({fail_fp16} vs {fail_base})")


@pytest.mark.benchmark(group="fig1")
def test_fig1_e50_scatter_fp16(benchmark):
    """Panel 2: the E50 scatter itself (reported; see module docstring)."""

    def run():
        return {(c, b): run_e50_experiment(c, b, SCALE.e50_runs,
                                           SCALE.e50_max_evals)
                for c in SCALE.e50_cases
                for b in ("baseline", "tc-fp16")}

    res = benchmark.pedantic(run, rounds=1, iterations=1)

    cap = 10 * SCALE.e50_max_evals
    for criterion in ("score", "rmsd"):
        pts = []
        for c in SCALE.e50_cases:
            x = min(res[(c, "baseline")][f"e50_{criterion}"].e50, cap)
            y = min(res[(c, "tc-fp16")][f"e50_{criterion}"].e50, cap)
            pts.append((c, x, y))
        print()
        print(format_scatter(
            pts, "E50(reference)", "E50(tc-fp16)",
            title=f"Figure 1 / panel 2 ({criterion} criterion) [evals]"))
        if criterion == "score":
            print()
            print(ascii_scatter_loglog(
                pts, xlabel="E50 reference", ylabel="E50 variant",
                title="(log-log; diagonal = algorithmic equivalence)"))
        ratios = [y / max(x, 1e-9) for _, x, y in pts]
        gm = float(np.exp(np.mean(np.log(np.maximum(ratios, 1e-9)))))
        print(f"geometric-mean E50 ratio (tc-fp16/reference): {gm:.2f}")

    # sanity only: estimates are finite-positive and the harness ran every
    # case (shape discussion lives in EXPERIMENTS.md)
    assert all(res[(c, b)]["e50_score"].e50 > 0
               for c in SCALE.e50_cases for b in ("baseline", "tc-fp16"))
