"""Table 6: ADADELTA kernel profiling metrics (Nsight-Compute analogue).

One simulated kernel execution per (GPU, block, implementation): execution
time, operational intensity, achieved GFLOP/s, FMA/ALU/TC utilisation.

Expected shapes: TCEC is faster and achieves higher GFLOP/s than its
baseline everywhere; execution time drops on newer GPUs; TC utilisation is
nonzero only for the TC build (plus the documented Nsight version quirk on
A100/H100 baselines); B200 has the highest TC utilisation.
"""

import pytest

from repro.analysis.tables import format_table
from repro.simt.profiler import profile_kernel
from repro.testcases import get_test_case

DEVICES = ("A100", "H100", "B200")
BLOCKS = (64, 128, 256)
ITERATIONS = 300


def _profile_all():
    wl = get_test_case("7cpa").workload(20 * 150)
    rows = []
    for device in DEVICES:
        for backend in ("baseline", "tcec-tf32"):
            for block in BLOCKS:
                rows.append(profile_kernel(device, block, backend, wl,
                                           iterations=ITERATIONS))
    return rows


@pytest.mark.benchmark(group="table6")
def test_table6_kernel_profile(benchmark):
    profiles = benchmark(_profile_all)
    rows = [p.as_row() for p in profiles]
    print()
    print(format_table(
        rows, ["device", "backend", "block", "time_ms", "OI", "GFLOP/s",
               "FMA%", "ALU%", "TC%"],
        title="Table 6: ADADELTA kernel profile (7cpa, one execution)"))

    by = {(p.device, p.backend, p.block_size): p for p in profiles}

    for d in DEVICES:
        for b in BLOCKS:
            base = by[(d, "baseline", b)]
            tcec = by[(d, "tcec-tf32", b)]
            # TCEC shortens the kernel and raises GFLOP/s (Table 6)
            assert tcec.exec_time_ms < base.exec_time_ms
            assert tcec.gflops > base.gflops
            # TC pipe active only in the TC build
            assert tcec.tc_util_pct > 0.05
            # execution time grows with block size
        t = [by[(d, "baseline", b)].exec_time_ms for b in BLOCKS]
        assert t[0] < t[1] < t[2]

    # newer GPUs are faster at fixed configuration
    for b in BLOCKS:
        times = [by[(d, "tcec-tf32", b)].exec_time_ms for d in DEVICES]
        assert times[0] > times[1] > times[2]

    # TC utilisation grows with block size (paper: e.g. B200 3.1 -> 4.7%);
    # the paper's cross-device ordering (B200 highest in absolute %) is a
    # Nsight counter detail the capacity-normalised model does not
    # reproduce — see EXPERIMENTS.md "Known deviations"
    for d in DEVICES:
        u = [by[(d, "tcec-tf32", b)].tc_util_pct for b in BLOCKS]
        assert u[0] < u[2], (d, u)

    # A100 TCEC@64 lands near the paper's 72.8 ms (loose)
    assert by[("A100", "tcec-tf32", 64)].exec_time_ms == \
        pytest.approx(72.8, rel=0.25)

    # Nsight version quirk: phantom baseline TC% on A100/H100, zero on B200
    assert by[("A100", "baseline", 64)].tc_util_pct > 0.0
    assert by[("B200", "baseline", 64)].tc_util_pct == 0.0
