"""Table 5: predicted (Amdahl) vs measured speedups for 7cpa.

For each GPU and block size the paper measures the Tensor Core fraction
``f`` by ``clock64()`` instrumentation of the seven reduction regions,
predicts the speedup with Equation (6) using ``f_eff = 0.9 f``, and
compares with the measured baseline/TCEC runtime ratio.

Expected shapes: f_eff in ~0.11-0.18; measured >= predicted (the TC path
also removes synchronisation outside the instrumented span); H100 @ 256
has the largest measured speedup.
"""

import pytest

from repro.analysis import predicted_speedup
from repro.analysis.amdahl import effective_fraction
from repro.analysis.runtime import RuntimeModel
from repro.analysis.tables import format_table
from repro.simt import KernelCostModel
from repro.testcases import get_test_case

DEVICES = ("A100", "H100", "B200")
BLOCKS = (64, 128, 256)
N_BLOCKS = 20 * 150
LS_EVALS, GA_EVALS, GENS = 2_250_000, 250_000, 28


def _build_rows():
    case = get_test_case("7cpa")
    wl = case.workload(N_BLOCKS)
    rows = []
    for device in DEVICES:
        for block in BLOCKS:
            f = KernelCostModel(device, block, "baseline").tensor_fraction(wl)
            f_eff = effective_fraction(f)
            s = KernelCostModel(device, block, "baseline") \
                .device.tensor_speedup
            pred = predicted_speedup(f_eff, s)
            tb = RuntimeModel(device, block, "baseline", wl) \
                .runtime_seconds(LS_EVALS, GA_EVALS, GENS)
            tt = RuntimeModel(device, block, "tcec-tf32", wl) \
                .runtime_seconds(LS_EVALS, GA_EVALS, GENS)
            rows.append({
                "GPU": device, "block": block,
                "f_eff": round(f_eff, 2), "S": round(s, 1),
                "pred_speedup": pred,
                "base_s": tb, "tcec_s": tt,
                "meas_speedup": tb / tt,
            })
    return rows


@pytest.mark.benchmark(group="table5")
def test_table5_predicted_vs_measured(benchmark):
    rows = benchmark(_build_rows)
    print()
    print(format_table(
        rows, ["GPU", "block", "f_eff", "S", "pred_speedup",
               "base_s", "tcec_s", "meas_speedup"],
        title="Table 5: predicted vs measured speedups (7cpa)"))

    by_key = {(r["GPU"], r["block"]): r for r in rows}
    for r in rows:
        # paper range of effective fractions
        assert 0.08 <= r["f_eff"] <= 0.22, r
        # measured speedups exceed the Amdahl prediction, as in Table 5
        assert r["meas_speedup"] >= r["pred_speedup"] - 0.02, r
        assert r["meas_speedup"] > 1.0
    # H100 @ 256 peaks (paper: 1.57x)
    best = max(rows, key=lambda r: r["meas_speedup"])
    assert (best["GPU"], best["block"]) == ("H100", 256)
    # magnitude check against the paper's measured column (loose)
    assert by_key[("A100", 64)]["meas_speedup"] == pytest.approx(1.15,
                                                                 abs=0.08)
    assert by_key[("H100", 256)]["meas_speedup"] == pytest.approx(1.57,
                                                                  abs=0.25)
