"""Ablation: local-search method — where the Tensor Core effects enter.

The reduction back-end touches *only* the ADADELTA gradient kernel.  The
derivative-free Solis-Wets local search never calls it, so under Solis-Wets
the three back-ends must produce bit-identical searches — a sharp control
confirming that all accuracy effects measured in Figures 1/3 enter through
the gradient reductions and nowhere else.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core import DockingConfig, DockingEngine
from repro.search.lga import LGAConfig
from repro.testcases import get_test_case


def _run(ls_method: str, backend: str):
    case = get_test_case("3ce3")
    cfg = DockingConfig(
        backend=backend,
        lga=LGAConfig(pop_size=16, max_evals=3_000, max_gens=60,
                      ls_method=ls_method, ls_iters=25, ls_rate=0.25))
    return DockingEngine(case, cfg).dock(n_runs=4, seed=13)


@pytest.mark.benchmark(group="ablation-ls")
def test_ablation_ls_method_isolates_backend(benchmark):
    def run_all():
        out = {}
        for ls in ("sw", "ad"):
            for backend in ("baseline", "tc-fp16"):
                out[(ls, backend)] = _run(ls, backend)
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [{
        "ls": ls, "backend": b,
        "best_score": r.best_score,
        "best_rmsd": r.best_rmsd,
        "evals": r.total_evals,
    } for (ls, b), r in out.items()]
    print()
    print(format_table(rows, title="Ablation: LS method x reduction "
                                   "backend (3ce3, matched seeds)"))

    # Solis-Wets never executes the gradient kernel: back-ends identical
    sw_base, sw_fp16 = out[("sw", "baseline")], out[("sw", "tc-fp16")]
    assert sw_base.best_score == sw_fp16.best_score
    scores_b = [r.best_score for r in sw_base.runs]
    scores_f = [r.best_score for r in sw_fp16.runs]
    assert scores_b == scores_f

    # ADADELTA does execute it: trajectories diverge
    ad_base, ad_fp16 = out[("ad", "baseline")], out[("ad", "tc-fp16")]
    diverged = any(
        not np.isclose(a.best_score, b.best_score, rtol=1e-12)
        for a, b in zip(ad_base.runs, ad_fp16.runs))
    assert diverged
