"""Ablation: Tensor Core operand format (FP16 vs BF16 vs TF32).

The paper selects TF32 for its FP32-matching exponent range (Section 4).
This ablation quantifies the choice on the matrix reduction with the
error-correction scheme applied uniformly, over inputs of growing dynamic
range — the regime where FP16's narrow exponent fails regardless of EC.

Expected shape: all formats are fine for order-1 data; once values pass
FP16's max finite (65504), FP16 collapses while TF32/BF16 survive; TF32 is
the most accurate throughout (10-bit mantissa + full exponent range).
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.reduction.tc_backend import tcec_reduce_xyze
from repro.tensorcore.tcec import TcecConfig


def _sweep():
    rng = np.random.default_rng(3)
    rows = []
    for scale in (1.0, 1e2, 1e4, 1e6):
        vecs = (rng.normal(size=(512, 4)) * scale).astype(np.float32)
        exact = vecs.astype(np.float64).sum(axis=0)
        norm = np.abs(vecs).astype(np.float64).sum(axis=0)
        out = {"scale": scale}
        for fmt in ("fp16", "bf16", "tf32"):
            got = tcec_reduce_xyze(vecs, TcecConfig(in_format=fmt))
            err = np.abs(got - exact) / norm
            err = np.nan_to_num(err, nan=1.0, posinf=1.0)
            out[fmt] = float(np.max(err))
        rows.append(out)
    return rows


@pytest.mark.benchmark(group="ablation-formats")
def test_ablation_input_formats(benchmark):
    rows = benchmark(_sweep)
    print()
    print(format_table(rows, floatfmt="{:.3g}",
                       title="Ablation: EC reduction error by operand "
                             "format (normalised by sum |x|)"))
    for row in rows:
        # TF32 is never worse than the alternatives
        assert row["tf32"] <= row["fp16"] + 1e-12
        assert row["tf32"] <= row["bf16"] + 1e-12
        assert row["tf32"] < 1e-5
    # FP16 collapses beyond its representable range
    assert rows[-1]["fp16"] > 1e-2
    # BF16 keeps range but has a coarse mantissa: worse than TF32
    assert rows[0]["bf16"] > rows[0]["tf32"]
