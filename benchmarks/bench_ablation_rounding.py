"""Ablation: round-toward-zero vs round-to-nearest accumulation.

Ootomo & Yokota identified the Tensor Core's RZ accumulator as a key
accuracy-loss contributor (paper Figure 2).  This ablation isolates that
factor on the matrix-shaped reduction: same TF32 operands, accumulator
rounding switched between the hardware RZ and a hypothetical RN.

Expected shape: with long accumulation chains, RZ drifts systematically
(bias grows with chain length) while RN errors stay centred — RZ error is
several times the RN error for positive-sum inputs.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table


def _sweep():
    from repro.fpemu import quantize
    from repro.reduction.matrices import build_p_matrix, pack_vectors
    from repro.tensorcore import mma as tc_mma

    rng = np.random.default_rng(42)
    p = build_p_matrix()
    rows = []
    for n in (1024, 4096, 16384, 65536, 262144):
        # positive-biased values ON THE TF32 LATTICE, so input truncation is
        # zero; only the V accumulation chain (one rounding per 64-vector
        # batch) distinguishes the modes.  The Q x V fold is skipped — its
        # operand truncation would mask the accumulator effect.
        vecs = quantize(
            (np.abs(rng.normal(size=(n, 4))) + 0.1).astype(np.float32),
            "tf32")
        tiles = pack_vectors(vecs)
        exact_v = tiles.astype(np.float64).sum(axis=0) @ p.astype(np.float64)
        out = {"n_values": n}
        for mode in ("rz", "rn"):
            v = np.zeros((16, 16), dtype=np.float32)
            for t in range(tiles.shape[0]):
                v = tc_mma(tiles[t], p, v, in_format="tf32",
                           accumulate=mode, quantize_inputs=False)
            out[f"relerr_{mode}"] = float(
                np.max(np.abs(v - exact_v) / np.abs(exact_v)))
        out["rz/rn"] = out["relerr_rz"] / max(out["relerr_rn"], 1e-18)
        rows.append(out)
    return rows


@pytest.mark.benchmark(group="ablation-rounding")
def test_ablation_rz_vs_rn_accumulation(benchmark):
    rows = benchmark(_sweep)
    print()
    print(format_table(rows, floatfmt="{:.3g}",
                       title="Ablation: accumulator rounding "
                             "(TF32 operands, FP32 accumulator)"))
    # RZ bias dominates at long chains
    long = rows[-1]
    assert long["relerr_rz"] > 2 * long["relerr_rn"], rows
    # and grows with the chain length
    assert rows[-1]["relerr_rz"] > rows[0]["relerr_rz"]
