"""Tests of the cost-model runtime predictor behind SLO admission.

The committed-file test is the PR's acceptance gate: fitted against the
calibration traces shipped in ``BENCH_gateway.json``, the predictor's
p50 relative error on those same traces must stay within 30%.
"""

import math

import pytest

from repro.simt.predictor import (DEFAULT_BENCH_PATH, JobShape,
                                  RuntimePredictor, shape_from_case,
                                  shape_from_pdbqt)

SMALL = JobShape(n_atoms=20, n_rot=2, n_rotlist=20, n_intra=10,
                 n_genes=8)
LARGE = JobShape(n_atoms=120, n_rot=16, n_rotlist=130, n_intra=300,
                 n_genes=22)


def _entries(per_eval_small=1e-4, per_eval_large=4e-4, backend="baseline"):
    """Two synthetic calibration traces with known per-eval cost."""
    return [
        {"case": "small", "backend": backend, "total_evals": 1000,
         "wall_s": per_eval_small * 1000},
        {"case": "large", "backend": backend, "total_evals": 1000,
         "wall_s": per_eval_large * 1000},
    ]


def _predictor(**kw):
    return RuntimePredictor(shapes={"small": SMALL, "large": LARGE},
                            entries=_entries(), ref_s=1.0, **kw)


class TestCommittedBenchGate:
    """Acceptance: p50 rel err <= 30% on the committed traces."""

    def test_committed_file_exists_and_loads(self):
        p = RuntimePredictor.from_bench(DEFAULT_BENCH_PATH)
        assert p.shapes and p.entries
        assert p.coeff_a >= 0 and p.coeff_b >= 0

    def test_p50_relative_error_within_gate(self):
        acc = RuntimePredictor.from_bench(DEFAULT_BENCH_PATH).accuracy()
        assert acc["n"] >= 3
        assert acc["p50_rel_err"] <= 0.30
        for rec in acc["entries"]:
            assert math.isfinite(rec["rel_err"])
            assert rec["predicted_s"] > 0

    def test_known_cases_price_from_committed_table(self):
        p = RuntimePredictor.from_bench(DEFAULT_BENCH_PATH)
        shape = p.shape_for_spec({"kind": "case", "case": "7cpa"})
        assert shape == p.shapes["7cpa"]


class TestFitAndPrediction:
    def test_prediction_scales_linearly_with_budget(self):
        p = _predictor()
        one = p.predict_seconds(SMALL, 1000)
        ten = p.predict_seconds(SMALL, 10_000)
        assert one > 0
        assert ten == pytest.approx(10 * one)

    def test_bigger_shape_predicts_slower(self):
        p = _predictor()
        assert p.eval_seconds(LARGE) > p.eval_seconds(SMALL)

    def test_fit_recovers_known_affine_law(self):
        """Traces generated as ``y = a + b x`` of the model proxy are
        reproduced exactly by the fit (two points, affine map)."""
        a, b = 2e-5, 1500.0
        probe = RuntimePredictor(shapes={"small": SMALL, "large": LARGE},
                                 entries=_entries(), ref_s=1.0)
        entries = [
            {"case": name, "backend": "baseline", "total_evals": 1000,
             "wall_s": 1000 * (a + b * probe.model_eval_seconds(shape))}
            for name, shape in (("small", SMALL), ("large", LARGE))]
        p = RuntimePredictor(shapes={"small": SMALL, "large": LARGE},
                             entries=entries, ref_s=1.0)
        assert p.coeff_a == pytest.approx(a, rel=1e-6)
        assert p.coeff_b == pytest.approx(b, rel=1e-6)
        assert p.predict_seconds(SMALL, 1000) == pytest.approx(
            entries[0]["wall_s"], rel=1e-6)

    def test_machine_factor_rescales(self):
        slow = RuntimePredictor(shapes={"small": SMALL, "large": LARGE},
                                entries=_entries(), ref_s=1.0,
                                local_ref_s=2.0)
        fast = _predictor()
        assert slow.machine_factor == pytest.approx(2.0)
        assert slow.predict_seconds(SMALL, 1000) == pytest.approx(
            2 * fast.predict_seconds(SMALL, 1000))

    def test_coefficients_never_negative(self):
        # anti-correlated traces: slope clamps, fit falls back flat
        entries = _entries(per_eval_small=4e-4, per_eval_large=1e-4)
        p = RuntimePredictor(shapes={"small": SMALL, "large": LARGE},
                             entries=entries, ref_s=1.0)
        assert p.coeff_a >= 0 and p.coeff_b >= 0
        assert p.eval_seconds(SMALL) > 0

    def test_needs_at_least_one_entry(self):
        with pytest.raises(ValueError, match="calibration"):
            RuntimePredictor(shapes={}, entries=[], ref_s=1.0)


class TestBackendFactors:
    def test_slower_backend_learns_multiplier(self):
        """A backend measured 2x slower than the baseline fit predicts
        2x — the host emulates tensor-core reductions, it does not get
        their speedup."""
        probe = _predictor()
        base = [
            {"case": name, "backend": "baseline", "total_evals": 1000,
             "wall_s": 1000 * (1e-5
                               + 1500 * probe.model_eval_seconds(shape))}
            for name, shape in (("small", SMALL), ("large", LARGE))]
        entries = base + [dict(e, backend="tc-fp16",
                               wall_s=2 * e["wall_s"]) for e in base]
        p = RuntimePredictor(shapes={"small": SMALL, "large": LARGE},
                             entries=entries, ref_s=1.0)
        assert p.backend_factor["tc-fp16"] == pytest.approx(2.0,
                                                            rel=1e-6)
        assert p.eval_seconds(SMALL, backend="tc-fp16") == pytest.approx(
            2 * p.eval_seconds(SMALL, backend="baseline"), rel=1e-6)

    def test_unseen_backend_predicts_with_factor_one(self):
        p = _predictor()
        assert "tcec-bf16" not in p.backend_factor
        raw_fit = p.coeff_a + p.coeff_b * p.model_eval_seconds(SMALL)
        assert p.eval_seconds(SMALL, backend="tcec-bf16") == \
            pytest.approx(raw_fit)

    def test_exact_aliases_baseline(self):
        p = _predictor()
        assert p.eval_seconds(SMALL, backend="exact") == \
            pytest.approx(p.eval_seconds(SMALL, backend="baseline"))


class TestShapeResolution:
    def test_unknown_case_name_falls_back_to_nearest_nrot(self):
        p = _predictor()
        shape = p.shape_for_spec({"kind": "case", "case": "no-such"})
        assert shape in (SMALL, LARGE)

    def test_file_ligand_estimated_from_line_counts(self, tmp_path):
        lig = tmp_path / "lig.pdbqt"
        lines = ["ROOT"] + [f"ATOM  {i:5d}  C   LIG A   1" for i in
                            range(10)] + ["ENDROOT"] + \
                ["BRANCH 1 2", "ENDBRANCH 1 2"] * 3
        lig.write_text("\n".join(lines) + "\n")
        shape = shape_from_pdbqt(str(lig))
        assert shape.n_rot == 3
        assert shape.n_genes == 9
        assert shape.n_atoms >= 10     # paper-scaled from 10 raw atoms
        via_spec = _predictor().shape_for_spec(
            {"kind": "ligand", "ligand": str(lig)})
        assert via_spec.n_rot == 3

    def test_shape_from_case_matches_committed_table(self):
        from repro.testcases import get_test_case
        p = RuntimePredictor.from_bench(DEFAULT_BENCH_PATH)
        built = shape_from_case(get_test_case("1u4d"))
        assert built == p.shapes["1u4d"]
