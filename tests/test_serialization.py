"""JSON round-trip tests for result/config serialization.

These are the payloads the serve layer persists in screen manifests, so
every round trip must survive ``json.dumps``/``loads`` (strict JSON — no
NaN/Infinity literals) and reproduce the original object exactly.
"""

import json

import numpy as np
import pytest

from repro.analysis.success import RunOutcome
from repro.core import DockingConfig, DockingEngine
from repro.core.config import (AdadeltaConfig, GAConfig, SolisWetsConfig,
                               SuccessCriteria)
from repro.search.lga import LGAConfig, LGAResult
from repro.testcases import get_test_case

TINY = DockingConfig(backend="baseline",
                     lga=LGAConfig(pop_size=8, max_evals=300, max_gens=6,
                                   ls_iters=5, ls_rate=0.25))


def _roundtrip(obj):
    """dict -> strict JSON text -> dict -> from_dict."""
    return type(obj).from_dict(json.loads(
        json.dumps(obj.to_dict(), allow_nan=False)))


class TestRunOutcome:
    def test_round_trip(self):
        out = RunOutcome(best_score=-7.25, best_rmsd=1.5, evals_used=900,
                         first_success_score=450, first_success_rmsd=None)
        assert _roundtrip(out) == out

    def test_infinite_rmsd_survives_strict_json(self):
        out = RunOutcome(best_score=-1.0, best_rmsd=float("inf"),
                         evals_used=10, first_success_score=None,
                         first_success_rmsd=None)
        back = _roundtrip(out)
        assert np.isinf(back.best_rmsd)


class TestDockingConfig:
    def test_default_round_trip(self):
        cfg = DockingConfig()
        assert _roundtrip(cfg) == cfg

    def test_nested_ls_configs_round_trip(self):
        cfg = DockingConfig(
            backend="tcec-tf32", device="H100", block_size=128,
            lga=LGAConfig(pop_size=24, ls_method="sw",
                          ga=GAConfig(crossover_rate=0.7),
                          adadelta=AdadeltaConfig(rho=0.9),
                          solis_wets=SolisWetsConfig(rho_init=2.0),
                          autostop=True),
            criteria=SuccessCriteria(rmsd_threshold=1.5))
        back = _roundtrip(cfg)
        assert back == cfg
        assert back.lga.solis_wets.rho_init == 2.0
        assert back.lga.adadelta.rho == 0.9

    def test_dict_is_plain_json_types(self):
        d = DockingConfig().to_dict()
        json.dumps(d, allow_nan=False)   # raises if anything non-JSON
        assert d["lga"]["adadelta"] is None


class TestLGAResult:
    def _result(self):
        res = LGAResult(best_genotype=np.arange(8.0), best_score=-5.5,
                        evals_used=300, generations=6,
                        history=[(50, -1.0, np.zeros(8)),
                                 (300, -5.5, np.arange(8.0))])
        return res

    def test_round_trip_with_history(self):
        back = _roundtrip(self._result())
        np.testing.assert_array_equal(back.best_genotype, np.arange(8.0))
        assert back.best_score == -5.5
        assert len(back.history) == 2
        evals, score, geno = back.history[1]
        assert (evals, score) == (300, -5.5)
        np.testing.assert_array_equal(geno, np.arange(8.0))

    def test_history_elidable(self):
        d = self._result().to_dict(include_history=False)
        assert d["history"] == []
        json.dumps(d, allow_nan=False)


class TestDockingResult:
    @pytest.fixture(scope="class")
    def docked(self):
        return DockingEngine(get_test_case("1u4d"), TINY).dock(
            n_runs=2, seed=0)

    def test_round_trip_preserves_everything(self, docked):
        back = _roundtrip(docked)
        assert back.case_name == docked.case_name
        assert back.config == docked.config
        assert back.best_score == docked.best_score
        assert back.total_evals == docked.total_evals
        assert back.final_rmsds == docked.final_rmsds
        assert back.outcomes == docked.outcomes
        assert back.rmsd_of_best == docked.rmsd_of_best
        for a, b in zip(back.runs, docked.runs):
            np.testing.assert_array_equal(a.best_genotype,
                                          b.best_genotype)

    def test_manifest_grade_json(self, docked):
        """The exact payload a screen manifest stores is strict JSON."""
        from repro.core.engine import DockingResult
        text = json.dumps(docked.to_dict(include_history=False),
                          allow_nan=False)
        back = DockingResult.from_dict(json.loads(text))
        assert back.best_score == docked.best_score
