"""Tests for the error-corrected GEMM (Ootomo & Yokota / TCEC)."""

import numpy as np
import pytest

from repro.tensorcore import TcecConfig, mma, tcec_mma
from repro.tensorcore.tcec import count_tc_issues


def _tiles(seed, scale=1.0):
    rng = np.random.default_rng(seed)
    a = (rng.normal(size=(16, 16)) * scale).astype(np.float32)
    b = (rng.normal(size=(16, 16)) * scale).astype(np.float32)
    c = (rng.normal(size=(16, 16)) * scale).astype(np.float32)
    return a, b, c


def _exact(a, b, c):
    return a.astype(np.float64) @ b.astype(np.float64) + c.astype(np.float64)


def _max_rel(got, exact):
    return float(np.max(np.abs(got - exact) / (np.abs(exact) + 1e-12)))


class TestTcecAccuracy:
    def test_beats_uncorrected_tf32(self):
        a, b, c = _tiles(1)
        exact = _exact(a, b, c)
        plain = mma(a, b, c, in_format="tf32")
        ec = tcec_mma(a, b, c, TcecConfig(in_format="tf32"))
        assert _max_rel(ec, exact) < _max_rel(plain, exact) / 10

    def test_near_fp32_accuracy(self):
        a, b, c = _tiles(2, scale=10.0)
        exact = _exact(a, b, c)
        ec = tcec_mma(a, b, c)
        # Ootomo & Yokota report error comparable to FP32 SIMT GEMM;
        # normalise by |A||B|+|C| to factor out cancellation conditioning
        scale = np.abs(a).astype(np.float64) @ np.abs(b) + np.abs(c)
        err = np.max(np.abs(ec - exact) / scale)
        assert err < 2.0 ** -20

    def test_beats_uncorrected_fp16(self):
        a, b, c = _tiles(3, scale=5.0)
        exact = _exact(a, b, c)
        plain = mma(a, b, c, in_format="fp16")
        ec = tcec_mma(a, b, c, TcecConfig(in_format="fp16"))
        assert _max_rel(ec, exact) < _max_rel(plain, exact)

    def test_correction_terms_monotonic(self):
        """More correction terms -> lower error (the term ablation)."""
        a, b, c = _tiles(4)
        exact = _exact(a, b, c)
        errs = []
        for n in (0, 1, 2):
            got = tcec_mma(a, b, c, TcecConfig(correction_terms=n))
            errs.append(_max_rel(got, exact))
        assert errs[2] <= errs[1] <= errs[0]
        assert errs[2] < errs[0] / 5

    def test_zero_terms_close_to_plain_product(self):
        """0 correction terms leaves only the head product; the remaining
        difference from a plain TC mma is the external RN accumulation."""
        a, b, c = _tiles(5)
        exact = _exact(a, b, c)
        no_ec = tcec_mma(a, b, c, TcecConfig(correction_terms=0))
        plain = mma(a, b, c, in_format="tf32")
        assert abs(_max_rel(no_ec, exact) - _max_rel(plain, exact)) < 1e-3

    def test_tf32_dynamic_range_survives_large_values(self):
        """Values beyond FP16 range are fine in TF32 TCEC — the reason the
        paper picks TF32 as input datatype."""
        a = np.full((16, 16), 1e6, np.float32)
        b = np.eye(16, dtype=np.float32)
        c = np.zeros((16, 16), np.float32)
        ec = tcec_mma(a, b, c, TcecConfig(in_format="tf32"))
        np.testing.assert_allclose(ec, 1e6, rtol=1e-6)
        ec16 = tcec_mma(a, b, c, TcecConfig(in_format="fp16"))
        assert not np.allclose(ec16, 1e6, rtol=1e-3)


class TestTcecConfig:
    def test_invalid_terms(self):
        with pytest.raises(ValueError, match="correction_terms"):
            TcecConfig(correction_terms=3)

    def test_issue_count(self):
        assert count_tc_issues(TcecConfig(correction_terms=2)) == 3
        assert count_tc_issues(TcecConfig(correction_terms=0)) == 1

    def test_default_is_papers_configuration(self):
        cfg = TcecConfig()
        assert cfg.in_format == "tf32"
        assert cfg.scale_residual is True
        assert cfg.correction_terms == 2


class TestTcecBatching:
    def test_batched_matches_loop(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(4, 16, 16)).astype(np.float32)
        b = rng.normal(size=(4, 16, 16)).astype(np.float32)
        c = np.zeros((4, 16, 16), np.float32)
        batched = tcec_mma(a, b, c)
        for i in range(4):
            np.testing.assert_array_equal(batched[i],
                                          tcec_mma(a[i], b[i], c[i]))

    def test_external_accumulation_uses_rn(self):
        """With EC, accumulating many positive products does NOT drift low
        the way internal RZ accumulation does."""
        rng = np.random.default_rng(8)
        a = np.abs(rng.normal(size=(16, 16))).astype(np.float32) + 0.5
        p = np.ones((16, 16), dtype=np.float32)
        acc_ec = np.zeros((16, 16), np.float32)
        acc_rz = np.zeros((16, 16), np.float32)
        acc64 = np.zeros((16, 16), np.float64)
        for _ in range(60):
            acc_ec = tcec_mma(a, p, acc_ec)
            acc_rz = mma(a, p, acc_rz, in_format="tf32")
            acc64 += a.astype(np.float64) @ p.astype(np.float64)
        err_ec = np.max(np.abs(acc_ec - acc64) / np.abs(acc64))
        err_rz = np.max(np.abs(acc_rz - acc64) / np.abs(acc64))
        assert err_ec < err_rz / 4
