"""Tests for the synthetic set-of-42 generator and library."""

import numpy as np
import pytest

from repro.docking.pose import calc_coords
from repro.testcases import SET_OF_42, get_test_case, make_test_case
from repro.testcases.library import clear_cache


class TestLibraryCatalogue:
    def test_42_cases(self):
        assert len(SET_OF_42) == 42
        names = [n for n, _ in SET_OF_42]
        assert len(set(names)) == 42

    def test_nrot_range_matches_paper(self):
        """Molecules with up to 32 rotatable bonds (Section 5)."""
        nrots = [r for _, r in SET_OF_42]
        assert min(nrots) == 0
        assert max(nrots) == 32

    def test_7cpa_is_medium_complexity(self):
        """7cpa has N_rot = 15 (Section 5.1.1)."""
        assert dict(SET_OF_42)["7cpa"] == 15

    def test_unknown_case(self):
        with pytest.raises(ValueError, match="unknown test case"):
            get_test_case("9xyz")

    def test_cache_returns_same_object(self):
        a = get_test_case("1u4d")
        b = get_test_case("1u4d")
        assert a is b


class TestGeneratedCase:
    def test_structure(self, case_7cpa):
        assert case_7cpa.n_rot == 15
        assert case_7cpa.ligand.n_atoms >= 17
        assert case_7cpa.receptor.n_atoms >= 20
        assert case_7cpa.maps.affinity.shape[0] == \
            len(set(case_7cpa.ligand.atom_types))

    def test_reproducible(self):
        a = make_test_case("test", 4, seed=99)
        b = make_test_case("test", 4, seed=99)
        np.testing.assert_array_equal(a.native_genotype, b.native_genotype)
        np.testing.assert_array_equal(a.receptor.coords, b.receptor.coords)
        assert a.global_min_score == b.global_min_score

    def test_different_seeds_differ(self):
        a = make_test_case("x", 3, seed=1)
        b = make_test_case("x", 3, seed=2)
        assert a.ligand.n_atoms != b.ligand.n_atoms or \
            not np.allclose(a.native_coords[:3], b.native_coords[:3])

    def test_native_is_global_min_reference(self, case_7cpa):
        """The recorded global minimum is at most the native score."""
        sf = case_7cpa.scoring()
        native_score = sf.score(case_7cpa.native_genotype)[0]
        assert case_7cpa.global_min_score <= native_score + 1e-6

    def test_native_pose_strongly_favourable(self, case_7cpa):
        """The native basin beats random poses by a wide margin."""
        sf = case_7cpa.scoring()
        rng = np.random.default_rng(0)
        from repro.docking.genotype import random_genotypes
        g = random_genotypes(rng, 50, case_7cpa.ligand,
                             case_7cpa.maps.box_lo, case_7cpa.maps.box_hi)
        random_best = sf.score(g).min()
        assert case_7cpa.global_min_score < random_best - 3.0

    def test_native_conformation_clash_free(self, case_7cpa):
        pairs = case_7cpa.ligand.intra_pairs()
        if pairs.shape[0] == 0:
            pytest.skip("no intra pairs")
        c = case_7cpa.native_coords
        d = np.linalg.norm(c[pairs[:, 0]] - c[pairs[:, 1]], axis=1)
        assert d.min() > 2.0

    def test_receptor_respects_clearance(self, case_7cpa):
        """Every receptor atom >= 3.6 Å from every native ligand atom."""
        d = np.linalg.norm(
            case_7cpa.receptor.coords[:, None, :]
            - case_7cpa.native_coords[None, :, :], axis=-1)
        assert d.min() >= 3.6 - 1e-9

    def test_native_inside_box(self, case_7cpa):
        maps = case_7cpa.maps
        c = case_7cpa.native_coords
        assert np.all(c >= maps.box_lo) and np.all(c <= maps.box_hi)

    def test_native_coords_match_genotype(self, case_7cpa):
        np.testing.assert_allclose(
            calc_coords(case_7cpa.ligand, case_7cpa.native_genotype),
            case_7cpa.native_coords, atol=1e-9)

    def test_workload_scaling(self, case_7cpa):
        wl = case_7cpa.workload(3000)
        assert wl.n_blocks == 3000
        assert wl.n_atoms == int(case_7cpa.ligand.n_atoms * 2.5)
        assert wl.n_genes == 6 + 15
        unscaled = case_7cpa.workload(10, scale=1.0)
        assert unscaled.n_atoms == case_7cpa.ligand.n_atoms

    def test_zero_torsion_case(self, case_small):
        assert case_small.n_rot == 0
        assert case_small.native_genotype.size == 6

    @pytest.mark.parametrize("n_rot", [0, 1, 7, 32])
    def test_torsion_counts_constructible(self, n_rot):
        case = make_test_case(f"t{n_rot}", n_rot, seed=1234, refine_iters=10)
        assert case.ligand.n_rot == n_rot
        assert case.native_genotype.size == 6 + n_rot


def test_clear_cache():
    get_test_case("1u4d")
    clear_cache()
    from repro.testcases.library import _CACHE
    assert not _CACHE


class TestValidation:
    def test_7cpa_passes_all_gates(self, case_7cpa):
        from repro.testcases import validate_case
        report = validate_case(case_7cpa)
        assert report.ok, report.failures
        assert report.min_receptor_clearance >= 3.6 - 1e-9
        assert report.native_score >= case_7cpa.global_min_score - 1e-6

    def test_small_case_passes(self, case_small):
        from repro.testcases import validate_case
        report = validate_case(case_small)
        assert report.ok, report.failures

    def test_detects_broken_maps(self, case_small):
        import copy
        from repro.testcases import validate_case
        broken = copy.copy(case_small)
        broken.maps = copy.copy(case_small.maps)
        broken.maps.affinity = case_small.maps.affinity.copy()
        broken.maps.affinity[0, 0, 0, 0] = np.nan
        report = validate_case(broken)
        assert not report.ok
        assert any("non-finite" in f for f in report.failures)

    def test_detects_clearance_violation(self, case_small):
        import copy
        from repro.testcases import validate_case
        from repro.docking.receptor import Receptor
        broken = copy.copy(case_small)
        coords = case_small.receptor.coords.copy()
        coords[0] = case_small.native_coords[0]   # atom on top of the native
        broken.receptor = Receptor("bad", list(case_small.receptor.atom_types),
                                   coords, case_small.receptor.charges)
        report = validate_case(broken)
        assert not report.ok
        assert any("clearance" in f for f in report.failures)

    @pytest.mark.parametrize("name", ["1yv3", "3ce3", "1jyq"])
    def test_sampled_library_cases_valid(self, name):
        from repro.testcases import get_test_case, validate_case
        report = validate_case(get_test_case(name))
        assert report.ok, report.failures
