"""Hot-path regression suite: golden bit-identity + eval accounting.

The golden file ``tests/data/golden_hot_path.json`` was recorded from the
scalar (pre-fusion) implementation *after* the two eval-accounting fixes,
so it pins down two things at once:

* the batched pipeline (fused ``reduce4``, batched GA generation, fused
  grid gathers, in-place ADADELTA) is **bit-identical** per seed and
  backend to the straightforward scalar code it replaced — scores and
  genotypes are compared by float *hex*, not tolerance;
* ``evals_used`` follows the fixed ledger semantics (no double final
  scoring on a mid-loop break, no truncated local-search shares).

The accounting tests below additionally hand-count a full trace and
exercise the two fixed bugs directly, so a regression points at the exact
rule that broke rather than just "golden mismatch".
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.docking.grids import GridMaps
from repro.search.ga import GAConfig, GeneticAlgorithm, next_generation_batched
from repro.search.lga import LGAConfig
from repro.search.parallel import ParallelLGA
from repro.testcases import get_test_case

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_hot_path.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

_CASES = [(cname, backend)
          for cname, cfg in GOLDEN.items()
          for backend in sorted(cfg["backends"])]


# ----------------------------------------------------------------------
# golden determinism: seed -> bit-identical results, all backends


@pytest.mark.parametrize("cname,backend", _CASES,
                         ids=[f"{c}-{b}" for c, b in _CASES])
def test_golden_bit_identical(cname, backend):
    cfg = GOLDEN[cname]
    scoring = get_test_case(cfg["case"]).scoring()
    lga = LGAConfig(**cfg["lga"])
    results = ParallelLGA(scoring, backend, lga,
                          seed=cfg["seed"]).run(cfg["n_runs"])
    expected = cfg["backends"][backend]["runs"]
    assert len(results) == len(expected)
    for r, (res, exp) in enumerate(zip(results, expected)):
        # float hex comparison == bit identity
        assert res.best_score.hex() == exp["best_score"], f"run {r} score"
        assert [float(v).hex() for v in res.best_genotype] \
            == exp["best_genotype"], f"run {r} genotype"
        assert res.evals_used == exp["evals_used"], f"run {r} evals"
        assert res.generations == exp["generations"], f"run {r} gens"
        assert [h[0] for h in res.history] == exp["history_evals"]
        assert [float(h[1]).hex() for h in res.history] \
            == exp["history_scores"]


# ----------------------------------------------------------------------
# eval-budget accounting


class _CountingScore:
    """Wraps ScoringFunction.score, counting batch calls."""

    def __init__(self, scoring):
        self._inner = scoring.score
        self.calls = 0

    def __call__(self, genotypes):
        self.calls += 1
        return self._inner(genotypes)


class _StubLocalSearch:
    """Local search that does nothing but report a fixed eval bill."""

    def __init__(self, n_evals):
        self.n_evals = n_evals

    def minimize(self, genotypes, max_iters=None):
        g = np.asarray(genotypes, dtype=np.float64)
        return g.copy(), np.zeros(g.shape[0]), self.n_evals


def test_no_double_scoring_on_mid_loop_break():
    """When the budget is exhausted right after a scoring pass, that pass
    *is* the final scoring: the run must not score the (unchanged)
    population again, which previously inflated ``evals_used`` by pop and
    wasted a population scoring pass."""
    scoring = get_test_case("1u4d").scoring()
    pop = 8
    lga = LGAConfig(pop_size=pop, max_evals=pop,  # break on first pass
                    max_gens=50, ls_iters=2, ls_rate=0.25)
    plga = ParallelLGA(scoring, "baseline", lga, seed=13)
    counter = _CountingScore(scoring)
    scoring.score = counter
    results = plga.run(2)
    assert counter.calls == 1                    # one batched pass, no re-score
    for res in results:
        assert res.evals_used == pop             # evals at the break, not 2*pop
        assert res.generations == 0


def test_ls_remainder_distributed_not_truncated():
    """7 LS evals over R=2 runs must bill 4 + 3, not 3 + 3 (the old
    ``// R`` truncation dropped the remainder every generation)."""
    scoring = get_test_case("1u4d").scoring()
    lga = LGAConfig(pop_size=8, max_evals=10_000, max_gens=1,
                    ls_iters=2, ls_rate=0.25)
    plga = ParallelLGA(scoring, "baseline", lga, seed=5)
    plga.local_search = _StubLocalSearch(7)
    results = plga.run(2)
    # per run: gen-1 scoring (8) + LS share + final scoring (8)
    assert results[0].evals_used == 8 + 4 + 8
    assert results[1].evals_used == 8 + 3 + 8


def test_evals_used_matches_hand_counted_trace():
    """Full hand-counted ledger over 2 generations, R = 2, pop = 8.

    Each generation: population scoring bills pop = 8 per run; the stub
    local search bills 7 evals, split 4 (run 0) + 3 (run 1).  After
    max_gens = 2 the loop exits at the *condition* (not mid-loop), so one
    final scoring pass (+8) runs.

        run 0:  8 + 4  +  8 + 4  +  8  = 32
        run 1:  8 + 3  +  8 + 3  +  8  = 30
    """
    scoring = get_test_case("1u4d").scoring()
    lga = LGAConfig(pop_size=8, max_evals=10_000, max_gens=2,
                    ls_iters=2, ls_rate=0.25)
    plga = ParallelLGA(scoring, "baseline", lga, seed=21)
    plga.local_search = _StubLocalSearch(7)
    counter = _CountingScore(scoring)
    scoring.score = counter
    results = plga.run(2)
    assert counter.calls == 3                    # 2 generations + final
    assert results[0].evals_used == 32
    assert results[1].evals_used == 30
    assert all(res.generations == 2 for res in results)
    # history eval stamps use the per-run ledger (run 1 lags run 0)
    for res, offset in zip(results, (4, 3)):
        for evals, _score, _geno in res.history:
            assert evals in (8, 8 + offset + 8, 8 + offset + 8 + offset + 8)


# ----------------------------------------------------------------------
# GridMaps.type_index LUT


def _tiny_maps():
    shape = (4, 4, 4)
    rng = np.random.default_rng(0)
    return GridMaps(origin=np.zeros(3), spacing=0.5,
                    type_names=["C", "OA", "HD"],
                    affinity=rng.random((3,) + shape),
                    elec=rng.random(shape),
                    desolv_v=rng.random(shape),
                    desolv_s=rng.random(shape))


def test_type_index_lut_built_once():
    maps = _tiny_maps()
    lut = maps._type_lut
    assert lut == {"C": 0, "OA": 1, "HD": 2}
    idx = maps.type_index(["HD", "C", "C", "OA"])
    assert idx.tolist() == [2, 0, 0, 1]
    assert idx.dtype == np.int64
    # repeated lookups reuse the table built in __post_init__
    maps.type_index(["OA"])
    assert maps._type_lut is lut


def test_type_index_unknown_type():
    maps = _tiny_maps()
    with pytest.raises(ValueError, match="no grid map for atom type 'N'"):
        maps.type_index(["C", "N"])


# ----------------------------------------------------------------------
# batched GA == scalar GA, per-run streams


def _spawn_gas(cfg, seed, n):
    rngs = [np.random.Generator(np.random.PCG64(s))
            for s in np.random.SeedSequence(seed).spawn(n)]
    return [GeneticAlgorithm(cfg, rng) for rng in rngs]


@pytest.mark.parametrize("selection", ["tournament", "proportional"])
@pytest.mark.parametrize("n_elite,tsize", [(1, 2), (0, 3), (2, 2)])
def test_next_generation_batched_matches_scalar(selection, n_elite, tsize):
    cfg = GAConfig(selection=selection, n_elite=n_elite,
                   tournament_size=tsize)
    R, pop, glen = 4, 10, 9
    rng = np.random.default_rng(77)
    genes = rng.normal(size=(R, pop, glen))
    scores = rng.normal(size=(R, pop))

    scalar_gas = _spawn_gas(cfg, 123, R)
    batched_gas = _spawn_gas(cfg, 123, R)

    expected = np.stack([scalar_gas[r].next_generation(genes[r], scores[r])
                         for r in range(R)])
    got = next_generation_batched(batched_gas, genes.copy(), scores.copy())
    # bit-identical, including the RNG draws
    np.testing.assert_array_equal(got, expected)
    # the generators must be left in the same stream position
    for sg, bg in zip(scalar_gas, batched_gas):
        assert sg.rng.integers(0, 2**31) == bg.rng.integers(0, 2**31)


def test_next_generation_batched_many_generations():
    """Stream alignment holds across chained generations (draw-order
    contract, not just single-step luck)."""
    cfg = GAConfig()
    R, pop, glen = 3, 8, 7
    rng = np.random.default_rng(5)
    genes_s = rng.normal(size=(R, pop, glen))
    genes_b = genes_s.copy()
    def scores_of(g):
        return g.sum(axis=-1)  # deterministic pseudo-scores

    scalar_gas = _spawn_gas(cfg, 42, R)
    batched_gas = _spawn_gas(cfg, 42, R)
    for _ in range(5):
        scores = scores_of(genes_s)
        genes_s = np.stack([
            scalar_gas[r].next_generation(genes_s[r], scores[r])
            for r in range(R)])
        genes_b = next_generation_batched(batched_gas, genes_b,
                                          scores_of(genes_b))
        np.testing.assert_array_equal(genes_b, genes_s)
