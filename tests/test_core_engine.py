"""Integration tests for the DockingEngine public API."""

import numpy as np
import pytest

from repro import DockingConfig, DockingEngine
from repro.search.lga import LGAConfig


def _quick_config(backend="baseline", **kw):
    return DockingConfig(
        backend=backend,
        lga=LGAConfig(pop_size=10, max_evals=1200, max_gens=25,
                      ls_iters=15, ls_rate=0.2),
        **kw)


class TestConfig:
    def test_defaults(self):
        cfg = DockingConfig()
        assert cfg.backend == "tcec-tf32"
        assert cfg.device == "A100"
        assert cfg.block_size == 64

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="unknown backend"):
            DockingConfig(backend="fp8")

    def test_block_size_validation(self):
        with pytest.raises(ValueError, match="block size"):
            DockingConfig(block_size=96)

    def test_cost_backend_mapping(self):
        assert DockingConfig(backend="exact").cost_backend == "baseline"
        assert DockingConfig(backend="tcec-tf32").cost_backend == "tcec-tf32"


class TestDock:
    def test_result_fields(self, case_small):
        engine = DockingEngine(case_small, _quick_config())
        res = engine.dock(n_runs=3, seed=0)
        assert res.case_name == "1u4d"
        assert len(res.runs) == len(res.outcomes) == len(res.final_rmsds) == 3
        assert res.total_evals > 0
        assert res.runtime_seconds > 0
        assert np.isfinite(res.best_score)
        assert res.us_per_eval > 0

    def test_best_cross_references(self, case_small):
        engine = DockingEngine(case_small, _quick_config())
        res = engine.dock(n_runs=4, seed=1)
        assert res.best_score == min(r.best_score for r in res.runs)
        assert res.best_rmsd == min(res.final_rmsds)
        # rmsd_of_best is the rmsd of the best-scoring run's pose
        i = int(np.argmin([r.best_score for r in res.runs]))
        assert res.rmsd_of_best == res.final_rmsds[i]

    def test_reproducible(self, case_small):
        engine = DockingEngine(case_small, _quick_config())
        a = engine.dock(n_runs=2, seed=42)
        b = engine.dock(n_runs=2, seed=42)
        assert a.best_score == b.best_score
        assert a.total_evals == b.total_evals

    def test_small_case_finds_minimum(self, case_small):
        """The rigid (0-torsion) case is easy — baseline should succeed."""
        engine = DockingEngine(case_small, _quick_config())
        res = engine.dock(n_runs=4, seed=3)
        assert res.best_score <= case_small.global_min_score + 1.5

    def test_device_changes_runtime_not_search(self, case_small):
        ra = DockingEngine(case_small,
                           _quick_config(device="A100")).dock(2, seed=5)
        rb = DockingEngine(case_small,
                           _quick_config(device="B200")).dock(2, seed=5)
        assert ra.best_score == rb.best_score        # same numerics
        assert ra.runtime_seconds > rb.runtime_seconds  # different pricing

    def test_backend_changes_runtime_pricing(self, case_small):
        rb = DockingEngine(case_small, _quick_config("baseline")).dock(2, seed=6)
        rt = DockingEngine(case_small, _quick_config("tcec-tf32")).dock(2, seed=6)
        assert rt.us_per_eval < rb.us_per_eval

    def test_runtime_statistics(self, case_small):
        engine = DockingEngine(case_small, _quick_config())
        res = engine.dock(n_runs=2, seed=7)
        stats = engine.runtime_statistics(res, n_samples=50, seed=0)
        assert stats["min"] <= stats["avg"] <= stats["max"]
        assert stats["std"] > 0
        assert stats["std"] / stats["avg"] < 0.05   # ~1% jitter like Table 3

    def test_best_pose_coords(self, case_small):
        engine = DockingEngine(case_small, _quick_config())
        res = engine.dock(n_runs=2, seed=8)
        coords = engine.best_pose_coords(res)
        assert coords.shape == (case_small.ligand.n_atoms, 3)
