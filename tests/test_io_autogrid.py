"""Tests for the AutoGrid .map / .maps.fld file format."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import read_maps, write_maps, write_pdbqt
from repro.io.autogrid import _read_one_map


class TestRoundTrip:
    def test_full_round_trip(self, case_small, tmp_path):
        fld = write_maps(case_small.maps, tmp_path)
        back = read_maps(fld)
        assert back.type_names == case_small.maps.type_names
        assert back.spacing == case_small.maps.spacing
        np.testing.assert_allclose(back.origin, case_small.maps.origin,
                                   atol=1e-2)
        np.testing.assert_allclose(back.affinity, case_small.maps.affinity,
                                   atol=5e-3)
        np.testing.assert_allclose(back.elec, case_small.maps.elec,
                                   atol=5e-3)
        np.testing.assert_allclose(back.desolv_v, case_small.maps.desolv_v,
                                   atol=5e-3)

    def test_file_layout(self, case_small, tmp_path):
        fld = write_maps(case_small.maps, tmp_path, stem="protein")
        assert fld.name == "protein.maps.fld"
        for t in case_small.maps.type_names:
            assert (tmp_path / f"protein.{t}.map").exists()
        assert (tmp_path / "protein.e.map").exists()
        assert (tmp_path / "protein.d1.map").exists()
        assert (tmp_path / "protein.d2.map").exists()

    def test_map_header_format(self, case_small, tmp_path):
        write_maps(case_small.maps, tmp_path, stem="p")
        t = case_small.maps.type_names[0]
        lines = (tmp_path / f"p.{t}.map").read_text().splitlines()
        assert lines[0].startswith("GRID_PARAMETER_FILE")
        assert lines[3].startswith("SPACING")
        assert lines[4].startswith("NELEMENTS")
        assert lines[5].startswith("CENTER")
        nx, ny, nz = case_small.maps.shape
        assert lines[4].split()[1:] == [str(nx - 1), str(ny - 1), str(nz - 1)]

    def test_x_fastest_ordering(self, case_small, tmp_path):
        """The first data value is grid node (0,0,0), the second (1,0,0)."""
        write_maps(case_small.maps, tmp_path, stem="p")
        t = case_small.maps.type_names[0]
        values, origin, spacing = _read_one_map(tmp_path / f"p.{t}.map")
        np.testing.assert_allclose(values, case_small.maps.affinity[0],
                                   atol=5e-3)

    def test_malformed_fld(self, tmp_path):
        bad = tmp_path / "x.maps.fld"
        bad.write_text("ndim=3\n")
        with pytest.raises(ValueError, match="malformed"):
            read_maps(bad)

    def test_malformed_map_header(self, tmp_path):
        bad = tmp_path / "x.map"
        bad.write_text("JUNK\n" * 6 + "1.0\n")
        with pytest.raises(ValueError, match="malformed"):
            _read_one_map(bad)


class TestCliFfile:
    def test_ffile_end_to_end(self, case_small, tmp_path, capsys):
        """The artifact-appendix invocation: -ffile maps -lfile ligand."""
        fld = write_maps(case_small.maps, tmp_path)
        lig = tmp_path / "lig.pdbqt"
        write_pdbqt(case_small.ligand, lig)
        rc = main(["-ffile", str(fld), "-lfile", str(lig),
                   "-nrun", "1", "--evals", "400", "--pop", "8",
                   "--lsit", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Run time" in out

    def test_ffile_requires_lfile(self, case_small, tmp_path, capsys):
        fld = write_maps(case_small.maps, tmp_path)
        assert main(["-ffile", str(fld)]) == 2
