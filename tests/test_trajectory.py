"""Tests for success-probability curves (the E50 methodology)."""

import math

import numpy as np
import pytest

from repro.analysis.trajectory import fitted_curve, format_curves, \
    success_curve


class TestSuccessCurve:
    def test_monotone_and_bounded(self):
        times = [100, 400, None, 900, None]
        grid, p = success_curve(times, budgets=1000)
        assert np.all(np.diff(p) >= 0)
        assert p[0] == 0.0
        assert p[-1] == pytest.approx(3 / 5)

    def test_step_positions(self):
        grid = np.array([0, 99, 100, 500, 1000], dtype=float)
        _, p = success_curve([100, 100], budgets=1000, grid=grid)
        np.testing.assert_allclose(p, [0, 0, 1, 1, 1])

    def test_all_censored_flat_zero(self):
        _, p = success_curve([None, None], budgets=500)
        assert np.all(p == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            success_curve([], budgets=10)


class TestFittedCurve:
    def test_crosses_half_at_e50(self):
        times = [200, 300, 400, 500]
        grid = np.linspace(0, 2000, 2001)
        g, p, e50 = fitted_curve(times, budgets=2000, grid=grid)
        k = int(np.argmin(np.abs(p - 0.5)))
        assert g[k] == pytest.approx(e50, rel=0.01)

    def test_all_censored(self):
        _, p, e50 = fitted_curve([None], budgets=100)
        assert math.isinf(e50)
        assert np.all(p == 0.0)

    def test_saturates(self):
        grid = np.linspace(0, 1e6, 11)
        _, p, _ = fitted_curve([100] * 5, budgets=1000, grid=grid)
        assert p[-1] > 0.999


class TestFormatCurves:
    def test_overlay(self):
        g1, p1 = success_curve([100, 200, 300], budgets=1000)
        g2, p2 = success_curve([500, None, None], budgets=1000)
        out = format_curves({"baseline": (g1, p1), "tc-fp16": (g2, p2)},
                            title="demo")
        assert "demo" in out
        assert "b=baseline" in out and "t=tc-fp16" in out
        assert "E50" in out

    def test_empty(self):
        assert "(no curves)" in format_curves({})
