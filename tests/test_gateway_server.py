"""End-to-end gateway tests: HTTP submission through NDJSON results.

Real sockets on an ephemeral port, two inline shards (workers=0 — the
single-CPU CI runner runs jobs in the shard threads themselves), the
committed predictor for admission.  Small eval budgets keep each dock
in the tens of milliseconds.
"""

import json

import pytest

from repro.cli import main
from repro.gateway import (Gateway, GatewayConfig, GatewayClient,
                           GatewayRejected)
from repro.serve import shard_for


def _doc(case="1u4d", i=0, evals=200, n_runs=1, **extra):
    return {"case": case, "n_runs": n_runs, "evals": evals, "pop": 10,
            "ls_iters": 5, "backend": "baseline",
            "seed": {"entropy": 42, "index": i}, **extra}


#: a job no machine finishes in 10ms: predicted minutes of work
_IMPOSSIBLE = dict(evals=200_000, n_runs=8, deadline_s=0.01)


@pytest.fixture()
def gateway(tmp_path):
    cfg = GatewayConfig(port=0, n_shards=2, workers=0, poll_s=0.01,
                        manifest=str(tmp_path / "manifest.json"))
    gw = Gateway(cfg).start()
    try:
        yield gw, GatewayClient(f"http://127.0.0.1:{gw.port}")
    finally:
        gw.stop()


class TestEndToEnd:
    def test_mixed_batch_streams_and_ranks(self, gateway, tmp_path):
        gw, client = gateway
        assert client.healthz()["ok"] is True

        docs = [_doc(i=i) for i in range(6)]
        docs.append(_doc(i=99, **_IMPOSSIBLE))
        out = client.submit_batch(docs)

        assert len(out["accepted"]) == 6
        assert len(out["rejected"]) == 1
        rej = out["rejected"][0]
        assert rej["error"] == "admission_rejected"
        assert rej["reason"] == "deadline"
        assert rej["predicted_seconds"] > rej["limit_seconds"]

        # hash routing: the reply's shard is the content-hash owner
        for rec in out["accepted"]:
            assert rec["shard"] == shard_for(rec["job_id"], 2)
        assert {rec["shard"] for rec in out["accepted"]} == {0, 1}

        # stream until every accepted job is terminal
        results = list(client.stream())
        assert len(results) == 6
        assert all(rec["status"] == "ok" for rec in results)
        assert all(rec["best_score"] is not None for rec in results)

        # per-job status carries the full result payload
        jid = out["accepted"][0]["job_id"]
        status = client.status(jid)
        assert status["status"] == "ok"
        payload = status["result"]          # full JobResult record
        assert payload["status"] == "ok"
        runs = payload["result"]["runs"]
        assert min(r["best_score"] for r in runs) == \
            pytest.approx(status["best_score"])

        # the manifest on disk is the ranked, atomic artifact
        doc = json.loads((tmp_path / "manifest.json").read_text())
        scores = [r["best_score"] for r in doc["ranking"]]
        assert scores == sorted(scores)
        assert len(doc["ranking"]) == 6
        assert doc["scheduler"]["completed"] == 6

        stats = client.stats()
        assert stats["jobs"]["ok"] == 6
        assert stats["heartbeat_seconds"] > 0
        assert stats["scheduler"]["rejected"] == 1

    def test_single_rejection_is_429(self, gateway):
        _, client = gateway
        with pytest.raises(GatewayRejected) as exc:
            client.submit(_doc(i=0, **_IMPOSSIBLE))
        assert exc.value.status == 429
        assert exc.value.payload["reason"] == "deadline"
        assert exc.value.payload["retry_after_s"] > 0

    def test_duplicate_submission_is_idempotent(self, gateway):
        _, client = gateway
        first = client.submit(_doc(i=1))["accepted"][0]
        again = client.submit(_doc(i=1))["accepted"][0]
        assert again["job_id"] == first["job_id"]
        assert again["duplicate"] is True
        # the duplicate never re-enqueued: exactly one job known
        assert client.stats()["scheduler"]["admitted"] == 1

    def test_unknown_job_is_404(self, gateway):
        _, client = gateway
        from repro.gateway import GatewayError
        with pytest.raises(GatewayError) as exc:
            client.status("f" * 64)
        assert exc.value.status == 404

    def test_bad_request_is_400(self, gateway):
        gw, client = gateway
        import http.client
        conn = http.client.HTTPConnection("127.0.0.1", gw.port,
                                          timeout=10)
        conn.request("POST", "/v1/jobs", body=b"not json",
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
        conn.close()


class TestSloAdmission:
    def test_slo_rejects_before_deadline_checks(self, tmp_path):
        cfg = GatewayConfig(port=0, n_shards=2, workers=0, poll_s=0.01,
                            slo_seconds=0.001)
        gw = Gateway(cfg).start()
        try:
            client = GatewayClient(f"http://127.0.0.1:{gw.port}")
            with pytest.raises(GatewayRejected) as exc:
                client.submit(_doc(i=0, evals=100_000, n_runs=8))
            assert exc.value.payload["reason"] == "slo"
        finally:
            gw.stop()


class TestGatewayCli:
    def test_submit_watch_and_stream(self, gateway, capsys):
        gw, _ = gateway
        url = f"http://127.0.0.1:{gw.port}"
        rc = main(["gateway", "submit", "--url", url,
                   "--cases", "1u4d", "1t46", "--tensor", "baseline",
                   "-nrun", "1", "--evals", "200", "--pop", "10",
                   "--lsit", "5", "--watch"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("accepted") == 2
        assert "[ok]" in out and "kcal/mol" in out

        rc = main(["gateway", "watch", "--url", url, "--once"])
        assert rc == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) == 2
        assert all(rec["status"] == "ok" for rec in lines)

    def test_submit_all_rejected_exits_nonzero(self, tmp_path, capsys):
        cfg = GatewayConfig(port=0, n_shards=1, workers=0, poll_s=0.01,
                            slo_seconds=0.001)
        gw = Gateway(cfg).start()
        try:
            url = f"http://127.0.0.1:{gw.port}"
            rc = main(["gateway", "submit", "--url", url,
                       "--cases", "7cpa", "--evals", "100000",
                       "-nrun", "8"])
            assert rc == 1
            assert "REJECTED" in capsys.readouterr().out
        finally:
            gw.stop()
