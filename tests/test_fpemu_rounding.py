"""Unit + property tests for directed rounding and RZ accumulation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpemu import (
    round_f64_to_f32_rn,
    round_f64_to_f32_rz,
    rz_add_f32,
    ulp_f32,
)

F32_MAX = float(np.finfo(np.float32).max)


class TestRoundRZ:
    def test_exact_values_unchanged(self):
        x = np.array([0.0, 1.0, -2.5, 1024.0], dtype=np.float64)
        np.testing.assert_array_equal(round_f64_to_f32_rz(x),
                                      x.astype(np.float32))

    def test_positive_truncates_down(self):
        x = np.float64(1.0) + np.float64(2.0 ** -25)
        assert round_f64_to_f32_rz(x) == np.float32(1.0)

    def test_negative_truncates_up(self):
        x = -np.float64(1.0) - np.float64(2.0 ** -25)
        assert round_f64_to_f32_rz(x) == np.float32(-1.0)

    def test_never_increases_magnitude(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=20_000) * np.exp(rng.normal(size=20_000) * 10)
        y = round_f64_to_f32_rz(x)
        assert np.all(np.abs(y.astype(np.float64)) <= np.abs(x))

    def test_overflow_clamps_to_max_finite(self):
        x = np.array([1e39, -1e39], dtype=np.float64)
        y = round_f64_to_f32_rz(x)
        assert y[0] == np.float32(F32_MAX)
        assert y[1] == np.float32(-F32_MAX)

    def test_infinity_passes_through(self):
        y = round_f64_to_f32_rz(np.array([np.inf, -np.inf]))
        assert y[0] == np.inf and y[1] == -np.inf

    def test_nan_passes_through(self):
        assert np.isnan(round_f64_to_f32_rz(np.float64(np.nan)))

    def test_within_one_ulp(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=5000) * 100
        y = round_f64_to_f32_rz(x).astype(np.float64)
        assert np.all(np.abs(x - y) <= ulp_f32(y.astype(np.float32)) + 1e-300)


class TestRoundRN:
    def test_matches_numpy_cast(self):
        rng = np.random.default_rng(21)
        x = rng.normal(size=5000) * 1e6
        np.testing.assert_array_equal(round_f64_to_f32_rn(x),
                                      x.astype(np.float32))


class TestRZAdd:
    def test_exact_when_representable(self):
        a = np.float32(1.5)
        b = np.float32(0.25)
        assert rz_add_f32(a, b) == np.float32(1.75)

    def test_rz_bias_is_toward_zero(self):
        # adding a tiny positive increment to 1.0 truncates back to 1.0
        ones = np.full(100, 1.0, dtype=np.float32)
        tiny = np.full(100, 2.0 ** -25, dtype=np.float32)
        np.testing.assert_array_equal(rz_add_f32(ones, tiny), ones)

    def test_accumulation_drift_is_negative_for_positive_sums(self):
        """Repeated RZ accumulation of positive values underestimates the
        exact sum — the systematic bias Ootomo & Yokota correct."""
        rng = np.random.default_rng(2)
        vals = (rng.random(4096).astype(np.float32) + 0.5).astype(np.float32)
        acc = np.float32(0.0)
        for v in vals:
            acc = rz_add_f32(acc, v)
        exact = vals.astype(np.float64).sum()
        assert float(acc) <= exact

    def test_broadcasts(self):
        a = np.ones((3, 4), dtype=np.float32)
        b = np.float32(2.0)
        out = rz_add_f32(a, b)
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out, np.full((3, 4), 3.0, np.float32))


class TestUlp:
    def test_ulp_of_one(self):
        assert ulp_f32(np.float32(1.0)) == np.float32(2.0 ** -23)

    def test_ulp_grows_with_magnitude(self):
        assert ulp_f32(np.float32(1024.0)) > ulp_f32(np.float32(1.0))


# ---------------------------------------------------------------------------
# property-based tests

finite_f64 = st.floats(min_value=-1e30, max_value=1e30,
                       allow_nan=False, allow_infinity=False)


@given(finite_f64)
@settings(max_examples=200)
def test_rz_magnitude_never_grows(x):
    y = float(round_f64_to_f32_rz(np.float64(x)))
    assert abs(y) <= abs(x) or np.isclose(abs(y), abs(x))


@given(finite_f64)
@settings(max_examples=200)
def test_rz_vs_rn_differ_by_at_most_one_ulp(x):
    rz = round_f64_to_f32_rz(np.float64(x))
    rn = round_f64_to_f32_rn(np.float64(x))
    diff = abs(float(rz) - float(rn))
    assert diff <= float(ulp_f32(rn)) + 1e-300


@given(st.floats(min_value=-(2.0 ** 60), max_value=2.0 ** 60,
                 allow_nan=False, width=32),
       st.floats(min_value=-(2.0 ** 60), max_value=2.0 ** 60,
                 allow_nan=False, width=32))
@settings(max_examples=200)
def test_rz_add_commutes(a, b):
    a32, b32 = np.float32(a), np.float32(b)
    assert rz_add_f32(a32, b32) == rz_add_f32(b32, a32)
