"""Tests for the search layer: GA operators, ADADELTA, Solis-Wets, LGA."""

import numpy as np
import pytest

from repro.docking import GradientCalculator, ScoringFunction
from repro.docking.genotype import genotype_length
from repro.search import (
    AdadeltaConfig,
    AdadeltaLocalSearch,
    GAConfig,
    GeneticAlgorithm,
    LGAConfig,
    LGARun,
    ParallelLGA,
    SolisWetsConfig,
    SolisWetsLocalSearch,
)


class TestGAConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GAConfig(tournament_size=0)
        with pytest.raises(ValueError):
            GAConfig(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GAConfig(mutation_rate=-0.1)
        with pytest.raises(ValueError):
            GAConfig(n_elite=-1)


class TestGeneticOperators:
    def _ga(self, seed=0, **kwargs):
        return GeneticAlgorithm(GAConfig(**kwargs),
                                np.random.default_rng(seed))

    def test_selection_prefers_fitter(self):
        ga = self._ga(tournament_p=1.0)
        scores = np.array([5.0, 1.0, 3.0, 4.0, 2.0])
        picks = ga.select_parents(scores, 2000)
        # the fittest individual (index 1) must be picked most often
        counts = np.bincount(picks, minlength=5)
        assert counts[1] == counts.max()

    def test_crossover_swaps_contiguous_block(self):
        ga = self._ga(crossover_rate=1.0)
        a = np.zeros((50, 10))
        b = np.ones((50, 10))
        children = ga.crossover(a, b)
        for row in children:
            # values only from the two parents
            assert set(np.unique(row)) <= {0.0, 1.0}
            # the ones form one contiguous block (two-point crossover)
            ones = np.nonzero(row == 1.0)[0]
            if ones.size:
                assert ones[-1] - ones[0] + 1 == ones.size

    def test_crossover_rate_zero_copies_parent_a(self):
        ga = self._ga(crossover_rate=0.0)
        a = np.zeros((20, 6))
        b = np.ones((20, 6))
        np.testing.assert_array_equal(ga.crossover(a, b), a)

    def test_mutation_rate_zero_is_identity(self):
        ga = self._ga(mutation_rate=0.0)
        genes = np.random.default_rng(1).normal(size=(10, 8))
        np.testing.assert_array_equal(ga.mutate(genes), genes)

    def test_mutation_changes_some_genes(self):
        ga = self._ga(mutation_rate=0.5)
        genes = np.zeros((40, 8))
        out = ga.mutate(genes)
        changed = np.mean(out != genes)
        assert 0.3 < changed < 0.7

    def test_elitism_preserves_best(self):
        ga = self._ga(n_elite=1)
        genes = np.random.default_rng(2).normal(size=(12, 6))
        scores = np.arange(12, dtype=float)
        scores[7] = -10.0          # individual 7 is the best
        out = ga.next_generation(genes, scores)
        np.testing.assert_array_equal(out[0], genes[7])

    def test_next_generation_shape(self):
        ga = self._ga()
        genes = np.random.default_rng(3).normal(size=(15, 9))
        out = ga.next_generation(genes, np.random.default_rng(4).random(15))
        assert out.shape == genes.shape


class TestAdadelta:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdadeltaConfig(rho=1.5)
        with pytest.raises(ValueError):
            AdadeltaConfig(eps=0.0)
        with pytest.raises(ValueError):
            AdadeltaConfig(max_iters=0)

    def test_minimizes_quadratic(self):
        """On a plain quadratic the optimiser must reduce the objective."""
        class Quad:
            def __call__(self, x):
                return np.sum(x ** 2, axis=1), 2.0 * x
        ls = AdadeltaLocalSearch(Quad(), AdadeltaConfig(max_iters=200))
        x0 = np.full((3, 4), 3.0)
        best_x, best_e, evals = ls.minimize(x0)
        assert np.all(best_e < np.sum(x0 ** 2, axis=1))
        assert evals == 3 * 200

    def test_tracks_best_not_last(self):
        """The returned genotype is the best seen, even if later iterations
        wander away."""
        calls = {"n": 0}

        class Bumpy:
            def __call__(self, x):
                calls["n"] += 1
                e = np.sum(x ** 2, axis=1)
                return e, -x  # ascent direction: moves away from optimum
        ls = AdadeltaLocalSearch(Bumpy(), AdadeltaConfig(max_iters=20))
        x0 = np.ones((1, 2))
        best_x, best_e, _ = ls.minimize(x0)
        np.testing.assert_array_equal(best_x, x0)   # first point was best

    def test_nonfinite_gradient_guard(self):
        class NanGrad:
            def __call__(self, x):
                g = np.full_like(x, np.nan)
                return np.sum(x ** 2, axis=1), g
        ls = AdadeltaLocalSearch(NanGrad(), AdadeltaConfig(max_iters=5))
        best_x, best_e, _ = ls.minimize(np.ones((2, 3)))
        assert np.all(np.isfinite(best_x))

    def test_improves_docking_pose(self, case_7cpa):
        sf = case_7cpa.scoring()
        ls = AdadeltaLocalSearch(GradientCalculator(sf, "exact"),
                                 AdadeltaConfig(max_iters=60))
        rng = np.random.default_rng(0)
        x0 = case_7cpa.native_genotype[None, :] + rng.normal(0, 0.5, (1, 21))
        e0 = sf.score(x0)
        _, best_e, _ = ls.minimize(x0)
        assert best_e[0] < e0[0]


class TestSolisWets:
    def test_minimizes_docking_pose(self, butane_like, small_maps):
        sf = ScoringFunction(butane_like, small_maps)
        ls = SolisWetsLocalSearch(sf, SolisWetsConfig(max_iters=40),
                                  np.random.default_rng(1))
        rng = np.random.default_rng(2)
        x0 = rng.normal(size=(4, genotype_length(butane_like)))
        e0 = sf.score(x0)
        best_x, best_e, evals = ls.minimize(x0)
        assert np.all(best_e <= e0)
        assert evals > 0


class TestLGA:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LGAConfig(pop_size=1)
        with pytest.raises(ValueError):
            LGAConfig(ls_method="fire")
        with pytest.raises(ValueError):
            LGAConfig(ls_rate=1.5)

    def _config(self):
        return LGAConfig(pop_size=10, max_evals=800, max_gens=20,
                         ls_iters=10, ls_rate=0.2)

    def test_run_respects_budget(self, case_small):
        run = LGARun(case_small.scoring(), "baseline", self._config(),
                     np.random.default_rng(0))
        res = run.run()
        # one trailing scoring pass may exceed the cap by <= pop evals
        assert res.evals_used <= 800 + 10 + 10 * 2 * 10
        assert res.generations <= 20

    def test_history_is_monotone_improving(self, case_small):
        run = LGARun(case_small.scoring(), "baseline", self._config(),
                     np.random.default_rng(1))
        res = run.run()
        scores = [s for _, s, _ in res.history]
        assert scores == sorted(scores, reverse=True)
        evals = [e for e, _, _ in res.history]
        assert evals == sorted(evals)

    def test_best_score_matches_history_tail(self, case_small):
        run = LGARun(case_small.scoring(), "baseline", self._config(),
                     np.random.default_rng(2))
        res = run.run()
        assert res.best_score == res.history[-1][1]

    def test_solis_wets_method(self, case_small):
        cfg = LGAConfig(pop_size=8, max_evals=500, max_gens=10,
                        ls_method="sw", ls_iters=5, ls_rate=0.25)
        res = LGARun(case_small.scoring(), "baseline", cfg,
                     np.random.default_rng(3)).run()
        assert np.isfinite(res.best_score)


class TestParallelLGA:
    def test_matches_distributional_behaviour(self, case_small):
        """Lock-step runs behave like independent runs: all finish, report
        finite scores, and differ across seeds."""
        cfg = LGAConfig(pop_size=10, max_evals=600, max_gens=15,
                        ls_iters=8, ls_rate=0.2)
        results = ParallelLGA(case_small.scoring(), "baseline", cfg,
                              seed=5).run(6)
        assert len(results) == 6
        scores = [r.best_score for r in results]
        assert all(np.isfinite(s) for s in scores)
        assert len(set(np.round(scores, 6))) > 1   # runs are independent

    def test_same_seed_reproducible(self, case_small):
        cfg = LGAConfig(pop_size=8, max_evals=400, max_gens=10,
                        ls_iters=5, ls_rate=0.25)
        sf = case_small.scoring()
        a = ParallelLGA(sf, "baseline", cfg, seed=9).run(3)
        b = ParallelLGA(sf, "baseline", cfg, seed=9).run(3)
        assert [r.best_score for r in a] == [r.best_score for r in b]

    def test_solis_wets_batched(self, case_small):
        cfg = LGAConfig(pop_size=8, max_evals=500, max_gens=10,
                        ls_method="sw", ls_iters=5, ls_rate=0.25)
        results = ParallelLGA(case_small.scoring(), "baseline", cfg,
                              seed=3).run(4)
        assert len(results) == 4
        assert all(np.isfinite(r.best_score) for r in results)

    def test_rejects_autostop(self, case_small):
        cfg = LGAConfig(autostop=True)
        with pytest.raises(ValueError, match="AutoStop"):
            ParallelLGA(case_small.scoring(), "baseline", cfg)
