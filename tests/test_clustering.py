"""Tests for RMSD-based pose clustering."""

import numpy as np
import pytest

from repro.analysis.clustering import (
    cluster_poses,
    cluster_result,
    format_clustering_histogram,
)


def _poses(centres, jitter, n_each, seed=0):
    """Poses jittered around reference conformations."""
    rng = np.random.default_rng(seed)
    out = []
    scores = []
    for k, c in enumerate(centres):
        for _ in range(n_each):
            out.append(c + rng.normal(0, jitter, c.shape))
            scores.append(k * 10.0 + rng.normal(0, 0.1))
    return np.stack(out), np.array(scores)


BASE = np.random.default_rng(42).normal(size=(8, 3)) * 3


class TestClusterPoses:
    def test_two_well_separated_basins(self):
        coords, scores = _poses([BASE, BASE + 10.0], jitter=0.1, n_each=5)
        clusters = cluster_poses(coords, scores, tolerance=2.0)
        assert len(clusters) == 2
        assert clusters[0].size == 5 and clusters[1].size == 5
        # best cluster first
        assert clusters[0].best_score < clusters[1].best_score

    def test_single_cluster_when_tolerance_large(self):
        coords, scores = _poses([BASE, BASE + 10.0], jitter=0.1, n_each=3)
        clusters = cluster_poses(coords, scores, tolerance=100.0)
        assert len(clusters) == 1
        assert clusters[0].size == 6

    def test_every_pose_assigned_once(self):
        coords, scores = _poses([BASE, BASE + 6.0, BASE - 6.0],
                                jitter=0.2, n_each=4)
        clusters = cluster_poses(coords, scores)
        members = sorted(i for cl in clusters for i in cl.member_indices)
        assert members == list(range(12))

    def test_seed_is_lowest_energy_member(self):
        coords, scores = _poses([BASE], jitter=0.05, n_each=6)
        clusters = cluster_poses(coords, scores)
        cl = clusters[0]
        assert scores[cl.seed_index] == scores[cl.member_indices].min()
        assert cl.best_score == pytest.approx(scores.min())

    def test_native_annotation(self):
        coords, scores = _poses([BASE], jitter=0.05, n_each=4)
        clusters = cluster_poses(coords, scores, native=BASE)
        assert clusters[0].seed_rmsd_to_native < 0.2

    def test_validation(self):
        with pytest.raises(ValueError, match="tolerance"):
            cluster_poses(np.zeros((2, 3, 3)), np.zeros(2), tolerance=0.0)
        with pytest.raises(ValueError, match="n_poses"):
            cluster_poses(np.zeros((2, 3, 3)), np.zeros(3))

    def test_histogram_format(self):
        coords, scores = _poses([BASE, BASE + 8.0], jitter=0.1, n_each=3)
        clusters = cluster_poses(coords, scores, native=BASE)
        text = format_clustering_histogram(clusters)
        assert "CLUSTERING HISTOGRAM" in text
        assert "###" in text


class TestClusterResult:
    def test_on_docking_result(self, case_small):
        from repro import DockingConfig, DockingEngine
        from repro.search.lga import LGAConfig
        cfg = DockingConfig(backend="baseline",
                            lga=LGAConfig(pop_size=8, max_evals=800,
                                          max_gens=15, ls_iters=8,
                                          ls_rate=0.25))
        res = DockingEngine(case_small, cfg).dock(n_runs=4, seed=2)
        clusters = cluster_result(res, case_small)
        assert sum(cl.size for cl in clusters) == 4
        assert clusters[0].best_score == pytest.approx(res.best_score)
        assert not np.isnan(clusters[0].seed_rmsd_to_native)
