"""Chaos-tested serving: hang/slow/corrupt-result injection, dead
letters, quarantine-aware partial cohort completion, crash consistency.

Complements test_serve_pool.py (crash_once) with the wider chaos
surface of ISSUE 7: parent-side lease recovery for wedged workers,
result validation, the dead-letter queue with ``--retry-dead``
re-admission, and a kill -9 of the *parent* mid-manifest-rewrite.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.core import DockingConfig
from repro.robustness import WatchdogTimeout  # noqa: F401  (re-exported)
from repro.search.lga import LGAConfig
from repro.serve import (CohortJob, DockingJob, VirtualScreen, WorkerPool,
                         spawn_seed, validate_result_payload)
from repro.serve.pool import execute_job

SRC = str(Path(__file__).resolve().parents[1] / "src")

TINY = DockingConfig(backend="baseline",
                     lga=LGAConfig(pop_size=8, max_evals=300, max_gens=6,
                                   ls_iters=5, ls_rate=0.25))


def case_job(name, i=0, spec_extra=None, label=None):
    return DockingJob(spec={"kind": "case", "case": name,
                            **(spec_extra or {})},
                      config=TINY, n_runs=2, seed=spawn_seed(5, i),
                      label=label or name)


class TestResultValidation:
    def test_accepts_clean_payload(self):
        payload = execute_job(case_job("1u4d"))
        assert validate_result_payload(payload) is None

    def test_rejects_structural_and_nonfinite_damage(self):
        assert validate_result_payload({})["error_type"] == "CorruptResult"
        assert validate_result_payload(
            {"result": {"runs": []}})["error_type"] == "CorruptResult"
        bad = {"result": {"runs": [{"best_score": float("nan")}]}}
        err = validate_result_payload(bad)
        assert err["error_type"] == "NonFiniteResult"
        assert err["retryable"] is True


class TestDeadLetterInline:
    def test_poisoned_job_dead_letters_after_retry_budget(self):
        pool = WorkerPool(workers=0, retries=1, backoff=0.0)
        [res] = list(pool.map([case_job(
            "1u4d", spec_extra={"poison_nonfinite": True})]))
        assert res.status == "dead"
        assert res.attempts == 2                 # budget fully burned
        assert res.error["error_type"] == "NonFiniteResult"
        hist = res.extra["attempt_history"]
        assert [h["attempt"] for h in hist] == [1, 2]
        assert pool.dead_letters == [res]

    def test_cohort_partial_completion_quarantined_member_dies(self):
        members = [case_job("1u4d", 0), case_job("1xoz", 1),
                   case_job("7cpa", 2)]
        poisoned = case_job("1xoz", 1,
                            spec_extra={"poison_nonfinite": True})
        cohort = CohortJob(jobs=(members[0], poisoned, members[2]))
        pool = WorkerPool(workers=0, retries=0, backoff=0.0)
        results = {r.label: r for r in pool.map([cohort])}
        assert len(results) == 3

        # healthy members complete from the batched run, bit-equal to
        # their solo jobs (quarantine must not perturb siblings)
        for member in (members[0], members[2]):
            got = results[member.label]
            assert got.status == "ok"
            assert got.extra["cohort"] == cohort.job_id
            want = execute_job(member)["result"]
            assert got.result == want

        # only the quarantined member fell back to individual retry, and
        # its poison is permanent: dead letter with the quarantine in
        # its attempt history
        dead = results[poisoned.label]
        assert dead.status == "dead"
        assert pool.quarantines == 1
        assert pool.dead_letters == [dead]
        kinds = [h["error_type"] for h in dead.extra["attempt_history"]]
        assert kinds[0] == "LaneQuarantine"
        assert "NonFiniteResult" in kinds


class TestChaosProcessPool:
    def test_hang_once_recovered_by_lease(self, tmp_path):
        marker = str(tmp_path / "hang-once")
        jobs = [case_job("1u4d", 0,
                         spec_extra={"hang_once": marker},
                         label="victim"),
                case_job("1xoz", 1)]
        pool = WorkerPool(workers=2, retries=2, backoff=0.05,
                          poll_seconds=0.05, lease_seconds=3.0)
        results = {r.label: r for r in pool.map(jobs)}
        assert os.path.exists(marker)           # the hang really fired
        assert pool.workers_replaced >= 1       # lease killed the worker
        assert set(results) == {"victim", "1xoz"}
        assert all(r.status == "ok" for r in results.values())
        victim = results["victim"]
        assert victim.attempts >= 2
        assert any(h["error_type"] == "WorkerCrash"
                   for h in victim.extra["attempt_history"])

    def test_slow_once_completes_without_retry(self, tmp_path):
        marker = str(tmp_path / "slow-once")
        job = case_job("1u4d", 0,
                       spec_extra={"slow_once": marker,
                                   "slow_seconds": 0.5})
        pool = WorkerPool(workers=1, poll_seconds=0.05)
        [res] = list(pool.map([job]))
        assert os.path.exists(marker)
        assert res.status == "ok"
        assert res.attempts == 1
        assert pool.workers_replaced == 0

    def test_corrupt_result_once_rejected_then_retried(self, tmp_path):
        marker = str(tmp_path / "corrupt-once")
        job = case_job("1u4d", 0,
                       spec_extra={"corrupt_result_once": marker})
        pool = WorkerPool(workers=1, retries=2, backoff=0.05,
                          poll_seconds=0.05)
        [res] = list(pool.map([job]))
        assert os.path.exists(marker)
        assert res.status == "ok"               # second attempt is clean
        assert res.attempts == 2
        hist = res.extra["attempt_history"]
        assert hist[0]["error_type"] == "NonFiniteResult"


class TestRetryDead:
    def test_dead_records_stay_terminal_unless_readmitted(self, tmp_path):
        manifest = tmp_path / "screen.json"
        screen = VirtualScreen(
            cases=["1u4d", "1xoz"], config=TINY, n_runs=2, seed=7,
            chaos={"1u4d": {"poison_nonfinite": True}})
        first = screen.run(workers=0, manifest=manifest, retries=0)
        assert first.stats["jobs_dead"] == 1
        assert first.stats["jobs_failed"] == 1
        assert len(first.dead) == 1
        dead_id = first.dead[0].job_id

        # resume: the dead letter is terminal — nothing re-runs
        resumed = screen.run(workers=0, manifest=manifest, resume=True,
                             retries=0)
        assert resumed.stats["jobs_completed"] == 0
        assert resumed.stats["jobs_cached"] == 1
        assert resumed.stats["jobs_dead"] == 1
        assert resumed.results[dead_id].status == "dead"

        # --retry-dead re-admits it with a fresh budget (still poisoned,
        # so it dies again — but it demonstrably re-ran)
        readmitted = screen.run(workers=0, manifest=manifest,
                                resume=True, retries=0, retry_dead=True)
        assert readmitted.results[dead_id].status == "dead"
        assert readmitted.results[dead_id].attempts == 1   # fresh budget
        assert readmitted.stats["jobs_dead"] == 1


class TestParentCrashConsistency:
    def test_kill9_mid_manifest_rewrite_resumes_exactly_once(
            self, tmp_path):
        """kill -9 the parent between tmp-write and rename: the manifest
        stays whole, resume yields exactly one terminal record per job,
        and the dead-letter entry survives."""
        manifest = tmp_path / "screen.json"
        script = tmp_path / "killed_screen.py"
        script.write_text(textwrap.dedent(f"""
            import os, signal
            real_replace = os.replace
            calls = {{"n": 0}}

            def killing_replace(src, dst):
                calls["n"] += 1
                if calls["n"] == 2:      # tmp written, rename pending
                    os.kill(os.getpid(), signal.SIGKILL)
                return real_replace(src, dst)

            os.replace = killing_replace

            from repro.core import DockingConfig
            from repro.search.lga import LGAConfig
            from repro.serve import VirtualScreen

            cfg = DockingConfig(backend="baseline",
                                lga=LGAConfig(pop_size=8, max_evals=300,
                                              max_gens=6, ls_iters=5,
                                              ls_rate=0.25))
            VirtualScreen(cases=["1u4d", "1xoz", "7cpa"], config=cfg,
                          n_runs=2, seed=7,
                          priorities=[-1, 0, 0],
                          chaos={{"1u4d": {{"poison_nonfinite": True}}}}
                          ).run(workers=0, manifest={str(manifest)!r},
                                retries=0)
        """))
        env = {**os.environ, "PYTHONPATH": SRC}
        proc = subprocess.run([sys.executable, str(script)], env=env,
                              capture_output=True, timeout=300)
        assert proc.returncode == -signal.SIGKILL

        # atomic writes: the half-finished rewrite left a valid manifest
        # holding exactly the dead-lettered first job
        payload = json.loads(manifest.read_text())
        jobs = payload["jobs"]
        assert len(jobs) == 1
        [prior] = jobs.values()
        assert prior["status"] == "dead"

        screen = VirtualScreen(
            cases=["1u4d", "1xoz", "7cpa"], config=TINY, n_runs=2,
            seed=7, priorities=[-1, 0, 0],
            chaos={"1u4d": {"poison_nonfinite": True}})
        report = screen.run(workers=0, manifest=manifest, resume=True,
                            retries=0)
        # exactly one terminal record per job, no duplicates or losses
        assert len(report.results) == 3
        assert sorted(r.label for r in report.results.values()) \
            == ["1u4d", "1xoz", "7cpa"]
        dead = report.results[prior["job_id"]]
        assert dead.status == "dead"            # preserved, not re-run
        assert dead.attempts == prior["attempts"]
        assert report.stats["jobs_completed"] == 2
        assert report.stats["jobs_dead"] == 1
        assert len(report.ranking) == 2
