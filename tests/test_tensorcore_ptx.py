"""Tests for the PTX-style low-level MMA shapes."""

import numpy as np
import pytest

from repro.fpemu import quantize
from repro.tensorcore.mma import mma
from repro.tensorcore.mma_ptx import (
    PTX_SHAPES,
    mma_m16n8k8,
    mma_m16n8k16,
    wmma_via_ptx,
)


class TestInstructionShapes:
    def test_shape_table(self):
        assert PTX_SHAPES["tf32"] == (16, 8, 8)
        assert PTX_SHAPES["fp16"] == (16, 8, 16)

    def test_m16n8k8_identity(self):
        a = np.zeros((16, 8), np.float32)
        a[:8, :8] = np.eye(8)
        b = np.arange(64, dtype=np.float32).reshape(8, 8)
        out = mma_m16n8k8(a, b, np.zeros((16, 8), np.float32))
        np.testing.assert_array_equal(out[:8], b)
        np.testing.assert_array_equal(out[8:], 0)

    def test_m16n8k16_matches_exact_for_lattice_inputs(self):
        rng = np.random.default_rng(0)
        a = quantize(rng.normal(size=(16, 16)).astype(np.float32), "fp16")
        b = quantize(rng.normal(size=(16, 8)).astype(np.float32), "fp16")
        c = np.zeros((16, 8), np.float32)
        out = mma_m16n8k16(a, b, c)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        np.testing.assert_allclose(out, exact, atol=1e-5)

    def test_shape_validation(self):
        good_a = np.zeros((16, 8), np.float32)
        good_b = np.zeros((8, 8), np.float32)
        good_c = np.zeros((16, 8), np.float32)
        with pytest.raises(ValueError, match="A tile"):
            mma_m16n8k8(np.zeros((8, 8), np.float32), good_b, good_c)
        with pytest.raises(ValueError, match="B tile"):
            mma_m16n8k8(good_a, np.zeros((4, 8), np.float32), good_c)
        with pytest.raises(ValueError, match="C tile"):
            mma_m16n8k8(good_a, good_b, np.zeros((4, 8), np.float32))

    def test_unknown_accumulate(self):
        t = np.zeros((16, 8), np.float32)
        with pytest.raises(ValueError, match="accumulate"):
            mma_m16n8k8(t[:, :8].reshape(16, 8)[:, :8] * 0
                        if False else np.zeros((16, 8), np.float32),
                        np.zeros((8, 8), np.float32), t, accumulate="xx")


class TestLowering:
    def test_wmma_via_ptx_close_to_wmma(self):
        """The PTX lowering agrees with the single WMMA issue up to the
        extra accumulator roundings of the K-chunk chain."""
        rng = np.random.default_rng(1)
        a = rng.normal(size=(16, 16)).astype(np.float32)
        b = rng.normal(size=(16, 16)).astype(np.float32)
        c = rng.normal(size=(16, 16)).astype(np.float32)
        via_ptx = wmma_via_ptx(a, b, c, in_format="tf32")
        via_wmma = mma(a, b, c, in_format="tf32")
        scale = np.abs(a) @ np.abs(b) + np.abs(c)
        assert np.max(np.abs(via_ptx - via_wmma) / scale) < 2.0 ** -20

    def test_exact_for_exactly_representable_problems(self):
        """With small-integer operands everything is exact in both paths."""
        rng = np.random.default_rng(2)
        a = rng.integers(-4, 5, size=(16, 16)).astype(np.float32)
        b = rng.integers(-4, 5, size=(16, 16)).astype(np.float32)
        c = rng.integers(-4, 5, size=(16, 16)).astype(np.float32)
        np.testing.assert_array_equal(
            wmma_via_ptx(a, b, c, in_format="tf32"),
            (a.astype(np.float64) @ b + c).astype(np.float32))

    def test_more_roundings_than_wmma_on_rz(self):
        """Chained K-chunks round twice per output with RZ: the lowered
        result never exceeds the single-issue result for positive data."""
        rng = np.random.default_rng(3)
        a = np.abs(rng.normal(size=(16, 16))).astype(np.float32) + 0.5
        b = np.abs(rng.normal(size=(16, 16))).astype(np.float32) + 0.5
        c = np.zeros((16, 16), np.float32)
        via_ptx = wmma_via_ptx(a, b, c, in_format="tf32", accumulate="rz")
        via_wmma = mma(a, b, c, in_format="tf32", accumulate="rz")
        assert np.all(via_ptx <= via_wmma + 1e-12)

    def test_batched(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(3, 16, 16)).astype(np.float32)
        b = rng.normal(size=(3, 16, 16)).astype(np.float32)
        c = np.zeros((3, 16, 16), np.float32)
        out = wmma_via_ptx(a, b, c, in_format="fp16")
        for i in range(3):
            np.testing.assert_array_equal(
                out[i], wmma_via_ptx(a[i], b[i], c[i], in_format="fp16"))

    def test_unsupported_format(self):
        t = np.zeros((16, 16), np.float32)
        with pytest.raises(ValueError, match="no PTX mma shape"):
            wmma_via_ptx(t, t, t, in_format="fp32")
