"""Tests for the ``.rlig`` binary ligand-library pack format."""

import hashlib
import struct

import numpy as np
import pytest

from repro.docking import Ligand, TorsionBond
from repro.io import (RligReader, decode_ligand, encode_ligand, pack_rlig,
                      read_pdbqt, write_pdbqt)
from repro.io.errors import ParseError


def _random_ligand(rng, i):
    n = int(rng.integers(5, 12))
    coords = np.cumsum(rng.normal(0.0, 1.0, size=(n, 3)), axis=0)
    return Ligand(name=f"r{i}",
                  atom_types=list(rng.choice(["C", "OA", "N", "HD"],
                                             size=n)),
                  ref_coords=coords,
                  charges=rng.normal(0.0, 0.2, size=n),
                  bonds=[(j, j + 1) for j in range(n - 1)],
                  torsions=[TorsionBond(atom_a=1, atom_b=2,
                                        moved=tuple(range(3, n)))])


class TestRecordCodec:
    def test_round_trip_preserves_everything(self, butane_like):
        lig = decode_ligand(encode_ligand(butane_like))
        assert lig.name == butane_like.name
        assert lig.atom_types == butane_like.atom_types
        np.testing.assert_array_equal(lig.ref_coords,
                                      butane_like.ref_coords)
        np.testing.assert_array_equal(lig.charges, butane_like.charges)
        assert lig.bonds == [tuple(b) for b in butane_like.bonds]
        assert [(t.atom_a, t.atom_b, t.moved) for t in lig.torsions] == \
            [(t.atom_a, t.atom_b, t.moved) for t in butane_like.torsions]

    def test_encode_is_deterministic_and_reencode_stable(self, butane_like):
        first = encode_ligand(butane_like)
        assert first == encode_ligand(butane_like)
        # decode -> encode must be byte-stable even though the Ligand
        # constructor re-centres coordinates (not idempotent in float)
        assert encode_ligand(decode_ligand(first)) == first

    @pytest.mark.parametrize("cut", [0, 2, 10, -30, -8, -1])
    def test_truncated_record_raises_parse_error(self, butane_like, cut):
        buf = encode_ligand(butane_like)
        assert len(buf) > 40
        with pytest.raises(ParseError, match="truncated"):
            decode_ligand(buf[:cut], "unit-test-record")

    def test_malformed_meta_raises_parse_error(self):
        junk = struct.pack("<I", 8) + b"not json"
        with pytest.raises(ParseError, match="meta JSON"):
            decode_ligand(junk)


class TestPack:
    def test_pack_from_pdbqt_matches_text_parser(self, butane_like,
                                                 tmp_path):
        pdbqt = tmp_path / "lig.pdbqt"
        write_pdbqt(butane_like, pdbqt)
        golden = read_pdbqt(pdbqt)

        pack = tmp_path / "lib.rlig"
        assert pack_rlig(pack, [pdbqt]) == 1
        with RligReader(pack) as reader:
            lig = reader.read(0)
        np.testing.assert_array_equal(lig.ref_coords, golden.ref_coords)
        np.testing.assert_array_equal(lig.charges, golden.charges)
        assert lig.atom_types == golden.atom_types
        assert [(t.atom_a, t.atom_b, t.moved) for t in lig.torsions] == \
            [(t.atom_a, t.atom_b, t.moved) for t in golden.torsions]

    def test_pack_read_repack_is_byte_stable(self, tmp_path):
        rng = np.random.default_rng(3)
        ligands = [_random_ligand(rng, i) for i in range(12)]
        first = tmp_path / "a.rlig"
        second = tmp_path / "b.rlig"
        pack_rlig(first, ligands)
        with RligReader(first) as reader:
            pack_rlig(second, list(reader))
        assert first.read_bytes() == second.read_bytes()

    def test_index_digests_match_record_bytes(self, tmp_path):
        rng = np.random.default_rng(4)
        pack = tmp_path / "lib.rlig"
        pack_rlig(pack, [_random_ligand(rng, i) for i in range(4)])
        with RligReader(pack) as reader:
            assert len(reader) == 4
            for i in range(4):
                assert reader.sha256(i) == hashlib.sha256(
                    reader.read_bytes(i)).hexdigest()

    def test_names_override(self, butane_like, tmp_path):
        pack = tmp_path / "lib.rlig"
        pack_rlig(pack, [butane_like, butane_like], names=["x0", "x1"])
        with RligReader(pack) as reader:
            assert reader.names == ["x0", "x1"]
            assert reader.read(1).name == "x1"


class TestPackCorruption:
    @pytest.fixture()
    def pack(self, butane_like, tmp_path):
        path = tmp_path / "lib.rlig"
        pack_rlig(path, [butane_like] * 3)
        return path

    def test_bad_magic(self, pack):
        raw = bytearray(pack.read_bytes())
        raw[:4] = b"NOPE"
        pack.write_bytes(raw)
        with pytest.raises(ParseError, match="bad magic"):
            RligReader(pack)

    def test_unsupported_version(self, pack):
        raw = bytearray(pack.read_bytes())
        raw[4] = 99
        pack.write_bytes(raw)
        with pytest.raises(ParseError, match="version"):
            RligReader(pack)

    @pytest.mark.parametrize("keep", [0, 8, 31])
    def test_truncated_before_header(self, pack, keep):
        pack.write_bytes(pack.read_bytes()[:keep])
        with pytest.raises(ParseError, match="truncated"):
            RligReader(pack)

    def test_truncated_index(self, pack):
        pack.write_bytes(pack.read_bytes()[:-10])
        with pytest.raises(ParseError, match="truncated"):
            RligReader(pack)

    def test_header_count_mismatch(self, pack):
        raw = bytearray(pack.read_bytes())
        # n_ligands lives at offset 8 of the <4sB3xQQQ header
        raw[8:16] = struct.pack("<Q", 7)
        pack.write_bytes(raw)
        with pytest.raises(ParseError, match="header says 7"):
            RligReader(pack)
