"""Tests for the AutoStop / heuristics extension features (-A / -H)."""

import numpy as np
import pytest

from repro.search import AutoStop, LGAConfig, LGARun, ParallelLGA, \
    heuristic_max_evals


class TestAutoStop:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoStop(window=1)
        with pytest.raises(ValueError):
            AutoStop(tolerance=0.0)

    def test_no_stop_before_min_generations(self):
        a = AutoStop(window=3, min_generations=10)
        for _ in range(9):
            assert not a.observe(1.0)

    def test_stops_on_converged_trajectory(self):
        a = AutoStop(window=5, tolerance=0.1, min_generations=5)
        stopped = False
        for _ in range(10):
            stopped = a.observe(-12.0)
            if stopped:
                break
        assert stopped

    def test_keeps_running_on_improving_trajectory(self):
        a = AutoStop(window=5, tolerance=0.1, min_generations=5)
        for g in range(30):
            assert not a.observe(-float(g))   # improving by 1.0 each gen

    def test_reset(self):
        a = AutoStop(window=2, min_generations=2)
        a.observe(1.0)
        a.reset()
        assert a.generations_observed == 0


class TestHeuristics:
    def test_monotone_in_nrot(self):
        budgets = [heuristic_max_evals(n) for n in range(0, 33, 4)]
        assert budgets == sorted(budgets)

    def test_cap(self):
        assert heuristic_max_evals(60) == 2_500_000

    def test_small_ligand_floor(self):
        assert heuristic_max_evals(0) == 100_000

    def test_scale(self):
        assert heuristic_max_evals(0, scale=0.01) == 1_000

    def test_validation(self):
        with pytest.raises(ValueError):
            heuristic_max_evals(-1)


class TestAutoStopInLGA:
    def test_early_termination_saves_evals(self, case_small):
        base_cfg = dict(pop_size=10, max_evals=5_000, max_gens=100,
                        ls_iters=8, ls_rate=0.2)
        plain = LGARun(case_small.scoring(), "baseline",
                       LGAConfig(**base_cfg),
                       np.random.default_rng(0)).run()
        stopped = LGARun(case_small.scoring(), "baseline",
                         LGAConfig(**base_cfg, autostop=True,
                                   autostop_window=5,
                                   autostop_tolerance=0.5),
                         np.random.default_rng(0)).run()
        # the rigid test case converges quickly -> autostop saves budget
        assert stopped.evals_used < plain.evals_used
        # and still finds a good pose
        assert stopped.best_score <= case_small.global_min_score + 2.0

    def test_parallel_lga_rejects_autostop(self, case_small):
        with pytest.raises(ValueError, match="AutoStop"):
            ParallelLGA(case_small.scoring(), "baseline",
                        LGAConfig(autostop=True))

    def test_engine_routes_autostop(self, case_small):
        from repro import DockingConfig, DockingEngine
        cfg = DockingConfig(
            backend="baseline",
            lga=LGAConfig(pop_size=8, max_evals=2_000, max_gens=50,
                          ls_iters=8, ls_rate=0.25, autostop=True,
                          autostop_window=5, autostop_tolerance=0.5))
        res = DockingEngine(case_small, cfg).dock(n_runs=2, seed=1)
        assert np.isfinite(res.best_score)
