"""Tests for the SIMT machine and its kernels — the thread-program/
vectorised equivalence proofs."""

import numpy as np
import pytest

from repro.reduction.simt_backend import simt_tree_reduce, warp_shuffle_reduce
from repro.reduction.tc_backend import tc_reduce_xyze
from repro.simt.kernels import (
    tc_reduce_kernel,
    tree_reduce_kernel,
    warp_shuffle_reduce_kernel,
)
from repro.simt.machine import BarrierDivergence, SharedMemory, ThreadBlock


class TestMachineBasics:
    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            ThreadBlock(48)
        with pytest.raises(ValueError):
            ThreadBlock(0)

    def test_non_generator_kernel_rejected(self):
        def plain_kernel(ctx):
            return 1
        with pytest.raises(TypeError, match="generator"):
            ThreadBlock(32).run(plain_kernel)

    def test_shared_memory(self):
        s = SharedMemory(16)
        s[3] = 2.5
        assert s[3] == np.float32(2.5)
        assert len(s) == 16

    def test_every_thread_runs(self):
        seen = []

        def kernel(ctx):
            seen.append(ctx.tid)
            yield from ctx.syncthreads()

        ThreadBlock(64).run(kernel)
        assert sorted(seen) == list(range(64))

    def test_barrier_counts(self):
        def kernel(ctx):
            yield from ctx.syncthreads()
            yield from ctx.syncthreads()

        block = ThreadBlock(32)
        block.run(kernel)
        assert block.barriers_executed == 2

    def test_barrier_divergence_detected(self):
        def kernel(ctx):
            if ctx.tid == 0:
                yield from ctx.syncthreads()   # only thread 0 syncs

        with pytest.raises(BarrierDivergence):
            ThreadBlock(32).run(kernel)

    def test_lane_and_warp_indices(self):
        out = {}

        def kernel(ctx):
            out[ctx.tid] = (ctx.warp, ctx.lane)
            yield from ctx.syncthreads()

        ThreadBlock(64).run(kernel)
        assert out[0] == (0, 0)
        assert out[33] == (1, 1)
        assert out[63] == (1, 31)

    def test_shfl_down_semantics(self):
        """Lane k receives lane k+offset's value (own beyond the edge)."""
        results = {}

        def kernel(ctx):
            got = yield from ctx.shfl_down(float(ctx.tid), 8)
            results[ctx.tid] = float(got)

        ThreadBlock(32).run(kernel)
        for lane in range(32):
            expect = lane + 8 if lane + 8 < 32 else lane
            assert results[lane] == float(expect)

    def test_warp_primitive_with_exited_lane_deadlocks(self):
        def kernel(ctx):
            if ctx.tid == 5:
                return          # lane 5 exits before the shuffle
            yield from ctx.shfl_down(1.0, 1)

        with pytest.raises(BarrierDivergence, match="exited lanes"):
            ThreadBlock(32).run(kernel)


class TestKernelEquivalence:
    """The thread programs compute exactly what the vectorised paths do."""

    @pytest.mark.parametrize("block_size", [32, 64, 128])
    def test_tree_reduce_bit_identical(self, block_size):
        rng = np.random.default_rng(block_size)
        values = (rng.normal(size=block_size) * 100).astype(np.float32)
        out = np.zeros(1, dtype=np.float32)
        ThreadBlock(block_size).run(tree_reduce_kernel, values, out)
        assert out[0] == simt_tree_reduce(values)

    def test_tree_reduce_short_input(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=40).astype(np.float32)   # < block size
        out = np.zeros(1, dtype=np.float32)
        ThreadBlock(64).run(tree_reduce_kernel, values, out)
        assert out[0] == simt_tree_reduce(values)

    @pytest.mark.parametrize("block_size", [32, 64, 128])
    def test_warp_shuffle_bit_identical(self, block_size):
        rng = np.random.default_rng(block_size + 1)
        values = (rng.normal(size=block_size) * 50).astype(np.float32)
        out = np.zeros(1, dtype=np.float32)
        ThreadBlock(block_size).run(warp_shuffle_reduce_kernel, values, out)
        assert out[0] == warp_shuffle_reduce(values)

    @pytest.mark.parametrize("n_vectors", [10, 64, 100])
    def test_tc_reduce_bit_identical(self, n_vectors):
        """The staged-in-shared-memory Tensor Core kernel reproduces the
        vectorised Schieffer-Peng reduction exactly."""
        rng = np.random.default_rng(n_vectors)
        vectors = rng.normal(size=(n_vectors, 4)).astype(np.float32)
        out = np.zeros(4, dtype=np.float32)
        block = ThreadBlock(64, shared_size=256)
        block.run(tc_reduce_kernel, vectors, out)
        expect = tc_reduce_xyze(vectors, in_format="fp16",
                                accumulator_format="fp16")
        np.testing.assert_array_equal(out, expect)
        # one A*P issue per 64-vector batch + the final Q*V
        assert block.mma_issues == max(1, -(-n_vectors // 64)) + 1

    def test_tc_reduce_tf32_accumulated_fp32(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(80, 4)).astype(np.float32)
        out = np.zeros(4, dtype=np.float32)
        ThreadBlock(64, shared_size=256).run(
            tc_reduce_kernel, vectors, out, "tf32", "fp32")
        expect = tc_reduce_xyze(vectors, in_format="tf32",
                                accumulator_format="fp32")
        np.testing.assert_array_equal(out, expect)

    def test_32_to_1_thread_to_tc_mapping(self):
        """Only warp 0 issues MMAs: the issue count is per-warp, not
        per-thread (the paper's Section 3 mapping)."""
        rng = np.random.default_rng(4)
        vectors = rng.normal(size=(64, 4)).astype(np.float32)
        out = np.zeros(4, dtype=np.float32)
        block = ThreadBlock(128, shared_size=256)
        block.run(tc_reduce_kernel, vectors, out)
        assert block.mma_issues == 2          # one A*P + one Q*V
