"""Tests for two-term operand splitting (error-correction preprocessing)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpemu import split_operand, to_tf32
from repro.fpemu.formats import TF32, FP16


class TestSplitReconstruction:
    def test_tf32_reconstruction_near_fp32_accuracy(self):
        rng = np.random.default_rng(23)
        x = rng.normal(size=10_000).astype(np.float32) * 100
        hi, lo, scale = split_operand(x, "tf32")
        recon = hi.astype(np.float64) + lo.astype(np.float64) / scale
        # two TF32 terms carry ~21 mantissa bits -> near-FP32 accuracy
        err = np.abs(recon - x.astype(np.float64)) / np.abs(x)
        assert np.max(err) < 2.0 ** -21

    def test_hi_is_format_quantisation(self):
        rng = np.random.default_rng(29)
        x = rng.normal(size=1000).astype(np.float32)
        hi, _, _ = split_operand(x, "tf32")
        np.testing.assert_array_equal(hi, to_tf32(x))

    def test_scale_is_power_of_two(self):
        _, _, scale = split_operand(np.ones(4, np.float32), "tf32")
        assert scale == TF32.split_scale == 2048.0
        assert np.log2(scale) == int(np.log2(scale))

    def test_unscaled_split(self):
        x = np.array([1.0 + 2.0 ** -12], dtype=np.float32)
        hi, lo, scale = split_operand(x, "tf32", scale_residual=False)
        assert scale == 1.0

    def test_fp16_scaling_prevents_residual_underflow(self):
        """The underflow-avoidance enhancement: small FP32 values' residuals
        vanish in FP16 without scaling, but survive with it."""
        x = np.array([2.0 ** -13 * (1 + 2 ** -12)], dtype=np.float32)
        _, lo_scaled, s = split_operand(x, "fp16", scale_residual=True)
        _, lo_raw, _ = split_operand(x, "fp16", scale_residual=False)
        assert np.any(lo_scaled != 0.0)
        assert np.all(lo_raw == 0.0)

    def test_exact_values_have_zero_residual(self):
        x = np.array([1.0, 2.0, 0.5, -4.0], dtype=np.float32)
        _, lo, _ = split_operand(x, "tf32")
        np.testing.assert_array_equal(lo, np.zeros_like(lo))

    def test_zero_input(self):
        hi, lo, _ = split_operand(np.zeros(8, np.float32), "fp16")
        assert np.all(hi == 0) and np.all(lo == 0)


@given(st.floats(min_value=-(2.0 ** 66), max_value=2.0 ** 66,
                 allow_nan=False, allow_subnormal=False, width=32))
@settings(max_examples=300)
def test_split_reconstruction_property(x):
    x32 = np.float32(x)
    hi, lo, scale = split_operand(np.array([x32]), "tf32")
    recon = float(hi[0]) + float(lo[0]) / scale
    if x32 == 0.0:
        assert recon == 0.0
    else:
        assert abs(recon - float(x32)) <= abs(float(x32)) * 2.0 ** -20
