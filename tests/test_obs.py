"""Tests for repro.obs: tracer spans, metrics registry, schema, report."""

import json
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    SchemaError,
    Tracer,
    configure,
    disable,
    get_metrics,
    get_tracer,
    render_summary,
    reset_metrics,
    summarize_log,
    validate_event,
    validate_log,
)
from repro.obs.schema import read_log


class TestSpanNesting:
    def test_nested_spans_record_parent_ids(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("middle") as middle:
                with t.span("inner") as inner:
                    pass
            with t.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert sibling.parent_id == outer.span_id
        # emission order is exit order: inner first, outer last
        names = [r["name"] for r in t.records()]
        assert names == ["inner", "middle", "sibling", "outer"]

    def test_span_ids_unique_and_durations_positive(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b"):
                pass
        recs = t.records()
        assert len({r["span_id"] for r in recs}) == 2
        assert all(r["dur_s"] >= 0 for r in recs)

    def test_exit_time_attrs_and_error_marker(self):
        t = Tracer()
        with t.span("work", batch=4) as s:
            s.set(evals=128)
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        done, failed = t.records()
        assert done["attrs"] == {"batch": 4, "evals": 128}
        assert failed["attrs"]["error"] == "RuntimeError"

    def test_threads_get_independent_stacks(self):
        t = Tracer()
        seen = {}

        def run(tag):
            with t.span(f"root-{tag}") as root:
                with t.span(f"child-{tag}") as child:
                    seen[tag] = (root, child)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        for tag, (root, child) in seen.items():
            assert root.parent_id is None
            assert child.parent_id == root.span_id

    def test_ring_buffer_bounded(self):
        t = Tracer(ring_size=8)
        for i in range(20):
            t.event("tick", i=i)
        recs = t.records()
        assert len(recs) == 8
        assert [r["attrs"]["i"] for r in recs] == list(range(12, 20))


class TestJsonlSink:
    def test_emitted_log_is_schema_valid(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer(path, source="main")
        with t.span("outer", case="1u4d"):
            with t.span("inner"):
                pass
        t.event("heartbeat", jobs_done=3)
        t.close()
        counts = validate_log(path)
        assert counts == {"events": 3, "spans": 2, "points": 1,
                          "sources": ["main"]}

    def test_append_mode_interleaves_sources(self, tmp_path):
        """Two tracers on one path model the parent + worker processes
        sharing one log: both streams must survive and validate."""
        path = tmp_path / "t.jsonl"
        a = Tracer(path, source="main")
        b = Tracer(path, source="worker-0")
        with a.span("parent"):
            with b.span("worker-side"):
                pass
        a.event("dispatch")
        a.close()
        b.close()
        assert validate_log(path)["sources"] == ["main", "worker-0"]

    def test_unserialisable_attr_degrades_to_repr(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer(path)
        t.event("odd", payload=object())
        t.close()
        [(_, rec)] = list(read_log(path))
        assert "object object" in rec["attrs"]["payload"]


class TestGlobalTracer:
    def test_default_is_noop(self):
        disable()
        t = get_tracer()
        assert isinstance(t, NullTracer)
        assert not t.enabled
        with t.span("anything") as s:
            s.set(x=1)   # all no-ops, nothing raised
        t.event("nothing")
        assert t.records() == []

    def test_configure_then_disable(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = configure(path, source="main")
        assert get_tracer() is t and t.enabled
        with t.span("s"):
            pass
        disable()
        assert isinstance(get_tracer(), NullTracer)
        assert validate_log(path)["spans"] == 1


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(7)
        g.inc(2)
        g.dec(3)
        assert g.value == 6.0

    def test_histogram_summary(self):
        h = Histogram()
        assert h.summary() == {"count": 0, "total": 0.0, "mean": 0.0,
                               "min": None, "max": None}
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3 and s["total"] == 6.0
        assert s["mean"] == pytest.approx(2.0)
        assert (s["min"], s["max"]) == (1.0, 3.0)


class TestRegistry:
    def test_lazy_instruments_are_stable(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_snapshot_delta_semantics(self):
        """Counters and histogram count/total subtract; gauges take the
        after value — the ContentCache.delta idiom generalised."""
        r = MetricsRegistry()
        r.counter("jobs").inc(2)
        r.gauge("depth").set(5)
        r.histogram("wall").observe(1.0)
        before = r.snapshot()
        r.counter("jobs").inc(3)
        r.counter("new").inc()        # born between snapshots
        r.gauge("depth").set(1)
        r.histogram("wall").observe(3.0)
        d = MetricsRegistry.delta(before, r.snapshot())
        assert d["counters"] == {"jobs": 3, "new": 1}
        assert d["gauges"]["depth"] == 1.0
        assert d["histograms"]["wall"] == {"count": 1, "total": 3.0,
                                           "mean": 3.0}

    def test_snapshot_is_json_able(self):
        r = MetricsRegistry()
        r.histogram("h")              # zero-observation histogram
        r.counter("c").inc()
        text = json.dumps(r.snapshot())    # must not hit Infinity
        assert "Infinity" not in text

    def test_global_registry_reset(self):
        reset_metrics()
        get_metrics().counter("x").inc()
        assert get_metrics().snapshot()["counters"]["x"] == 1
        fresh = reset_metrics()
        assert fresh.snapshot()["counters"] == {}
        assert get_metrics() is fresh


class TestSchema:
    def _span(self, **over):
        rec = {"v": 1, "type": "span", "name": "s", "ts": 1.5,
               "pid": 10, "src": "main", "span_id": 0,
               "parent_id": None, "dur_s": 0.1}
        rec.update(over)
        return rec

    def test_valid_records_pass(self):
        validate_event(self._span())
        validate_event({"v": 1, "type": "event", "name": "e", "ts": 0.0,
                        "pid": 1, "src": "w", "attrs": {"k": 1}})

    @pytest.mark.parametrize("corrupt", [
        {"v": 2},                      # wrong version
        {"type": "metric"},            # unknown type
        {"name": 7},                   # wrong type
        {"pid": True},                 # bool is not an int here
        {"dur_s": -0.1},               # negative duration
        {"span_id": "x"},              # non-int span id
        {"attrs": []},                 # attrs must be an object
    ])
    def test_corrupt_records_rejected(self, corrupt):
        with pytest.raises(SchemaError):
            validate_event(self._span(**corrupt))

    def test_missing_field_names_line(self):
        with pytest.raises(SchemaError, match="line 3.*'src'"):
            validate_event({"v": 1, "type": "event", "name": "e",
                            "ts": 0.0, "pid": 1}, line_no=3)

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "type": "event", "name": "e", '
                        '"ts": 0.0, "pid": 1, "src": "m"}\n{oops\n')
        with pytest.raises(SchemaError, match="line 2"):
            validate_log(path)


class TestReport:
    def _write_log(self, path):
        t = Tracer(path, source="main")
        with t.span("engine.dock"):
            with t.span("adadelta.minimize"):
                pass
        t.event("job.dispatch", job_id="j1")
        t.event("job.complete", job_id="j1",
                cache={"hits": 3, "misses": 1, "evictions": 0, "races": 0})
        t.event("pool.depth", pending=2, in_flight=1)
        t.event("pool.depth", pending=0, in_flight=0)
        t.event("worker.heartbeat", worker_id=0, jobs_done=1,
                cache={"hit_rate": 0.75})
        t.close()

    def test_summarize_log(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_log(path)
        s = summarize_log(path)
        assert s["spans"]["engine.dock"]["count"] == 1
        assert s["spans"]["adadelta.minimize"]["total_s"] \
            <= s["spans"]["engine.dock"]["total_s"]
        assert s["jobs"] == {"dispatched": 1, "completed": 1, "failed": 0}
        assert s["cache"]["hits"] == 3
        assert s["cache"]["hit_rate"] == pytest.approx(0.75)
        assert s["queue_depth"] == {"samples": 2, "min": 0, "max": 2,
                                    "last": 0}
        assert "main" in s["heartbeats"]
        assert s["heartbeats"]["main"]["jobs_done"] == 1

    def test_render_summary_mentions_everything(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_log(path)
        text = render_summary(summarize_log(path))
        for needle in ("engine.dock", "1 dispatched, 1 completed",
                       "queue depth", "3 hits / 1 misses",
                       "worker heartbeats", "hit rate 75%"):
            assert needle in text, needle

    def test_summarize_rejects_corrupt_log(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"v": 99}\n')
        with pytest.raises(SchemaError):
            summarize_log(path)


class TestStatsCli:
    def test_stats_renders_a_real_log(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "t.jsonl"
        t = Tracer(path, source="main")
        with t.span("engine.dock"):
            pass
        t.close()
        assert main(["stats", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "schema v1 OK" in out
        assert "engine.dock" in out

    def test_stats_errors_are_structured(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["stats", str(tmp_path / "absent.jsonl")]) == 2
        assert "no such trace log" in capsys.readouterr().err
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        assert main(["stats", str(bad)]) == 2
        assert "invalid trace log" in capsys.readouterr().err


class TestReductionMetrics:
    def test_gradient_call_records_backend_histogram(self, case_small):
        """The cross-check hook: reduce4 wall time lands in a per-backend
        histogram so traced Python times can be compared against the simt
        cost model's cycle ratios."""
        import numpy as np
        from repro.docking.gradients import GradientCalculator
        from repro.docking.scoring import ScoringFunction

        reset_metrics()
        sf = ScoringFunction(case_small.ligand, case_small.maps)
        grad = GradientCalculator(sf, "baseline")
        genes = np.zeros((4, 6 + case_small.ligand.n_rot))
        grad(genes)
        snap = get_metrics().snapshot()
        h = snap["histograms"]["reduction.baseline.reduce4_s"]
        assert h["count"] == 1 and h["total"] > 0
        assert snap["counters"]["reduction.baseline.calls"] == 2
        assert snap["counters"]["gradient.evals"] == 4
