"""Tests for the kernel cost model — including the paper-shape invariants."""

import pytest

from repro.simt import (
    KernelCostModel,
    KernelWorkload,
    REDUCTION_BACKENDS,
)
from repro.simt.counters import OpCounters, RegionClock
from repro.simt.profiler import profile_kernel


#: a 7cpa-like workload (paper-equivalent scale, 20 runs x 150 population)
WL = KernelWorkload(n_rotlist=412, n_atoms=50, n_intra=325, n_genes=21,
                    n_blocks=3000)


class TestRegionClock:
    def test_charge_and_total(self):
        c = RegionClock()
        c.charge("a", 10.0)
        c.charge("b", 30.0)
        c.charge("a", 5.0)
        assert c.cycles("a") == 15.0
        assert c.cycles() == 45.0
        assert c.fraction("b") == pytest.approx(30.0 / 45.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            RegionClock().charge("x", -1.0)

    def test_empty_fraction(self):
        assert RegionClock().fraction("a") == 0.0

    def test_merge(self):
        a, b = RegionClock(), RegionClock()
        a.charge("x", 1.0)
        b.charge("x", 2.0)
        b.charge("y", 3.0)
        a.merge(b)
        assert a.cycles("x") == 3.0 and a.cycles("y") == 3.0


class TestOpCounters:
    def test_totals(self):
        ops = OpCounters()
        ops.add(fma_flops=100.0, tc_flops=50.0, alu_ops=10.0, dram_bytes=8.0)
        assert ops.total_flops == 150.0

    def test_scaled(self):
        ops = OpCounters(fma_flops=10.0, dram_bytes=4.0)
        s = ops.scaled(3.0)
        assert s.fma_flops == 30.0 and s.dram_bytes == 12.0
        assert ops.fma_flops == 10.0  # original untouched

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCounters().add(fma_flops=-1.0)


class TestWorkload:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_atoms"):
            KernelWorkload(n_rotlist=1, n_atoms=0, n_intra=1, n_genes=1,
                           n_blocks=1)


class TestCostModelBasics:
    def test_backend_validation(self):
        with pytest.raises(ValueError, match="unknown backend"):
            KernelCostModel("A100", 64, "warp-shuffle")

    def test_block_size_validation(self):
        with pytest.raises(ValueError, match="block_size"):
            KernelCostModel("A100", 48)

    def test_iteration_seconds_positive(self):
        for backend in REDUCTION_BACKENDS:
            t = KernelCostModel("A100", 64, backend).iteration_seconds(WL)
            assert 0 < t < 1.0

    def test_score_only_cheaper_than_full(self):
        m = KernelCostModel("A100", 64, "baseline")
        assert m.score_only_seconds(WL) < m.iteration_seconds(WL)

    def test_tc_backends_report_tc_flops(self):
        base = KernelCostModel("A100", 64, "baseline").iteration_cost(WL)
        tc = KernelCostModel("A100", 64, "tc-fp16").iteration_cost(WL)
        tcec = KernelCostModel("A100", 64, "tcec-tf32").iteration_cost(WL)
        assert base.ops.tc_flops == 0.0
        assert tc.ops.tc_flops > 0.0
        # TCEC issues 3x the Tensor Core work of the uncorrected version
        assert tcec.ops.tc_flops == pytest.approx(3 * tc.ops.tc_flops)


class TestPaperShapeInvariants:
    """The qualitative results of Figure 4 / Tables 5-6 (see DESIGN.md)."""

    @pytest.mark.parametrize("device", ["A100", "H100", "B200"])
    @pytest.mark.parametrize("block", [64, 128, 256])
    def test_tcec_beats_baseline_everywhere(self, device, block):
        tb = KernelCostModel(device, block, "baseline").iteration_seconds(WL)
        tt = KernelCostModel(device, block, "tcec-tf32").iteration_seconds(WL)
        assert tt < tb

    @pytest.mark.parametrize("device", ["A100", "H100", "B200"])
    @pytest.mark.parametrize("backend", ["baseline", "tcec-tf32"])
    def test_time_grows_with_block_size(self, device, backend):
        times = [KernelCostModel(device, b, backend).iteration_seconds(WL)
                 for b in (64, 128, 256)]
        assert times[0] < times[1] < times[2]

    @pytest.mark.parametrize("block", [64, 128, 256])
    def test_newer_devices_faster(self, block):
        times = [KernelCostModel(d, block, "baseline").iteration_seconds(WL)
                 for d in ("A100", "H100", "B200")]
        assert times[0] > times[1] > times[2]

    def test_h100_has_peak_relative_speedup_at_256(self):
        """Paper Section 5.1: highest relative speedup on H100 @ 256."""
        rel = {}
        for d in ("A100", "H100", "B200"):
            for b in (64, 128, 256):
                tb = KernelCostModel(d, b, "baseline").iteration_seconds(WL)
                tt = KernelCostModel(d, b, "tcec-tf32").iteration_seconds(WL)
                rel[(d, b)] = tb / tt
        assert max(rel, key=rel.get) == ("H100", 256)
        assert rel[("H100", 256)] > 1.5

    def test_relative_speedups_all_above_one(self):
        for d in ("A100", "H100", "B200"):
            for b in (64, 128, 256):
                tb = KernelCostModel(d, b, "baseline").iteration_seconds(WL)
                tt = KernelCostModel(d, b, "tcec-tf32").iteration_seconds(WL)
                assert tb / tt > 1.0

    def test_b200_relative_speedup_dips_at_256(self):
        """Paper: B200's relative gain at 256 falls below H100's."""
        def rel(d, b):
            tb = KernelCostModel(d, b, "baseline").iteration_seconds(WL)
            tt = KernelCostModel(d, b, "tcec-tf32").iteration_seconds(WL)
            return tb / tt
        assert rel("B200", 256) < rel("H100", 256)
        assert rel("B200", 256) <= rel("B200", 128) + 0.02

    @pytest.mark.parametrize("device", ["A100", "H100", "B200"])
    def test_tensor_fraction_in_paper_range(self, device):
        """clock64-measured f_eff = 0.9 f lands in the paper's 0.10-0.20."""
        for b in (64, 128, 256):
            f = KernelCostModel(device, b, "baseline").tensor_fraction(WL)
            assert 0.10 <= 0.9 * f <= 0.20

    def test_a100_baseline_absolute_times_match_table6(self):
        """Within 20% of Table 6's 82.9 / 95.9 / 124.8 ms (300 iters)."""
        targets = {64: 82.9, 128: 95.9, 256: 124.8}
        for b, target in targets.items():
            t = KernelCostModel("A100", b, "baseline").iteration_seconds(WL)
            assert t * 300 * 1e3 == pytest.approx(target, rel=0.20)


class TestProfiler:
    def test_profile_fields(self):
        p = profile_kernel("A100", 64, "tcec-tf32", WL, iterations=300)
        assert p.exec_time_ms > 0
        assert p.gflops > 0
        assert 0 <= p.fma_util_pct <= 100
        assert 0 <= p.tc_util_pct <= 100
        assert p.nsight_version == "2023.3.1"

    def test_oi_in_paper_magnitude(self):
        """Operational intensity lands in Table 6's 1.3k-3.7k FLOP/Byte."""
        for d in ("A100", "H100", "B200"):
            p = profile_kernel(d, 128, "baseline", WL)
            assert 500 <= p.operational_intensity <= 6000

    def test_tcec_higher_gflops_than_baseline(self):
        for d in ("A100", "H100", "B200"):
            pb = profile_kernel(d, 128, "baseline", WL)
            pt = profile_kernel(d, 128, "tcec-tf32", WL)
            assert pt.gflops > pb.gflops

    def test_nsight_quirk_emulation(self):
        """Old Nsight versions report phantom baseline TC utilisation on
        A100/H100 but not on B200 (Section 5.2)."""
        pa = profile_kernel("A100", 64, "baseline", WL)
        pb = profile_kernel("B200", 64, "baseline", WL)
        assert pa.tc_util_pct > 0.0
        assert pb.tc_util_pct == 0.0
        clean = profile_kernel("A100", 64, "baseline", WL,
                               emulate_nsight_quirk=False)
        assert clean.tc_util_pct == 0.0

    def test_tc_utilisation_only_for_tc_backends(self):
        p = profile_kernel("B200", 256, "tcec-tf32", WL)
        assert p.tc_util_pct > 0.0

    def test_as_row(self):
        row = profile_kernel("A100", 64, "baseline", WL).as_row()
        assert row["device"] == "A100" and row["block"] == 64
        assert set(row) >= {"time_ms", "OI", "GFLOP/s", "FMA%", "ALU%", "TC%"}
